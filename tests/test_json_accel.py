"""JSON XPath-accelerator: columnar structural joins vs the tree walker.

The accelerated matcher (``TreePatternMatcher(store)``) must return
exactly the rows of the reference tree-walking matcher
(``accel=False``) for every pattern shape: child/descendant axes,
``*``/``**`` wildcards, value predicates across every comparison,
bound ``{param}`` predicates and pushed-down bindings.  The suite also
pins the snapshot contract (watermarked views never see post-pin
writes), the copy-on-write path indexes, deep-document iterative
encoding, the exact axis statistics, and the accelerator metrics.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import JSONQuery, StatisticsCatalog
from repro.core.sources import JSONSource
from repro.engine.batch import BindingBatch
from repro.json import (
    JSONDocumentStore,
    Parameter,
    PatternLeaf,
    Predicate,
    TreePatternMatcher,
    make_pattern,
    parse_pattern,
)
from repro.json.accel import structural_row_estimate
from repro.json.pattern import COMPARISONS
from repro.obs.metrics import get_registry, reset_registry
from repro.service import MediatorService

pytestmark = pytest.mark.json_accel


# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

_KEYS = ("a", "b", "c", "d", "e")

_SCALARS = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=-5, max_value=5),
    st.sampled_from([0.5, 2.5]),
    st.sampled_from(["x", "y", "z", "politics"]),
)

# Containers stay non-empty: empty dicts/lists carry no indexable leaf,
# which the candidate pruning (shared by both matchers) treats as absent.
_JSON = st.recursive(
    _SCALARS,
    lambda children: st.one_of(
        st.lists(children, min_size=1, max_size=3),
        st.dictionaries(st.sampled_from(_KEYS), children,
                        min_size=1, max_size=3),
    ),
    max_leaves=12,
)

_DOCUMENTS = st.lists(
    st.dictionaries(st.sampled_from(_KEYS), _JSON, min_size=1, max_size=4),
    min_size=1, max_size=8,
)

_SEGMENTS = st.sampled_from(_KEYS + ("*", "**"))


@st.composite
def _patterns(draw):
    """A random pattern plus the parameters/pushdown that go with it."""
    leaves = []
    taken: set[str] = set()
    parameters: dict[str, object] = {}
    for _ in range(draw(st.integers(min_value=1, max_value=2))):
        path = ".".join(draw(st.lists(_SEGMENTS, min_size=1, max_size=3)))
        if path in taken:
            continue
        taken.add(path)
        variable = draw(st.sampled_from([None, "v", "w"]))
        predicates = ()
        if draw(st.booleans()):
            op = draw(st.sampled_from(COMPARISONS))
            value = draw(_SCALARS)
            if draw(st.booleans()):
                name = f"p{len(parameters)}"
                parameters[name] = value
                value = Parameter(name)
            predicates = (Predicate(op=op, value=value),)
        leaves.append(PatternLeaf(path=path, variable=variable,
                                  predicates=predicates))
    pushdown = {}
    if draw(st.booleans()):
        pushdown = {"v": draw(_SCALARS)}
    return make_pattern(leaves), parameters, pushdown


def _store(documents) -> JSONDocumentStore:
    store = JSONDocumentStore("accel-hyp")
    for i, doc in enumerate(documents):
        store.add({"id": i, **doc})
    return store


def _both(store, pattern, **kwargs):
    reference = TreePatternMatcher(store, accel=False).match(pattern, **kwargs)
    accelerated = TreePatternMatcher(store).match(pattern, **kwargs)
    return reference, accelerated


# ---------------------------------------------------------------------------
# Equivalence: accelerated == reference, exactly
# ---------------------------------------------------------------------------

class TestEquivalence:
    @given(documents=_DOCUMENTS, spec=_patterns())
    @settings(max_examples=80, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_random_patterns_match_reference(self, documents, spec):
        pattern, parameters, pushdown = spec
        store = _store(documents)
        reference, accelerated = _both(store, pattern,
                                       parameters=parameters,
                                       pushdown=pushdown)
        assert accelerated == reference

    @given(documents=_DOCUMENTS, spec=_patterns(),
           limit=st.integers(min_value=0, max_value=5))
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_limits_match_reference(self, documents, spec, limit):
        pattern, parameters, pushdown = spec
        store = _store(documents)
        reference, accelerated = _both(store, pattern,
                                       parameters=parameters,
                                       pushdown=pushdown, limit=limit)
        assert accelerated == reference
        assert len(accelerated) <= limit

    def test_every_comparison_operator(self):
        store = JSONDocumentStore("ops")
        for i in range(12):
            store.add({"id": i, "n": {"likes": i % 6},
                       "tag": ["hot", "cold"][i % 2]})
        for op in COMPARISONS:
            pattern = make_pattern([
                PatternLeaf(path="n.likes", variable="l",
                            predicates=(Predicate(op=op, value=3),)),
                PatternLeaf(path="tag", variable="t"),
            ])
            reference, accelerated = _both(store, pattern)
            assert accelerated == reference
            assert reference  # every operator selects something here

    def test_wildcard_axes_and_batch_calls(self):
        store = JSONDocumentStore("wild")
        for i in range(20):
            store.add({"id": i,
                       "a": {"b": {"c": i % 4}, "d": [{"c": 10 + i % 3}]},
                       "e": i})
        for text in ("{ **.c: ?v }", "{ a.*.c: ?v }", "{ a.**: ?v }",
                     "{ *.b.c: ?v, e: ?w }", '{ **.c: ?v > 1 }'):
            pattern = parse_pattern(text)
            reference, accelerated = _both(store, pattern)
            assert accelerated == reference
            assert reference
        pattern = parse_pattern("{ e: ?w, a.b.c: {low} }")
        calls = [({"low": k}, {}) for k in range(4)] + [({"low": 0}, {"w": 4})]
        accel = TreePatternMatcher(store)
        batched = accel.match_batch(pattern, calls)
        assert batched == [accel.match(pattern, parameters=p, pushdown=push)
                           for p, push in calls]

    def test_match_columns_emits_binding_batch(self):
        store = JSONDocumentStore("cols")
        for i in range(6):
            store.add({"id": i, "a": {"b": i}, "c": f"t{i % 2}"})
        pattern = parse_pattern("{ a.b: ?x, c: ?y }")
        matcher = TreePatternMatcher(store)
        batch = matcher.match_columns(pattern)
        assert isinstance(batch, BindingBatch)
        assert batch.columns == ("x", "y")
        assert list(batch.dicts()) == matcher.match(pattern)


# ---------------------------------------------------------------------------
# Snapshots: pinned views never see post-pin writes
# ---------------------------------------------------------------------------

class TestSnapshotIsolation:
    def test_pinned_view_shares_encoding_but_keeps_watermark(self):
        store = JSONDocumentStore("pin")
        for i in range(6):
            store.add({"id": i, "a": {"b": i}})
        pattern = parse_pattern("{ a.b: ?v }")
        before = TreePatternMatcher(store).match(pattern)
        snap = store.snapshot()
        pinned_view = snap.encoding_view()
        for i in range(6, 12):
            store.add({"id": i, "a": {"b": i}})
        # Append-only sharing: one encoding object, two watermarks.
        assert snap.encoding_view().encoding is store.encoding_view().encoding
        assert snap.encoding_view().doc_limit == pinned_view.doc_limit == 6
        assert store.encoding_view().doc_limit == 12
        assert TreePatternMatcher(snap).match(pattern) == before
        assert len(TreePatternMatcher(store).match(pattern)) == 12

    @given(batches=st.lists(st.lists(
        st.dictionaries(st.sampled_from(_KEYS), _JSON, min_size=1, max_size=3),
        min_size=1, max_size=3), min_size=2, max_size=4),
        spec=_patterns())
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_interleaved_inserts_leave_pins_untouched(self, batches, spec):
        pattern, parameters, pushdown = spec
        store = JSONDocumentStore("interleave")
        pinned = []
        next_id = 0
        for batch in batches:
            for doc in batch:
                store.add({"id": next_id, **doc})
                next_id += 1
            snap = store.snapshot()
            rows = TreePatternMatcher(snap).match(
                pattern, parameters=parameters, pushdown=pushdown)
            pinned.append((snap, rows))
        # Every pin still answers exactly what it answered at pin time,
        # in both modes, despite all the writes that followed.
        for snap, rows in pinned:
            reference, accelerated = _both(snap, pattern,
                                           parameters=parameters,
                                           pushdown=pushdown)
            assert accelerated == rows
            assert reference == rows

    def test_removal_rebuilds_and_stays_correct(self):
        store = JSONDocumentStore("rm")
        for i in range(8):
            store.add({"id": i, "a": {"b": i}})
        pattern = parse_pattern("{ a.b: ?v }")
        snap = store.snapshot()
        assert len(TreePatternMatcher(store).match(pattern)) == 8
        store.remove("3")
        reference, accelerated = _both(store, pattern)
        assert accelerated == reference
        assert {row["v"] for row in accelerated} == {0, 1, 2, 4, 5, 6, 7}
        assert store.encoding_view().doc_limit == 7
        # The pre-removal snapshot still sees all eight documents.
        assert len(TreePatternMatcher(snap).match(pattern)) == 8


# ---------------------------------------------------------------------------
# Deep documents: no recursion on the hot paths
# ---------------------------------------------------------------------------

class TestDeepDocuments:
    def test_depth_10k_document_encodes_and_matches(self):
        document: dict = {"id": "deep"}
        node = document
        for _ in range(10_000):
            child: dict = {}
            node["d"] = child
            node = child
        node["x"] = 1
        store = JSONDocumentStore("deep")
        store.add(document)  # indexing must not recurse
        pattern = parse_pattern("{ **.x: ?v }")
        reference, accelerated = _both(store, pattern)
        assert accelerated == reference == [{"v": 1}]
        assert store.encoding_view().encoding.node_count >= 10_000


# ---------------------------------------------------------------------------
# Copy-on-write path indexes
# ---------------------------------------------------------------------------

class TestPathIndexCOW:
    def test_snapshot_shares_postings_until_first_mutation(self):
        store = JSONDocumentStore("cow")
        for i in range(5):
            store.add({"id": i, "a": f"k{i % 2}"})
        snap = store.snapshot()
        live = store.index_for("a")
        frozen = snap.index_for("a")
        assert live is not frozen
        assert live.postings is frozen.postings
        assert live.presence is frozen.presence
        version = frozen.version
        store.add({"id": 99, "a": "fresh"})
        assert live.postings is not frozen.postings
        assert live.version > version
        assert frozen.version == version
        assert frozen.lookup_eq("fresh") == set()
        assert store.index_for("a").lookup_eq("fresh") == {"99"}


# ---------------------------------------------------------------------------
# Exact axis statistics and the structural row estimate
# ---------------------------------------------------------------------------

class TestAxisStatistics:
    def _q(self, estimate: float, actual: float) -> float:
        lo, hi = sorted((max(estimate, 1e-9), max(actual, 1e-9)))
        return hi / lo

    def test_axis_stats_counts_are_exact(self):
        store = JSONDocumentStore("axis")
        store.add({"id": 0, "t": [1, 2, 3]})
        store.add({"id": 1, "t": [4]})
        store.add({"id": 2, "u": "no-t"})
        view = store.encoding_view()
        pattern = parse_pattern("{ t: ?v }")
        stats = view.encoding.axis_stats(pattern, view.node_limit)
        assert stats["leaves"] == [{"path": "t", "documents": 2, "nodes": 4}]
        assert stats["documents"] == 2
        estimate = structural_row_estimate(view, pattern)
        assert estimate == len(TreePatternMatcher(store).match(pattern)) == 4

    def test_catalog_qerror_within_two_on_bench_workload(self):
        store = JSONDocumentStore("tweets")
        for i in range(120):
            doc = {"id": i, "author": f"a{i % 12}", "likes": i % 60,
                   "topic": "politics" if i < 90 else "other"}
            if i % 3 == 0:
                doc["geo"] = {"lat": 48.8, "lon": 2.3}
            store.add(doc)
        source = JSONSource("json://tweets", store)
        catalog = StatisticsCatalog()
        for text in ("{ author: ?a, topic: ?t }",
                     "{ geo.lat: ?lat }",
                     "{ author: ?a, geo.lat: ?lat, likes: ?l }",
                     "{ topic: ?t, likes: ?l }"):
            query = JSONQuery.from_text(text)
            actual = len(source.execute(query))
            assert actual > 0
            assert self._q(catalog.estimate(source, query), actual) <= 2.0

    def test_accel_source_reports_distinct_cost_kind(self):
        store = JSONDocumentStore("kind")
        store.add({"id": 0, "a": 1})
        source = JSONSource("json://kind", store)
        assert source.cost_kind == "json_accel"
        source.matcher.accel = False
        assert source.cost_kind == source.model


# ---------------------------------------------------------------------------
# Metrics: builds/probe_rows counters surface through the service
# ---------------------------------------------------------------------------

class TestMetrics:
    def test_counters_advance_and_service_surfaces_them(self, demo):
        reset_registry()
        store = JSONDocumentStore("metrics")
        for i in range(10):
            store.add({"id": i, "a": {"b": i}})
        matcher = TreePatternMatcher(store)
        rows = matcher.match(parse_pattern("{ a.b: ?v }"))
        assert len(rows) == 10
        registry = get_registry()
        assert registry.counter("json.accel.builds").value >= 1
        assert registry.counter("json.accel.probe_rows").value >= 10
        with MediatorService(demo.instance) as service:
            stats = service.stats()
        assert stats["json_accel"]["builds"] >= 1
        assert stats["json_accel"]["probe_rows"] >= 10
