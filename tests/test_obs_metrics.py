"""Metrics registry: instruments, exporters, thread-safety."""

from __future__ import annotations

import json
import os
import threading

import pytest

from repro.obs.metrics import (
    DEFAULT_BUCKETS,
    Histogram,
    MetricsRegistry,
    get_registry,
    reset_registry,
    set_registry,
)

pytestmark = pytest.mark.obs


class TestInstruments:
    def test_counter_get_or_create_and_inc(self):
        registry = MetricsRegistry()
        counter = registry.counter("requests_total", source="a")
        assert registry.counter("requests_total", source="a") is counter
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5
        assert registry.counter("requests_total", source="b").value == 0.0

    def test_gauge_set_inc_dec(self):
        registry = MetricsRegistry()
        gauge = registry.gauge("depth")
        gauge.set(10)
        gauge.inc()
        gauge.dec(3)
        assert gauge.value == 8.0

    def test_histogram_summary_and_quantiles(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("latency", buckets=(0.01, 0.1, 1.0))
        for value in (0.005, 0.005, 0.05, 0.05, 0.05, 0.5):
            histogram.observe(value)
        summary = histogram.summary()
        assert summary["count"] == 6
        assert summary["sum"] == pytest.approx(0.66)
        assert summary["max"] == pytest.approx(0.5)
        # p50 falls inside the (0.01, 0.1] bucket, interpolated.
        assert 0.01 <= summary["p50"] <= 0.1
        assert summary["p99"] <= 1.0
        assert histogram.quantile(0.0) == 0.0 or histogram.quantile(0.0) >= 0.0

    def test_histogram_overflow_bucket_bounded_by_max(self):
        histogram = Histogram("h", buckets=(1.0,))
        histogram.observe(5.0)
        histogram.observe(7.0)
        assert histogram.quantile(0.99) <= 7.0

    def test_empty_histogram(self):
        histogram = Histogram("h")
        assert histogram.quantile(0.5) == 0.0
        assert histogram.summary()["count"] == 0

    def test_kind_conflict_raises(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TypeError):
            registry.gauge("x")
        with pytest.raises(TypeError):
            registry.histogram("x")

    def test_default_buckets_are_sorted(self):
        assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)


class TestReadingAndExport:
    def test_value_series_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("calls", source="a").inc(3)
        registry.counter("calls", source="b").inc(1)
        registry.gauge("depth").set(4)
        registry.histogram("lat").observe(0.02)
        assert registry.value("calls", source="a") == 3.0
        assert registry.value("missing") is None
        series = registry.series("calls")
        assert series == {"calls{source=a}": 3.0, "calls{source=b}": 1.0}
        snapshot = registry.snapshot()
        assert snapshot["depth"] == 4.0
        assert snapshot["lat"]["count"] == 1
        assert json.loads(registry.to_json())["depth"] == 4.0

    def test_callback_gauges(self):
        registry = MetricsRegistry()
        state = {"n": 7}
        registry.register_callback("entries", lambda: state["n"], cache="r")
        assert registry.value("entries", cache="r") == 7
        state["n"] = 9
        assert registry.snapshot()["entries{cache=r}"] == 9
        assert 'entries{cache="r"} 9' in registry.render_prometheus()

    def test_prometheus_rendering(self):
        registry = MetricsRegistry()
        registry.counter("calls_total", source="sql://a").inc(2)
        registry.gauge("depth").set(1)
        histogram = registry.histogram("lat_seconds", buckets=(0.1, 1.0))
        histogram.observe(0.05)
        histogram.observe(0.5)
        text = registry.render_prometheus()
        assert "# TYPE calls_total counter" in text
        assert 'calls_total{source="sql://a"} 2' in text
        assert "# TYPE depth gauge" in text
        assert "# TYPE lat_seconds histogram" in text
        assert 'lat_seconds_bucket{le="0.1"} 1' in text
        assert 'lat_seconds_bucket{le="1"} 2' in text
        assert 'lat_seconds_bucket{le="+Inf"} 2' in text
        assert "lat_seconds_count 2" in text
        assert text.endswith("\n")

    def test_prometheus_label_escaping(self):
        registry = MetricsRegistry()
        registry.counter("c", label='he said "hi"\n').inc()
        text = registry.render_prometheus()
        assert '\\"hi\\"' in text and "\\n" in text


class TestGlobalRegistry:
    def test_set_and_reset(self):
        original = get_registry()
        try:
            mine = MetricsRegistry()
            previous = set_registry(mine)
            assert get_registry() is mine
            fresh = reset_registry()
            assert get_registry() is fresh
            assert fresh is not mine
        finally:
            set_registry(original)


@pytest.mark.stress
class TestThreadSafety:
    THREADS = int(os.environ.get("REPRO_STRESS_READERS", "8"))
    ITERATIONS = 2000

    def test_concurrent_counter_increments_are_exact(self):
        registry = MetricsRegistry()
        barrier = threading.Barrier(self.THREADS)

        def work():
            barrier.wait()
            # get-or-create races on purpose: every thread re-resolves.
            for _ in range(self.ITERATIONS):
                registry.counter("hits", worker="shared").inc()

        threads = [threading.Thread(target=work) for _ in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.value("hits", worker="shared") == (
            self.THREADS * self.ITERATIONS)

    def test_concurrent_histogram_observations_are_exact(self):
        registry = MetricsRegistry()
        histogram = registry.histogram("lat")
        barrier = threading.Barrier(self.THREADS)

        def work(seed):
            barrier.wait()
            for i in range(self.ITERATIONS):
                histogram.observe((seed + i) % 13 * 0.001)

        threads = [threading.Thread(target=work, args=(t,))
                   for t in range(self.THREADS)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        summary = histogram.summary()
        assert summary["count"] == self.THREADS * self.ITERATIONS
        total = sum((t + i) % 13 * 0.001
                    for t in range(self.THREADS)
                    for i in range(self.ITERATIONS))
        assert summary["sum"] == pytest.approx(total, rel=1e-6)
