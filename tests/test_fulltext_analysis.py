"""Unit tests for text analysis: tokenisation, stemming, hashtags."""

from repro.fulltext import (
    AnalyzedText,
    Analyzer,
    extract_hashtags,
    extract_mentions,
    normalize,
    stem,
    tokenize,
)


class TestNormalization:
    def test_lowercase(self):
        assert normalize("Paris") == "paris"

    def test_accents_stripped(self):
        assert normalize("solidarité") == "solidarite"
        assert normalize("État") == "etat"

    def test_quotes_and_elisions_trimmed(self):
        assert normalize("l'état'") == "etat"
        assert normalize("d'urgence") == "urgence"


class TestStemming:
    def test_french_plural(self):
        assert stem("attentats") == stem("attentat")

    def test_french_nominalisation(self):
        assert stem("prolongation") == stem("prolongations")

    def test_short_tokens_untouched(self):
        assert stem("loi") == "loi"

    def test_english_suffixes(self):
        assert stem("working", language="en") == "work"
        assert stem("nations", language="en") == "nation"

    def test_never_shorter_than_four_chars(self):
        assert len(stem("urgences")) >= 4


class TestHashtagsAndMentions:
    def test_extract_hashtags(self):
        assert extract_hashtags("Solidarité #SIA2016 et #Agriculture !") == ["sia2016", "agriculture"]

    def test_extract_mentions(self):
        assert extract_mentions("Bravo @fhollande et @mlepen") == ["fhollande", "mlepen"]

    def test_no_hashtags(self):
        assert extract_hashtags("rien du tout") == []


class TestAnalyzer:
    def test_analyze_returns_all_components(self):
        analyzer = Analyzer()
        analyzed = analyzer.analyze("Je suis à Paris aujourd'hui pour la solidarité #SIA2016 "
                                    "avec @fhollande http://example.org/x")
        assert isinstance(analyzed, AnalyzedText)
        assert "sia2016" in analyzed.hashtags
        assert "fhollande" in analyzed.mentions
        assert analyzed.urls == ("http://example.org/x",)

    def test_stopwords_removed(self):
        analyzer = Analyzer()
        stems = analyzer.stems("je suis pour la solidarité et le travail")
        assert "je" not in stems and "pour" not in stems
        assert any(s.startswith("solidarit") for s in stems)

    def test_hashtags_kept_as_tokens_by_default(self):
        analyzer = Analyzer()
        assert "#sia2016" in analyzer.stems("au salon #SIA2016")

    def test_hashtags_can_be_dropped(self):
        analyzer = Analyzer(keep_hashtags=False)
        assert all(not s.startswith("#") for s in analyzer.stems("au salon #SIA2016"))

    def test_mentions_never_tokenised(self):
        analyzer = Analyzer()
        assert all("fhollande" not in s for s in analyzer.stems("merci @fhollande"))

    def test_numbers_dropped(self):
        analyzer = Analyzer()
        assert "2016" not in analyzer.stems("en 2016 le chomage")

    def test_extra_stopwords(self):
        analyzer = Analyzer(extra_stopwords=frozenset({"solidarite"}))
        assert all(not s.startswith("solidarit") for s in analyzer.stems("la solidarité nationale"))

    def test_english_analyzer(self):
        analyzer = Analyzer(language="en")
        stems = analyzer.stems("The workers are working in the factories")
        assert "the" not in stems
        assert "work" in stems

    def test_tokenize_plain(self):
        assert tokenize("État d'urgence!") == ["etat", "urgence"]

    def test_same_stem_for_singular_plural_in_corpus(self):
        analyzer = Analyzer()
        a = analyzer.stems("les perquisitions abusives")
        b = analyzer.stems("une perquisition abusive")
        assert set(a) & set(b)
