"""Unit tests for MixedResult and execution traces."""

import pytest

from repro.core import ExecutionTrace, MixedResult, SubQueryCall
from repro.errors import MixedQueryError


@pytest.fixture
def result():
    return MixedResult(
        variables=["group", "retweets"],
        rows=[{"group": "left", "retweets": 10},
              {"group": "right", "retweets": 40},
              {"group": "left", "retweets": 10}],
    )


class TestMixedResult:
    def test_len_iter_bool(self, result):
        assert len(result) == 3
        assert bool(result)
        assert len(list(result)) == 3
        assert not MixedResult(variables=["x"])

    def test_column(self, result):
        assert result.column("group") == ["left", "right", "left"]

    def test_unknown_column_raises(self, result):
        with pytest.raises(MixedQueryError):
            result.column("missing")

    def test_distinct(self, result):
        assert len(result.distinct()) == 2

    def test_sorted_by(self, result):
        ordered = result.sorted_by("retweets", descending=True)
        assert ordered.rows[0]["retweets"] == 40

    def test_sorted_handles_none(self):
        r = MixedResult(variables=["x"], rows=[{"x": None}, {"x": 1}])
        assert r.sorted_by("x").rows[0]["x"] == 1

    def test_to_table_renders_all_columns(self, result):
        table = result.to_table()
        assert "group" in table and "retweets" in table and "right" in table

    def test_to_table_truncates(self, result):
        table = result.to_table(max_rows=1)
        assert "more rows" in table

    def test_to_table_truncates_long_values(self):
        r = MixedResult(variables=["t"], rows=[{"t": "x" * 100}])
        assert "..." in r.to_table()


class TestExecutionTrace:
    def test_calls_accounting(self):
        trace = ExecutionTrace(atom_order=["qG", "tw"])
        trace.calls.append(SubQueryCall("qG", "#glue", 0, 5, 0.01))
        trace.calls.append(SubQueryCall("tw", "solr://tweets", 1, 2, 0.02))
        trace.calls.append(SubQueryCall("tw", "solr://tweets", 1, 3, 0.02))
        assert trace.calls_to("solr://tweets") == 2
        assert trace.total_rows_fetched() == 10

    def test_summary_mentions_order_and_calls(self):
        trace = ExecutionTrace(atom_order=["qG", "tw"], stages=[["qG"], ["tw"]],
                               total_seconds=0.1)
        trace.calls.append(SubQueryCall("qG", "#glue", 0, 5, 0.01))
        summary = trace.summary()
        assert "qG -> tw" in summary and "source calls: 1" in summary
