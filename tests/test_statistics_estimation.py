"""Estimation accuracy: q-error bounds of the statistics layer.

Each fixture builds a deliberately *skewed* dataset, computes the true
cardinality of a family of sub-queries, and asserts that the
digest-backed estimate stays within a q-error bound — so estimator
regressions fail loudly instead of silently degrading plans.

q-error is the symmetric ratio ``max(est/actual, actual/est)`` with
both sides floored at 1.
"""

import pytest

from repro.core import (
    FullTextQuery,
    JSONQuery,
    RDFQuery,
    SQLQuery,
    StatisticsCatalog,
)
from repro.core.sources import FullTextSource, JSONSource, RDFSource, RelationalSource
from repro.fulltext.store import FieldConfig, FullTextStore
from repro.json.store import JSONDocumentStore
from repro.rdf import Graph, triple
from repro.relational import Database
from repro.stats.cost import MAX_BIND_BATCH, MIN_BIND_BATCH

pytestmark = pytest.mark.optimizer


def q_error(estimate: float, actual: float) -> float:
    estimate = max(1.0, estimate)
    actual = max(1.0, actual)
    return max(estimate / actual, actual / estimate)


@pytest.fixture
def stats() -> StatisticsCatalog:
    return StatisticsCatalog()


# ---------------------------------------------------------------------------
# Relational: top-k equality + histogram ranges on a skewed column
# ---------------------------------------------------------------------------

class TestRelationalEstimates:
    @pytest.fixture
    def source(self) -> RelationalSource:
        db = Database("skewed")
        rows = []
        # 800 'politics' rows, 150 'sports', 50 spread over 10 rare topics;
        # prices are skewed low: 80% under 100, a long tail up to 1000.
        for i in range(1000):
            if i < 800:
                topic = "politics"
            elif i < 950:
                topic = "sports"
            else:
                topic = f"niche{i % 10}"
            price = (i % 100) + 1 if i < 800 else 100 + (i % 900)
            rows.append({"topic": topic, "price": price, "author": f"a{i % 120}"})
        db.create_table_from_rows("posts", rows)
        return RelationalSource("sql://skewed", db)

    def true_count(self, source, where: str) -> int:
        result = source.database.execute(f"SELECT topic FROM posts WHERE {where}")
        return len(result.rows)

    def test_equality_on_frequent_value_uses_topk(self, stats, source):
        query = SQLQuery("SELECT author AS author FROM posts WHERE topic = 'politics'")
        actual = self.true_count(source, "topic = 'politics'")
        estimate = stats.estimate(source, query)
        assert q_error(estimate, actual) <= 1.5
        # The legacy ad-hoc estimate (rows/10 per WHERE) was off by ~8x.
        assert q_error(source.estimate(query), actual) > 5.0

    def test_equality_on_rare_value(self, stats, source):
        query = SQLQuery("SELECT author AS author FROM posts WHERE topic = 'niche3'")
        actual = self.true_count(source, "topic = 'niche3'")
        estimate = stats.estimate(source, query)
        assert q_error(estimate, actual) <= 4.0

    def test_equality_on_absent_value_estimates_zero(self, stats, source):
        query = SQLQuery("SELECT author AS author FROM posts WHERE topic = 'absent'")
        assert stats.estimate(source, query) == 0.0

    @pytest.mark.parametrize("where", [
        "price < 50", "price < 100", "price >= 500", "price > 900",
    ])
    def test_range_predicates_use_histogram(self, stats, source, where):
        query = SQLQuery(f"SELECT author AS author FROM posts WHERE {where}")
        actual = self.true_count(source, where)
        estimate = stats.estimate(source, query)
        assert q_error(estimate, actual) <= 4.0

    def test_bound_join_key_divides_by_distinct(self, stats, source):
        query = SQLQuery("SELECT author AS author, topic AS topic FROM posts")
        unbound = stats.estimate(source, query)
        bound = stats.estimate(source, query, {"author"})
        assert unbound == 1000.0
        # 120 distinct authors -> about 8.3 rows per binding.
        assert q_error(bound, 1000 / 120) <= 1.5

    def test_unparseable_sql_falls_back_to_wrapper(self, stats, source):
        query = SQLQuery("SELECT author AS author FROM posts "
                         "WHERE topic = 'politics' OR topic = 'sports'")
        assert stats.estimate(source, query) == source.estimate(query)


# ---------------------------------------------------------------------------
# RDF: star join over a skewed property
# ---------------------------------------------------------------------------

class TestRDFEstimates:
    @pytest.fixture
    def source(self) -> RDFSource:
        g = Graph("star")
        # 200 tweets; 160 by one account (skew), the rest spread over 40.
        for i in range(200):
            g.add(triple(f"ttn:T{i}", "rdf:type", "ttn:Tweet"))
            author = "ttn:U0" if i < 160 else f"ttn:U{1 + i % 40}"
            g.add(triple(f"ttn:T{i}", "ttn:postedBy", author))
            if i % 4 == 0:
                g.add(triple(f"ttn:T{i}", "ttn:hasTag", "ttn:Politics"))
        return RDFSource("rdf://star", g)

    def test_star_join_within_bound(self, stats, source):
        query = RDFQuery.from_text(
            "SELECT ?t ?a WHERE { ?t rdf:type ttn:Tweet . ?t ttn:postedBy ?a . "
            "?t ttn:hasTag ttn:Politics }")
        actual = len(source.execute(query))
        estimate = stats.estimate(source, query)
        assert actual == 50
        assert q_error(estimate, actual) <= 4.0

    def test_bound_join_variable_divides_by_distinct(self, stats, source):
        query = RDFQuery.from_text("SELECT ?t ?a WHERE { ?t ttn:postedBy ?a }")
        unbound = stats.estimate(source, query)
        bound = stats.estimate(source, query, {"a"})
        assert unbound == 200.0
        # 41 distinct authors -> about 5 rows per binding.
        assert q_error(bound, 200 / 41) <= 2.0

    def test_empty_pattern_estimates_zero(self, stats, source):
        query = RDFQuery.from_text("SELECT ?t WHERE { ?t ttn:never ?x }")
        assert stats.estimate(source, query) == 0.0


# ---------------------------------------------------------------------------
# Full-text: document frequencies of skewed terms
# ---------------------------------------------------------------------------

class TestFullTextEstimates:
    @pytest.fixture
    def source(self) -> FullTextSource:
        store = FullTextStore("posts", fields=[
            FieldConfig("text", "text"),
            FieldConfig("user.screen_name", "keyword"),
        ], default_field="text")
        for i in range(300):
            word = "election" if i < 240 else "budget"
            store.add({"id": i, "text": f"news about the {word} tonight",
                       "user": {"screen_name": f"u{i % 25}"}})
        return FullTextSource("solr://posts", store)

    def test_frequent_term_df_is_exact(self, stats, source):
        query = FullTextQuery.create("text:election", {"t": "text"})
        actual = source.store.count("text:election")
        assert actual == 240
        assert q_error(stats.estimate(source, query), actual) <= 1.2

    def test_conjunction_of_terms(self, stats, source):
        query = FullTextQuery.create("text:election text:budget", {"t": "text"})
        actual = source.store.count("text:election AND text:budget")
        estimate = stats.estimate(source, query)
        assert actual == 0
        assert estimate <= 1.0

    def test_keyword_field_distinct_counts(self, stats, source):
        query = FullTextQuery.create("*:*", {"id": "user.screen_name", "t": "text"})
        bound = stats.estimate(source, query, {"id"})
        # 25 distinct handles over 300 documents -> 12 per binding.
        assert q_error(bound, 300 / 25) <= 1.5

    def test_known_parameter_value_uses_exact_df(self, stats, source):
        query = FullTextQuery.create("user.screen_name:{id}",
                                     {"t": "text"})
        estimate = stats.estimate(source, query, {"id"}, values={"id": "u0"})
        actual = source.store.count("user.screen_name:u0")
        assert q_error(estimate, actual) <= 1.2


# ---------------------------------------------------------------------------
# JSON: dataguide coverage + path-index postings
# ---------------------------------------------------------------------------

class TestJSONEstimates:
    @pytest.fixture
    def source(self) -> JSONSource:
        store = JSONDocumentStore("tweets")
        for i in range(120):
            doc = {"id": i, "author": f"a{i % 12}",
                   "likes": i % 60,
                   "topic": "politics" if i < 90 else "other"}
            if i % 3 == 0:
                doc["geo"] = {"lat": 48.8, "lon": 2.3}
            store.add(doc)
        return JSONSource("json://tweets", store)

    def test_constant_equality_is_exact(self, stats, source):
        query = JSONQuery.from_text('{ author: ?a, topic: "politics" }')
        actual = len(source.execute(query))
        assert q_error(stats.estimate(source, query), actual) <= 1.2

    def test_dataguide_coverage_for_partial_path(self, stats, source):
        query = JSONQuery.from_text("{ geo.lat: ?lat }")
        actual = len(source.execute(query))
        assert actual == 40
        assert q_error(stats.estimate(source, query), actual) <= 1.5

    def test_range_predicate_uses_index(self, stats, source):
        query = JSONQuery.from_text("{ likes: ?l >= 50 }")
        actual = len(source.execute(query))
        assert q_error(stats.estimate(source, query), actual) <= 2.0

    def test_known_parameter_value_uses_postings(self, stats, source):
        query = JSONQuery.from_text("{ author: {who}, likes: ?l }")
        estimate = stats.estimate(source, query, values={"who": "a3"})
        actual = len(source.execute(query, {"who": "a3"}))
        assert actual == 10
        assert q_error(estimate, actual) <= 1.5


# ---------------------------------------------------------------------------
# Feedback and the batch sizer
# ---------------------------------------------------------------------------

class TestFeedbackAndBatchSize:
    def test_feedback_overrides_estimates_and_bumps_revision(self, stats):
        db = Database("fb")
        db.create_table_from_rows("t", [{"a": i} for i in range(10)])
        source = RelationalSource("sql://fb", db)
        query = SQLQuery("SELECT a AS a FROM t")
        before = stats.revision
        assert stats.estimate(source, query) == 10.0
        assert stats.record(source, query, set(), 123.0)
        assert stats.revision > before
        assert stats.estimate(source, query) == 123.0

    def test_trusted_wrapper_estimate_wins(self, stats):
        db = Database("fb2")
        db.create_table_from_rows("t", [{"a": i} for i in range(10)])

        class Lying(RelationalSource):
            trust_wrapper_estimate = True

            def estimate(self, query, bound_variables=None):
                return 7.0

        assert stats.estimate(Lying("sql://lie", db),
                              SQLQuery("SELECT a AS a FROM t")) == 7.0

    def test_auto_batch_size_is_monotone(self):
        from repro.core.planner import auto_batch_size

        estimates = [0, 1, 2, 8, 64, 256, 1024, 4096, 4097, 10 ** 9, float("inf")]
        sizes = [auto_batch_size(e) for e in estimates]
        assert sizes[0] == sizes[1] == MAX_BIND_BATCH
        assert sizes[-1] == MIN_BIND_BATCH
        assert all(MIN_BIND_BATCH <= s <= MAX_BIND_BATCH for s in sizes)
        # Monotonically non-increasing: no discontinuity anywhere, and in
        # particular inf is not "cheaper" than a merely large estimate.
        assert all(a >= b for a, b in zip(sizes, sizes[1:]))
