"""Unit tests for BGP (conjunctive SPARQL) evaluation and answers over G∞."""

import pytest

from repro.errors import RDFError
from repro.rdf import (
    BGPQuery,
    EvaluationTrace,
    Graph,
    Literal,
    answer_bgp,
    evaluate_ask,
    evaluate_bgp,
    pattern,
    triple,
    uri,
    var,
)


@pytest.fixture
def query_head_of_state():
    return BGPQuery.create(
        head=["id"],
        patterns=[("?x", "ttn:position", "ttn:headOfState"),
                  ("?x", "ttn:twitterAccount", "?id")],
        name="qG",
    )


class TestBGPConstruction:
    def test_empty_body_rejected(self):
        with pytest.raises(RDFError):
            BGPQuery(head=(), patterns=())

    def test_head_variable_must_appear_in_body(self):
        with pytest.raises(RDFError):
            BGPQuery.create(head=["missing"], patterns=[("?x", "ttn:p", "?y")])

    def test_output_variables_default_to_all(self):
        q = BGPQuery.create(head=[], patterns=[("?x", "ttn:p", "?y")])
        assert {v.name for v in q.output_variables()} == {"x", "y"}

    def test_variables_collects_body_variables(self, query_head_of_state):
        assert {v.name for v in query_head_of_state.variables()} == {"x", "id"}

    def test_bind_substitutes_constants(self, query_head_of_state):
        bound = query_head_of_state.bind({var("id"): Literal("fhollande")})
        assert all(var("id") not in p.variables() for p in bound.patterns)


class TestEvaluation:
    def test_single_pattern(self, politics_graph):
        q = BGPQuery.create(head=["n"], patterns=[("?p", "foaf:name", "?n")])
        names = {row[var("n")].value for row in evaluate_bgp(q, politics_graph)}
        assert names == {"François Hollande", "Marine LePen"}

    def test_join_across_patterns(self, politics_graph, query_head_of_state):
        rows = evaluate_bgp(query_head_of_state, politics_graph)
        assert len(rows) == 1
        assert rows[0][var("id")] == Literal("fhollande")

    def test_no_match_returns_empty(self, politics_graph):
        q = BGPQuery.create(head=["x"], patterns=[("?x", "ttn:position", "ttn:senator")])
        assert evaluate_bgp(q, politics_graph) == []

    def test_projection_removes_other_variables(self, politics_graph, query_head_of_state):
        rows = evaluate_bgp(query_head_of_state, politics_graph)
        assert set(rows[0].keys()) == {var("id")}

    def test_duplicate_projections_removed(self, politics_graph):
        q = BGPQuery.create(head=["t"], patterns=[("?p", "rdf:type", "?t"),
                                                  ("?p", "ttn:twitterAccount", "?a")])
        rows = evaluate_bgp(q, politics_graph)
        assert len(rows) == 1  # both politicians project to the same type

    def test_initial_binding_restricts_results(self, politics_graph):
        q = BGPQuery.create(head=["n"], patterns=[("?p", "foaf:name", "?n"),
                                                  ("?p", "ttn:twitterAccount", "?id")])
        rows = evaluate_bgp(q, politics_graph,
                            initial_binding={var("id"): Literal("mlepen")})
        assert [row[var("n")].value for row in rows] == ["Marine LePen"]

    def test_cartesian_product_when_disconnected(self, politics_graph):
        q = BGPQuery.create(head=["a", "b"],
                            patterns=[("?x", "ttn:position", "?a"),
                                      ("?y", "ttn:memberOf", "?b")])
        rows = evaluate_bgp(q, politics_graph)
        assert len(rows) == 4  # 2 positions x 2 parties

    def test_trace_records_pattern_order_and_sizes(self, politics_graph, query_head_of_state):
        trace = EvaluationTrace()
        evaluate_bgp(query_head_of_state, politics_graph, trace=trace)
        assert len(trace.pattern_order) == 2
        assert len(trace.intermediate_sizes) == 2
        # The selective pattern (position = headOfState) is evaluated first.
        assert "headOfState" in str(trace.pattern_order[0])

    def test_ask_true_and_false(self, politics_graph):
        assert evaluate_ask([pattern("?x", "ttn:position", "ttn:headOfState")], politics_graph)
        assert not evaluate_ask([pattern("?x", "ttn:position", "ttn:senator")], politics_graph)


class TestAnswerOverSaturation:
    def test_answer_includes_implicit_types(self, politics_graph, politics_schema):
        politics_graph.add_all(politics_schema.triples())
        q = BGPQuery.create(head=["x"], patterns=[("?x", "rdf:type", "ttn:person")])
        # Plain evaluation misses the implicit types...
        assert evaluate_bgp(q, politics_graph) == []
        # ...the answer (over G∞) finds both politicians.
        rows = answer_bgp(q, politics_graph)
        assert {row[var("x")] for row in rows} == {uri("ttn:POL1"), uri("ttn:POL2")}

    def test_answer_includes_subproperty_inference(self, politics_graph, politics_schema):
        politics_graph.add_all(politics_schema.triples())
        q = BGPQuery.create(head=["x", "y"],
                            patterns=[("?x", "ttn:affiliatedWith", "?y")])
        rows = answer_bgp(q, politics_graph)
        assert len(rows) == 2

    def test_answer_with_external_schema(self, politics_graph, politics_schema):
        q = BGPQuery.create(head=["x"], patterns=[("?x", "rdf:type", "ttn:party")])
        rows = answer_bgp(q, politics_graph, politics_schema)
        # rdfs:range of memberOf types both parties (already typed explicitly too).
        assert len(rows) == 2
