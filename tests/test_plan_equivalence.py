"""Plan-equivalence property: every planner configuration, same answers.

Hypothesis generates random CMQs over a four-model instance (glue RDF,
relational, full-text, JSON) — random atom subsets, orders, constants
and head projections — and every combination of
``cost_based x adaptive x use_bind_joins x digest_sieve x caches`` must
return exactly the result set of the naive reference (everything
materialised, syntactic order, no caches).  This is the harness future
optimizer PRs regress against: a planner change that loses or invents
rows fails here before it ships.
"""

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import MediatorCache, MixedInstance, PlannerOptions
from repro.fulltext.store import FieldConfig, FullTextStore
from repro.json.store import JSONDocumentStore
from repro.rdf import Graph, triple
from repro.relational import Database

pytestmark = pytest.mark.optimizer

HANDLES = [f"u{i}" for i in range(8)]
TOPICS = ["politics", "sports", "culture"]


def build_instance() -> MixedInstance:
    glue = Graph("glue")
    for i, handle in enumerate(HANDLES):
        glue.add(triple(f"ttn:P{i}", "ttn:twitterAccount", handle))
        glue.add(triple(f"ttn:P{i}", "ttn:memberOf", f"ttn:PARTY{i % 3}"))
    database = Database("profiles-db")
    database.create_table_from_rows(
        "profiles", [{"handle": handle, "followers": 100 * (i + 1)}
                     for i, handle in enumerate(HANDLES)])
    store = FullTextStore("posts", fields=[
        FieldConfig("text", "text"),
        FieldConfig("user.screen_name", "keyword"),
    ], default_field="text")
    documents = JSONDocumentStore("tweets")
    for i in range(24):
        handle = HANDLES[i % len(HANDLES)]
        topic = TOPICS[i % len(TOPICS)]
        store.add({"id": i, "text": f"post about {topic} by {handle}",
                   "user": {"screen_name": handle}})
        documents.add({"id": i, "author": handle, "topic": topic,
                       "likes": (i * 7) % 40})
    instance = MixedInstance(graph=glue, name="equiv", entailment=False,
                             cache=MediatorCache())
    instance.register_relational("sql://profiles", database)
    instance.register_fulltext("solr://posts", store)
    instance.register_json("json://tweets", documents)
    return instance


INSTANCE = build_instance()
DIGESTS = INSTANCE.build_digests()

#: The naive reference: no reordering, no bind joins beyond the forced
#: ones (required parameters), no caches, no adaptivity.
REFERENCE = PlannerOptions(cost_based=False, adaptive=False,
                           selectivity_ordering=False, use_bind_joins=False,
                           parallel_stages=False, batch_bind_joins=False,
                           digest_sieve=False, result_cache=False,
                           plan_cache=False)

#: All 32 combinations of the five optimizer-relevant dimensions.
ALL_OPTION_COMBINATIONS = [
    PlannerOptions(cost_based=cost_based, adaptive=adaptive,
                   use_bind_joins=bind, digest_sieve=sieve,
                   result_cache=caches, plan_cache=caches)
    for cost_based in (False, True)
    for adaptive in (False, True)
    for bind in (False, True)
    for sieve in (False, True)
    for caches in (False, True)
]


def atom_pool(builder, topic, threshold, handle):
    """Candidate atoms; each entry: (adds, produces_id, needs_id)."""
    return [
        (lambda b: b.graph("SELECT ?id ?p WHERE { ?x ttn:twitterAccount ?id . "
                           "?x ttn:memberOf ?p }"),
         True, False),
        (lambda b: b.sql("profiles", source="sql://profiles",
                         sql="SELECT handle AS id, followers AS f FROM profiles "
                             f"WHERE followers >= {threshold}"),
         True, False),
        (lambda b: b.sql("lookup", source="sql://profiles",
                         sql="SELECT handle AS id, followers AS f2 "
                             "FROM profiles WHERE handle = {id}"),
         False, True),
        (lambda b: b.fulltext("posts", source="solr://posts",
                              query=f"text:{topic} user.screen_name:{{id}}",
                              fields={"t": "text", "id": "user.screen_name"}),
         False, True),
        (lambda b: b.fulltext("search", source="solr://posts",
                              query=f"text:{topic}",
                              fields={"t2": "text", "id": "user.screen_name"}),
         True, False),
        (lambda b: b.json("tweetJson", source="json://tweets",
                          pattern=f'{{ author: ?id, topic: "{topic}", likes: ?l }}'),
         True, False),
        (lambda b: b.json("likesOf", source="json://tweets",
                          pattern='{ author: {id}, likes: ?l2 }'),
         False, True),
        (lambda b: b.graph(f'SELECT ?id WHERE {{ ?x ttn:twitterAccount "{handle}" . '
                           "?x ttn:twitterAccount ?id }"),
         True, False),
    ]


@st.composite
def cmq_strategy(draw):
    topic = draw(st.sampled_from(TOPICS))
    threshold = draw(st.sampled_from([0, 250, 550]))
    handle = draw(st.sampled_from(HANDLES))
    pool = atom_pool(None, topic, threshold, handle)
    indices = draw(st.lists(st.sampled_from(range(len(pool))), min_size=1,
                            max_size=4, unique=True))
    # Atoms with required parameters need some producer of ?id.
    if not any(pool[i][1] for i in indices):
        indices.append(draw(st.sampled_from(
            [i for i, entry in enumerate(pool) if entry[1]])))
    indices = draw(st.permutations(indices))
    builder = INSTANCE.builder(f"q_{topic}_{threshold}")
    for index in indices:
        pool[index][0](builder)
    return builder.build()


def result_set(result):
    return sorted(tuple(sorted((k, str(v)) for k, v in row.items()))
                  for row in result.rows)


@given(cmq=cmq_strategy())
@settings(max_examples=12, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_every_option_combination_returns_identical_results(cmq):
    reference = result_set(INSTANCE.execute(cmq, options=REFERENCE))
    for options in ALL_OPTION_COMBINATIONS:
        outcome = INSTANCE.execute(cmq, options=options, digests=DIGESTS)
        assert result_set(outcome) == reference, (
            f"{options} diverged from the naive reference on {cmq.name}")


def test_reference_options_really_are_naive():
    plan = INSTANCE.plan(
        (INSTANCE.builder("q", head=["id", "f"])
         .sql("profiles", source="sql://profiles",
              sql="SELECT handle AS id, followers AS f FROM profiles")
         .graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
         .build()),
        REFERENCE)
    assert plan.atom_order() == ["profiles", "qG"]
    assert all(step.mode == "materialize" for step in plan.steps)
