"""Snapshot-isolation property: random delta/query interleavings.

Hypothesis drives random sequences of deltas (triple adds/removes, row
inserts, document adds/removes across all four store kinds) split at a
random cut point, plus a random mixed CMQ.  The property: a catalog
pinned after the prefix observes *exactly* the prefix state —

* its version vector equals the live vector at pin time, per source
  (never a mix of pre- and post-delta versions);
* query results against the pin are identical before and after the
  suffix deltas land, and equal a reference run over an instance built
  from the prefix alone;
* re-pinning an unchanged source returns the *same* frozen wrapper
  (copy-on-write memoisation), while any effective delta moves the
  version strictly forward.
"""

from __future__ import annotations

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.core import MixedInstance, PlannerOptions
from repro.fulltext.store import FieldConfig, FullTextStore
from repro.json.store import JSONDocumentStore
from repro.rdf import Graph, triple
from repro.relational import Database

pytestmark = pytest.mark.stress

HANDLES = [f"u{i}" for i in range(6)]
TOPICS = ["politics", "sports"]

#: Serial, cache-free evaluation so every run is independent.
SERIAL = PlannerOptions(parallel_stages=False, result_cache=False,
                        plan_cache=False)


def build_instance() -> MixedInstance:
    glue = Graph("glue")
    for i, handle in enumerate(HANDLES):
        glue.add(triple(f"ttn:P{i}", "ttn:twitterAccount", handle))
    database = Database("db")
    database.create_table_from_rows(
        "profiles", [{"handle": handle, "followers": 100 * (i + 1)}
                     for i, handle in enumerate(HANDLES)])
    store = FullTextStore("posts", fields=[
        FieldConfig("text", "text"),
        FieldConfig("user.screen_name", "keyword"),
    ], default_field="text")
    documents = JSONDocumentStore("tweets")
    for i in range(10):
        handle = HANDLES[i % len(HANDLES)]
        topic = TOPICS[i % len(TOPICS)]
        store.add({"id": i, "text": f"post about {topic} by {handle}",
                   "user": {"screen_name": handle}})
        documents.add({"id": i, "author": handle, "topic": topic,
                       "likes": i})
    instance = MixedInstance(graph=glue, name="prop", entailment=False,
                             cache=False)
    instance.register_relational("sql://profiles", database)
    instance.register_fulltext("solr://posts", store)
    instance.register_json("json://tweets", documents)
    return instance


def apply_delta(instance: MixedInstance, delta: tuple) -> None:
    kind, payload = delta
    if kind == "rdf_add":
        instance.glue_source.add_triples(
            [triple(f"ttn:D{payload}", "ttn:twitterAccount", f"d{payload}")])
    elif kind == "rdf_remove":
        instance.graph.remove(
            triple(f"ttn:P{payload % len(HANDLES)}", "ttn:twitterAccount",
                   HANDLES[payload % len(HANDLES)]))
    elif kind == "sql_insert":
        instance.source("sql://profiles").database.table("profiles").insert(
            {"handle": f"d{payload}", "followers": payload})
    elif kind == "ft_add":
        instance.source("solr://posts").store.add(
            {"id": f"d{payload}", "text": f"delta post about {TOPICS[payload % 2]}",
             "user": {"screen_name": f"d{payload}"}})
    elif kind == "json_add":
        instance.source("json://tweets").store.add(
            {"id": f"d{payload}", "author": f"d{payload}",
             "topic": TOPICS[payload % 2], "likes": payload})
    elif kind == "json_remove":
        instance.source("json://tweets").store.remove(str(payload % 10))


deltas = st.lists(
    st.tuples(st.sampled_from(["rdf_add", "rdf_remove", "sql_insert",
                               "ft_add", "json_add", "json_remove"]),
              st.integers(min_value=0, max_value=999)),
    min_size=0, max_size=8)


def make_query(instance: MixedInstance, shape: int, topic: str):
    builder = instance.builder(f"prop_{shape}_{topic}")
    if shape == 0:
        builder.graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
        builder.sql("prof", source="sql://profiles",
                    sql="SELECT handle AS id, followers AS f FROM profiles "
                        "WHERE handle = {id}")
    elif shape == 1:
        builder.graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
        builder.json("tweets", source="json://tweets",
                     pattern=f'{{ author: ?id, topic: "{topic}", likes: ?l }}')
    else:
        builder.graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
        builder.fulltext("posts", source="solr://posts",
                         query="user.screen_name:{id}",
                         fields={"t": "text", "id": "user.screen_name"})
    return builder.build()


def result_set(result):
    return sorted(tuple(sorted((k, str(v)) for k, v in row.items()))
                  for row in result.rows)


@given(prefix=deltas, suffix=deltas,
       shape=st.integers(min_value=0, max_value=2),
       topic=st.sampled_from(TOPICS))
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_snapshot_isolation_under_random_interleavings(prefix, suffix, shape, topic):
    instance = build_instance()
    query = make_query(instance, shape, topic)
    for delta in prefix:
        apply_delta(instance, delta)

    # Reference: what the prefix state answers, computed *before* any
    # suffix delta exists anywhere.
    live_versions = {uri: instance.source(uri).version()
                     for uri in instance.source_uris()}
    live_versions["#glue"] = instance.glue_source.version()
    pinned = instance.pin()

    # The pinned vector is exactly the live vector at pin time — never a
    # mix of pre- and post-delta versions.
    assert pinned.versions == live_versions

    before = result_set(pinned.execute(instance, query, options=SERIAL,
                                       cache=False))

    for delta in suffix:
        apply_delta(instance, delta)

    # The pin is immune to the suffix: identical rows, identical vector.
    after = result_set(pinned.execute(instance, query, options=SERIAL,
                                      cache=False))
    assert after == before
    assert pinned.versions == live_versions

    # Re-pinning now reflects the suffix; an unchanged source hands back
    # the same frozen wrapper (memoised copy-on-write), a changed one
    # moves strictly forward.
    repinned = instance.pin()
    for uri in live_versions:
        source = (instance.glue_source if uri == "#glue"
                  else instance.source(uri))
        assert repinned.versions[uri] == source.version()
        assert repinned.versions[uri] >= live_versions[uri]
        if repinned.versions[uri] == live_versions[uri]:
            old = pinned.glue if uri == "#glue" else pinned.sources[uri]
            new = repinned.glue if uri == "#glue" else repinned.sources[uri]
            assert new is old


@given(ops=deltas)
@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_versions_move_strictly_forward(ops):
    """Every effective delta bumps its store's version; no-ops do not
    roll anything back (monotonicity the cache keys depend on)."""
    instance = build_instance()
    uris = list(instance.source_uris()) + ["#glue"]

    def vector():
        out = {}
        for uri in uris:
            source = (instance.glue_source if uri == "#glue"
                      else instance.source(uri))
            out[uri] = source.version()
        return out

    previous = vector()
    for delta in ops:
        apply_delta(instance, delta)
        current = vector()
        for uri in uris:
            assert current[uri] >= previous[uri]
        previous = current
