"""Unit tests for the triple store and its pattern-matching access paths."""

import pytest

from repro.rdf import Graph, Literal, pattern, triple, uri, var
from repro.rdf.terms import Variable


@pytest.fixture
def graph():
    g = Graph("test")
    g.add(triple("ttn:a", "ttn:knows", "ttn:b"))
    g.add(triple("ttn:a", "ttn:knows", "ttn:c"))
    g.add(triple("ttn:b", "ttn:knows", "ttn:c"))
    g.add(triple("ttn:a", "foaf:name", "Alice"))
    g.add(triple("ttn:b", "foaf:name", "Bob"))
    g.add(triple("ttn:a", "rdf:type", "ttn:person"))
    return g


class TestMutation:
    def test_add_returns_true_for_new_triple(self):
        g = Graph()
        assert g.add(triple("ttn:x", "ttn:p", "ttn:y")) is True

    def test_add_duplicate_returns_false(self, graph):
        assert graph.add(triple("ttn:a", "ttn:knows", "ttn:b")) is False
        assert len(graph) == 6

    def test_add_all_counts_new_triples(self, graph):
        added = graph.add_all([triple("ttn:a", "ttn:knows", "ttn:b"),
                               triple("ttn:c", "ttn:knows", "ttn:a")])
        assert added == 1

    def test_remove_existing(self, graph):
        t = triple("ttn:a", "ttn:knows", "ttn:b")
        assert graph.remove(t) is True
        assert t not in graph
        assert len(graph) == 5

    def test_remove_missing_returns_false(self, graph):
        assert graph.remove(triple("ttn:z", "ttn:p", "ttn:z")) is False

    def test_clear(self, graph):
        graph.clear()
        assert len(graph) == 0

    def test_removed_triple_not_matched(self, graph):
        t = triple("ttn:a", "foaf:name", "Alice")
        graph.remove(t)
        assert list(graph.match(pattern("ttn:a", "foaf:name", "?n"))) == []


class TestMatching:
    def test_match_fully_bound(self, graph):
        matches = list(graph.match(pattern("ttn:a", "ttn:knows", "ttn:b")))
        assert len(matches) == 1

    def test_match_by_subject_predicate(self, graph):
        matches = list(graph.match(pattern("ttn:a", "ttn:knows", "?o")))
        assert {m.obj for m in matches} == {uri("ttn:b"), uri("ttn:c")}

    def test_match_by_predicate_object(self, graph):
        matches = list(graph.match(pattern("?s", "ttn:knows", "ttn:c")))
        assert {m.subject for m in matches} == {uri("ttn:a"), uri("ttn:b")}

    def test_match_by_predicate_only(self, graph):
        assert len(list(graph.match(pattern("?s", "ttn:knows", "?o")))) == 3

    def test_match_by_subject_only(self, graph):
        assert len(list(graph.match(pattern("ttn:a", "?p", "?o")))) == 4

    def test_match_by_object_only(self, graph):
        matches = list(graph.match(pattern("?s", "?p", "ttn:c")))
        assert len(matches) == 2

    def test_match_all_variables(self, graph):
        assert len(list(graph.match(pattern("?s", "?p", "?o")))) == len(graph)

    def test_match_literal_object(self, graph):
        matches = list(graph.match(pattern("?s", "foaf:name", Literal("Alice"))))
        assert [m.subject for m in matches] == [uri("ttn:a")]

    def test_repeated_variable_constrains_match(self):
        g = Graph()
        g.add(triple("ttn:a", "ttn:knows", "ttn:a"))
        g.add(triple("ttn:a", "ttn:knows", "ttn:b"))
        same = Variable("x")
        matches = list(g.match(pattern(same, "ttn:knows", same)))
        assert len(matches) == 1
        assert matches[0].subject == matches[0].obj


class TestCounting:
    def test_count_by_predicate(self, graph):
        assert graph.count(pattern("?s", "ttn:knows", "?o")) == 3

    def test_count_subject_predicate(self, graph):
        assert graph.count(pattern("ttn:a", "ttn:knows", "?o")) == 2

    def test_count_all(self, graph):
        assert graph.count(pattern("?s", "?p", "?o")) == 6

    def test_count_missing(self, graph):
        assert graph.count(pattern("ttn:z", "ttn:knows", "?o")) == 0


class TestIntrospection:
    def test_predicates(self, graph):
        assert uri("ttn:knows") in graph.predicates()

    def test_value_returns_one_object(self, graph):
        assert graph.value(uri("ttn:a"), uri("foaf:name")) == Literal("Alice")

    def test_value_missing_returns_none(self, graph):
        assert graph.value(uri("ttn:z"), uri("foaf:name")) is None

    def test_resources_of_type(self, graph):
        assert graph.resources_of_type(uri("ttn:person")) == {uri("ttn:a")}

    def test_predicate_counts(self, graph):
        counts = graph.predicate_counts()
        assert counts[uri("ttn:knows")] == 3
        assert counts[uri("foaf:name")] == 2

    def test_literals(self, graph):
        assert Literal("Alice") in graph.literals()

    def test_union_is_new_graph(self, graph):
        other = Graph("other", [triple("ttn:z", "foaf:name", "Zoe")])
        merged = graph.union(other)
        assert len(merged) == len(graph) + 1
        assert len(graph) == 6

    def test_copy_is_independent(self, graph):
        clone = graph.copy()
        clone.add(triple("ttn:new", "foaf:name", "New"))
        assert len(clone) == len(graph) + 1

    def test_terms_contains_all_positions(self, graph):
        terms = graph.terms()
        assert uri("ttn:a") in terms and uri("ttn:knows") in terms


class TestIndexPruning:
    """Regression: add/remove churn must not leak empty index buckets."""

    @staticmethod
    def _bucket_count(index):
        return len(index), sum(len(inner) for inner in index.values())

    def test_remove_prunes_emptied_buckets(self):
        g = Graph()
        t = triple("ttn:x", "ttn:p", "ttn:y")
        g.add(t)
        g.remove(t)
        assert len(g._spo) == 0
        assert len(g._pos) == 0
        assert len(g._osp) == 0

    def test_churn_keeps_indexes_bounded(self):
        g = Graph()
        keep = triple("ttn:keep", "ttn:p", "ttn:kept")
        g.add(keep)
        for i in range(500):
            t = triple(f"ttn:s{i}", f"ttn:p{i}", f"ttn:o{i}")
            g.add(t)
            g.remove(t)
        assert self._bucket_count(g._spo) == (1, 1)
        assert self._bucket_count(g._pos) == (1, 1)
        assert self._bucket_count(g._osp) == (1, 1)
        assert keep in g

    def test_partial_removal_keeps_sibling_entries(self, graph):
        graph.remove(triple("ttn:a", "ttn:knows", "ttn:b"))
        # ttn:a still knows ttn:c through the same (subject, predicate) bucket.
        assert graph.objects(subject=uri("ttn:a"), predicate=uri("ttn:knows")) \
            == {uri("ttn:c")}

    def test_remove_all(self, graph):
        removed = graph.remove_all([triple("ttn:a", "ttn:knows", "ttn:b"),
                                    triple("ttn:missing", "ttn:p", "ttn:o")])
        assert removed == 1


class TestVersionCounters:
    def test_version_bumps_on_effective_mutations_only(self):
        g = Graph()
        t = triple("ttn:x", "ttn:p", "ttn:y")
        assert g.version == 0
        g.add(t)
        assert g.version == 1 and g.additions == 1
        g.add(t)  # duplicate: no bump
        assert g.version == 1
        g.remove(t)
        assert g.version == 2 and g.removals == 1
        g.remove(t)  # absent: no bump
        assert g.version == 2

    def test_equal_size_mutation_changes_version(self):
        g = Graph()
        g.add(triple("ttn:x", "ttn:p", "ttn:y"))
        before = g.version
        g.remove(triple("ttn:x", "ttn:p", "ttn:y"))
        g.add(triple("ttn:x", "ttn:p", "ttn:z"))
        assert len(g) == 1
        assert g.version > before

    def test_clear_bumps_version(self):
        g = Graph()
        g.add(triple("ttn:x", "ttn:p", "ttn:y"))
        before = g.version
        g.clear()
        assert g.version > before
        g.clear()  # already empty: no bump
        assert g.version == before + 1


class TestSubjectsObjectsFromIndexes:
    """`subjects()`/`objects()` answer straight from the permutation indexes."""

    def test_subjects_unconstrained(self, graph):
        assert graph.subjects() == {uri("ttn:a"), uri("ttn:b")}

    def test_subjects_by_predicate(self, graph):
        assert graph.subjects(predicate=uri("ttn:knows")) == {uri("ttn:a"), uri("ttn:b")}

    def test_subjects_by_object(self, graph):
        assert graph.subjects(obj=uri("ttn:c")) == {uri("ttn:a"), uri("ttn:b")}

    def test_subjects_by_predicate_and_object(self, graph):
        assert graph.subjects(predicate=uri("ttn:knows"), obj=uri("ttn:b")) \
            == {uri("ttn:a")}

    def test_objects_unconstrained(self, graph):
        assert uri("ttn:c") in graph.objects()
        assert Literal("Alice") in graph.objects()

    def test_objects_by_subject(self, graph):
        assert graph.objects(subject=uri("ttn:b")) \
            == {uri("ttn:c"), Literal("Bob")}

    def test_objects_by_predicate(self, graph):
        assert graph.objects(predicate=uri("foaf:name")) \
            == {Literal("Alice"), Literal("Bob")}

    def test_objects_by_subject_and_predicate(self, graph):
        assert graph.objects(subject=uri("ttn:a"), predicate=uri("ttn:knows")) \
            == {uri("ttn:b"), uri("ttn:c")}

    def test_results_reflect_removals(self, graph):
        graph.remove(triple("ttn:b", "ttn:knows", "ttn:c"))
        graph.remove(triple("ttn:b", "foaf:name", "Bob"))
        assert graph.subjects() == {uri("ttn:a")}
        assert uri("ttn:b") not in graph.subjects(predicate=uri("ttn:knows"))

    def test_returned_sets_are_copies(self, graph):
        subjects = graph.subjects(predicate=uri("ttn:knows"))
        subjects.clear()
        assert graph.subjects(predicate=uri("ttn:knows"))
