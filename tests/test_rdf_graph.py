"""Unit tests for the triple store and its pattern-matching access paths."""

import pytest

from repro.rdf import Graph, Literal, pattern, triple, uri, var
from repro.rdf.terms import Variable


@pytest.fixture
def graph():
    g = Graph("test")
    g.add(triple("ttn:a", "ttn:knows", "ttn:b"))
    g.add(triple("ttn:a", "ttn:knows", "ttn:c"))
    g.add(triple("ttn:b", "ttn:knows", "ttn:c"))
    g.add(triple("ttn:a", "foaf:name", "Alice"))
    g.add(triple("ttn:b", "foaf:name", "Bob"))
    g.add(triple("ttn:a", "rdf:type", "ttn:person"))
    return g


class TestMutation:
    def test_add_returns_true_for_new_triple(self):
        g = Graph()
        assert g.add(triple("ttn:x", "ttn:p", "ttn:y")) is True

    def test_add_duplicate_returns_false(self, graph):
        assert graph.add(triple("ttn:a", "ttn:knows", "ttn:b")) is False
        assert len(graph) == 6

    def test_add_all_counts_new_triples(self, graph):
        added = graph.add_all([triple("ttn:a", "ttn:knows", "ttn:b"),
                               triple("ttn:c", "ttn:knows", "ttn:a")])
        assert added == 1

    def test_remove_existing(self, graph):
        t = triple("ttn:a", "ttn:knows", "ttn:b")
        assert graph.remove(t) is True
        assert t not in graph
        assert len(graph) == 5

    def test_remove_missing_returns_false(self, graph):
        assert graph.remove(triple("ttn:z", "ttn:p", "ttn:z")) is False

    def test_clear(self, graph):
        graph.clear()
        assert len(graph) == 0

    def test_removed_triple_not_matched(self, graph):
        t = triple("ttn:a", "foaf:name", "Alice")
        graph.remove(t)
        assert list(graph.match(pattern("ttn:a", "foaf:name", "?n"))) == []


class TestMatching:
    def test_match_fully_bound(self, graph):
        matches = list(graph.match(pattern("ttn:a", "ttn:knows", "ttn:b")))
        assert len(matches) == 1

    def test_match_by_subject_predicate(self, graph):
        matches = list(graph.match(pattern("ttn:a", "ttn:knows", "?o")))
        assert {m.obj for m in matches} == {uri("ttn:b"), uri("ttn:c")}

    def test_match_by_predicate_object(self, graph):
        matches = list(graph.match(pattern("?s", "ttn:knows", "ttn:c")))
        assert {m.subject for m in matches} == {uri("ttn:a"), uri("ttn:b")}

    def test_match_by_predicate_only(self, graph):
        assert len(list(graph.match(pattern("?s", "ttn:knows", "?o")))) == 3

    def test_match_by_subject_only(self, graph):
        assert len(list(graph.match(pattern("ttn:a", "?p", "?o")))) == 4

    def test_match_by_object_only(self, graph):
        matches = list(graph.match(pattern("?s", "?p", "ttn:c")))
        assert len(matches) == 2

    def test_match_all_variables(self, graph):
        assert len(list(graph.match(pattern("?s", "?p", "?o")))) == len(graph)

    def test_match_literal_object(self, graph):
        matches = list(graph.match(pattern("?s", "foaf:name", Literal("Alice"))))
        assert [m.subject for m in matches] == [uri("ttn:a")]

    def test_repeated_variable_constrains_match(self):
        g = Graph()
        g.add(triple("ttn:a", "ttn:knows", "ttn:a"))
        g.add(triple("ttn:a", "ttn:knows", "ttn:b"))
        same = Variable("x")
        matches = list(g.match(pattern(same, "ttn:knows", same)))
        assert len(matches) == 1
        assert matches[0].subject == matches[0].obj


class TestCounting:
    def test_count_by_predicate(self, graph):
        assert graph.count(pattern("?s", "ttn:knows", "?o")) == 3

    def test_count_subject_predicate(self, graph):
        assert graph.count(pattern("ttn:a", "ttn:knows", "?o")) == 2

    def test_count_all(self, graph):
        assert graph.count(pattern("?s", "?p", "?o")) == 6

    def test_count_missing(self, graph):
        assert graph.count(pattern("ttn:z", "ttn:knows", "?o")) == 0


class TestIntrospection:
    def test_predicates(self, graph):
        assert uri("ttn:knows") in graph.predicates()

    def test_value_returns_one_object(self, graph):
        assert graph.value(uri("ttn:a"), uri("foaf:name")) == Literal("Alice")

    def test_value_missing_returns_none(self, graph):
        assert graph.value(uri("ttn:z"), uri("foaf:name")) is None

    def test_resources_of_type(self, graph):
        assert graph.resources_of_type(uri("ttn:person")) == {uri("ttn:a")}

    def test_predicate_counts(self, graph):
        counts = graph.predicate_counts()
        assert counts[uri("ttn:knows")] == 3
        assert counts[uri("foaf:name")] == 2

    def test_literals(self, graph):
        assert Literal("Alice") in graph.literals()

    def test_union_is_new_graph(self, graph):
        other = Graph("other", [triple("ttn:z", "foaf:name", "Zoe")])
        merged = graph.union(other)
        assert len(merged) == len(graph) + 1
        assert len(graph) == 6

    def test_copy_is_independent(self, graph):
        clone = graph.copy()
        clone.add(triple("ttn:new", "foaf:name", "New"))
        assert len(clone) == len(graph) + 1

    def test_terms_contains_all_positions(self, graph):
        terms = graph.terms()
        assert uri("ttn:a") in terms and uri("ttn:knows") in terms
