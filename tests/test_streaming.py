"""Streaming ingestion: delta journals, cache repair, standing queries.

Covers the version-churn fixes (one ingest batch = ONE version bump per
store), the delta-join repair of version-orphaned cache entries
(`repro.cache.repair`) — including a hypothesis property test that a
repaired entry equals a cold re-execution across all four data models
under random insert/remove interleavings — and the standing-query
registry's push deltas against a periodic full re-run.
"""

from __future__ import annotations

import time
from collections import Counter

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.cache.lru import CacheStats
from repro.cache.repair import RepairEngine
from repro.cache.results import CachedSource, SubQueryResultCache
from repro.core import MixedInstance
from repro.core.deltas import DeltaJournal, INSERT, REMOVE, UPSERT
from repro.core.sources import (
    FullTextQuery,
    FullTextSource,
    JSONQuery,
    JSONSource,
    RDFQuery,
    RDFSource,
    RelationalSource,
    SQLQuery,
)
from repro.fulltext.store import FieldConfig, FullTextStore
from repro.json.store import JSONDocumentStore
from repro.rdf import Graph, triple
from repro.relational import Database
from repro.service import MediatorService, ServiceConfig

pytestmark = pytest.mark.streaming


def _fp(row: dict) -> tuple:
    return tuple(sorted(row.items()))


def _multiset(rows: list[dict]) -> Counter:
    return Counter(_fp(row) for row in rows)


def _proxy(source):
    cache = SubQueryResultCache()
    engine = RepairEngine(cache)
    stats = CacheStats()
    return CachedSource(source, cache, stats=stats, repair=engine), engine, stats


# ---------------------------------------------------------------------------
# One ingest batch = ONE version bump (the version-churn bugfixes)
# ---------------------------------------------------------------------------

class TestBatchVersionBumps:
    def test_json_add_all_bumps_once(self):
        store = JSONDocumentStore("docs")
        before = store.version
        store.add_all([{"id": str(i), "v": i} for i in range(50)])
        assert store.version == before + 1
        records = store.deltas_since(before)
        assert len(records) == 1 and records[0].kind == INSERT
        assert len(records[0].items) == 50

    def test_json_upsert_bumps_once_and_keeps_accelerator(self):
        store = JSONDocumentStore("docs")
        store.add_all([{"id": str(i), "v": i} for i in range(10)])
        store.encoding_view()  # build the accelerator
        before = store.version
        store.add({"id": "3", "v": 99})  # upsert through add()
        assert store.version == before + 1
        records = store.deltas_since(before)
        assert [r.kind for r in records] == [UPSERT]
        # The accelerator survived the upsert (removals drop it, upserts
        # must not) and serves the updated value.
        view = store.encoding_view()
        assert view is not None
        assert store.get("3")["v"] == 99

    def test_database_insert_statement_bumps_once(self):
        db = Database("d")
        db.execute("CREATE TABLE t (a INTEGER, b TEXT)")
        before = db.version
        db.execute("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y'), (3, 'z')")
        assert db.version == before + 1
        records = db.deltas_since(before)
        assert len(records) == 1 and records[0].kind == INSERT
        assert len(records[0].items) == 3 and records[0].scope == "t"

    def test_graph_add_all_bumps_once(self):
        graph = Graph("g")
        before = graph.version
        added = graph.add_all([triple(f"ttn:S{i}", "ttn:p", i) for i in range(20)])
        assert added == 20
        assert graph.version == before + 1
        records = graph.deltas_since(before)
        assert len(records) == 1 and records[0].kind == INSERT
        assert len(records[0].items) == 20

    def test_graph_noop_batch_does_not_bump(self):
        graph = Graph("g")
        graph.add(triple("ttn:S", "ttn:p", 1))
        before = graph.version
        assert graph.add_all([triple("ttn:S", "ttn:p", 1)]) == 0
        assert graph.version == before

    def test_fulltext_add_all_bumps_once(self):
        store = FullTextStore("ft", fields=[FieldConfig("text", "text")])
        before = store.version
        store.add_all([{"id": i, "text": f"doc {i}"} for i in range(30)])
        assert store.version == before + 1
        records = store.deltas_since(before)
        assert len(records) == 1 and len(records[0].items) == 30

    def test_fulltext_upsert_bumps_once(self):
        store = FullTextStore("ft", fields=[FieldConfig("text", "text")])
        store.add({"id": 1, "text": "first"})
        before = store.version
        store.add({"id": 1, "text": "second"})
        assert store.version == before + 1
        assert [r.kind for r in store.deltas_since(before)] == [UPSERT]


# ---------------------------------------------------------------------------
# Delta journal chain soundness
# ---------------------------------------------------------------------------

class TestDeltaJournal:
    def test_chain_with_gap_returns_none(self):
        journal = DeltaJournal(capacity=4)
        for v in range(8):
            journal.record(v, v + 1, INSERT, (v,))
        # Versions 0..4 fell off the ring: the chain from 0 has a gap.
        assert journal.since(0, 8) is None
        chain = journal.since(4, 8)
        assert chain is not None and [r.pre_version for r in chain] == [4, 5, 6, 7]

    def test_gap_falls_back_to_plain_miss_with_correct_rows(self):
        store = JSONDocumentStore("docs")
        store._journal = DeltaJournal(capacity=2)  # tiny history
        store.add_all([{"id": "0", "v": 0}])
        source = JSONSource("json://d", store)
        proxy, engine, _ = _proxy(source)
        query = JSONQuery.from_text('{"v": ?v}')
        proxy.execute(query)
        for i in range(1, 5):  # 4 bumps > capacity: chain breaks
            store.add({"id": str(i), "v": i})
        warm = proxy.execute(query)
        assert _multiset(warm) == _multiset(source.execute(query))
        assert engine.stats.fallbacks.get("no_journal", 0) == 1


# ---------------------------------------------------------------------------
# Repaired entry == cold re-execution (hypothesis, all four models)
# ---------------------------------------------------------------------------

_OPS = st.lists(
    st.tuples(st.sampled_from(["insert", "remove", "upsert"]),
              st.integers(min_value=0, max_value=19)),
    min_size=1, max_size=12)


def _check(proxy, source, query, bindings=None):
    warm = proxy.execute(query, dict(bindings or {}))
    cold = source.execute(query, dict(bindings or {}))
    assert _multiset(warm) == _multiset(cold)


class TestRepairedEqualsCold:
    @given(ops=_OPS)
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_json(self, ops):
        store = JSONDocumentStore("docs")
        store.add_all([{"id": str(i), "k": i % 3, "v": i} for i in range(8)])
        source = JSONSource("json://docs", store)
        proxy, _, _ = _proxy(source)
        query = JSONQuery.from_text('{"k": ?k, "v": ?v}')
        _check(proxy, source, query)
        counter = 100
        for op, i in ops:
            if op == "insert":
                counter += 1
                store.add({"id": str(counter), "k": counter % 3, "v": counter})
            elif op == "upsert":
                store.add({"id": str(i), "k": i % 3, "v": 1000 + i})
            else:
                store.remove(str(i))
            _check(proxy, source, query)

    @given(ops=_OPS)
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_rdf(self, ops):
        graph = Graph("g")
        for i in range(8):
            graph.add(triple(f"ttn:S{i}", "ttn:handle", f"h{i % 3}"))
            graph.add(triple(f"ttn:S{i}", "ttn:score", i))
        source = RDFSource("rdf://g", graph)
        proxy, _, _ = _proxy(source)
        query = RDFQuery.from_text(
            "SELECT ?h ?s WHERE { ?x ttn:handle ?h . ?x ttn:score ?s }")
        bound = RDFQuery.from_text(
            "SELECT ?s WHERE { ?x ttn:handle ?h . ?x ttn:score ?s }")
        _check(proxy, source, query)
        _check(proxy, source, bound, {"h": "h1"})
        counter = 100
        for op, i in ops:
            if op == "remove":
                graph.remove(triple(f"ttn:S{i}", "ttn:score", i))
            else:  # insert and upsert both add fresh triples
                counter += 1
                graph.add_all([
                    triple(f"ttn:S{counter}", "ttn:handle", f"h{counter % 3}"),
                    triple(f"ttn:S{counter}", "ttn:score", counter)])
            _check(proxy, source, query)
            _check(proxy, source, bound, {"h": "h1"})

    @given(ops=_OPS)
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_fulltext(self, ops):
        store = FullTextStore("ft", fields=[
            FieldConfig("text", "text"), FieldConfig("tag", "keyword")])
        store.add_all([{"id": i, "text": f"alpha doc {i}", "tag": f"t{i % 3}"}
                       for i in range(6)])
        source = FullTextSource("solr://ft", store)
        proxy, _, _ = _proxy(source)
        query = FullTextQuery(query_template="alpha",
                              output_fields=(("tag", "tag"),), limit=None)
        _check(proxy, source, query)
        counter = 100
        for op, i in ops:
            if op == "insert":
                counter += 1
                store.add({"id": counter, "text": "alpha fresh",
                           "tag": f"t{counter % 3}"})
            elif op == "upsert":
                store.add({"id": i, "text": "alpha updated", "tag": f"t{i % 3}"})
            else:
                store.remove(str(i))
            _check(proxy, source, query)

    @given(batches=st.lists(st.integers(min_value=1, max_value=5),
                            min_size=1, max_size=6))
    @settings(max_examples=40, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_sql(self, batches):
        # Tables are append-only: the stream is a sequence of insert
        # batches (each one statement, hence one bump).
        db = Database("d")
        db.execute("CREATE TABLE t (k INTEGER, v TEXT)")
        db.execute("INSERT INTO t (k, v) VALUES (0, 'seed'), (1, 'seed')")
        source = RelationalSource("sql://d", db)
        proxy, engine, _ = _proxy(source)
        query = SQLQuery(sql="SELECT k AS k, v AS v FROM t")
        bound = SQLQuery(sql="SELECT v AS v FROM t WHERE k = {k}")
        _check(proxy, source, query)
        _check(proxy, source, bound, {"k": 1})
        counter = 10
        for size in batches:
            rows = ", ".join(f"({counter + j}, 'b{counter + j}')"
                             for j in range(size))
            counter += size
            db.execute(f"INSERT INTO t (k, v) VALUES {rows}")
            _check(proxy, source, query)
            _check(proxy, source, bound, {"k": 1})
        assert engine.stats.repaired > 0


# ---------------------------------------------------------------------------
# Warm-cache hit rate under a write stream
# ---------------------------------------------------------------------------

class TestWarmCacheUnderWrites:
    def test_write_stream_keeps_hit_rate(self):
        glue = Graph("glue")
        for handle, dept in [("fh", "75"), ("ml", "62")]:
            glue.add(triple(f"ttn:U_{handle}", "ttn:twitterAccount", handle))
            glue.add(triple(f"ttn:U_{handle}", "ttn:deptCode", dept))
        db = Database("insee")
        db.create_table_from_rows("unemployment", [
            {"dept_code": "75", "rate": 7.5},
            {"dept_code": "62", "rate": 12.1},
        ])
        inst = MixedInstance(graph=glue, name="stream", entailment=False)
        inst.register_relational("sql://insee", db)
        cmq = (inst.builder("q", head=["dept", "rate"])
               .graph("SELECT ?dept WHERE { ?x ttn:deptCode ?dept }")
               .sql("stats", source="sql://insee",
                    sql="SELECT dept_code AS dept, rate AS rate "
                        "FROM unemployment WHERE dept_code = {dept}")
               .build())
        inst.execute(cmq)  # cold
        for i in range(10):
            db.execute("INSERT INTO unemployment (dept_code, rate) "
                       f"VALUES ('{90 + i}', {i}.5)")
            result = inst.execute(cmq)
            assert result.trace.cache_misses == 0, f"write {i} poisoned the cache"
            assert result.trace.cache_hits > 0
        repair = inst.cache.repair.stats.as_dict()
        assert repair["repaired"] > 0 and not repair["fallbacks"]


# ---------------------------------------------------------------------------
# Standing queries
# ---------------------------------------------------------------------------

class TestStandingQueries:
    def _wait(self, predicate, timeout=5.0):
        deadline = time.time() + timeout
        while not predicate() and time.time() < deadline:
            time.sleep(0.02)
        assert predicate(), "condition not reached before timeout"

    def test_deltas_match_periodic_full_rerun(self):
        glue = Graph("glue")
        glue.add(triple("ttn:U_fh", "ttn:deptCode", "75"))
        glue.add(triple("ttn:U_ml", "ttn:deptCode", "62"))
        db = Database("insee")
        db.create_table_from_rows("unemployment", [
            {"dept_code": "75", "rate": 7.5},
            {"dept_code": "62", "rate": 12.1},
        ])
        inst = MixedInstance(graph=glue, name="standing", entailment=False)
        inst.register_relational("sql://insee", db)
        with MediatorService(inst, ServiceConfig(workers=2)) as service:
            cmq = (inst.builder("watch", head=["dept", "rate"])
                   .graph("SELECT ?dept WHERE { ?x ttn:deptCode ?dept }")
                   .sql("stats", source="sql://insee",
                        sql="SELECT dept_code AS dept, rate AS rate "
                            "FROM unemployment WHERE dept_code = {dept}")
                   .build())
            deltas = []
            sub = service.register_standing(cmq, deltas.append)
            baseline = _multiset(sub.rows)
            assert len(sub.rows) == 2 and not deltas

            glue.add(triple("ttn:U_zz", "ttn:deptCode", "33"))
            db.execute("INSERT INTO unemployment (dept_code, rate) "
                       "VALUES ('33', 9.0)")
            self._wait(lambda: len(deltas) >= 1)

            # Applying the pushed deltas to the baseline reproduces a
            # full re-run exactly (multiset semantics).
            state = Counter(baseline)
            for delta in deltas:
                state.update(_fp(r) for r in delta.added)
                state.subtract(_fp(r) for r in delta.removed)
            rerun = service.execute(cmq)
            assert +state == _multiset(rerun.rows) == _multiset(sub.rows)
            assert any(_fp({"dept": "33", "rate": 9.0}) == _fp(r)
                       for d in deltas for r in d.added)

            # An irrelevant write refreshes but delivers nothing.
            seen = len(deltas)
            glue.add(triple("ttn:U_qq", "ttn:other", "x"))
            refreshes = sub.refreshes
            self._wait(lambda: sub.refreshes > refreshes)
            assert len(deltas) == seen

            stats = service.stats()
            assert stats["standing"]["subscriptions"] == 1
            assert stats["standing"]["deliveries"] >= 1
            assert stats["repair"]["repaired"] > 0

            sub.cancel()
            assert service.stats()["standing"]["subscriptions"] == 0

    def test_callback_error_does_not_stop_refreshing(self):
        glue = Graph("glue")
        glue.add(triple("ttn:A", "ttn:p", 1))
        inst = MixedInstance(graph=glue, name="cb", entailment=False)
        with MediatorService(inst, ServiceConfig(workers=1)) as service:
            cmq = (inst.builder("w", head=["x", "v"])
                   .graph("SELECT ?x ?v WHERE { ?x ttn:p ?v }")
                   .build())
            calls = []

            def explode(delta):
                calls.append(delta)
                raise RuntimeError("subscriber bug")

            sub = service.register_standing(cmq, explode)
            glue.add(triple("ttn:B", "ttn:p", 2))
            self._wait(lambda: len(calls) >= 1)
            glue.add(triple("ttn:C", "ttn:p", 3))
            self._wait(lambda: len(calls) >= 2)
            assert sub.callback_errors >= 1
            assert len(sub.rows) == 3


# ---------------------------------------------------------------------------
# Statistics absorption
# ---------------------------------------------------------------------------

class TestStatisticsAbsorption:
    def test_column_summary_absorbs_insert_only_deltas(self):
        from repro.stats.catalog import StatisticsCatalog

        db = Database("d")
        db.create_table_from_rows("t", [{"c": i, "s": f"v{i}"}
                                        for i in range(100)])
        source = RelationalSource("sql://d", db)
        catalog = StatisticsCatalog()
        summary = catalog.column_summary(source, "t", "c")
        assert catalog.summaries_built == 1
        db.table("t").insert_many([{"c": 1000 + i, "s": "new"}
                                   for i in range(10)])
        absorbed = catalog.column_summary(source, "t", "c")
        assert absorbed is summary  # carried forward, not rebuilt
        assert catalog.summaries_absorbed == 1 and catalog.summaries_built == 1
        assert absorbed.total_values == 110
        assert absorbed.might_contain(1005) and absorbed.might_contain(50)
        assert not absorbed.might_contain(424242)

    def test_absorbed_summary_tracks_top_k_and_histogram(self):
        from repro.stats.catalog import StatisticsCatalog

        db = Database("d")
        db.create_table_from_rows("t", [{"s": f"v{i}", "n": float(i)}
                                        for i in range(50)])
        source = RelationalSource("sql://d", db)
        catalog = StatisticsCatalog()
        catalog.column_summary(source, "t", "s")
        catalog.column_summary(source, "t", "n")
        db.table("t").insert_many([{"s": "hot", "n": 25.0}] * 20)
        s = catalog.column_summary(source, "t", "s")
        n = catalog.column_summary(source, "t", "n")
        assert catalog.summaries_absorbed == 2
        assert s.top_k.frequency("hot") == 20
        assert n.numeric and n.histogram.total == 70
        # Out-of-range values clamp into the edge buckets.
        db.table("t").insert_many([{"s": "x", "n": 10_000.0}])
        n2 = catalog.column_summary(source, "t", "n")
        assert n2.histogram.total == 71
