"""Tests for the cross-query caching subsystem (`repro.cache`)."""

from __future__ import annotations

import pytest

from repro.cache import (
    CachedSource,
    LRUCache,
    MediatorCache,
    canonical_query,
    cmq_signature,
)
from repro.core import MixedInstance, PlannerOptions
from repro.core.sources import FullTextQuery, JSONQuery, RDFQuery, SQLQuery
from repro.fulltext.store import FieldConfig, FullTextStore
from repro.json.store import JSONDocumentStore
from repro.rdf import Graph, triple
from repro.relational import Database

NO_CACHE = PlannerOptions(result_cache=False, plan_cache=False)


@pytest.fixture
def instance():
    """A four-model instance: glue + SQL + full-text + JSON + RDF."""
    glue = Graph("glue")
    for handle, dept in [("fhollande", "75"), ("mlepen", "62"), ("nobody", "99")]:
        glue.add(triple(f"ttn:U_{handle}", "ttn:twitterAccount", handle))
        glue.add(triple(f"ttn:U_{handle}", "ttn:deptCode", dept))

    database = Database("insee")
    database.create_table_from_rows("unemployment", [
        {"dept_code": "75", "rate": 7.5},
        {"dept_code": "62", "rate": 12.1},
        {"dept_code": "33", "rate": 9.0},
    ])

    store = FullTextStore("tweets", fields=[
        FieldConfig("text", "text"),
        FieldConfig("user.screen_name", "keyword"),
    ], default_field="text")
    store.add_all([
        {"id": 1, "text": "bonjour de paris", "user": {"screen_name": "fhollande"}},
        {"id": 2, "text": "bonjour du nord", "user": {"screen_name": "mlepen"}},
    ])

    json_store = JSONDocumentStore("docs")
    json_store.add_all([
        {"id": "1", "user": {"screen_name": "fhollande"}, "retweets": 10},
        {"id": "2", "user": {"screen_name": "mlepen"}, "retweets": 3},
    ])

    rdf_graph = Graph("handles")
    rdf_graph.add(triple("ttn:A1", "ttn:handle", "fhollande"))
    rdf_graph.add(triple("ttn:A1", "ttn:followers", 1_500_000))
    rdf_graph.add(triple("ttn:A2", "ttn:handle", "mlepen"))
    rdf_graph.add(triple("ttn:A2", "ttn:followers", 900_000))

    inst = MixedInstance(graph=glue, name="cache-test", entailment=False)
    inst.register_relational("sql://insee", database)
    inst.register_fulltext("solr://tweets", store)
    inst.register_json("json://docs", json_store)
    inst.register_rdf("rdf://handles", rdf_graph)
    return inst


def sql_cmq(inst, name="q"):
    return (inst.builder(name, head=["dept", "rate"])
            .graph("SELECT ?dept WHERE { ?x ttn:deptCode ?dept }")
            .sql("stats", source="sql://insee",
                 sql="SELECT dept_code AS dept, rate AS rate FROM unemployment "
                     "WHERE dept_code = {dept}")
            .build())


def rows_of(result):
    return sorted(map(str, result.rows))


# ---------------------------------------------------------------------------
# LRU primitives
# ---------------------------------------------------------------------------

class TestLRUCache:
    def test_hit_miss_counters(self):
        lru = LRUCache(4)
        assert lru.get("a") is None
        lru.put("a", [1])
        assert lru.get("a") == [1]
        assert lru.stats.hits == 1 and lru.stats.misses == 1

    def test_eviction_is_least_recently_used(self):
        lru = LRUCache(2)
        lru.put("a", 1)
        lru.put("b", 2)
        lru.get("a")  # refresh a; b is now the oldest
        lru.put("c", 3)
        assert "a" in lru and "c" in lru and "b" not in lru
        assert lru.stats.evictions == 1

    def test_peek_does_not_record_miss(self):
        lru = LRUCache(4)
        assert lru.get("nope", record_miss=False) is None
        assert lru.stats.misses == 0

    def test_invalidate_where(self):
        lru = LRUCache(8)
        lru.put(("s1", 0), 1)
        lru.put(("s2", 0), 2)
        assert lru.invalidate_where(lambda key: key[0] == "s1") == 1
        assert ("s2", 0) in lru and ("s1", 0) not in lru


# ---------------------------------------------------------------------------
# Canonical keys: variable-renaming invariance
# ---------------------------------------------------------------------------

class TestCanonicalKeys:
    def test_rdf_renaming_invariant(self):
        a = RDFQuery.from_text("SELECT ?x ?y WHERE { ?x ttn:knows ?y }")
        b = RDFQuery.from_text("SELECT ?p ?q WHERE { ?p ttn:knows ?q }")
        c = RDFQuery.from_text("SELECT ?y ?x WHERE { ?x ttn:knows ?y }")
        assert canonical_query(a).key == canonical_query(b).key
        assert canonical_query(a).key != canonical_query(c).key  # head order

    def test_rdf_structure_matters(self):
        a = RDFQuery.from_text("SELECT ?x WHERE { ?x ttn:knows ?y }")
        b = RDFQuery.from_text("SELECT ?x WHERE { ?x ttn:likes ?y }")
        assert canonical_query(a).key != canonical_query(b).key

    def test_sql_placeholder_renaming_invariant(self):
        a = SQLQuery(sql="SELECT h AS id FROM t WHERE h = {id}")
        b = SQLQuery(sql="SELECT h AS id FROM t WHERE h = {handle}")
        assert canonical_query(a).key == canonical_query(b).key

    def test_fulltext_renaming_invariant(self):
        a = FullTextQuery.create("user.screen_name:{id}",
                                 {"t": "text", "id": "user.screen_name"})
        b = FullTextQuery.create("user.screen_name:{who}",
                                 {"txt": "text", "who": "user.screen_name"})
        assert canonical_query(a).key == canonical_query(b).key
        assert canonical_query(a).key != canonical_query(
            FullTextQuery.create("user.screen_name:{id}",
                                 {"t": "text", "id": "user.screen_name"},
                                 limit=5)).key

    def test_json_renaming_invariant(self):
        a = JSONQuery.from_text("{ user.screen_name: ?id, retweets: ?n }")
        b = JSONQuery.from_text("{ user.screen_name: ?who, retweets: ?m }")
        assert canonical_query(a).key == canonical_query(b).key

    def test_binding_keys_follow_the_renaming(self):
        a = SQLQuery(sql="SELECT h AS id FROM t WHERE h = {id}")
        b = SQLQuery(sql="SELECT h AS id FROM t WHERE h = {handle}")
        ka = canonical_query(a).binding_key({"id": "x"})
        kb = canonical_query(b).binding_key({"handle": "x"})
        assert ka == kb

    def test_binding_keys_are_type_sensitive(self):
        # True == 1 == 1.0 in Python, but the wrappers render them
        # differently at the source — they must not share an entry.
        canon = canonical_query(SQLQuery(sql="SELECT c AS c FROM t WHERE c = {x}"))
        keys = {canon.binding_key({"x": value}) for value in (True, 1, 1.0)}
        assert len(keys) == 3
        assert canon.binding_key({"x": [1]}) != canon.binding_key({"x": (1,)})

    def test_nested_container_bindings_are_cacheable(self):
        a = SQLQuery(sql="SELECT h AS id FROM t WHERE h = {id}")
        canon = canonical_query(a)
        key = canon.binding_key({"id": [["nested"], {"k": "v"}]})
        assert key is not None
        assert key == canon.binding_key({"id": [["nested"], {"k": "v"}]})

    def test_unhashable_binding_is_uncacheable(self):
        a = SQLQuery(sql="SELECT h AS id FROM t WHERE h = {id}")
        key = canonical_query(a).binding_key({"id": bytearray(b"raw")})
        assert key is None

    def test_row_round_trip_through_renaming(self):
        a = JSONQuery.from_text("{ user.screen_name: ?id }")
        b = JSONQuery.from_text("{ user.screen_name: ?who }")
        stored = canonical_query(a).canonical_rows([{"id": "fhollande"}])
        assert canonical_query(b).original_rows(stored) == [{"who": "fhollande"}]


# ---------------------------------------------------------------------------
# Result cache behaviour through the executor
# ---------------------------------------------------------------------------

class TestResultCache:
    def test_warm_run_equals_cold_run(self, instance):
        cmq = sql_cmq(instance)
        reference = instance.execute(cmq, options=NO_CACHE)
        cold = instance.execute(cmq)
        warm = instance.execute(cmq)
        assert rows_of(cold) == rows_of(reference)
        assert rows_of(warm) == rows_of(reference)
        assert warm.trace.cache_hits > 0
        assert warm.trace.cache_misses == 0

    def test_trace_counters_on_cold_run(self, instance):
        cold = instance.execute(sql_cmq(instance))
        assert cold.trace.cache_misses > 0
        assert not cold.trace.plan_cached

    def test_renamed_cmq_shares_cache_entries(self, instance):
        instance.execute(sql_cmq(instance))  # populate
        renamed = (instance.builder("q2", head=["d", "r"])
                   .graph("SELECT ?d WHERE { ?y ttn:deptCode ?d }")
                   .sql("stats", source="sql://insee",
                        sql="SELECT dept_code AS dept, rate AS rate FROM unemployment "
                            "WHERE dept_code = {dept}",
                        renames={"dept": "d", "rate": "r"})
                   .build())
        warm = instance.execute(renamed)
        assert warm.trace.cache_misses == 0
        assert warm.trace.cache_hits > 0
        assert {row["d"] for row in warm.rows} == {"75", "62"}

    def test_bind_join_probe_serves_hits_without_dispatch(self, instance):
        cmq = sql_cmq(instance)
        instance.execute(cmq)
        warm = instance.execute(cmq)
        # The bind step never shipped: only the glue materialize call is
        # dispatched (and itself answered by the cache).
        assert len(warm.trace.calls) == 1
        assert warm.trace.calls[0].atom == "qG"

    def test_mutation_is_absorbed_without_poisoning_the_cache(self, instance):
        cmq = sql_cmq(instance)
        instance.execute(cmq)
        instance.source("sql://insee").database.execute(
            "INSERT INTO unemployment (dept_code, rate) VALUES ('99', 42.0)")
        after = instance.execute(cmq)
        # Glue entries still hit; the SQL entries were orphaned by the
        # version bump but delta-repaired from the insert journal, so
        # they serve as hits too — and the fresh row is in the answer.
        assert after.trace.cache_hits > 0
        assert after.trace.cache_misses == 0
        assert instance.cache.repair.stats.repaired > 0
        assert {row["dept"] for row in after.rows} == {"75", "62", "99"}

    def test_fulltext_store_mutation_is_seen(self, instance):
        cmq = (instance.builder("ft", head=["id", "t"])
               .graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
               .fulltext("tweets", source="solr://tweets",
                         query="user.screen_name:{id}",
                         fields={"t": "text", "id": "user.screen_name"})
               .build())
        before = instance.execute(cmq)
        instance.source("solr://tweets").store.add(
            {"id": 3, "text": "salut", "user": {"screen_name": "nobody"}})
        after = instance.execute(cmq)
        assert len(after.rows) == len(before.rows) + 1

    def test_json_store_mutation_is_seen(self, instance):
        cmq = (instance.builder("js", head=["id", "n"])
               .graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
               .json("docs", source="json://docs",
                     pattern="{ user.screen_name: ?id, retweets: ?n }")
               .build())
        before = instance.execute(cmq)
        instance.source("json://docs").store.add(
            {"id": "3", "user": {"screen_name": "nobody"}, "retweets": 1})
        after = instance.execute(cmq)
        assert len(after.rows) == len(before.rows) + 1

    def test_rdf_graph_mutation_is_seen_even_at_equal_size(self, instance):
        cmq = (instance.builder("rq", head=["id", "f"])
               .graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
               .rdf("followers", source="rdf://handles",
                    sparql_text="SELECT ?id ?f WHERE { ?u ttn:handle ?id . "
                                "?u ttn:followers ?f }")
               .build())
        before = instance.execute(cmq)
        source = instance.source("rdf://handles")
        source.graph.remove(triple("ttn:A2", "ttn:followers", 900_000))
        source.graph.add(triple("ttn:A2", "ttn:followers", 901_000))
        after = instance.execute(cmq)
        assert len(source.graph) == 4  # same size, different content
        assert rows_of(after) != rows_of(before)
        assert {row["f"] for row in after.rows} == {1_500_000, 901_000}

    def test_glue_update_invalidates_glue_entries(self, instance):
        cmq = sql_cmq(instance)
        instance.execute(cmq)
        instance.add_glue_triples([triple("ttn:U_new", "ttn:deptCode", "33")])
        after = instance.execute(cmq)
        assert {row["dept"] for row in after.rows} == {"75", "62", "33"}

    def test_cache_disabled_by_option(self, instance):
        cmq = sql_cmq(instance)
        instance.execute(cmq, options=NO_CACHE)
        again = instance.execute(cmq, options=NO_CACHE)
        assert again.trace.cache_hits == 0 and again.trace.cache_misses == 0

    def test_cache_disabled_on_instance(self):
        inst = MixedInstance(name="nocache", cache=False, entailment=False)
        assert inst.cache is None
        assert inst.cache_statistics() == {}

    def test_shared_cache_never_crosses_instances(self):
        """Two instances sharing one MediatorCache collide on the glue URI
        (both are '#glue') — the per-source identity token must keep
        their entries apart."""
        shared = MediatorCache()
        results = {}
        for name in ("alice", "bob"):
            glue = Graph(f"{name}-glue")
            glue.add(triple(f"ttn:{name}", "ttn:twitterAccount", name))
            inst = MixedInstance(graph=glue, name=name, entailment=False,
                                 cache=shared)
            cmq = (inst.builder("q", head=["id"])
                   .graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
                   .build())
            results[name] = inst.execute(cmq)
        assert [row["id"] for row in results["alice"].rows] == ["alice"]
        assert [row["id"] for row in results["bob"].rows] == ["bob"]

    def test_clear_caches(self, instance):
        cmq = sql_cmq(instance)
        instance.execute(cmq)
        instance.clear_caches()
        cold = instance.execute(cmq)
        assert cold.trace.cache_hits == 0

    def test_equivalence_across_all_four_models(self, instance):
        queries = [
            sql_cmq(instance),
            (instance.builder("ft", head=["id", "t"])
             .graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
             .fulltext("tweets", source="solr://tweets",
                       query="user.screen_name:{id}",
                       fields={"t": "text", "id": "user.screen_name"})
             .build()),
            (instance.builder("js", head=["id", "n"])
             .graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
             .json("docs", source="json://docs",
                   pattern="{ user.screen_name: ?id, retweets: ?n }")
             .build()),
            (instance.builder("rq", head=["id", "f"])
             .graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
             .rdf("followers", source="rdf://handles",
                  sparql_text="SELECT ?id ?f WHERE { ?u ttn:handle ?id . "
                              "?u ttn:followers ?f }")
             .build()),
        ]
        for cmq in queries:
            reference = instance.execute(cmq, options=NO_CACHE)
            cold = instance.execute(cmq)
            warm = instance.execute(cmq)
            assert rows_of(cold) == rows_of(reference)
            assert rows_of(warm) == rows_of(reference)
            assert warm.trace.cache_hits > 0


# ---------------------------------------------------------------------------
# CachedSource proxy
# ---------------------------------------------------------------------------

class TestCachedSource:
    def test_batch_ships_only_misses(self, instance):
        cache = MediatorCache()
        inner = instance.source("sql://insee")
        proxy = CachedSource(inner, cache.results)
        query = SQLQuery(sql="SELECT dept_code AS dept, rate AS rate "
                             "FROM unemployment WHERE dept_code = {dept}")
        proxy.execute(query, {"dept": "75"})

        shipped = []
        original = inner.execute_batch

        def spy(q, batch):
            shipped.append(list(batch))
            return original(q, batch)

        inner.execute_batch = spy
        try:
            results = proxy.execute_batch(query, [{"dept": "75"}, {"dept": "62"}])
        finally:
            inner.execute_batch = original
        assert len(shipped) == 1 and shipped[0] == [{"dept": "62"}]
        assert [len(r) for r in results] == [1, 1]

    def test_invalidate_source_frees_only_that_sources_entries(self, instance):
        cache = MediatorCache()
        query = SQLQuery(sql="SELECT dept_code AS dept, rate AS rate "
                             "FROM unemployment WHERE dept_code = {dept}")
        sql_proxy = CachedSource(instance.source("sql://insee"), cache.results)
        glue_proxy = CachedSource(instance.glue_source, cache.results)
        sql_proxy.execute(query, {"dept": "75"})
        glue_proxy.execute(
            RDFQuery.from_text("SELECT ?d WHERE { ?x ttn:deptCode ?d }"))
        assert len(cache.results) == 2
        assert cache.results.invalidate_source("sql://insee") == 1
        assert len(cache.results) == 1

    def test_delegation(self, instance):
        inner = instance.source("sql://insee")
        proxy = CachedSource(inner, MediatorCache().results)
        assert proxy.uri == inner.uri
        assert proxy.model == "relational"
        assert proxy.size() == inner.size()
        assert proxy.version() == inner.version()


# ---------------------------------------------------------------------------
# Plan cache
# ---------------------------------------------------------------------------

class TestPlanCache:
    def test_second_plan_is_cached(self, instance):
        cmq = sql_cmq(instance)
        first = instance.plan(cmq)
        second = instance.plan(cmq)
        assert not first.cached
        assert second.cached
        assert "(cached plan)" in second.explain()
        assert [s.atom.name for s in second.steps] == [s.atom.name for s in first.steps]

    def test_plan_cache_invalidated_by_source_mutation(self, instance):
        cmq = sql_cmq(instance)
        instance.plan(cmq)
        instance.source("sql://insee").database.execute(
            "INSERT INTO unemployment (dept_code, rate) VALUES ('01', 5.0)")
        replanned = instance.plan(cmq)
        assert not replanned.cached

    def test_renamed_cmq_hits_and_is_rebound(self, instance):
        instance.plan(sql_cmq(instance))
        renamed = (instance.builder("other", head=["d", "r"])
                   .graph("SELECT ?d WHERE { ?y ttn:deptCode ?d }")
                   .sql("stats", source="sql://insee",
                        sql="SELECT dept_code AS dept, rate AS rate FROM unemployment "
                            "WHERE dept_code = {dept}",
                        renames={"dept": "d", "rate": "r"})
                   .build())
        plan = instance.planner().plan(renamed)
        assert plan.cached
        # The plan executes the *renamed* query's own atoms.
        assert plan.query is renamed
        assert all(step.atom in renamed.atoms for step in plan.steps)
        result = instance.executor().execute(renamed, plan=plan)
        assert {row["d"] for row in result.rows} == {"75", "62"}

    def test_different_options_plan_separately(self, instance):
        cmq = sql_cmq(instance)
        instance.plan(cmq)
        other = instance.plan(cmq, PlannerOptions(batch_bind_joins=False))
        assert not other.cached

    def test_signature_is_renaming_invariant(self, instance):
        a = sql_cmq(instance, name="a")
        renamed = (instance.builder("b", head=["d", "r"])
                   .graph("SELECT ?d WHERE { ?y ttn:deptCode ?d }")
                   .sql("stats", source="sql://insee",
                        sql="SELECT dept_code AS dept, rate AS rate FROM unemployment "
                            "WHERE dept_code = {dept}",
                        renames={"dept": "d", "rate": "r"})
                   .build())
        assert cmq_signature(a) == cmq_signature(renamed)
        different = (instance.builder("c", head=["dept", "rate"])
                     .graph("SELECT ?dept WHERE { ?x ttn:twitterAccount ?dept }")
                     .sql("stats", source="sql://insee",
                          sql="SELECT dept_code AS dept, rate AS rate FROM unemployment "
                              "WHERE dept_code = {dept}")
                     .build())
        assert cmq_signature(a) != cmq_signature(different)
