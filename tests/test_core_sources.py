"""Unit tests for the per-model source wrappers and sub-query descriptions."""

import pytest

from repro.core import FullTextQuery, FullTextSource, RDFQuery, RDFSource, RelationalSource, SQLQuery
from repro.errors import MixedQueryError


class TestRDFQueryAndSource:
    def test_output_variables(self):
        q = RDFQuery.from_text("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
        assert q.output_variables() == {"id"}
        assert q.required_parameters() == set()

    def test_execute_returns_python_values(self, politics_graph):
        source = RDFSource("rdf://glue", politics_graph)
        q = RDFQuery.from_text("SELECT ?id WHERE { ?x ttn:position ttn:headOfState . "
                               "?x ttn:twitterAccount ?id }")
        rows = source.execute(q)
        assert rows == [{"id": "fhollande"}]

    def test_execute_with_bindings_filters(self, politics_graph):
        source = RDFSource("rdf://glue", politics_graph)
        q = RDFQuery.from_text("SELECT ?x ?id WHERE { ?x ttn:twitterAccount ?id }")
        rows = source.execute(q, {"id": "mlepen"})
        assert len(rows) == 1 and rows[0]["x"].endswith("POL2")

    def test_entailment_option_exposes_implicit_triples(self, politics_graph, politics_schema):
        politics_graph.add_all(politics_schema.triples())
        source = RDFSource("rdf://glue", politics_graph, entailment=True)
        q = RDFQuery.from_text("SELECT ?x WHERE { ?x rdf:type ttn:person }")
        assert len(source.execute(q)) == 2

    def test_estimate_more_selective_with_bound_vars(self, politics_graph):
        source = RDFSource("rdf://glue", politics_graph)
        q = RDFQuery.from_text("SELECT ?x ?id WHERE { ?x ttn:twitterAccount ?id }")
        assert source.estimate(q, {"id"}) <= source.estimate(q, set())

    def test_wrong_query_type_rejected(self, politics_graph):
        source = RDFSource("rdf://glue", politics_graph)
        with pytest.raises(MixedQueryError):
            source.execute(SQLQuery(sql="SELECT 1 AS one"))

    def test_accepts(self, politics_graph):
        source = RDFSource("rdf://glue", politics_graph)
        assert source.accepts(RDFQuery.from_text("SELECT ?x WHERE { ?x ?p ?o }"))
        assert not source.accepts(SQLQuery(sql="SELECT 1 AS one"))


class TestSQLQueryAndSource:
    def test_output_columns_inferred_from_aliases(self):
        q = SQLQuery(sql="SELECT code AS dept, name, population AS pop FROM departments")
        assert q.output_variables() == {"dept", "name", "pop"}

    def test_placeholders_are_required_parameters(self):
        q = SQLQuery(sql="SELECT rate AS rate FROM unemployment WHERE dept_code = {dept}")
        assert q.required_parameters() == {"dept"}

    def test_execute_plain(self, small_database):
        source = RelationalSource("sql://insee", small_database)
        q = SQLQuery(sql="SELECT code AS dept, name AS name FROM departments")
        rows = source.execute(q)
        assert {"dept": "75", "name": "Paris"} in rows

    def test_execute_with_placeholder_binding(self, small_database):
        source = RelationalSource("sql://insee", small_database)
        q = SQLQuery(sql="SELECT rate AS rate FROM unemployment WHERE dept_code = {dept} "
                         "AND year = 2015")
        assert source.execute(q, {"dept": "75"}) == [{"rate": 8.2}]

    def test_missing_placeholder_raises(self, small_database):
        source = RelationalSource("sql://insee", small_database)
        q = SQLQuery(sql="SELECT rate AS rate FROM unemployment WHERE dept_code = {dept}")
        with pytest.raises(MixedQueryError):
            source.execute(q)

    def test_post_filter_on_output_bindings(self, small_database):
        source = RelationalSource("sql://insee", small_database)
        q = SQLQuery(sql="SELECT code AS dept, name AS name FROM departments")
        rows = source.execute(q, {"dept": "33"})
        assert rows == [{"dept": "33", "name": "Gironde"}]

    def test_sql_injection_of_quotes_is_escaped(self, small_database):
        source = RelationalSource("sql://insee", small_database)
        q = SQLQuery(sql="SELECT name AS name FROM departments WHERE name = {n}")
        assert source.execute(q, {"n": "O'Brien"}) == []

    def test_estimate_reflects_table_sizes(self, small_database):
        source = RelationalSource("sql://insee", small_database)
        big = SQLQuery(sql="SELECT rate AS rate FROM unemployment")
        small = SQLQuery(sql="SELECT rate AS rate FROM unemployment WHERE dept_code = {dept}")
        assert source.estimate(small) < source.estimate(big)

    def test_size(self, small_database):
        assert RelationalSource("sql://insee", small_database).size() == 7


class TestFullTextQueryAndSource:
    def test_output_and_required(self):
        q = FullTextQuery.create("entities.hashtags:{tag}",
                                 {"t": "text", "id": "user.screen_name"})
        assert q.output_variables() == {"t", "id"}
        assert q.required_parameters() == {"tag"}

    def test_execute_maps_fields(self, small_tweet_store):
        source = FullTextSource("solr://tweets", small_tweet_store)
        q = FullTextQuery.create("entities.hashtags:sia2016",
                                 {"t": "text", "id": "user.screen_name"})
        rows = source.execute(q)
        assert rows[0]["id"] == "fhollande"

    def test_execute_with_placeholder(self, small_tweet_store):
        source = FullTextSource("solr://tweets", small_tweet_store)
        q = FullTextQuery.create("user.screen_name:{id}", {"t": "text"})
        assert len(source.execute(q, {"id": "mlepen"})) == 1

    def test_multi_word_binding_is_quoted(self, small_tweet_store):
        source = FullTextSource("solr://tweets", small_tweet_store)
        q = FullTextQuery.create("text:{phrase}", {"id": "user.screen_name"})
        rows = source.execute(q, {"phrase": "solidarite nationale"})
        assert rows and rows[0]["id"] == "fhollande"

    def test_post_filter_on_output_bindings(self, small_tweet_store):
        source = FullTextSource("solr://tweets", small_tweet_store)
        q = FullTextQuery.create("*:*", {"t": "text", "id": "user.screen_name"})
        rows = source.execute(q, {"id": "fhollande"})
        assert len(rows) == 2

    def test_score_pseudo_field(self, small_tweet_store):
        source = FullTextSource("solr://tweets", small_tweet_store)
        q = FullTextQuery.create("text:solidarite", {"score": "_score", "id": "user.screen_name"})
        rows = source.execute(q)
        assert rows[0]["score"] > 0

    def test_limit_and_sort(self, small_tweet_store):
        source = FullTextSource("solr://tweets", small_tweet_store)
        q = FullTextQuery.create("user.screen_name:fhollande", {"rt": "retweet_count"},
                                 limit=1, sort_by="retweet_count")
        assert source.execute(q) == [{"rt": 469}]

    def test_estimate_shrinks_with_constants_and_limit(self, small_tweet_store):
        source = FullTextSource("solr://tweets", small_tweet_store)
        everything = FullTextQuery.create("*:*", {"t": "text"})
        constrained = FullTextQuery.create("entities.hashtags:sia2016", {"t": "text"}, limit=5)
        assert source.estimate(constrained) < source.estimate(everything)

    def test_wrong_query_type_rejected(self, small_tweet_store):
        source = FullTextSource("solr://tweets", small_tweet_store)
        with pytest.raises(MixedQueryError):
            source.execute(RDFQuery.from_text("SELECT ?x WHERE { ?x ?p ?o }"))
