"""Unit tests for the N-Triples/Turtle parser, serializer and SPARQL subset."""

import pytest

from repro.errors import ParseError
from repro.rdf import (
    Literal,
    RDF_TYPE,
    URI,
    Variable,
    parse_bgp,
    parse_ntriples,
    parse_sparql,
    pattern,
    serialize_ntriples,
    triple,
    uri,
)


class TestNTriplesParsing:
    def test_simple_ntriples(self):
        text = ('<http://ex.org/a> <http://ex.org/p> <http://ex.org/b> .\n'
                '<http://ex.org/a> <http://ex.org/name> "Alice" .\n')
        g = parse_ntriples(text)
        assert len(g) == 2
        assert triple("http://ex.org/a", "http://ex.org/name", "Alice") in g

    def test_prefixed_turtle(self):
        text = """
        @prefix ex: <http://ex.org/> .
        ex:a a ex:Person ;
             ex:name "Alice" ;
             ex:knows ex:b , ex:c .
        """
        g = parse_ntriples(text)
        assert len(g) == 4
        assert triple("http://ex.org/a", RDF_TYPE, "http://ex.org/Person") in g
        knows = pattern("http://ex.org/a", "http://ex.org/knows", "?x")
        assert len(list(g.match(knows))) == 2

    def test_default_prefixes_available(self):
        g = parse_ntriples("ttn:a rdf:type ttn:politician .")
        assert len(g) == 1

    def test_typed_and_language_literals(self):
        text = ('<http://ex.org/a> <http://ex.org/age> "61"^^<http://www.w3.org/2001/XMLSchema#integer> .\n'
                '<http://ex.org/a> <http://ex.org/bio> "journaliste"@fr .\n')
        g = parse_ntriples(text)
        literals = {t.obj for t in g}
        assert Literal("61", datatype="http://www.w3.org/2001/XMLSchema#integer") in literals
        assert Literal("journaliste", language="fr") in literals

    def test_numbers_become_typed_literals(self):
        g = parse_ntriples("ttn:a ttn:age 61 .")
        assert next(iter(g)).obj.to_python() == 61

    def test_comments_and_blank_lines_ignored(self):
        text = """
        # a comment line
        ttn:a ttn:p ttn:b .
        """
        assert len(parse_ntriples(text)) == 1

    def test_unknown_prefix_raises(self):
        with pytest.raises(ParseError):
            parse_ntriples("unknown:a ttn:p ttn:b .")

    def test_malformed_statement_raises(self):
        with pytest.raises(ParseError):
            parse_ntriples("ttn:a ttn:p .")

    def test_escaped_quotes_in_literal(self):
        g = parse_ntriples('ttn:a ttn:says "il a dit \\"oui\\"" .')
        assert next(iter(g)).obj.value == 'il a dit "oui"'


class TestSerialization:
    def test_round_trip(self, politics_graph):
        text = serialize_ntriples(politics_graph)
        reparsed = parse_ntriples(text)
        assert {t for t in reparsed} == {t for t in politics_graph}

    def test_empty_graph_serialises_to_empty_string(self):
        from repro.rdf import Graph

        assert serialize_ntriples(Graph()) == ""

    def test_output_is_sorted_and_terminated(self, politics_graph):
        text = serialize_ntriples(politics_graph)
        lines = text.strip().split("\n")
        assert lines == sorted(lines)
        assert all(line.endswith(" .") for line in lines)


class TestSPARQLSubset:
    def test_simple_select(self):
        q = parse_bgp("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
        assert [v.name for v in q.head] == ["id"]
        assert len(q.patterns) == 1

    def test_multiple_patterns_and_dots(self):
        q = parse_bgp(
            "SELECT ?id WHERE { ?x ttn:position ttn:headOfState . ?x ttn:twitterAccount ?id . }"
        )
        assert len(q.patterns) == 2

    def test_a_keyword_is_rdf_type(self):
        q = parse_bgp("SELECT ?x WHERE { ?x a ttn:politician }")
        assert q.patterns[0].predicate == RDF_TYPE

    def test_prefix_declaration(self):
        q = parse_bgp(
            "PREFIX ex: <http://ex.org/> SELECT ?x WHERE { ?x ex:p ?y }"
        )
        assert q.patterns[0].predicate == URI("http://ex.org/p")

    def test_full_iri_and_literal_terms(self):
        q = parse_bgp('SELECT ?x WHERE { ?x <http://ex.org/name> "Alice" }')
        assert q.patterns[0].obj == Literal("Alice")

    def test_select_star(self):
        q = parse_bgp("SELECT * WHERE { ?x ttn:p ?y }")
        assert {v.name for v in q.output_variables()} == {"x", "y"}

    def test_distinct_and_limit_modifiers(self):
        parsed = parse_sparql("SELECT DISTINCT ?x WHERE { ?x ttn:p ?y } LIMIT 5")
        assert parsed.distinct is True
        assert parsed.limit == 5

    def test_numeric_literal(self):
        q = parse_bgp("SELECT ?x WHERE { ?x ttn:age 61 }")
        assert q.patterns[0].obj.to_python() == 61

    def test_missing_where_raises(self):
        with pytest.raises(ParseError):
            parse_bgp("SELECT ?x { ?x ttn:p ?y }")

    def test_unterminated_group_raises(self):
        with pytest.raises(ParseError):
            parse_bgp("SELECT ?x WHERE { ?x ttn:p ?y")

    def test_unknown_prefix_raises(self):
        with pytest.raises(ParseError):
            parse_bgp("SELECT ?x WHERE { ?x nope:p ?y }")

    def test_evaluates_against_graph(self, politics_graph):
        from repro.rdf import evaluate_bgp, var

        q = parse_bgp("SELECT ?id WHERE { ?x ttn:position ttn:headOfState . "
                      "?x ttn:twitterAccount ?id }")
        rows = evaluate_bgp(q, politics_graph)
        assert rows[0][var("id")].value == "fhollande"
