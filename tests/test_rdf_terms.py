"""Unit tests for RDF terms, coercion helpers and triple patterns."""

import pytest

from repro.errors import RDFError
from repro.rdf import (
    Literal,
    RDF_TYPE,
    TriplePattern,
    URI,
    Variable,
    XSD_NS,
    expand_qname,
    literal,
    pattern,
    triple,
    uri,
    var,
)
from repro.rdf.terms import BlankNode, Triple


class TestURI:
    def test_local_name_from_fragment(self):
        assert URI("http://example.org/ns#Person").local_name == "Person"

    def test_local_name_from_path(self):
        assert URI("http://example.org/resource/Paris").local_name == "Paris"

    def test_empty_uri_rejected(self):
        with pytest.raises(RDFError):
            URI("")

    def test_uris_are_hashable_and_equal_by_value(self):
        assert URI("http://a") == URI("http://a")
        assert len({URI("http://a"), URI("http://a")}) == 1


class TestLiteral:
    def test_plain_literal(self):
        lit = Literal("hello")
        assert lit.value == "hello"
        assert lit.datatype is None

    def test_datatype_and_language_are_exclusive(self):
        with pytest.raises(RDFError):
            Literal("x", datatype=XSD_NS + "integer", language="fr")

    def test_to_python_integer(self):
        assert literal(42).to_python() == 42

    def test_to_python_float(self):
        assert literal(3.5).to_python() == pytest.approx(3.5)

    def test_to_python_boolean(self):
        assert literal(True).to_python() is True

    def test_to_python_plain_string(self):
        assert Literal("abc").to_python() == "abc"


class TestVariable:
    def test_valid_name(self):
        assert Variable("x").name == "x"

    def test_invalid_name_rejected(self):
        with pytest.raises(RDFError):
            Variable("not valid")

    def test_var_helper_strips_question_mark(self):
        assert var("?id") == Variable("id")


class TestTriple:
    def test_variables_rejected_in_data_triples(self):
        with pytest.raises(RDFError):
            Triple(Variable("s"), RDF_TYPE, URI("http://x"))

    def test_literal_predicate_rejected(self):
        with pytest.raises(RDFError):
            Triple(URI("http://s"), Literal("p"), URI("http://o"))

    def test_triple_helper_coerces_strings(self):
        t = triple("ttn:POL1", "ttn:position", "ttn:headOfState")
        assert isinstance(t.subject, URI)
        assert t.subject.local_name == "POL1"

    def test_triple_helper_coerces_object_literal(self):
        t = triple("ttn:POL1", "foaf:name", "François Hollande")
        assert isinstance(t.obj, Literal)

    def test_triple_helper_numbers_become_typed_literals(self):
        t = triple("ttn:POL1", "ttn:age", 61)
        assert t.obj.datatype == XSD_NS + "integer"

    def test_blank_node_string(self):
        t = triple("_:b0", "ttn:position", "ttn:deputy")
        assert isinstance(t.subject, BlankNode)


class TestTriplePattern:
    def test_variables_extraction(self):
        p = pattern("?x", "ttn:position", "?pos")
        assert p.variables() == {Variable("x"), Variable("pos")}

    def test_ground_pattern(self):
        p = pattern("ttn:POL1", "ttn:position", "ttn:headOfState")
        assert p.is_ground()
        assert isinstance(p.to_triple(), Triple)

    def test_non_ground_to_triple_raises(self):
        with pytest.raises(RDFError):
            pattern("?x", "ttn:position", "ttn:headOfState").to_triple()

    def test_bind_replaces_variables(self):
        p = pattern("?x", "ttn:position", "?pos")
        bound = p.bind({Variable("pos"): uri("ttn:headOfState")})
        assert bound.obj == uri("ttn:headOfState")
        assert bound.subject == Variable("x")

    def test_pattern_iteration_order(self):
        p = pattern("?s", "?p", "?o")
        assert [t.name for t in p] == ["s", "p", "o"]


class TestQNames:
    def test_expand_known_prefix(self):
        assert expand_qname("rdf:type") == RDF_TYPE

    def test_expand_unknown_prefix_raises(self):
        with pytest.raises(RDFError):
            expand_qname("nope:thing")

    def test_uri_helper_passes_through_full_iris(self):
        assert uri("http://example.org/x").value == "http://example.org/x"

    def test_uri_helper_expands_qnames(self):
        assert uri("foaf:name").value.endswith("foaf/0.1/name")
