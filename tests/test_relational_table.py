"""Unit tests for row storage, primary keys and secondary indexes."""

import pytest

from repro.errors import SchemaError
from repro.relational import Column, DataType, Table, TableSchema


@pytest.fixture
def table():
    schema = TableSchema(
        name="departments",
        columns=[Column("code", DataType.TEXT, nullable=False),
                 Column("name", DataType.TEXT),
                 Column("population", DataType.INTEGER)],
        primary_key="code",
    )
    t = Table(schema)
    t.insert({"code": "75", "name": "Paris", "population": 2_165_423})
    t.insert({"code": "33", "name": "Gironde", "population": 1_601_845})
    t.insert({"code": "29", "name": "Finistere", "population": 915_090})
    return t


class TestInsertion:
    def test_insert_returns_coerced_tuple(self, table):
        row = table.insert({"code": "59", "name": "Nord", "population": "2604000"})
        assert row == ("59", "Nord", 2_604_000)
        assert len(table) == 4

    def test_duplicate_primary_key_rejected(self, table):
        with pytest.raises(SchemaError):
            table.insert({"code": "75", "name": "Paris bis", "population": 1})

    def test_null_primary_key_rejected(self, table):
        with pytest.raises(SchemaError):
            table.insert({"name": "Nowhere", "population": 0})

    def test_insert_many(self, table):
        inserted = table.insert_many([
            {"code": "01", "name": "Ain", "population": 650_000},
            {"code": "06", "name": "Alpes-Maritimes", "population": 1_080_000},
        ])
        assert inserted == 2


class TestAccess:
    def test_scan_returns_dicts(self, table):
        rows = list(table.scan())
        assert len(rows) == 3
        assert rows[0]["code"] == "75"

    def test_scan_with_predicate(self, table):
        rows = list(table.scan(lambda r: r["population"] > 1_000_000))
        assert {r["code"] for r in rows} == {"75", "33"}

    def test_lookup_uses_primary_key_index(self, table):
        assert table.has_index("code")
        assert table.lookup("code", "33")[0]["name"] == "Gironde"

    def test_lookup_without_index_scans(self, table):
        assert not table.has_index("name")
        assert table.lookup("name", "Paris")[0]["code"] == "75"

    def test_lookup_missing_value_returns_empty(self, table):
        assert table.lookup("code", "99") == []

    def test_create_index_backfills_existing_rows(self, table):
        index = table.create_index("name")
        assert len(index) == 3
        assert table.lookup("name", "Finistere")[0]["code"] == "29"

    def test_create_index_on_unknown_column_raises(self, table):
        with pytest.raises(SchemaError):
            table.create_index("region")

    def test_distinct_and_column_values(self, table):
        assert table.distinct_values("code") == {"75", "33", "29"}
        assert len(table.column_values("population")) == 3

    def test_statistics(self, table):
        stats = table.statistics()
        assert stats["rows"] == 3
        assert stats["distinct"]["code"] == 3

    def test_index_distinct_count(self, table):
        index = table.create_index("population")
        assert index.distinct_count() == 3
