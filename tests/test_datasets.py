"""Unit tests for the synthetic dataset generators and the demo instance."""

import pytest

from repro.datasets import (
    AGRICULTURE,
    DemoConfig,
    INSEE_URI,
    POLITICAL_GROUPS,
    STATE_OF_EMERGENCY,
    TWEETS_URI,
    TweetGeneratorConfig,
    build_dbpedia_graph,
    build_demo_instance,
    build_elections_database,
    build_ign_graph,
    build_insee_database,
    figure2_example_tweet,
    generate_facebook_posts,
    generate_landscape,
    generate_parties,
    generate_politicians,
    generate_tweets,
)
from repro.errors import DatasetError
from repro.rdf import RDF_TYPE, uri


class TestPoliticians:
    def test_deterministic_generation(self):
        a = generate_politicians(count=20, seed=1)
        b = generate_politicians(count=20, seed=1)
        assert [p.politician_id for p in a] == [p.politician_id for p in b]
        assert [p.name for p in a] == [p.name for p in b]

    def test_different_seed_different_population(self):
        a = generate_politicians(count=20, seed=1)
        b = generate_politicians(count=20, seed=2)
        assert [p.name for p in a] != [p.name for p in b]

    def test_exactly_one_head_of_state(self):
        landscape = generate_landscape(count=30, seed=3)
        heads = [p for p in landscape.politicians if p.position == "headOfState"]
        assert len(heads) == 1
        assert landscape.head_of_state() == heads[0]

    def test_unique_names_and_ids(self):
        politicians = generate_politicians(count=50, seed=4)
        assert len({p.politician_id for p in politicians}) == 50
        assert len({p.name for p in politicians}) == 50

    def test_every_group_has_a_party(self):
        parties = generate_parties()
        assert {p.group for p in parties} == set(POLITICAL_GROUPS)

    def test_invalid_count_rejected(self):
        with pytest.raises(DatasetError):
            generate_politicians(count=0)

    def test_glue_graph_contains_politicians_and_parties(self):
        landscape = generate_landscape(count=10, seed=5)
        graph = landscape.graph
        politicians = graph.resources_of_type(uri("ttn:politician"))
        assert len(politicians) == 10
        assert len(graph.resources_of_type(uri("ttn:party"))) == len(landscape.parties)

    def test_glue_graph_contains_schema_triples(self):
        landscape = generate_landscape(count=5, seed=6)
        assert not landscape.schema.is_empty()
        from repro.rdf import triple

        assert triple("ttn:politician", "rdfs:subClassOf", "ttn:person") in landscape.graph

    def test_by_group_partitions_population(self):
        landscape = generate_landscape(count=25, seed=7)
        grouped = landscape.by_group()
        assert sum(len(v) for v in grouped.values()) == 25


class TestTweets:
    def test_deterministic(self):
        politicians = generate_politicians(count=5, seed=1)
        a = generate_tweets(politicians, TweetGeneratorConfig(seed=3))
        b = generate_tweets(politicians, TweetGeneratorConfig(seed=3))
        assert [t["id"] for t in a] == [t["id"] for t in b]

    def test_figure2_shape(self):
        politicians = generate_politicians(count=5, seed=1)
        tweets = generate_tweets(politicians, TweetGeneratorConfig(seed=3))
        tweet = tweets[0]
        assert {"id", "created_at", "text", "user", "retweet_count",
                "favorite_count", "entities"} <= set(tweet)
        assert "screen_name" in tweet["user"]
        assert isinstance(tweet["entities"]["hashtags"], list)

    def test_topic_hashtag_present(self):
        politicians = generate_politicians(count=10, seed=1)
        tweets = generate_tweets(politicians, TweetGeneratorConfig(topic=AGRICULTURE,
                                                                   weeks=2, seed=3))
        hashtags = {h for t in tweets for h in t["entities"]["hashtags"]}
        assert "SIA2016" in hashtags

    def test_weeks_span_configuration(self):
        politicians = generate_politicians(count=10, seed=1)
        tweets = generate_tweets(politicians, TweetGeneratorConfig(weeks=3, seed=3))
        assert len({t["week"] for t in tweets}) == 3

    def test_vocabulary_reflects_weekly_phase(self):
        politicians = generate_politicians(count=30, seed=1)
        config = TweetGeneratorConfig(topic=STATE_OF_EMERGENCY, weeks=4, seed=3,
                                      tweets_per_politician_per_week=4)
        tweets = generate_tweets(politicians, config)
        weeks = sorted({t["week"] for t in tweets})
        first_week_text = " ".join(t["text"] for t in tweets if t["week"] == weeks[0])
        last_week_text = " ".join(t["text"] for t in tweets if t["week"] == weeks[-1])
        assert first_week_text.count("hommage") > last_week_text.count("hommage")
        assert last_week_text.count("vigilance") > first_week_text.count("vigilance")

    def test_facebook_posts_shape(self):
        politicians = generate_politicians(count=5, seed=1)
        posts = generate_facebook_posts(politicians, posts_per_politician=2, seed=3)
        assert len(posts) == 10
        assert {"author", "message", "likes", "shares", "comments"} <= set(posts[0])

    def test_figure2_example_tweet_content(self):
        tweet = figure2_example_tweet()
        assert tweet["id"] == 464244242167342513
        assert tweet["entities"]["hashtags"] == ["SIA2016"]
        assert tweet["user"]["screen_name"] == "fhollande"

    def test_tweet_to_json_has_exact_figure2_shape(self):
        from repro.datasets import Tweet

        tweet = Tweet.from_record(figure2_example_tweet())
        document = tweet.to_json()
        assert set(document) == {"created_at", "id", "text", "user",
                                 "retweet_count", "favorite_count", "entities"}
        assert set(document["user"]) == {"id", "name", "screen_name",
                                         "description", "followers_count"}
        assert set(document["entities"]) == {"hashtags", "urls"}
        assert document == figure2_example_tweet()

    def test_tweet_record_round_trips_generator_metadata(self):
        from repro.datasets import Tweet, generate_tweet_objects

        politicians = generate_politicians(count=5, seed=1)
        tweet = generate_tweet_objects(politicians, TweetGeneratorConfig(seed=3))[0]
        record = tweet.record()
        assert {"week", "group", "party_id"} <= set(record)
        assert Tweet.from_record(record) == tweet
        # The native JSON shape keeps the metadata out.
        assert "week" not in tweet.to_json() and "group" not in tweet.to_json()


class TestRelationalSources:
    def test_insee_tables(self):
        db = build_insee_database(seed=1)
        assert set(db.table_names()) == {"agriculture_production", "departments",
                                         "open_datasets", "unemployment"}
        assert len(db.table("departments")) == 20

    def test_agriculture_production_2015_rows(self):
        db = build_insee_database(seed=1)
        rows = db.query("SELECT COUNT(*) AS n FROM agriculture_production WHERE year = 2015")
        assert rows[0]["n"] > 0

    def test_open_datasets_registry_points_to_real_tables(self):
        db = build_insee_database(seed=1)
        for row in db.query("SELECT table_name, source_uri FROM open_datasets"):
            if row["source_uri"] == "sql://insee":
                assert db.has_table(row["table_name"])

    def test_elections_shares_sum_to_100(self):
        politicians = generate_politicians(count=10, seed=1)
        db = build_elections_database(politicians, seed=2)
        rows = db.query("SELECT dept_code, round, SUM(share) AS total FROM results "
                        "GROUP BY dept_code, round")
        assert all(abs(r["total"] - 100.0) < 1.0 for r in rows)

    def test_candidates_reference_politicians(self):
        politicians = generate_politicians(count=10, seed=1)
        db = build_elections_database(politicians, seed=2)
        names = {r["candidate_name"] for r in db.query("SELECT candidate_name FROM candidates")}
        assert names == {p.name for p in politicians}


class TestRDFSources:
    def test_dbpedia_reuses_glue_uris(self):
        landscape = generate_landscape(count=10, seed=1)
        dbpedia = build_dbpedia_graph(landscape.politicians, seed=2)
        for politician in landscape.politicians[:3]:
            assert uri(politician.dbpedia_uri) in {t.subject for t in dbpedia}

    def test_ign_department_codes_match_insee(self):
        ign = build_ign_graph(seed=1)
        insee = build_insee_database(seed=1)
        codes_rdf = {t.obj.value for t in ign
                     if t.predicate.value.endswith("codeINSEE")}
        codes_sql = {r["code"] for r in insee.query("SELECT code FROM departments")}
        assert codes_rdf == codes_sql

    def test_ign_departments_typed(self):
        ign = build_ign_graph(seed=1)
        departements = [t for t in ign if t.predicate == RDF_TYPE
                        and t.obj.value.endswith("Departement")]
        assert len(departements) == 20


class TestDemoInstance:
    def test_all_sources_registered(self, demo):
        uris = set(demo.instance.source_uris())
        assert {TWEETS_URI, INSEE_URI, "solr://facebook", "sql://elections",
                "rdf://dbpedia", "rdf://ign"} <= uris

    def test_templates_registered(self, demo):
        assert "qG" in demo.instance.templates
        assert "tweetContains" in demo.instance.templates

    def test_head_of_state_has_tweets(self, demo):
        head = demo.head_of_state()
        store = demo.instance.source(TWEETS_URI).store
        assert store.search(f"user.screen_name:{head.twitter_account}", limit=None).total >= 1

    def test_claim_and_figure2_tweets_included(self, demo):
        store = demo.instance.source(TWEETS_URI).store
        assert store.search("entities.hashtags:sia2016", limit=None).total >= 1
        assert store.search("entities.hashtags:chomage", limit=None).total >= 1

    def test_build_is_deterministic(self):
        a = build_demo_instance(DemoConfig(politicians=8, weeks=2, seed=5))
        b = build_demo_instance(DemoConfig(politicians=8, weeks=2, seed=5))
        assert [t["id"] for t in a.tweets] == [t["id"] for t in b.tweets]
        assert len(a.instance.graph) == len(b.instance.graph)

    def test_statistics_report_every_source(self, demo):
        stats = demo.instance.size_summary()
        assert stats["glue_triples"] > 0
        assert all(size > 0 for size in stats["sources"].values())
