"""Unit tests for CMQ construction, atoms, templates and the textual syntax."""

import pytest

from repro.core import (
    AtomTemplateRegistry,
    CMQBuilder,
    ConjunctiveMixedQuery,
    GLUE_SOURCE,
    RDFQuery,
    SourceAtom,
    parse_cmq,
)
from repro.core.sources import FullTextQuery, SQLQuery
from repro.errors import MixedQueryError, ParseError


@pytest.fixture
def registry():
    reg = AtomTemplateRegistry()
    reg.register_graph_bgp(
        "qG",
        "SELECT ?id WHERE { ?x ttn:position ttn:headOfState . ?x ttn:twitterAccount ?id }",
        parameters=("id",),
    )
    reg.register_fulltext(
        "tweetContains",
        query="entities.hashtags:{tag}",
        fields={"t": "text", "id": "user.screen_name"},
        parameters=("t", "id", "tag"),
        default_source="solr://tweets",
    )
    reg.register_sql(
        "deptPopulation",
        sql="SELECT code AS dept, population AS pop FROM departments",
        parameters=("dept", "pop"),
        default_source="sql://insee",
    )
    return reg


class TestSourceAtom:
    def test_requires_some_source(self):
        q = RDFQuery.from_text("SELECT ?x WHERE { ?x ?p ?o }")
        with pytest.raises(MixedQueryError):
            SourceAtom(name="a", query=q)

    def test_source_and_variable_are_exclusive(self):
        q = RDFQuery.from_text("SELECT ?x WHERE { ?x ?p ?o }")
        with pytest.raises(MixedQueryError):
            SourceAtom(name="a", query=q, source="rdf://x", source_variable="d")

    def test_output_variables_renamed_and_constants_removed(self):
        q = FullTextQuery.create("entities.hashtags:{tag}", {"t": "text", "id": "user.screen_name"})
        atom = SourceAtom(name="tweetContains", query=q, source="solr://tweets",
                          renames={"id": "account"}, constants={"tag": "SIA2016"})
        assert atom.output_variables() == {"t", "account"}
        assert atom.required_parameters() == set()

    def test_source_variable_is_required_parameter(self):
        q = SQLQuery(sql="SELECT rate AS rate FROM unemployment")
        atom = SourceAtom(name="stats", query=q, source_variable="src")
        assert "src" in atom.required_parameters()

    def test_formal_bindings_translation(self):
        q = FullTextQuery.create("entities.hashtags:{tag}", {"t": "text", "id": "user.screen_name"})
        atom = SourceAtom(name="tweetContains", query=q, source="solr://tweets",
                          renames={"id": "account"}, constants={"tag": "SIA2016"})
        formal = atom.formal_bindings({"account": "fhollande", "irrelevant": 1})
        assert formal == {"tag": "SIA2016", "id": "fhollande"}

    def test_translate_row_back_to_cmq_names(self):
        q = FullTextQuery.create("*:*", {"t": "text", "id": "user.screen_name"})
        atom = SourceAtom(name="a", query=q, source="solr://tweets", renames={"id": "account"})
        assert atom.translate_row({"t": "x", "id": "y"}) == {"t": "x", "account": "y"}

    def test_execute_on_applies_constants_filter(self, small_tweet_store):
        from repro.core import FullTextSource

        source = FullTextSource("solr://tweets", small_tweet_store)
        q = FullTextQuery.create("*:*", {"t": "text", "id": "user.screen_name"})
        atom = SourceAtom(name="a", query=q, source="solr://tweets",
                          constants={"id": "mlepen"})
        rows = atom.execute_on(source)
        assert len(rows) == 1 and "id" not in rows[0]

    def test_describe_mentions_target(self):
        q = SQLQuery(sql="SELECT rate AS rate FROM unemployment")
        atom = SourceAtom(name="stats", query=q, source_variable="src")
        assert "?src" in atom.describe()


class TestCMQ:
    def test_head_must_occur_in_body(self):
        q = RDFQuery.from_text("SELECT ?x WHERE { ?x ?p ?o }")
        atom = SourceAtom(name="a", query=q, source=GLUE_SOURCE)
        with pytest.raises(MixedQueryError):
            ConjunctiveMixedQuery(name="q", head=("missing",), atoms=[atom])

    def test_needs_at_least_one_atom(self):
        with pytest.raises(MixedQueryError):
            ConjunctiveMixedQuery(name="q", head=(), atoms=[])

    def test_glue_and_source_atoms_partition(self):
        cmq = (CMQBuilder("q", head=["id", "t"])
               .graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
               .fulltext("tw", source="solr://tweets", query="*:*",
                         fields={"t": "text", "id": "user.screen_name"})
               .build())
        assert len(cmq.glue_atoms()) == 1
        assert len(cmq.source_atoms()) == 1
        assert not cmq.uses_dynamic_sources()

    def test_dynamic_source_flag(self):
        cmq = (CMQBuilder("q", head=["rate"])
               .graph("SELECT ?src WHERE { ?x ttn:endpoint ?src }")
               .sql("stats", source_variable="src",
                    sql="SELECT rate AS rate FROM unemployment")
               .build())
        assert cmq.uses_dynamic_sources()

    def test_output_variables_default_to_sorted_body(self):
        cmq = (CMQBuilder("q")
               .graph("SELECT ?id ?x WHERE { ?x ttn:twitterAccount ?id }")
               .build())
        assert cmq.output_variables() == ("id", "x")

    def test_str_mentions_atoms(self):
        cmq = (CMQBuilder("qSIA", head=["id"])
               .graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
               .build())
        assert "qSIA" in str(cmq) and "qG" in str(cmq)


class TestTemplatesAndParsing:
    def test_instantiate_with_constants_and_renames(self, registry):
        template = registry.get("tweetContains")
        atom = template.instantiate([_var("tweet"), _var("id"), "SIA2016"])
        assert atom.constants == {"tag": "SIA2016"}
        assert atom.renames == {"t": "tweet"}
        assert atom.source == "solr://tweets"

    def test_wrong_arity_rejected(self, registry):
        with pytest.raises(MixedQueryError):
            registry.get("tweetContains").instantiate(["onlyone"])

    def test_unknown_template_rejected(self, registry):
        with pytest.raises(MixedQueryError):
            registry.get("nope")

    def test_parse_paper_qsia(self, registry):
        cmq = parse_cmq('qSIA(t, id) :- qG(id), tweetContains(t, id, "SIA2016")[solr://tweets]',
                        registry)
        assert cmq.name == "qSIA"
        assert cmq.head == ("t", "id")
        assert len(cmq.atoms) == 2
        assert cmq.atoms[0].is_glue()
        assert cmq.atoms[1].source == "solr://tweets"
        assert cmq.atoms[1].constants == {"tag": "SIA2016"}

    def test_parse_with_source_variable(self, registry):
        cmq = parse_cmq('q(t, id) :- qG(id), tweetContains(t, id, "SIA2016")[dSolr]', registry)
        assert cmq.atoms[1].source_variable == "dSolr"

    def test_parse_without_source_uses_template_default(self, registry):
        cmq = parse_cmq('q(pop) :- deptPopulation(dept, pop)', registry)
        assert cmq.atoms[0].source == "sql://insee"

    def test_parse_numeric_constant(self, registry):
        cmq = parse_cmq('q(dept) :- deptPopulation(dept, 1000000)', registry)
        assert cmq.atoms[0].constants == {"pop": 1000000}

    def test_parse_missing_separator_raises(self, registry):
        with pytest.raises(ParseError):
            parse_cmq("qSIA(t, id) qG(id)", registry)

    def test_parse_malformed_atom_raises(self, registry):
        with pytest.raises(ParseError):
            parse_cmq("q(t) :- qG id", registry)

    def test_registry_names(self, registry):
        assert "qG" in registry.names() and "tweetContains" in registry


def _var(name):
    from repro.core import VariableArg

    return VariableArg(name)
