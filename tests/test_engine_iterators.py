"""Unit tests for the Volcano-style iterator operators."""

import pytest

from repro.engine import (
    Aggregate,
    AggregateSpec,
    BindJoin,
    CallbackScan,
    Distinct,
    Extend,
    HashJoin,
    Limit,
    MaterializedScan,
    NestedLoopJoin,
    ParallelStats,
    Project,
    Select,
    Sort,
    Union,
    run_parallel,
    run_tasks,
)

PEOPLE = [
    {"id": "p1", "group": "left", "retweets": 10},
    {"id": "p2", "group": "right", "retweets": 40},
    {"id": "p3", "group": "left", "retweets": 25},
]

ACCOUNTS = [
    {"id": "p1", "handle": "alice"},
    {"id": "p2", "handle": "bob"},
    {"id": "p4", "handle": "dora"},
]


class TestLeafAndUnary:
    def test_materialized_scan_copies_rows(self):
        scan = MaterializedScan(PEOPLE)
        rows = scan.rows()
        rows[0]["id"] = "mutated"
        assert PEOPLE[0]["id"] == "p1"
        assert scan.stats.produced == 3

    def test_callback_scan_defers_evaluation(self):
        calls = []

        def fetch():
            calls.append(1)
            return PEOPLE

        scan = CallbackScan(fetch)
        assert calls == []
        assert len(scan.rows()) == 3
        assert calls == [1]

    def test_select(self):
        op = Select(MaterializedScan(PEOPLE), lambda r: r["group"] == "left")
        assert {r["id"] for r in op} == {"p1", "p3"}

    def test_project_with_renames(self):
        op = Project(MaterializedScan(PEOPLE), ["id", "group"], renames={"group": "current"})
        row = op.rows()[0]
        assert set(row) == {"id", "current"}

    def test_project_missing_column_yields_none(self):
        op = Project(MaterializedScan(PEOPLE), ["id", "missing"])
        assert op.rows()[0]["missing"] is None

    def test_extend_adds_computed_column(self):
        op = Extend(MaterializedScan(PEOPLE), "double", lambda r: r["retweets"] * 2)
        assert op.rows()[1]["double"] == 80

    def test_distinct(self):
        op = Distinct(MaterializedScan([{"a": 1}, {"a": 1}, {"a": 2}]))
        assert op.rows() == [{"a": 1}, {"a": 2}]

    def test_sort_multiple_keys(self):
        op = Sort(MaterializedScan(PEOPLE), [("group", False), ("retweets", True)])
        assert [r["id"] for r in op] == ["p3", "p1", "p2"]

    def test_sort_handles_none(self):
        rows = [{"x": None}, {"x": 2}, {"x": 1}]
        op = Sort(MaterializedScan(rows), [("x", False)])
        assert [r["x"] for r in op] == [1, 2, None]

    def test_limit(self):
        assert len(Limit(MaterializedScan(PEOPLE), 2).rows()) == 2
        assert Limit(MaterializedScan(PEOPLE), 0).rows() == []

    def test_union(self):
        op = Union([MaterializedScan(PEOPLE), MaterializedScan(ACCOUNTS)])
        assert len(op.rows()) == 6

    def test_explain_mentions_children(self):
        plan = Limit(Select(MaterializedScan(PEOPLE, name="people"), lambda r: True), 1)
        text = plan.explain()
        assert "limit" in text and "people" in text


class TestJoins:
    def test_hash_join_natural(self):
        join = HashJoin(MaterializedScan(PEOPLE), MaterializedScan(ACCOUNTS))
        rows = join.rows()
        assert {r["id"] for r in rows} == {"p1", "p2"}
        assert rows[0].keys() >= {"id", "group", "handle"}

    def test_hash_join_explicit_keys(self):
        join = HashJoin(MaterializedScan(PEOPLE), MaterializedScan(ACCOUNTS), keys=["id"])
        assert len(join.rows()) == 2

    def test_hash_join_without_shared_keys_is_cross_product(self):
        join = HashJoin(MaterializedScan([{"a": 1}, {"a": 2}]), MaterializedScan([{"b": 3}]))
        assert len(join.rows()) == 2

    def test_nested_loop_join_with_condition(self):
        join = NestedLoopJoin(MaterializedScan(PEOPLE), MaterializedScan([{"threshold": 20}]),
                              condition=lambda l, r: l["retweets"] > r["threshold"])
        assert {r["id"] for r in join.rows()} == {"p2", "p3"}

    def test_nested_loop_join_checks_shared_variable_compatibility(self):
        join = NestedLoopJoin(MaterializedScan(PEOPLE), MaterializedScan(ACCOUNTS))
        assert {r["id"] for r in join.rows()} == {"p1", "p2"}

    def test_bind_join_passes_bindings(self):
        seen = []

        def fetch(row):
            seen.append(row["id"])
            return [a for a in ACCOUNTS if a["id"] == row["id"]]

        join = BindJoin(MaterializedScan(PEOPLE), fetch)
        rows = join.rows()
        assert {r["handle"] for r in rows} == {"alice", "bob"}
        assert len(seen) == 3

    def test_bind_join_deduplicates_identical_calls(self):
        calls = []

        def fetch(row):
            calls.append(row["group"])
            return [{"group": row["group"], "label": row["group"].upper()}]

        left = MaterializedScan([{"group": "left"}, {"group": "left"}, {"group": "right"}])
        join = BindJoin(left, fetch, call_key=lambda r: (r["group"],))
        assert len(join.rows()) == 3
        assert join.calls == 2

    def test_bind_join_discards_incompatible_rows(self):
        def fetch(row):
            return [{"id": "different", "extra": 1}]

        join = BindJoin(MaterializedScan(PEOPLE), fetch)
        assert join.rows() == []


class TestAggregate:
    def test_group_by_count_and_sum(self):
        op = Aggregate(MaterializedScan(PEOPLE), ["group"], [
            AggregateSpec("count", None, "n"),
            AggregateSpec("sum", "retweets", "total"),
        ])
        by_group = {r["group"]: r for r in op}
        assert by_group["left"]["n"] == 2 and by_group["left"]["total"] == 35
        assert by_group["right"]["total"] == 40

    def test_global_aggregate_without_group(self):
        op = Aggregate(MaterializedScan(PEOPLE), [], [AggregateSpec("avg", "retweets", "avg")])
        assert op.rows()[0]["avg"] == pytest.approx(25.0)

    def test_min_max_collect(self):
        op = Aggregate(MaterializedScan(PEOPLE), [], [
            AggregateSpec("min", "retweets", "lo"),
            AggregateSpec("max", "retweets", "hi"),
            AggregateSpec("collect", "id", "ids"),
        ])
        row = op.rows()[0]
        assert (row["lo"], row["hi"]) == (10, 40)
        assert sorted(row["ids"]) == ["p1", "p2", "p3"]

    def test_nulls_ignored(self):
        rows = PEOPLE + [{"id": "p9", "group": "left", "retweets": None}]
        op = Aggregate(MaterializedScan(rows), ["group"], [AggregateSpec("count", "retweets", "n")])
        assert {r["group"]: r["n"] for r in op}["left"] == 2


class TestParallel:
    def test_results_preserve_order(self):
        operators = [MaterializedScan([{"i": i}]) for i in range(6)]
        outputs = run_parallel(operators, max_workers=3)
        assert [o[0]["i"] for o in outputs] == list(range(6))

    def test_stats_collected(self):
        stats = ParallelStats()
        run_parallel([MaterializedScan(PEOPLE), MaterializedScan(ACCOUNTS)],
                     max_workers=2, stats=stats)
        assert stats.tasks == 2
        assert len(stats.per_task_seconds) == 2
        assert stats.speedup >= 1.0

    def test_sequential_mode(self):
        outputs = run_parallel([MaterializedScan(PEOPLE)], max_workers=1)
        assert len(outputs) == 1

    def test_run_tasks(self):
        assert run_tasks([lambda: 1, lambda: 2], max_workers=2) == [1, 2]
