"""Unit tests for the Volcano-style iterator operators."""

import pytest

from repro.engine import (
    Aggregate,
    AggregateSpec,
    BatchBindJoin,
    BindingBatch,
    BindJoin,
    CallbackScan,
    Distinct,
    Extend,
    HashJoin,
    Limit,
    MaterializedScan,
    NestedLoopJoin,
    ParallelStats,
    Project,
    Select,
    Sort,
    Union,
    batches_from_rows,
    run_parallel,
    run_tasks,
)

PEOPLE = [
    {"id": "p1", "group": "left", "retweets": 10},
    {"id": "p2", "group": "right", "retweets": 40},
    {"id": "p3", "group": "left", "retweets": 25},
]

ACCOUNTS = [
    {"id": "p1", "handle": "alice"},
    {"id": "p2", "handle": "bob"},
    {"id": "p4", "handle": "dora"},
]


class TestLeafAndUnary:
    def test_materialized_scan_copies_rows(self):
        scan = MaterializedScan(PEOPLE)
        rows = scan.rows()
        rows[0]["id"] = "mutated"
        assert PEOPLE[0]["id"] == "p1"
        assert scan.stats.produced == 3

    def test_callback_scan_defers_evaluation(self):
        calls = []

        def fetch():
            calls.append(1)
            return PEOPLE

        scan = CallbackScan(fetch)
        assert calls == []
        assert len(scan.rows()) == 3
        assert calls == [1]

    def test_select(self):
        op = Select(MaterializedScan(PEOPLE), lambda r: r["group"] == "left")
        assert {r["id"] for r in op} == {"p1", "p3"}

    def test_project_with_renames(self):
        op = Project(MaterializedScan(PEOPLE), ["id", "group"], renames={"group": "current"})
        row = op.rows()[0]
        assert set(row) == {"id", "current"}

    def test_project_missing_column_yields_none(self):
        op = Project(MaterializedScan(PEOPLE), ["id", "missing"])
        assert op.rows()[0]["missing"] is None

    def test_extend_adds_computed_column(self):
        op = Extend(MaterializedScan(PEOPLE), "double", lambda r: r["retweets"] * 2)
        assert op.rows()[1]["double"] == 80

    def test_distinct(self):
        op = Distinct(MaterializedScan([{"a": 1}, {"a": 1}, {"a": 2}]))
        assert op.rows() == [{"a": 1}, {"a": 2}]

    def test_sort_multiple_keys(self):
        op = Sort(MaterializedScan(PEOPLE), [("group", False), ("retweets", True)])
        assert [r["id"] for r in op] == ["p3", "p1", "p2"]

    def test_sort_handles_none(self):
        rows = [{"x": None}, {"x": 2}, {"x": 1}]
        op = Sort(MaterializedScan(rows), [("x", False)])
        assert [r["x"] for r in op] == [1, 2, None]

    def test_limit(self):
        assert len(Limit(MaterializedScan(PEOPLE), 2).rows()) == 2
        assert Limit(MaterializedScan(PEOPLE), 0).rows() == []

    def test_union(self):
        op = Union([MaterializedScan(PEOPLE), MaterializedScan(ACCOUNTS)])
        assert len(op.rows()) == 6

    def test_explain_mentions_children(self):
        plan = Limit(Select(MaterializedScan(PEOPLE, name="people"), lambda r: True), 1)
        text = plan.explain()
        assert "limit" in text and "people" in text


class TestJoins:
    def test_hash_join_natural(self):
        join = HashJoin(MaterializedScan(PEOPLE), MaterializedScan(ACCOUNTS))
        rows = join.rows()
        assert {r["id"] for r in rows} == {"p1", "p2"}
        assert rows[0].keys() >= {"id", "group", "handle"}

    def test_hash_join_explicit_keys(self):
        join = HashJoin(MaterializedScan(PEOPLE), MaterializedScan(ACCOUNTS), keys=["id"])
        assert len(join.rows()) == 2

    def test_hash_join_without_shared_keys_is_cross_product(self):
        join = HashJoin(MaterializedScan([{"a": 1}, {"a": 2}]), MaterializedScan([{"b": 3}]))
        assert len(join.rows()) == 2

    def test_nested_loop_join_with_condition(self):
        join = NestedLoopJoin(MaterializedScan(PEOPLE), MaterializedScan([{"threshold": 20}]),
                              condition=lambda l, r: l["retweets"] > r["threshold"])
        assert {r["id"] for r in join.rows()} == {"p2", "p3"}

    def test_nested_loop_join_checks_shared_variable_compatibility(self):
        join = NestedLoopJoin(MaterializedScan(PEOPLE), MaterializedScan(ACCOUNTS))
        assert {r["id"] for r in join.rows()} == {"p1", "p2"}

    def test_bind_join_passes_bindings(self):
        seen = []

        def fetch(row):
            seen.append(row["id"])
            return [a for a in ACCOUNTS if a["id"] == row["id"]]

        join = BindJoin(MaterializedScan(PEOPLE), fetch)
        rows = join.rows()
        assert {r["handle"] for r in rows} == {"alice", "bob"}
        assert len(seen) == 3

    def test_bind_join_deduplicates_identical_calls(self):
        calls = []

        def fetch(row):
            calls.append(row["group"])
            return [{"group": row["group"], "label": row["group"].upper()}]

        left = MaterializedScan([{"group": "left"}, {"group": "left"}, {"group": "right"}])
        join = BindJoin(left, fetch, call_key=lambda r: (r["group"],))
        assert len(join.rows()) == 3
        assert join.calls == 2

    def test_bind_join_discards_incompatible_rows(self):
        def fetch(row):
            return [{"id": "different", "extra": 1}]

        join = BindJoin(MaterializedScan(PEOPLE), fetch)
        assert join.rows() == []


class TestBindingBatch:
    def test_batches_are_schema_uniform(self):
        rows = [{"a": 1}, {"a": 2}, {"b": 3}, {"a": 4}]
        batches = list(batches_from_rows(iter(rows)))
        assert [b.columns for b in batches] == [("a",), ("b",), ("a",)]
        assert [list(b.dicts()) for b in batches] == [
            [{"a": 1}, {"a": 2}], [{"b": 3}], [{"a": 4}]]

    def test_batch_size_limit(self):
        rows = [{"a": i} for i in range(7)]
        batches = list(batches_from_rows(iter(rows), size=3))
        assert [len(b) for b in batches] == [3, 3, 1]

    def test_projector_fills_missing_with_none(self):
        batch = BindingBatch.from_dicts([{"a": 1, "b": 2}])
        project = batch.projector(["b", "missing"])
        assert project(batch.rows[0]) == (2, None)

    def test_sorted_pairs_cached(self):
        batch = BindingBatch.from_dicts([{"b": 1, "a": 2}])
        assert batch.sorted_pairs() == (("a", 1), ("b", 0))
        assert batch.sorted_pairs() is batch.sorted_pairs()

    def test_operator_batches_match_rows(self):
        scan = MaterializedScan(PEOPLE)
        via_batches = [row for batch in scan.batches() for row in batch.dicts()]
        assert via_batches == MaterializedScan(PEOPLE).rows()

    def test_estimated_sizes(self):
        scan = MaterializedScan(PEOPLE)
        assert scan.estimated_size() == 3
        assert Project(scan, ["id"]).estimated_size() == 3
        assert Select(scan, lambda r: True).estimated_size() is None


class TestBatchBindJoin:
    def test_batches_distinct_bindings(self):
        batches = []

        def fetch_batch(bindings):
            batches.append(list(bindings))
            return [[a for a in ACCOUNTS if a["id"] == b["id"]] for b in bindings]

        join = BatchBindJoin(MaterializedScan(PEOPLE), fetch_batch, batch_size=10)
        rows = join.rows()
        assert {r.get("handle") for r in rows} == {"alice", "bob"}
        assert join.calls == 1
        assert len(batches) == 1 and len(batches[0]) == 3

    def test_matches_bind_join_output_order(self):
        def fetch(row):
            return [a for a in ACCOUNTS if a["id"] == row["id"]]

        def fetch_batch(bindings):
            return [fetch(b) for b in bindings]

        reference = BindJoin(MaterializedScan(PEOPLE), fetch).rows()
        batched = BatchBindJoin(MaterializedScan(PEOPLE), fetch_batch,
                                batch_size=2).rows()
        assert batched == reference

    def test_deduplicates_across_batches(self):
        shipped = []

        def fetch_batch(bindings):
            shipped.extend(b["group"] for b in bindings)
            return [[{"group": b["group"], "label": b["group"].upper()}]
                    for b in bindings]

        left = MaterializedScan([{"group": "left"}, {"group": "left"},
                                 {"group": "right"}, {"group": "left"}])
        join = BatchBindJoin(left, fetch_batch,
                             call_key=lambda r: (r["group"],), batch_size=1)
        assert len(join.rows()) == 4
        assert sorted(shipped) == ["left", "right"]
        assert join.bindings_shipped == 2

    def test_sieve_drops_bindings_without_calls(self):
        def fetch_batch(bindings):
            return [[{"id": b["id"], "hit": True}] for b in bindings]

        join = BatchBindJoin(MaterializedScan(PEOPLE), fetch_batch,
                             call_key=lambda r: (r["id"],),
                             binding_of=lambda r: {"id": r["id"]},
                             sieve=lambda b: b["id"] == "p2", batch_size=10)
        rows = join.rows()
        assert [r["id"] for r in rows] == ["p2"]
        assert join.sieved_out == 2
        assert join.bindings_shipped == 1

    def test_all_sieved_means_no_call(self):
        def fetch_batch(bindings):  # pragma: no cover - must not run
            raise AssertionError("sieved batch must not be shipped")

        join = BatchBindJoin(MaterializedScan(PEOPLE), fetch_batch,
                             sieve=lambda b: False, batch_size=2)
        assert join.rows() == []
        assert join.calls == 0
        assert join.sieved_out == 3

    def test_misaligned_fetch_batch_raises(self):
        from repro.errors import MixedQueryError

        join = BatchBindJoin(MaterializedScan(PEOPLE), lambda bindings: [[]],
                             batch_size=10)
        with pytest.raises(MixedQueryError):
            join.rows()

    def test_discards_incompatible_rows(self):
        def fetch_batch(bindings):
            return [[{"id": "different", "extra": 1}] for _ in bindings]

        join = BatchBindJoin(MaterializedScan(PEOPLE), fetch_batch, batch_size=10)
        assert join.rows() == []


class TestHashJoinStreaming:
    def test_builds_on_smaller_side(self):
        big = MaterializedScan([{"id": f"p{i}", "n": i} for i in range(50)])
        small = MaterializedScan(ACCOUNTS)
        join = HashJoin(big, small)
        rows = join.rows()
        assert {r["id"] for r in rows} == {"p1", "p2", "p4"}
        # Probe side streamed: consumed counts the bigger input.
        assert join.stats.consumed == 50

    def test_natural_keys_cover_every_probe_batch_schema(self):
        # A shared variable appearing only in a *later* probe batch must
        # still become a join key (regression: first-batch-only inference
        # inferred keys=['a'] and let {'a':1,'c':99} join {'a':1,'c':1}).
        left = MaterializedScan([{"a": 1, "b": 10}, {"a": 1, "c": 99}])
        right = MaterializedScan([{"a": 1, "c": 1}])
        join = HashJoin(left, right)
        assert join.rows() == []  # keys are [a, c]; no row binds both alike

    def test_swapped_build_side_keeps_merge_semantics(self):
        # Explicit keys with a conflicting non-key column: the right
        # side's value must win, whichever side builds the hash table.
        left = MaterializedScan([{"k": 1, "v": "left"}, {"k": 1, "v": "left2"}])
        right = MaterializedScan([{"k": 1, "v": "right"}])
        rows = HashJoin(left, right, keys=["k"]).rows()
        assert [r["v"] for r in rows] == ["right", "right"]
        rows = HashJoin(right, left, keys=["k"]).rows()
        assert sorted(r["v"] for r in rows) == ["left", "left2"]


class TestAggregate:
    def test_group_by_count_and_sum(self):
        op = Aggregate(MaterializedScan(PEOPLE), ["group"], [
            AggregateSpec("count", None, "n"),
            AggregateSpec("sum", "retweets", "total"),
        ])
        by_group = {r["group"]: r for r in op}
        assert by_group["left"]["n"] == 2 and by_group["left"]["total"] == 35
        assert by_group["right"]["total"] == 40

    def test_global_aggregate_without_group(self):
        op = Aggregate(MaterializedScan(PEOPLE), [], [AggregateSpec("avg", "retweets", "avg")])
        assert op.rows()[0]["avg"] == pytest.approx(25.0)

    def test_min_max_collect(self):
        op = Aggregate(MaterializedScan(PEOPLE), [], [
            AggregateSpec("min", "retweets", "lo"),
            AggregateSpec("max", "retweets", "hi"),
            AggregateSpec("collect", "id", "ids"),
        ])
        row = op.rows()[0]
        assert (row["lo"], row["hi"]) == (10, 40)
        assert sorted(row["ids"]) == ["p1", "p2", "p3"]

    def test_nulls_ignored(self):
        rows = PEOPLE + [{"id": "p9", "group": "left", "retweets": None}]
        op = Aggregate(MaterializedScan(rows), ["group"], [AggregateSpec("count", "retweets", "n")])
        assert {r["group"]: r["n"] for r in op}["left"] == 2


class TestParallel:
    def test_results_preserve_order(self):
        operators = [MaterializedScan([{"i": i}]) for i in range(6)]
        outputs = run_parallel(operators, max_workers=3)
        assert [o[0]["i"] for o in outputs] == list(range(6))

    def test_stats_collected(self):
        stats = ParallelStats()
        run_parallel([MaterializedScan(PEOPLE), MaterializedScan(ACCOUNTS)],
                     max_workers=2, stats=stats)
        assert stats.tasks == 2
        assert len(stats.per_task_seconds) == 2
        assert stats.speedup >= 1.0

    def test_sequential_mode(self):
        outputs = run_parallel([MaterializedScan(PEOPLE)], max_workers=1)
        assert len(outputs) == 1

    def test_run_tasks(self):
        assert run_tasks([lambda: 1, lambda: 2], max_workers=2) == [1, 2]
