"""Property-based tests (hypothesis) on core data structures and invariants."""

from __future__ import annotations

import string

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.digest import BloomFilter, EquiWidthHistogram, ValueSetSummary
from repro.engine import Aggregate, AggregateSpec, BindJoin, Distinct, HashJoin, MaterializedScan
from repro.fulltext import Analyzer, FieldConfig, FullTextStore
from repro.rdf import BGPQuery, Graph, Literal, Triple, URI, evaluate_bgp, pattern, var
from repro.rdf.entailment import saturate, saturate_delta
from repro.rdf.ntriples import parse_ntriples, serialize_ntriples
from repro.relational import Database

# ---------------------------------------------------------------------------
# Strategies
# ---------------------------------------------------------------------------

_local_names = st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6)
_uris = _local_names.map(lambda s: URI("http://ex.org/" + s))
_literals = st.text(alphabet=string.ascii_letters + " éàç", min_size=0, max_size=12).map(Literal)
_subjects = _uris
_predicates = st.sampled_from([URI("http://ex.org/p"), URI("http://ex.org/q"),
                               URI("http://ex.org/r")])
_objects = st.one_of(_uris, _literals)
_triples = st.builds(Triple, _subjects, _predicates, _objects)
_triple_sets = st.lists(_triples, min_size=0, max_size=40)

_rows = st.lists(
    st.fixed_dictionaries({
        "a": st.integers(min_value=0, max_value=5),
        "b": st.text(alphabet="xyz", min_size=1, max_size=2),
        "c": st.one_of(st.none(), st.integers(min_value=-10, max_value=10)),
    }),
    min_size=0, max_size=30,
)


def _row_key(row: dict) -> list[tuple[str, str]]:
    """Order-stable, type-safe comparison key for binding rows."""
    return sorted((k, f"{type(v).__name__}:{v}") for k, v in row.items())


# ---------------------------------------------------------------------------
# RDF invariants
# ---------------------------------------------------------------------------

class TestRDFProperties:
    @given(_triple_sets)
    @settings(max_examples=50, deadline=None)
    def test_graph_add_is_idempotent_set_semantics(self, triples):
        graph = Graph()
        graph.add_all(triples)
        graph.add_all(triples)
        assert len(graph) == len(set(triples))

    @given(_triple_sets)
    @settings(max_examples=50, deadline=None)
    def test_match_by_predicate_partitions_graph(self, triples):
        graph = Graph(triples=triples)
        total = sum(graph.count(pattern("?s", predicate, "?o"))
                    for predicate in graph.predicates())
        assert total == len(graph)

    @given(_triple_sets)
    @settings(max_examples=30, deadline=None)
    def test_ntriples_round_trip(self, triples):
        graph = Graph(triples=triples)
        reparsed = parse_ntriples(serialize_ntriples(graph))
        assert set(reparsed) == set(graph)

    @given(_triple_sets)
    @settings(max_examples=30, deadline=None)
    def test_saturation_is_monotone_and_idempotent(self, triples):
        graph = Graph(triples=triples)
        saturated, _ = saturate(graph)
        assert set(graph) <= set(saturated)
        twice, stats = saturate(saturated)
        assert len(twice) == len(saturated)
        assert stats.implicit_triples == 0

    @given(_triple_sets)
    @settings(max_examples=30, deadline=None)
    def test_bgp_single_pattern_matches_graph_scan(self, triples):
        graph = Graph(triples=triples)
        query = BGPQuery(head=(), patterns=(pattern("?s", "?p", "?o"),))
        rows = evaluate_bgp(query, graph)
        assert len(rows) == len(graph)


# ---------------------------------------------------------------------------
# Engine invariants
# ---------------------------------------------------------------------------

class TestEngineProperties:
    @given(_rows, _rows)
    @settings(max_examples=50, deadline=None)
    def test_hash_join_equals_nested_loop_semantics(self, left, right):
        hash_rows = HashJoin(MaterializedScan(left), MaterializedScan(right), keys=["a"]).rows()
        reference = [{**l, **r} for l in left for r in right if l["a"] == r["a"]]
        assert sorted(map(_row_key, hash_rows)) == sorted(map(_row_key, reference))

    @given(_rows)
    @settings(max_examples=50, deadline=None)
    def test_distinct_is_idempotent_and_preserves_membership(self, rows):
        once = Distinct(MaterializedScan(rows)).rows()
        twice = Distinct(MaterializedScan(once)).rows()
        assert once == twice
        assert all(row in rows for row in once)

    @given(_rows)
    @settings(max_examples=50, deadline=None)
    def test_aggregate_counts_sum_to_input_size(self, rows):
        groups = Aggregate(MaterializedScan(rows), ["b"],
                           [AggregateSpec("count", None, "n")]).rows()
        assert sum(g["n"] for g in groups) == len(rows)

    @given(_rows)
    @settings(max_examples=50, deadline=None)
    def test_bind_join_equivalent_to_hash_join(self, rows):
        right = [{"a": i, "label": f"L{i}"} for i in range(6)]

        def fetch(binding):
            return [r for r in right if r["a"] == binding.get("a")]

        bind_rows = BindJoin(MaterializedScan(rows), fetch).rows()
        hash_rows = HashJoin(MaterializedScan(rows), MaterializedScan(right), keys=["a"]).rows()
        assert sorted(map(_row_key, bind_rows)) == sorted(map(_row_key, hash_rows))


# ---------------------------------------------------------------------------
# Digest invariants
# ---------------------------------------------------------------------------

class TestDigestProperties:
    @given(st.lists(st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=10),
                    min_size=1, max_size=200),
           st.integers(min_value=2, max_value=32))
    @settings(max_examples=40, deadline=None)
    def test_bloom_filter_has_no_false_negatives(self, values, bits):
        bloom = BloomFilter(expected_items=len(values), bits_per_value=bits)
        bloom.add_all(values)
        assert all(bloom.might_contain(v) for v in values)

    @given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False),
                    min_size=0, max_size=200),
           st.integers(min_value=1, max_value=32))
    @settings(max_examples=40, deadline=None)
    def test_histogram_total_range_estimate_matches_count(self, values, buckets):
        histogram = EquiWidthHistogram(values, buckets=buckets)
        assert histogram.estimate_range(None, None) <= len(values) + 1e-6
        if values:
            assert histogram.estimate_range(None, None) >= len(values) * 0.99

    @given(st.lists(st.text(alphabet=string.ascii_lowercase + string.digits,
                            min_size=1, max_size=8), min_size=1, max_size=100))
    @settings(max_examples=40, deadline=None)
    def test_value_set_summary_membership_complete(self, values):
        summary = ValueSetSummary(values, exact_limit=10)
        assert all(summary.might_contain(v) for v in values)
        assert all(summary.matches_keyword(v) for v in values)

    @given(st.lists(st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=8),
                    min_size=1, max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_overlap_with_self_is_total(self, values):
        summary = ValueSetSummary(values)
        assert summary.overlap_estimate(summary) == 1.0


# ---------------------------------------------------------------------------
# Relational and full-text invariants
# ---------------------------------------------------------------------------

class TestSubstrateProperties:
    @given(st.lists(st.tuples(st.integers(min_value=0, max_value=1000),
                              st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6)),
                    min_size=0, max_size=50))
    @settings(max_examples=40, deadline=None, suppress_health_check=[HealthCheck.too_slow])
    def test_sql_count_and_filter_consistent(self, pairs):
        db = Database("prop")
        db.execute("CREATE TABLE t (id INTEGER, label TEXT)")
        for index, (value, label) in enumerate(pairs):
            db.execute(f"INSERT INTO t (id, label) VALUES ({value}, '{label}')")
        total = db.query("SELECT COUNT(*) AS n FROM t")[0]["n"]
        assert total == len(pairs)
        threshold = 500
        below = db.query(f"SELECT COUNT(*) AS n FROM t WHERE id < {threshold}")[0]["n"]
        above = db.query(f"SELECT COUNT(*) AS n FROM t WHERE id >= {threshold}")[0]["n"]
        assert below + above == total

    @given(st.lists(st.text(alphabet=string.ascii_lowercase + " ", min_size=1, max_size=40),
                    min_size=0, max_size=30))
    @settings(max_examples=40, deadline=None)
    def test_fulltext_store_indexes_every_document(self, texts):
        store = FullTextStore("prop", [FieldConfig("text", "text")], id_field="id")
        store.add_all({"id": i, "text": text} for i, text in enumerate(texts))
        assert len(store) == len(texts)
        assert store.search("*:*", limit=None).total == len(texts)

    @given(st.text(alphabet=string.ascii_letters + " éèàç'#-", min_size=0, max_size=80))
    @settings(max_examples=60, deadline=None)
    def test_analyzer_output_is_normalised(self, text):
        analyzer = Analyzer()
        for token in analyzer.stems(text):
            assert token == token.lower()
            assert len(token) >= 2 or token.startswith("#")


# ---------------------------------------------------------------------------
# Incremental saturation and cross-query caching
# ---------------------------------------------------------------------------

_classes = st.sampled_from([URI(f"http://ex.org/C{i}") for i in range(4)])
_schema_triples = st.one_of(
    st.builds(Triple, _classes,
              st.just(URI("http://www.w3.org/2000/01/rdf-schema#subClassOf")),
              _classes),
    st.builds(Triple, _predicates,
              st.just(URI("http://www.w3.org/2000/01/rdf-schema#subPropertyOf")),
              _predicates),
    st.builds(Triple, _predicates,
              st.just(URI("http://www.w3.org/2000/01/rdf-schema#domain")),
              _classes),
    st.builds(Triple, _predicates,
              st.just(URI("http://www.w3.org/2000/01/rdf-schema#range")),
              _classes),
)
_typing_triples = st.builds(
    Triple, _subjects,
    st.just(URI("http://www.w3.org/1999/02/22-rdf-syntax-ns#type")), _classes)
_entailment_triples = st.one_of(_triples, _schema_triples, _typing_triples)
_entailment_sets = st.lists(_entailment_triples, min_size=0, max_size=30)


class TestIncrementalSaturationProperties:
    @given(_entailment_sets, _entailment_sets)
    @settings(max_examples=60, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_delta_saturation_equals_from_scratch(self, base, delta):
        """saturate(G) then saturate_delta(Δ) == saturate(G ∪ Δ), for any
        random mix of data, typing and schema triples."""
        graph = Graph("base")
        graph.add_all(base)
        incremental, _ = saturate(graph)
        saturate_delta(incremental, delta)

        merged = Graph("merged")
        merged.add_all(base)
        merged.add_all(delta)
        scratch, _ = saturate(merged)
        assert set(incremental) == set(scratch)

    @given(_entailment_sets, st.lists(_entailment_triples, min_size=1, max_size=10),
           st.lists(_entailment_triples, min_size=1, max_size=10))
    @settings(max_examples=30, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_successive_deltas_with_maintained_schema(self, base, first, second):
        from repro.rdf import RDFSchema

        graph = Graph("base")
        graph.add_all(base)
        incremental, _ = saturate(graph)
        schema = RDFSchema.from_graph(incremental)
        saturate_delta(incremental, first, schema=schema)
        saturate_delta(incremental, second, schema=schema)

        merged = Graph("merged")
        merged.add_all(base)
        merged.add_all(first)
        merged.add_all(second)
        scratch, _ = saturate(merged)
        assert set(incremental) == set(scratch)


_handles = st.lists(
    st.tuples(st.text(alphabet=string.ascii_lowercase, min_size=1, max_size=6),
              st.integers(min_value=0, max_value=999)),
    min_size=0, max_size=12, unique_by=lambda pair: pair[0])


class TestCachedAnswerProperties:
    @given(_handles)
    @settings(max_examples=25, deadline=None,
              suppress_health_check=[HealthCheck.too_slow])
    def test_cached_cmq_equals_cold_answer_across_all_models(self, handles):
        """Warm-cache answers equal cold-cache answers for a CMQ against
        each of the four source models, on random instances."""
        from repro.core import MixedInstance, PlannerOptions
        from repro.json.store import JSONDocumentStore
        from repro.rdf import triple

        glue = Graph("glue")
        database = Database("db")
        database.execute("CREATE TABLE accounts (handle TEXT, score INTEGER)")
        store = FullTextStore("ft", [FieldConfig("text", "text"),
                                     FieldConfig("handle", "keyword")],
                              default_field="text")
        json_store = JSONDocumentStore("js")
        rdf_graph = Graph("rdf")
        for index, (handle, score) in enumerate(handles):
            glue.add(triple(f"ttn:P{index}", "ttn:twitterAccount", handle))
            database.execute("INSERT INTO accounts (handle, score) "
                             f"VALUES ('{handle}', {score})")
            store.add({"id": index, "text": f"post by {handle}", "handle": handle})
            json_store.add({"id": str(index), "handle": handle, "score": score})
            rdf_graph.add(triple(f"ttn:A{index}", "ttn:handle", handle))
            rdf_graph.add(triple(f"ttn:A{index}", "ttn:score", score))

        instance = MixedInstance(graph=glue, name="prop", entailment=False)
        instance.register_relational("sql://db", database)
        instance.register_fulltext("solr://ft", store)
        instance.register_json("json://js", json_store)
        instance.register_rdf("rdf://rdf", rdf_graph)

        queries = [
            (instance.builder("sql", head=["id", "s"])
             .graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
             .sql("scores", source="sql://db",
                  sql="SELECT handle AS id, score AS s FROM accounts "
                      "WHERE handle = {id}")
             .build()),
            (instance.builder("ft", head=["id", "t"])
             .graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
             .fulltext("posts", source="solr://ft", query="handle:{id}",
                       fields={"t": "text", "id": "handle"})
             .build()),
            (instance.builder("js", head=["id", "s"])
             .graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
             .json("docs", source="json://js",
                   pattern="{ handle: ?id, score: ?s }")
             .build()),
            (instance.builder("rdf", head=["id", "s"])
             .graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
             .rdf("scores", source="rdf://rdf",
                  sparql_text="SELECT ?id ?s WHERE { ?a ttn:handle ?id . "
                              "?a ttn:score ?s }")
             .build()),
        ]
        no_cache = PlannerOptions(result_cache=False, plan_cache=False)
        for cmq in queries:
            cold = instance.execute(cmq, options=no_cache)
            first = instance.execute(cmq)
            warm = instance.execute(cmq)
            expected = sorted(map(_row_key, cold.rows))
            assert sorted(map(_row_key, first.rows)) == expected
            assert sorted(map(_row_key, warm.rows)) == expected
