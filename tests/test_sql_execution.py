"""Unit tests for SELECT execution: filters, joins, aggregates, ordering."""

import pytest

from repro.errors import RelationalError
from repro.relational import Database


class TestBasicSelect:
    def test_select_all(self, small_database):
        result = small_database.execute("SELECT * FROM departments")
        assert len(result) == 3
        assert set(result.columns) == {"code", "name", "population"}

    def test_projection_and_alias(self, small_database):
        result = small_database.execute("SELECT name AS dept_name FROM departments")
        assert result.columns == ["dept_name"]
        assert "Paris" in result.column("dept_name")

    def test_where_comparison(self, small_database):
        rows = small_database.query("SELECT name FROM departments WHERE population > 1000000")
        assert {r["name"] for r in rows} == {"Paris", "Gironde"}

    def test_where_equality_on_text(self, small_database):
        rows = small_database.query("SELECT population FROM departments WHERE code = '29'")
        assert rows == [{"population": 915090}]

    def test_where_like(self, small_database):
        rows = small_database.query("SELECT name FROM departments WHERE name LIKE 'g%'")
        assert [r["name"] for r in rows] == ["Gironde"]

    def test_where_in_list(self, small_database):
        rows = small_database.query("SELECT name FROM departments WHERE code IN ('75', '29')")
        assert {r["name"] for r in rows} == {"Paris", "Finistere"}

    def test_arithmetic_in_projection(self, small_database):
        rows = small_database.query("SELECT population / 1000 AS thousands FROM departments "
                                    "WHERE code = '75'")
        assert rows[0]["thousands"] == pytest.approx(2165.423)

    def test_scalar_functions(self, small_database):
        rows = small_database.query("SELECT UPPER(name) AS up FROM departments WHERE code = '75'")
        assert rows[0]["up"] == "PARIS"

    def test_order_by_desc_and_limit(self, small_database):
        rows = small_database.query(
            "SELECT name FROM departments ORDER BY population DESC LIMIT 2")
        assert [r["name"] for r in rows] == ["Paris", "Gironde"]

    def test_distinct(self, small_database):
        rows = small_database.query("SELECT DISTINCT year FROM unemployment ORDER BY year")
        assert [r["year"] for r in rows] == [2014, 2015]

    def test_constant_select_without_from(self, small_database):
        rows = small_database.query("SELECT 1 + 1 AS two")
        assert rows == [{"two": 2}]


class TestJoins:
    def test_inner_join(self, small_database):
        rows = small_database.query(
            "SELECT d.name, u.rate FROM departments d "
            "JOIN unemployment u ON d.code = u.dept_code WHERE u.year = 2015"
        )
        assert len(rows) == 3
        assert {r["name"] for r in rows} == {"Paris", "Gironde", "Finistere"}

    def test_join_row_multiplicity(self, small_database):
        rows = small_database.query(
            "SELECT u.rate FROM departments d JOIN unemployment u ON d.code = u.dept_code "
            "WHERE d.code = '75'"
        )
        assert len(rows) == 2  # 2014 and 2015

    def test_left_join_keeps_unmatched(self, small_database):
        small_database.execute("INSERT INTO departments (code, name, population) "
                               "VALUES ('99', 'Nowhere', 1)")
        rows = small_database.query(
            "SELECT d.code, u.rate FROM departments d "
            "LEFT JOIN unemployment u ON d.code = u.dept_code WHERE d.code = '99'"
        )
        assert rows == [{"code": "99", "rate": None}]

    def test_join_with_non_equi_condition_falls_back_to_nested_loop(self, small_database):
        rows = small_database.query(
            "SELECT d.name FROM departments d JOIN unemployment u ON d.population > u.rate "
            "WHERE u.year = 2014"
        )
        assert len(rows) == 3  # every department's population beats the single 2014 rate


class TestAggregation:
    def test_count_star(self, small_database):
        rows = small_database.query("SELECT COUNT(*) AS n FROM unemployment")
        assert rows == [{"n": 4}]

    def test_group_by_with_avg(self, small_database):
        rows = small_database.query(
            "SELECT dept_code, AVG(rate) AS avg_rate FROM unemployment GROUP BY dept_code "
            "ORDER BY dept_code"
        )
        by_code = {r["dept_code"]: r["avg_rate"] for r in rows}
        assert by_code["75"] == pytest.approx(8.4)
        assert by_code["33"] == pytest.approx(9.4)

    def test_min_max_sum(self, small_database):
        rows = small_database.query(
            "SELECT MIN(rate) AS lo, MAX(rate) AS hi, SUM(rate) AS total FROM unemployment")
        assert rows[0]["lo"] == pytest.approx(7.9)
        assert rows[0]["hi"] == pytest.approx(9.4)
        assert rows[0]["total"] == pytest.approx(8.2 + 8.6 + 9.4 + 7.9)

    def test_having_filters_groups(self, small_database):
        rows = small_database.query(
            "SELECT dept_code FROM unemployment GROUP BY dept_code HAVING AVG(rate) > 9")
        assert [r["dept_code"] for r in rows] == ["33"]

    def test_count_distinct(self, small_database):
        rows = small_database.query(
            "SELECT COUNT(DISTINCT dept_code) AS n FROM unemployment")
        assert rows == [{"n": 3}]

    def test_aggregate_ignores_nulls(self, small_database):
        small_database.execute("INSERT INTO unemployment (dept_code, year, rate) "
                               "VALUES ('75', 2016, NULL)")
        rows = small_database.query("SELECT COUNT(rate) AS n, COUNT(*) AS total FROM unemployment")
        assert rows[0]["n"] == 4
        assert rows[0]["total"] == 5


class TestDatabaseCatalog:
    def test_create_and_insert_via_sql(self):
        db = Database("scratch")
        db.execute("CREATE TABLE t (id INTEGER PRIMARY KEY, label TEXT)")
        result = db.execute("INSERT INTO t (id, label) VALUES (1, 'a'), (2, 'b')")
        assert result.rows == [(2,)]
        assert len(db.table("t")) == 2

    def test_duplicate_table_rejected(self, small_database):
        with pytest.raises(Exception):
            small_database.execute("CREATE TABLE departments (code TEXT)")

    def test_unknown_table_raises(self, small_database):
        with pytest.raises(RelationalError):
            small_database.query("SELECT * FROM nowhere")

    def test_unknown_column_raises(self, small_database):
        with pytest.raises(RelationalError):
            small_database.query("SELECT nonexistent FROM departments")

    def test_create_table_from_rows_infers_types(self):
        db = Database("scratch")
        table = db.create_table_from_rows("people", [
            {"name": "Alice", "age": 31}, {"name": "Bob", "age": 28},
        ])
        assert table.schema.column("age").data_type.name == "INTEGER"
        assert db.query("SELECT COUNT(*) AS n FROM people") == [{"n": 2}]

    def test_statistics(self, small_database):
        stats = small_database.statistics()
        assert stats["departments"]["rows"] == 3

    def test_drop_table(self, small_database):
        small_database.drop_table("unemployment")
        assert not small_database.has_table("unemployment")

    def test_table_names_sorted(self, small_database):
        assert small_database.table_names() == ["departments", "unemployment"]


class TestParameterBindings:
    def test_bindings_visible_in_where(self, small_database):
        from repro.relational import parse_sql

        statement = parse_sql("SELECT name FROM departments WHERE code = wanted_code")
        result = small_database.execute_select(statement, bindings={"wanted_code": "75"})
        assert result.column("name") == ["Paris"]
