"""Remote source federation: protocol fidelity, resilience, chaos.

The suite covers the layers of :mod:`repro.remote` bottom-up:

* wire-protocol codec round trips (values, rows, all four query kinds);
* `RemoteSource` ≡ in-process wrapper equivalence, over real TCP and over
  the in-process loopback (a hypothesis property across all four models);
* the resilience mechanisms one by one — retries, hedged requests,
  circuit-breaker state machine (scripted clock), graceful degradation
  from the stale result cache;
* the executor/service seams — ``SourceDispatchError`` attribution,
  deadline-bounded dispatch waits on a hung source, breaker state in
  ``MediatorService.stats()``;
* a deterministic chaos run: every source behind a seeded
  ``FaultyTransport`` (10% faults plus one scripted full outage), where
  every query must retry to the correct answer, degrade with a flag, or
  fail with a typed ``RemoteError`` — never return wrong rows.
"""

from __future__ import annotations

import json
import threading
import time
import zlib
from datetime import date, datetime

import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core import CMQBuilder, MixedInstance, PlannerOptions
from repro.core.cmq import GLUE_SOURCE
from repro.core.executor import MixedQueryExecutor
from repro.core.sources import DataSource
from repro.errors import (
    CircuitOpenError,
    QueryTimeoutError,
    RemoteError,
    SourceDispatchError,
    SourceUnavailableError,
)
from repro.fulltext.store import FieldConfig, FullTextStore
from repro.json.store import JSONDocumentStore
from repro.obs.explain import explain_analyze
from repro.rdf import Graph, triple
from repro.relational import Database
from repro.remote import (
    CircuitBreaker,
    FaultyTransport,
    LocalTransport,
    RemoteOptions,
    RemoteSource,
    RemoteSourceHandler,
    SourceServer,
    TCPTransport,
    Transport,
)
from repro.remote import protocol
from repro.service import MediatorService, ServiceConfig
from repro.stats.cost import MIN_BIND_BATCH, CostModel

pytestmark = pytest.mark.remote

HANDLES = [f"u{i}" for i in range(8)]
TOPICS = ["politics", "sports", "culture"]

#: Test-friendly resilience knobs: real retry/breaker semantics, but with
#: millisecond backoffs and hedging off (hedging has its own test).
FAST = RemoteOptions(timeout=2.0, retries=2, backoff_base=0.001,
                     backoff_max=0.004, hedge_delay=0,
                     breaker_failures=4, breaker_reset=0.05)


def build_instance(name: str = "fed") -> MixedInstance:
    """A four-model instance: glue RDF + RDF + relational + full-text + JSON."""
    glue = Graph(f"{name}-glue")
    people = Graph(f"{name}-people")
    database = Database(f"{name}-profiles")
    store = FullTextStore(f"{name}-posts", fields=[
        FieldConfig("text", "text"),
        FieldConfig("user.screen_name", "keyword"),
    ], default_field="text")
    documents = JSONDocumentStore(f"{name}-tweets")
    for i, handle in enumerate(HANDLES):
        glue.add(triple(f"ttn:P{i}", "ttn:twitterAccount", handle))
        glue.add(triple(f"ttn:P{i}", "ttn:memberOf", f"ttn:PARTY{i % 3}"))
        people.add(triple(f"ttn:P{i}", "ttn:account", handle))
        people.add(triple(f"ttn:P{i}", "ttn:hometown", f"City{i % 3}"))
    database.create_table_from_rows(
        "profiles", [{"handle": handle, "followers": 100 * (i + 1)}
                     for i, handle in enumerate(HANDLES)])
    for i in range(24):
        handle = HANDLES[i % len(HANDLES)]
        topic = TOPICS[i % len(TOPICS)]
        store.add({"id": i, "text": f"post about {topic} by {handle}",
                   "user": {"screen_name": handle}})
        documents.add({"id": i, "author": handle, "topic": topic,
                       "likes": (i * 7) % 40})
    instance = MixedInstance(graph=glue, name=name, entailment=False)
    instance.register_rdf("rdf://people", people)
    instance.register_relational("sql://profiles", database)
    instance.register_fulltext("solr://posts", store)
    instance.register_json("json://tweets", documents)
    return instance


def queries(instance: MixedInstance) -> list:
    """CMQs spanning every model (all bind joins on ``id``)."""
    out = []
    builder = instance.builder("q_profiles")
    builder.graph("SELECT ?id ?p WHERE { ?x ttn:twitterAccount ?id . "
                  "?x ttn:memberOf ?p }")
    builder.sql("prof", source="sql://profiles",
                sql="SELECT handle AS id, followers AS f FROM profiles "
                    "WHERE handle = {id}")
    out.append(builder.build())
    builder = instance.builder("q_home")
    builder.graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
    builder.rdf("home", "SELECT ?id ?town WHERE { ?p ttn:account ?id . "
                        "?p ttn:hometown ?town }", source="rdf://people")
    out.append(builder.build())
    builder = instance.builder("q_tweets")
    builder.graph("SELECT ?id ?p WHERE { ?x ttn:twitterAccount ?id . "
                  "?x ttn:memberOf ?p }")
    builder.json("tweets", source="json://tweets",
                 pattern='{ author: ?id, topic: "politics", likes: ?l }')
    out.append(builder.build())
    builder = instance.builder("q_posts")
    builder.graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
    builder.fulltext("posts", source="solr://posts",
                     query="user.screen_name:{id}",
                     fields={"t": "text", "id": "user.screen_name"})
    out.append(builder.build())
    return out


def atom_queries(instance: MixedInstance) -> dict:
    """uri -> one representative SourceQuery per external source."""
    out = {}
    for cmq in queries(instance):
        for atom in cmq.atoms:
            if not atom.is_glue():
                out[atom.source] = atom.query
    return out


def result_set(result):
    return sorted(tuple(sorted((k, str(v)) for k, v in row.items()))
                  for row in result.rows)


def remote_wrap(base: MixedInstance, options: RemoteOptions = FAST,
                fault=None):
    """A parallel instance whose every source is remote over loopback.

    ``fault(uri, transport)`` may wrap each loopback transport (chaos
    tests pass a ``FaultyTransport`` factory).  Returns the instance and
    the per-URI transports (the outermost layer).
    """
    inst = MixedInstance(graph=base.graph, name=base.name + "-remote",
                         entailment=False)
    transports = {}
    for uri in base.source_uris():
        source = base.source(uri)
        transport: Transport = LocalTransport(RemoteSourceHandler(source).handle)
        if fault is not None:
            transport = fault(uri, transport)
        transports[uri] = transport
        inst.register_remote(transport, uri=uri, model=source.model,
                             name=source.name, size=source.size(),
                             options=options)
    return inst, transports


# ---------------------------------------------------------------------------
# Wire protocol
# ---------------------------------------------------------------------------

def test_value_codec_roundtrip():
    row = {
        "n": 42, "f": 1.5, "s": "héllo", "none": None, "flag": True,
        "tup": (1, "two", (3,)),
        "day": date(2016, 3, 1),
        "stamp": datetime(2016, 3, 1, 10, 30, 15),
        "weird": {"$": "not-a-tag", "v": [1, 2]},
        "nested": {"list": [1, {"k": (2, 3)}]},
    }
    over_the_wire = json.loads(json.dumps(protocol.encode_row(row)))
    assert protocol.decode_row(over_the_wire) == row


def test_estimate_codec_handles_infinity():
    assert protocol.encode_estimate(float("inf")) is None
    assert protocol.decode_estimate(None) == float("inf")
    assert protocol.decode_estimate(protocol.encode_estimate(12.5)) == 12.5


def test_query_codec_roundtrip_all_kinds():
    base = build_instance("codec")
    seen_kinds = set()
    for cmq in queries(base):
        for atom in cmq.atoms:
            source = (base.glue_source if atom.is_glue()
                      else base.source(atom.source))
            wire = json.loads(json.dumps(protocol.encode_query(atom.query)))
            seen_kinds.add(wire["kind"])
            decoded = protocol.decode_query(wire)
            bindings = {"id": HANDLES[3]}
            assert (source.execute(decoded, bindings)
                    == source.execute(atom.query, bindings))
    assert seen_kinds == {"rdf", "sql", "fulltext", "json"}


# ---------------------------------------------------------------------------
# Equivalence: remote wrappers answer exactly like in-process ones
# ---------------------------------------------------------------------------

def test_tcp_equivalence_and_keepalive():
    base = build_instance("tcp")
    servers = {uri: SourceServer(base.source(uri)).start()
               for uri in base.source_uris()}
    inst = MixedInstance(graph=base.graph, name="tcp-remote", entailment=False)
    transports = []
    try:
        for uri, server in servers.items():
            host, port = server.address
            transport = TCPTransport(host, port)
            transports.append(transport)
            # No uri/model given: the wrapper learns both from `hello`.
            remote = inst.register_remote(transport, options=FAST)
            assert remote.uri == uri
            assert remote.model == base.source(uri).model
        for cmq in queries(base):
            assert result_set(inst.execute(cmq)) == result_set(base.execute(cmq))
        # Keep-alive: far fewer sockets than requests.
        remote = inst.source("sql://profiles")
        stats = remote.stats()
        assert stats["calls"] > stats["connections_opened"] >= 1
        assert stats["breaker"] == CircuitBreaker.CLOSED
        # Pinning observes the same snapshot the live source serves.
        pinned = inst.source("json://tweets").pin()
        assert pinned.pinned_at == base.source("json://tweets").version()
        query = atom_queries(base)["json://tweets"]
        assert (pinned.execute(query, {"id": HANDLES[0]})
                == base.source("json://tweets").execute(query, {"id": HANDLES[0]}))
    finally:
        for transport in transports:
            transport.close()
        for server in servers.values():
            server.close()


@pytest.fixture(scope="module")
def loopback_pair():
    base = build_instance("prop")
    remote, _ = remote_wrap(base)
    return base, remote, atom_queries(base)


@settings(max_examples=30, deadline=None,
          suppress_health_check=[HealthCheck.function_scoped_fixture])
@given(data=st.data())
def test_remote_equivalence_property(loopback_pair, data):
    """RemoteSource ≡ in-process wrapper for every model and binding batch."""
    base, remote, query_map = loopback_pair
    uri = data.draw(st.sampled_from(sorted(query_map)))
    query = query_map[uri]
    batch = [{"id": handle}
             for handle in data.draw(st.lists(st.sampled_from(HANDLES),
                                              min_size=1, max_size=5))]
    local, wrapped = base.source(uri), remote.source(uri)
    assert (wrapped.execute_batch(query, batch)
            == local.execute_batch(query, batch))
    assert wrapped.execute(query, batch[0]) == local.execute(query, batch[0])
    assert wrapped.estimate(query, {"id"}) == local.estimate(query, {"id"})


# ---------------------------------------------------------------------------
# Resilience mechanisms
# ---------------------------------------------------------------------------

class SteppedTransport(Transport):
    """Loopback whose i-th physical request sleeps ``delays[i]`` seconds."""

    def __init__(self, handler, delays):
        self._inner = LocalTransport(handler.handle)
        self.delays = delays
        self._lock = threading.Lock()
        self._index = 0

    def request(self, payload, timeout=None):
        with self._lock:
            index = self._index
            self._index += 1
        time.sleep(self.delays[min(index, len(self.delays) - 1)])
        return self._inner.request(payload, timeout=timeout)


def test_hedged_request_cuts_tail_without_duplicating_rows():
    base = build_instance("hedge")
    source = base.source("sql://profiles")
    handler = RemoteSourceHandler(source)
    transport = SteppedTransport(handler, delays=[0.6, 0.0, 0.0])
    remote = RemoteSource(
        transport, uri=source.uri, model=source.model,
        options=RemoteOptions(timeout=5.0, retries=0, hedge_delay=0.02))
    query = atom_queries(base)["sql://profiles"]
    started = time.perf_counter()
    rows = remote.execute(query, {"id": HANDLES[1]})
    elapsed = time.perf_counter() - started
    # The hedge answered long before the 0.6s primary; the rows are the
    # plain single answer — racing two identical reads duplicates nothing.
    assert rows == source.execute(query, {"id": HANDLES[1]})
    assert elapsed < 0.5
    stats = remote.stats()
    assert stats["hedges"] == 1 and stats["hedge_wins"] == 1
    assert stats["retries"] == 0
    assert transport._index == 2  # two physical legs, one logical call
    remote.close()


def test_retries_recover_from_transient_faults():
    base = build_instance("retry")
    handler = RemoteSourceHandler(base.source("sql://profiles"))
    # seed=1, fault_rate=0.5: deterministic mix of injected timeouts /
    # resets; retries must still land every call on the correct rows.
    faulty = FaultyTransport(LocalTransport(handler.handle), seed=1,
                             fault_rate=0.5)
    remote = RemoteSource(
        faulty, uri="sql://profiles", model="relational",
        options=RemoteOptions(timeout=2.0, retries=4, backoff_base=0.001,
                              backoff_max=0.002, hedge_delay=0,
                              breaker_failures=50))
    query = atom_queries(base)["sql://profiles"]
    for handle in HANDLES:
        assert (remote.execute(query, {"id": handle})
                == base.source("sql://profiles").execute(query, {"id": handle}))
    assert remote.stats()["retries"] > 0
    assert faulty.injected["timeout"] + faulty.injected["reset"] > 0


def test_circuit_breaker_state_machine_with_scripted_clock():
    now = [0.0]
    breaker = CircuitBreaker("src", failures=2, reset_after=5.0, probes=1,
                             clock=lambda: now[0])
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.CLOSED
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.OPEN
    with pytest.raises(CircuitOpenError):
        breaker.before_call()
    now[0] = 5.5
    assert breaker.state == CircuitBreaker.HALF_OPEN
    breaker.before_call()  # the single admitted probe
    with pytest.raises(CircuitOpenError):
        breaker.before_call()  # second concurrent probe is rejected
    breaker.record_failure()  # probe failed: straight back to open
    assert breaker.state == CircuitBreaker.OPEN
    now[0] = 11.0
    breaker.before_call()
    breaker.record_success()
    assert breaker.state == CircuitBreaker.CLOSED
    assert breaker.transitions == [
        (CircuitBreaker.CLOSED, CircuitBreaker.OPEN),
        (CircuitBreaker.OPEN, CircuitBreaker.HALF_OPEN),
        (CircuitBreaker.HALF_OPEN, CircuitBreaker.OPEN),
        (CircuitBreaker.OPEN, CircuitBreaker.HALF_OPEN),
        (CircuitBreaker.HALF_OPEN, CircuitBreaker.CLOSED),
    ]


def test_breaker_trips_fails_fast_and_recovers_after_outage():
    base = build_instance("breaker")
    handler = RemoteSourceHandler(base.source("sql://profiles"))
    faulty = FaultyTransport(LocalTransport(handler.handle),
                             outages=((0, 10 ** 9),))
    now = [0.0]
    remote = RemoteSource(
        faulty, uri="sql://profiles", model="relational",
        options=RemoteOptions(timeout=1.0, retries=0, backoff_base=0.0,
                              hedge_delay=0, breaker_failures=2,
                              breaker_reset=5.0),
        clock=lambda: now[0])
    query = atom_queries(base)["sql://profiles"]
    for _ in range(2):
        with pytest.raises(SourceUnavailableError):
            remote.execute(query, {"id": HANDLES[0]})
    assert remote.breaker.state == CircuitBreaker.OPEN
    reached_network = faulty.calls
    with pytest.raises(CircuitOpenError):
        remote.execute(query, {"id": HANDLES[0]})
    assert faulty.calls == reached_network  # failed fast, no network touch
    # The outage ends and the reset window elapses: one half-open probe
    # succeeds and closes the circuit again.
    faulty.outages = ()
    now[0] = 6.0
    assert (remote.execute(query, {"id": HANDLES[0]})
            == base.source("sql://profiles").execute(query, {"id": HANDLES[0]}))
    assert remote.breaker.state == CircuitBreaker.CLOSED
    assert remote.breaker.transitions == [
        (CircuitBreaker.CLOSED, CircuitBreaker.OPEN),
        (CircuitBreaker.OPEN, CircuitBreaker.HALF_OPEN),
        (CircuitBreaker.HALF_OPEN, CircuitBreaker.CLOSED),
    ]


# ---------------------------------------------------------------------------
# Graceful degradation
# ---------------------------------------------------------------------------

def test_stale_cache_degradation_is_flagged_in_trace_and_explain():
    base = build_instance("degrade")
    remote, transports = remote_wrap(
        base, fault=lambda uri, transport: FaultyTransport(transport))
    cmq = queries(remote)[0]  # glue |> sql bind join
    warm = remote.execute(cmq)
    assert not warm.trace.degraded
    expected = result_set(warm)
    assert expected == result_set(base.execute(queries(base)[0]))
    # Every remote source goes fully dark; the cached answers survive.
    for transport in transports.values():
        transport.outages = ((0, 10 ** 9),)
    degraded = remote.execute(cmq)
    assert result_set(degraded) == expected
    assert degraded.trace.degraded
    assert any(reason == "stale_cache" and source == "sql://profiles"
               for _, source, reason in degraded.trace.degraded_atoms)
    assert any(call.degraded for call in degraded.trace.calls)
    assert "DEGRADED" in degraded.trace.summary()
    report = explain_analyze(degraded)
    assert report.degraded
    rendered = report.render()
    assert "DEGRADED result" in rendered and "stale_cache" in rendered


def test_degradation_can_be_disabled():
    base = build_instance("nodegrade")
    remote, transports = remote_wrap(
        base, fault=lambda uri, transport: FaultyTransport(transport))
    cmq = queries(remote)[0]
    remote.execute(cmq)  # warm
    for transport in transports.values():
        transport.outages = ((0, 10 ** 9),)
    with pytest.raises(RemoteError):
        remote.execute(cmq, options=PlannerOptions(graceful_degradation=False))


# ---------------------------------------------------------------------------
# Executor / service seams
# ---------------------------------------------------------------------------

class ExplodingSource(DataSource):
    """A wrapper raising a *non-repro* error from its execute path."""

    model = "fulltext"

    def accepts(self, query) -> bool:
        return True

    def estimate(self, query, bound_variables=None) -> float:
        return 1.0

    def execute(self, query, bindings=None):
        raise ValueError("boom")

    def execute_batch(self, query, bindings_batch):
        raise ValueError("boom")

    def size(self) -> int:
        return 1


class HungSource(DataSource):
    """A wrapper whose every dispatch blocks for ``delay`` seconds."""

    model = "fulltext"

    def __init__(self, uri: str, delay: float):
        super().__init__(uri, name="hung")
        self.delay = delay

    def accepts(self, query) -> bool:
        return True

    def estimate(self, query, bound_variables=None) -> float:
        return 1.0

    def execute(self, query, bindings=None):
        time.sleep(self.delay)
        return []

    def execute_batch(self, query, bindings_batch):
        time.sleep(self.delay)
        return [[] for _ in bindings_batch]

    def size(self) -> int:
        return 1


def _one_atom_query(instance: MixedInstance, uri: str):
    builder = instance.builder("q_seam")
    builder.graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
    builder.fulltext("posts", source=uri, query="user.screen_name:{id}",
                     fields={"t": "text", "id": "user.screen_name"})
    return builder.build()


def test_unexpected_wrapper_error_carries_source_and_atom():
    glue = Graph("seam-glue")
    for handle in HANDLES[:3]:
        glue.add(triple("ttn:P0", "ttn:twitterAccount", handle))
    instance = MixedInstance(graph=glue, name="seam", entailment=False)
    instance.register(ExplodingSource("solr://boom"))
    cmq = _one_atom_query(instance, "solr://boom")
    with pytest.raises(SourceDispatchError) as err:
        instance.execute(cmq)
    assert err.value.source_uri == "solr://boom"
    assert err.value.atom == "posts"
    assert isinstance(err.value.__cause__, ValueError)


def test_executor_deadline_times_out_mid_stage_on_hung_source():
    glue = Graph("hung-glue")
    for handle in HANDLES[:3]:
        glue.add(triple("ttn:P0", "ttn:twitterAccount", handle))
    instance = MixedInstance(graph=glue, name="hung", entailment=False)
    hung = instance.register(HungSource("solr://hung", delay=3.0))
    cmq = _one_atom_query(instance, "solr://hung")
    started = time.monotonic()
    executor = MixedQueryExecutor(
        {hung.uri: hung}, instance.glue_source, max_workers=2,
        deadline=lambda: 0.4 - (time.monotonic() - started))
    with pytest.raises(QueryTimeoutError):
        executor.execute(cmq)
    assert time.monotonic() - started < 2.5  # not the 3s the source hangs


def test_service_deadline_bounds_hung_dispatch():
    glue = Graph("svc-hung-glue")
    for handle in HANDLES[:3]:
        glue.add(triple("ttn:P0", "ttn:twitterAccount", handle))
    instance = MixedInstance(graph=glue, name="svc-hung", entailment=False)
    instance.register(HungSource("solr://hung", delay=3.0))
    cmq = _one_atom_query(instance, "solr://hung")
    with MediatorService(instance, ServiceConfig(workers=1)) as service:
        started = time.monotonic()
        ticket = service.submit(cmq, deadline=0.4)
        with pytest.raises(QueryTimeoutError):
            ticket.result(timeout=10.0)
        assert ticket.status == "timed_out"
        assert time.monotonic() - started < 2.5


def test_service_stats_expose_breaker_state_per_remote_source():
    base = build_instance("svc-stats")
    remote, _ = remote_wrap(base)
    with MediatorService(remote, ServiceConfig(workers=1)) as service:
        result = service.execute(queries(remote)[0], timeout=30.0)
        assert result_set(result) == result_set(base.execute(queries(base)[0]))
        stats = service.stats()
    assert set(stats["remote"]) == set(base.source_uris())
    for uri, snapshot in stats["remote"].items():
        assert snapshot["breaker"] == CircuitBreaker.CLOSED
        assert snapshot["uri"] == uri
    assert stats["remote"]["sql://profiles"]["calls"] > 0


def test_cost_model_prefers_bigger_batches_for_remote_sources():
    model = CostModel()
    assert model.batch_size(64.0, ("remote",)) > model.batch_size(64.0, ("fulltext",))
    # Local kinds keep the historical curve exactly.
    assert model.batch_size(64.0, ("rdf",)) == model.batch_size(64.0)
    assert model.batch_size(float("inf"), ("remote",)) == MIN_BIND_BATCH


# ---------------------------------------------------------------------------
# Deterministic chaos
# ---------------------------------------------------------------------------

def test_chaos_faults_never_produce_wrong_rows():
    base = build_instance("chaos")
    workload = queries(base)
    baselines = {cmq.name: result_set(base.execute(cmq)) for cmq in workload}
    options = RemoteOptions(timeout=2.0, retries=3, backoff_base=0.001,
                            backoff_max=0.004, hedge_delay=0,
                            breaker_failures=4, breaker_reset=0.02)
    remote, transports = remote_wrap(
        base, options=options,
        fault=lambda uri, transport: FaultyTransport(
            transport, seed=zlib.crc32(uri.encode()), fault_rate=0.10,
            latency_range=(0.0, 0.001)))
    # One scripted full outage on the relational source mid-workload.
    transports["sql://profiles"].outages = ((20, 60),)
    outcomes = {"ok": 0, "degraded": 0, "typed_error": 0}
    for _ in range(6):
        for cmq in workload:
            try:
                result = remote.execute(cmq)
            except RemoteError:
                outcomes["typed_error"] += 1
                continue
            rows = result_set(result)
            expected = baselines[cmq.name]
            if result.trace.degraded:
                outcomes["degraded"] += 1
                # Stale/partial answers may miss rows, never invent them.
                assert set(rows) <= set(expected)
            else:
                outcomes["ok"] += 1
                assert rows == expected
    assert outcomes["ok"] > 0
    injected = {uri: dict(transport.injected)
                for uri, transport in transports.items()}
    assert sum(sum(counts.values()) for counts in injected.values()) > 0, injected
    assert sum(remote.source(uri).stats()["retries"]
               for uri in remote.source_uris()) > 0
