"""Unit tests for relational data types, coercion and table schemas."""

from datetime import date

import pytest

from repro.errors import SchemaError
from repro.relational import Column, DataType, ForeignKey, TableSchema, coerce, infer_type, parse_type


class TestTypeParsing:
    @pytest.mark.parametrize("name,expected", [
        ("INTEGER", DataType.INTEGER),
        ("int", DataType.INTEGER),
        ("BIGINT", DataType.INTEGER),
        ("VARCHAR(30)", DataType.TEXT),
        ("text", DataType.TEXT),
        ("FLOAT", DataType.FLOAT),
        ("DECIMAL(10,2)", DataType.FLOAT),
        ("BOOLEAN", DataType.BOOLEAN),
        ("DATE", DataType.DATE),
    ])
    def test_aliases(self, name, expected):
        assert parse_type(name) is expected

    def test_unknown_type_raises(self):
        with pytest.raises(SchemaError):
            parse_type("GEOMETRY")


class TestCoercion:
    def test_none_passes_through(self):
        assert coerce(None, DataType.INTEGER) is None

    def test_string_to_integer(self):
        assert coerce("42", DataType.INTEGER) == 42

    def test_float_string_to_integer(self):
        assert coerce("42.0", DataType.INTEGER) == 42

    def test_empty_string_to_null_number(self):
        assert coerce("", DataType.INTEGER) is None
        assert coerce("", DataType.FLOAT) is None

    def test_string_to_float(self):
        assert coerce("8.25", DataType.FLOAT) == pytest.approx(8.25)

    def test_boolean_strings(self):
        assert coerce("oui", DataType.BOOLEAN) is True
        assert coerce("non", DataType.BOOLEAN) is False
        assert coerce("1", DataType.BOOLEAN) is True

    def test_invalid_boolean_raises(self):
        with pytest.raises(SchemaError):
            coerce("peut-etre", DataType.BOOLEAN)

    def test_date_formats(self):
        assert coerce("2015-11-16", DataType.DATE) == date(2015, 11, 16)
        assert coerce("16/11/2015", DataType.DATE) == date(2015, 11, 16)

    def test_invalid_number_raises(self):
        with pytest.raises(SchemaError):
            coerce("abc", DataType.INTEGER)

    def test_anything_to_text(self):
        assert coerce(75, DataType.TEXT) == "75"

    def test_infer_type(self):
        assert infer_type(3) is DataType.INTEGER
        assert infer_type(3.5) is DataType.FLOAT
        assert infer_type(True) is DataType.BOOLEAN
        assert infer_type("x") is DataType.TEXT
        assert infer_type(date(2015, 1, 1)) is DataType.DATE


class TestTableSchema:
    def make_schema(self):
        return TableSchema(
            name="departments",
            columns=[Column("code", DataType.TEXT, nullable=False),
                     Column("name", DataType.TEXT),
                     Column("population", DataType.INTEGER)],
            primary_key="code",
            foreign_keys=[],
        )

    def test_column_lookup_case_insensitive(self):
        schema = self.make_schema()
        assert schema.column("CODE").name == "code"
        assert schema.column_index("Population") == 2

    def test_unknown_column_raises(self):
        with pytest.raises(SchemaError):
            self.make_schema().column("region")

    def test_duplicate_column_names_rejected(self):
        with pytest.raises(SchemaError):
            TableSchema(name="t", columns=[Column("a", DataType.TEXT),
                                           Column("A", DataType.TEXT)])

    def test_primary_key_must_be_a_column(self):
        with pytest.raises(SchemaError):
            TableSchema(name="t", columns=[Column("a", DataType.TEXT)], primary_key="b")

    def test_foreign_key_must_reference_existing_column(self):
        with pytest.raises(SchemaError):
            TableSchema(name="t", columns=[Column("a", DataType.TEXT)],
                        foreign_keys=[ForeignKey("b", "other", "id")])

    def test_coerce_row_from_dict(self):
        row = self.make_schema().coerce_row({"code": 75, "name": "Paris", "population": "100"})
        assert row == ("75", "Paris", 100)

    def test_coerce_row_missing_nullable_column(self):
        row = self.make_schema().coerce_row({"code": "75", "name": "Paris"})
        assert row == ("75", "Paris", None)

    def test_coerce_row_unknown_column_rejected(self):
        with pytest.raises(SchemaError):
            self.make_schema().coerce_row({"code": "75", "region": "IDF"})

    def test_coerce_row_positional(self):
        assert self.make_schema().coerce_row(["75", "Paris", 100]) == ("75", "Paris", 100)

    def test_coerce_row_wrong_arity(self):
        with pytest.raises(SchemaError):
            self.make_schema().coerce_row(["75", "Paris"])

    def test_not_null_enforced(self):
        with pytest.raises(SchemaError):
            self.make_schema().coerce_row({"name": "Paris"})

    def test_invalid_column_name_rejected(self):
        with pytest.raises(SchemaError):
            Column("not valid", DataType.TEXT)
