"""Unit tests for digest building, join discovery and keyword querying."""

import pytest

from repro.core import MixedInstance
from repro.digest import DigestBuilder, KeywordQueryEngine, build_catalog
from repro.errors import KeywordSearchError


@pytest.fixture
def instance(politics_graph, small_database, small_tweet_store):
    inst = MixedInstance(graph=politics_graph, name="mini")
    inst.register_relational("sql://insee", small_database)
    inst.register_fulltext("solr://tweets", small_tweet_store)
    return inst


@pytest.fixture
def catalog(instance):
    return build_catalog(instance)


class TestDigestBuilding:
    def test_relational_digest_has_node_per_attribute(self, instance):
        digest = DigestBuilder().build(instance.source("sql://insee"))
        labels = {n.label() for n in digest.nodes}
        assert "departments.code" in labels and "unemployment.rate" in labels

    def test_relational_digest_foreign_key_edge(self, instance):
        digest = DigestBuilder().build(instance.source("sql://insee"))
        assert any(e.kind == "foreign-key" for e in digest.edges)

    def test_relational_value_sets(self, instance):
        digest = DigestBuilder().build(instance.source("sql://insee"))
        node = digest.node("departments", "code")
        assert digest.values_of(node).might_contain("75")

    def test_fulltext_digest_uses_dataguide_paths(self, instance):
        digest = DigestBuilder().build(instance.source("solr://tweets"))
        positions = {n.position for n in digest.nodes}
        assert "user.screen_name" in positions and "entities.hashtags" in positions

    def test_fulltext_text_field_indexes_tokens(self, instance):
        digest = DigestBuilder().build(instance.source("solr://tweets"))
        node = digest.node("mini_tweets", "text")
        assert digest.values_of(node).matches_keyword("solidarite")

    def test_rdf_digest_positions_are_properties(self, instance):
        digest = DigestBuilder().build(instance.glue_source)
        positions = {n.position for n in digest.nodes}
        assert "twitterAccount" in positions and "position" in positions

    def test_rdf_digest_keyword_alias_on_uri_values(self, instance):
        digest = DigestBuilder().build(instance.glue_source)
        hits = digest.lookup_keyword("head of state")
        assert any(n.position == "position" for n in hits)

    def test_lookup_by_position_name(self, instance):
        digest = DigestBuilder().build(instance.source("sql://insee"))
        assert any(n.position == "rate" for n in digest.lookup_keyword("rate"))

    def test_size_in_bytes_positive(self, instance):
        digest = DigestBuilder().build(instance.source("sql://insee"))
        assert digest.size_in_bytes() > 0


class TestCatalog:
    def test_catalog_contains_all_sources_plus_glue(self, catalog):
        assert len(catalog) == 3
        assert "#glue" in catalog.digests

    def test_join_edges_cross_sources_only(self, catalog):
        assert catalog.join_edges
        assert all(e.source.source_uri != e.target.source_uri for e in catalog.join_edges)

    def test_twitter_account_join_discovered(self, catalog):
        pairs = {frozenset((e.source.position, e.target.position)) for e in catalog.join_edges}
        assert frozenset(("twitterAccount", "user.screen_name")) in pairs

    def test_intra_source_joins_use_schema_edges_not_probing(self, catalog):
        # departments.code -> unemployment.dept_code is a foreign key, so it is
        # an intra-source digest edge, never a probed join candidate.
        digest = catalog.digest("sql://insee")
        fk_pairs = {frozenset((e.source.label(), e.target.label()))
                    for e in digest.edges if e.kind == "foreign-key"}
        assert frozenset(("departments.code", "unemployment.dept_code")) in fk_pairs

    def test_networkx_graph_connects_sources(self, catalog):
        import networkx as nx

        graph = catalog.to_networkx()
        sources = {n.source_uri for n in graph.nodes}
        assert len(sources) == 3
        assert nx.number_connected_components(graph) < len(graph.nodes)

    def test_total_size(self, catalog):
        assert catalog.total_size_in_bytes() > 0

    def test_bloom_budget_changes_size(self, instance):
        small = build_catalog(instance, bloom_bits_per_value=4)
        large = build_catalog(instance, bloom_bits_per_value=32)
        assert large.total_size_in_bytes() > small.total_size_in_bytes()


class TestKeywordEngine:
    def test_lookup_hits_per_keyword(self, instance, catalog):
        engine = KeywordQueryEngine(instance, catalog=catalog)
        hits = engine.lookup(["head of state", "SIA2016"])
        assert len(hits) == 2 and all(hits)

    def test_unknown_keyword_raises(self, instance, catalog):
        engine = KeywordQueryEngine(instance, catalog=catalog)
        with pytest.raises(KeywordSearchError):
            engine.lookup(["zzz-not-anywhere-zzz"])

    def test_empty_keywords_raise(self, instance, catalog):
        engine = KeywordQueryEngine(instance, catalog=catalog)
        with pytest.raises(KeywordSearchError):
            engine.search([])

    def test_paper_example_generates_qsia_like_query(self, instance, catalog):
        engine = KeywordQueryEngine(instance, catalog=catalog)
        outcome = engine.search(["head of state", "SIA2016"])
        assert outcome.candidates
        assert outcome.result is not None and len(outcome.result) >= 1
        answer = outcome.result.rows[0]
        assert any("SIA2016" in str(v) or "sia2016" in str(v).lower() for v in answer.values())

    def test_generated_query_is_a_cmq_over_two_sources(self, instance, catalog):
        engine = KeywordQueryEngine(instance, catalog=catalog)
        outcome = engine.search(["head of state", "SIA2016"])
        best = outcome.best
        sources = {a.source for a in best.query.atoms}
        assert len(sources) == 2

    def test_relational_keyword_search(self, instance, catalog):
        engine = KeywordQueryEngine(instance, catalog=catalog)
        outcome = engine.search(["Gironde"])
        assert outcome.result is not None
        assert any("Gironde" in str(v) for row in outcome.result.rows for v in row.values())

    def test_single_keyword_single_node_path(self, instance, catalog):
        engine = KeywordQueryEngine(instance, catalog=catalog)
        outcome = engine.search(["parlement"])
        assert outcome.candidates and len(outcome.candidates[0].path) == 1

    def test_max_queries_limits_candidates(self, instance, catalog):
        engine = KeywordQueryEngine(instance, catalog=catalog)
        outcome = engine.search(["head of state", "SIA2016"], max_queries=1)
        assert len(outcome.candidates) == 1

    def test_outcome_summary_text(self, instance, catalog):
        engine = KeywordQueryEngine(instance, catalog=catalog)
        outcome = engine.search(["head of state", "SIA2016"])
        summary = outcome.summary()
        assert "keywords" in summary and "candidate" in summary
