"""Unit tests for the warehouse baseline and the planner-strategy presets."""

import pytest

from repro.baselines import RDFWarehouse, STRATEGIES, naive_options, tatooine_options
from repro.core import MixedInstance
from repro.errors import MixedQueryError


@pytest.fixture
def instance(politics_graph, small_database, small_tweet_store):
    inst = MixedInstance(graph=politics_graph, name="mini")
    inst.register_relational("sql://insee", small_database)
    inst.register_fulltext("solr://tweets", small_tweet_store)
    return inst


@pytest.fixture
def qsia(instance):
    return (instance.builder("qSIA", head=["t", "id"])
            .graph("SELECT ?id WHERE { ?x ttn:position ttn:headOfState . "
                   "?x ttn:twitterAccount ?id }")
            .fulltext("tweetContains", source="solr://tweets",
                      query="entities.hashtags:sia2016",
                      fields={"t": "text", "id": "user.screen_name"})
            .build())


class TestWarehouseExport:
    def test_export_counts_every_source(self, instance):
        warehouse = RDFWarehouse(instance)
        stats = warehouse.export()
        assert stats.exported_triples == len(warehouse.graph)
        assert set(stats.triples_per_source) == {"#glue", "sql://insee", "solr://tweets"}
        assert stats.export_seconds > 0

    def test_relational_rows_become_triples(self, instance):
        warehouse = RDFWarehouse(instance)
        warehouse.export()
        predicate = warehouse.column_predicate("sql://insee", "departments", "name")
        names = {t.obj.value for t in warehouse.graph if t.predicate == predicate}
        assert "Paris" in names

    def test_fulltext_documents_become_triples(self, instance):
        warehouse = RDFWarehouse(instance)
        warehouse.export()
        predicate = warehouse.field_predicate("solr://tweets", "entities.hashtags")
        hashtags = {t.obj.value for t in warehouse.graph if t.predicate == predicate}
        assert "sia2016" in hashtags

    def test_text_fields_exported_as_stems_too(self, instance):
        warehouse = RDFWarehouse(instance)
        warehouse.export()
        predicate = warehouse.term_predicate("solr://tweets", "text")
        stems = {t.obj.value for t in warehouse.graph if t.predicate == predicate}
        assert any(s.startswith("solidarit") for s in stems)

    def test_warehouse_is_larger_than_mediator_metadata(self, instance):
        warehouse = RDFWarehouse(instance)
        stats = warehouse.export()
        assert stats.exported_triples > len(instance.graph)


class TestWarehouseQueries:
    def test_qsia_same_answers_as_mediator(self, instance, qsia):
        mediator_rows = {tuple(sorted(r.items())) for r in instance.execute(qsia).rows}
        warehouse = RDFWarehouse(instance)
        warehouse.export()
        warehouse_rows = {tuple(sorted(r.items())) for r in warehouse.execute(qsia).rows}
        assert mediator_rows == warehouse_rows

    def test_sql_atom_translation(self, instance):
        cmq = (instance.builder("q", head=["dept", "rate"])
               .sql("stats", source="sql://insee",
                    sql="SELECT dept_code AS dept, rate AS rate FROM unemployment WHERE year = 2015")
               .build())
        warehouse = RDFWarehouse(instance)
        warehouse.export()
        rows = warehouse.execute(cmq).rows
        mediator_rows = instance.execute(cmq).rows
        assert {r["dept"] for r in rows} == {r["dept"] for r in mediator_rows}

    def test_join_across_models_in_warehouse(self, instance):
        cmq = (instance.builder("q", head=["id", "t"])
               .graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
               .fulltext("tweets", source="solr://tweets", query="*:*",
                         fields={"t": "text", "id": "user.screen_name"})
               .build())
        warehouse = RDFWarehouse(instance)
        warehouse.export()
        assert len(warehouse.execute(cmq)) == len(instance.execute(cmq))

    def test_dynamic_source_atoms_unsupported(self, instance):
        cmq = (instance.builder("q", head=["rate"])
               .graph("SELECT ?src WHERE { ?x ttn:twitterAccount ?src }")
               .sql("stats", source_variable="src",
                    sql="SELECT rate AS rate FROM unemployment")
               .build())
        warehouse = RDFWarehouse(instance)
        warehouse.export()
        with pytest.raises(MixedQueryError):
            warehouse.execute(cmq)

    def test_non_equality_sql_where_unsupported(self, instance):
        cmq = (instance.builder("q", head=["rate"])
               .sql("stats", source="sql://insee",
                    sql="SELECT rate AS rate FROM unemployment WHERE rate > 8")
               .build())
        warehouse = RDFWarehouse(instance)
        warehouse.export()
        with pytest.raises(MixedQueryError):
            warehouse.execute(cmq)


class TestStrategyPresets:
    def test_tatooine_options_enable_everything(self):
        options = tatooine_options()
        assert options.use_bind_joins and options.selectivity_ordering and options.parallel_stages

    def test_naive_options_disable_everything(self):
        options = naive_options()
        assert not (options.use_bind_joins or options.selectivity_ordering
                    or options.parallel_stages)

    def test_strategies_registry_complete(self):
        assert set(STRATEGIES) == {"tatooine", "naive", "no-bind-join", "no-ordering",
                                   "sequential"}

    def test_all_strategies_answer_identically(self, instance, qsia):
        reference = None
        for name, options in STRATEGIES.items():
            rows = {tuple(sorted(r.items())) for r in instance.execute(qsia, options=options).rows}
            if reference is None:
                reference = rows
            assert rows == reference, name

    def test_bind_join_strategy_fetches_fewer_rows(self, instance):
        cmq = (instance.builder("q", head=["id", "t"])
               .graph("SELECT ?id WHERE { ?x ttn:position ttn:headOfState . "
                      "?x ttn:twitterAccount ?id }")
               .fulltext("tweets", source="solr://tweets", query="*:*",
                         fields={"t": "text", "id": "user.screen_name"})
               .build())
        fast = instance.execute(cmq, options=tatooine_options())
        naive = instance.execute(cmq, options=naive_options())
        assert fast.trace.total_rows_fetched() <= naive.trace.total_rows_fetched()
        assert {tuple(sorted(r.items())) for r in fast.rows} == \
               {tuple(sorted(r.items())) for r in naive.rows}
