"""Unit tests for CSV import/export of relational sources."""

import io

import pytest

from repro.errors import RelationalError
from repro.relational import Database, dump_csv, load_csv

CSV_TEXT = """code,name,population
75,Paris,2165423
33,Gironde,1601845
29,Finistere,
"""


class TestLoadCSV:
    def test_load_from_literal_text(self):
        db = Database("csv")
        table = load_csv(db, "departments", CSV_TEXT)
        assert len(table) == 3
        assert table.schema.column("population").data_type.name == "INTEGER"

    def test_types_inferred_per_column(self):
        db = Database("csv")
        load_csv(db, "departments", CSV_TEXT)
        rows = db.query("SELECT population FROM departments WHERE code = 75")
        assert rows == [{"population": 2165423}]

    def test_empty_values_become_null(self):
        db = Database("csv")
        load_csv(db, "departments", CSV_TEXT)
        rows = db.query("SELECT name FROM departments WHERE population IS NULL")
        assert [r["name"] for r in rows] == ["Finistere"]

    def test_load_from_file(self, tmp_path):
        path = tmp_path / "departments.csv"
        path.write_text(CSV_TEXT, encoding="utf-8")
        db = Database("csv")
        table = load_csv(db, "departments", path, primary_key="code")
        assert table.schema.primary_key == "code"

    def test_load_with_custom_delimiter(self):
        db = Database("csv")
        table = load_csv(db, "t", "a;b\n1;x\n2;y\n", delimiter=";")
        assert len(table) == 2

    def test_empty_csv_raises(self):
        db = Database("csv")
        with pytest.raises(RelationalError):
            load_csv(db, "empty", "a,b\n")


class TestDumpCSV:
    def test_round_trip(self, small_database):
        result = small_database.execute("SELECT code, name FROM departments ORDER BY code")
        text = dump_csv(result)
        lines = text.strip().split("\n")
        assert lines[0] == "code,name"
        assert lines[1].startswith("29,")

    def test_nulls_serialised_as_empty(self, small_database):
        small_database.execute("INSERT INTO departments (code, name) VALUES ('99', 'X')")
        result = small_database.execute("SELECT code, population FROM departments WHERE code = '99'")
        assert dump_csv(result).strip().split("\n")[1] == "99,"

    def test_write_to_file(self, small_database, tmp_path):
        result = small_database.execute("SELECT code FROM departments")
        path = tmp_path / "out.csv"
        dump_csv(result, path)
        assert path.read_text(encoding="utf-8").startswith("code\n")

    def test_write_to_buffer(self, small_database):
        result = small_database.execute("SELECT code FROM departments")
        buffer = io.StringIO()
        dump_csv(result, buffer)
        assert buffer.getvalue().startswith("code")
