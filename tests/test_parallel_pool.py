"""Shared-pool reuse in :mod:`repro.engine.parallel`.

``run_parallel`` used to build and tear down a ``ThreadPoolExecutor``
per stage; it now draws from process-wide :class:`WorkPool`\\ s (one per
role × worker count).  These tests pin the reuse behaviour and that
:class:`ParallelStats` semantics are unchanged.
"""

from __future__ import annotations

import threading
import time

from repro.engine.iterators import MaterializedScan
from repro.engine.parallel import (
    ParallelStats,
    WorkPool,
    run_parallel,
    run_tasks,
    shared_pool,
)


def scans(n: int, rows_per_scan: int = 3):
    return [MaterializedScan([{"i": i, "j": j} for j in range(rows_per_scan)],
                             name=f"scan{i}")
            for i in range(n)]


class TestSharedPool:
    def test_same_role_and_size_is_same_pool(self):
        assert shared_pool("dispatch", 4) is shared_pool("dispatch", 4)
        assert shared_pool("tasks", 4) is shared_pool("tasks", 4)

    def test_roles_and_sizes_are_distinct_pools(self):
        assert shared_pool("dispatch", 4) is not shared_pool("tasks", 4)
        assert shared_pool("dispatch", 4) is not shared_pool("dispatch", 3)

    def test_run_parallel_reuses_one_executor(self):
        pool = WorkPool(4, name="reuse-test")
        for _ in range(5):
            run_parallel(scans(6), max_workers=4, pool=pool)
        # One ThreadPoolExecutor constructed across five stages.
        assert pool.times_created == 1
        pool.shutdown()

    def test_run_parallel_default_uses_shared_pool(self):
        pool = shared_pool("dispatch", 4)
        created_before = pool.times_created
        outputs = run_parallel(scans(5), max_workers=4)
        assert [len(rows) for rows in outputs] == [3] * 5
        assert pool.times_created <= max(1, created_before + 1)
        # A second stage must not construct another executor.
        after_first = pool.times_created
        run_parallel(scans(5), max_workers=4)
        assert pool.times_created == after_first

    def test_sequential_path_never_builds_a_pool(self):
        pool = WorkPool(1, name="seq-test")
        run_parallel(scans(4), max_workers=1, pool=pool)
        assert pool.times_created == 0

    def test_pool_restarts_after_shutdown(self):
        pool = WorkPool(2, name="restart-test")
        assert pool.map(lambda x: x * 2, [1, 2, 3]) == [2, 4, 6]
        pool.shutdown()
        assert pool.map(lambda x: x + 1, [1, 2, 3]) == [2, 3, 4]
        assert pool.times_created == 2
        pool.shutdown()

    def test_nested_roles_do_not_deadlock(self):
        """Dispatch tasks fanning out into the tasks role complete even
        when both pools are saturated (the executor nests exactly so)."""
        def inner(i):
            return run_tasks([lambda j=j: (i, j) for j in range(4)],
                             max_workers=2)

        results = run_tasks([lambda i=i: inner(i) for i in range(8)],
                            max_workers=2, pool=shared_pool("dispatch", 2))
        assert results == [[(i, j) for j in range(4)] for i in range(8)]


class TestParallelStatsSemantics:
    def test_stats_shape_unchanged(self):
        stats = ParallelStats()
        outputs = run_parallel(scans(4), max_workers=4, stats=stats)
        assert stats.tasks == 4
        assert len(stats.per_task_seconds) == 4
        assert stats.wall_clock_seconds >= 0.0
        assert stats.sequential_seconds == sum(stats.per_task_seconds)
        assert stats.speedup >= 1.0
        assert [len(rows) for rows in outputs] == [3] * 4

    def test_order_preserved_regardless_of_completion(self):
        class SlowScan(MaterializedScan):
            def __init__(self, rows, delay):
                super().__init__(rows, name="slow")
                self.delay = delay

            def rows(self):
                time.sleep(self.delay)
                return super().rows()

        operators = [SlowScan([{"k": 0}], 0.05), SlowScan([{"k": 1}], 0.0)]
        outputs = run_parallel(operators, max_workers=2)
        assert outputs == [[{"k": 0}], [{"k": 1}]]

    def test_parallelism_actually_overlaps(self):
        active = []
        peak = []
        lock = threading.Lock()

        class Tracked(MaterializedScan):
            def rows(self):
                with lock:
                    active.append(1)
                    peak.append(len(active))
                time.sleep(0.02)
                with lock:
                    active.pop()
                return super().rows()

        run_parallel([Tracked([{"k": i}], name=f"t{i}") for i in range(4)],
                     max_workers=4)
        assert max(peak) >= 2

    def test_sequential_matches_parallel_results(self):
        operators = scans(6)
        sequential = run_parallel(operators, max_workers=1)
        parallel = run_parallel(operators, max_workers=4)
        assert sequential == parallel
