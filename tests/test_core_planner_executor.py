"""Unit tests for the mixed-query planner and executor over a small instance."""

import pytest

from repro.core import CMQBuilder, MixedInstance, PlannerOptions
from repro.errors import PlanningError, UnknownSourceError


@pytest.fixture
def instance(politics_graph, small_database, small_tweet_store):
    inst = MixedInstance(graph=politics_graph, name="mini")
    inst.register_relational("sql://insee", small_database)
    inst.register_fulltext("solr://tweets", small_tweet_store)
    return inst


@pytest.fixture
def qsia(instance):
    return (instance.builder("qSIA", head=["t", "id"])
            .graph("SELECT ?id WHERE { ?x ttn:position ttn:headOfState . "
                   "?x ttn:twitterAccount ?id }")
            .fulltext("tweetContains", source="solr://tweets",
                      query="entities.hashtags:sia2016",
                      fields={"t": "text", "id": "user.screen_name"})
            .build())


class TestPlanner:
    def test_plan_orders_selective_glue_first(self, instance, qsia):
        plan = instance.plan(qsia)
        assert plan.atom_order() == ["qG", "tweetContains"]
        assert plan.steps[0].mode == "materialize"
        assert plan.steps[1].mode == "bind"

    def test_plan_without_bind_joins_materialises_everything(self, instance, qsia):
        plan = instance.plan(qsia, PlannerOptions(use_bind_joins=False))
        assert all(step.mode == "materialize" for step in plan.steps)

    def test_syntactic_order_preserved_when_requested(self, instance):
        cmq = (instance.builder("q", head=["t"])
               .fulltext("tweets", source="solr://tweets", query="*:*",
                         fields={"t": "text", "id": "user.screen_name"})
               .graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
               .build())
        plan = instance.plan(cmq, PlannerOptions(selectivity_ordering=False))
        assert plan.atom_order() == ["tweets", "qG"]
        reordered = instance.plan(cmq, PlannerOptions(selectivity_ordering=True))
        assert reordered.atom_order() == ["qG", "tweets"]

    def test_dependency_forces_order(self, instance):
        cmq = (instance.builder("q", head=["rate"])
               .sql("stats", source="sql://insee",
                    sql="SELECT rate AS rate FROM unemployment WHERE dept_code = {dept}")
               .graph("SELECT ?dept WHERE { ?x ttn:memberOf ?party . "
                      "?x ttn:twitterAccount ?dept }")
               .build())
        plan = instance.plan(cmq)
        assert plan.atom_order()[0] == "qG"
        assert plan.steps[1].mode == "bind"

    def test_unsatisfiable_dependency_raises(self, instance):
        cmq = (instance.builder("q", head=["rate"])
               .sql("stats", source="sql://insee",
                    sql="SELECT rate AS rate FROM unemployment WHERE dept_code = {nowhere}")
               .build())
        with pytest.raises(PlanningError):
            instance.plan(cmq)

    def test_unknown_source_uri_raises(self, instance):
        cmq = (instance.builder("q", head=["t"])
               .fulltext("tweets", source="solr://unknown", query="*:*", fields={"t": "text"})
               .build())
        with pytest.raises(PlanningError):
            instance.plan(cmq)

    def test_model_mismatch_raises(self, instance):
        cmq = (instance.builder("q", head=["t"])
               .fulltext("tweets", source="sql://insee", query="*:*", fields={"t": "text"})
               .build())
        with pytest.raises(PlanningError):
            instance.plan(cmq)

    def test_parallel_stage_groups_independent_atoms(self, instance):
        cmq = (instance.builder("q", head=["name", "t"])
               .sql("depts", source="sql://insee",
                    sql="SELECT name AS name FROM departments")
               .fulltext("tweets", source="solr://tweets", query="entities.hashtags:sia2016",
                         fields={"t": "text"})
               .build())
        plan = instance.plan(cmq, PlannerOptions(use_bind_joins=False, parallel_stages=True))
        assert len(plan.stages) == 1 and len(plan.stages[0]) == 2
        sequential = instance.plan(cmq, PlannerOptions(use_bind_joins=False,
                                                       parallel_stages=False))
        assert len(sequential.stages) == 2

    def test_explain_mentions_every_atom(self, instance, qsia):
        text = instance.plan(qsia).explain()
        assert "qG" in text and "tweetContains" in text

    def test_dynamic_step_describe_shows_source_variable(self, instance):
        cmq = (instance.builder("q", head=["rate", "src"])
               .graph("SELECT ?src WHERE { ?x ttn:position ttn:headOfState . "
                      "?x ttn:statsEndpoint ?src }")
               .sql("stats", source_variable="src",
                    sql="SELECT rate AS rate FROM unemployment")
               .build())
        plan = instance.plan(cmq)
        step = next(s for s in plan.steps if s.dynamic)
        description = step.describe()
        assert "?src" in description
        assert "?dynamic" not in description
        # Static steps keep showing their resolved source URI.
        glue_step = next(s for s in plan.steps if not s.dynamic)
        assert "#glue" in glue_step.describe()


class TestExecutor:
    def test_qsia_end_to_end(self, instance, qsia):
        result = instance.execute(qsia)
        assert result.variables == ["t", "id"]
        assert len(result) == 1
        assert result.rows[0]["id"] == "fhollande"

    def test_trace_records_calls_and_order(self, instance, qsia):
        result = instance.execute(qsia)
        trace = result.trace
        assert trace.atom_order == ["qG", "tweetContains"]
        assert trace.calls_to("solr://tweets") == 1
        assert trace.calls_to("#glue") == 1
        assert trace.total_seconds > 0

    def test_same_answers_with_and_without_bind_joins(self, instance, qsia):
        fast = instance.execute(qsia)
        naive = instance.execute(qsia, options=PlannerOptions(use_bind_joins=False,
                                                              selectivity_ordering=False,
                                                              parallel_stages=False))
        assert sorted(map(str, fast.rows)) == sorted(map(str, naive.rows))

    def test_unrelated_atoms_cross_product(self, instance):
        cmq = (instance.builder("q", head=["id", "rate"])
               .graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id . "
                      "?x ttn:position ttn:headOfState . ?x ttn:memberOf ?party }")
               .sql("stats", source="sql://insee",
                    sql="SELECT dept_code AS dept2, rate AS rate FROM unemployment")
               .build())
        # No shared variable here: the SQL atom materialises fully.
        result = instance.execute(cmq)
        assert len(result) == 4  # cross product of 1 politician x 4 rates

    def test_join_on_shared_variable(self, instance):
        cmq = (instance.builder("q", head=["id", "t"])
               .graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
               .fulltext("tweets", source="solr://tweets", query="*:*",
                         fields={"t": "text", "id": "user.screen_name"})
               .build())
        result = instance.execute(cmq)
        assert len(result) == 3
        assert {row["id"] for row in result} == {"fhollande", "mlepen"}

    def test_limit_and_distinct(self, instance):
        cmq = (instance.builder("q", head=["id"])
               .graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
               .fulltext("tweets", source="solr://tweets", query="*:*",
                         fields={"t": "text", "id": "user.screen_name"})
               .build())
        assert len(instance.execute(cmq)) == 2  # distinct accounts
        assert len(instance.execute(cmq, limit=1)) == 1
        assert len(instance.execute(cmq, distinct=False)) == 3

    def test_dynamic_source_from_binding(self, instance, politics_graph):
        from repro.rdf import triple

        politics_graph.add(triple("ttn:POL1", "ttn:statsEndpoint", "sql://insee"))
        instance.add_glue_triples([])
        cmq = (instance.builder("q", head=["rate", "src"])
               .graph("SELECT ?src WHERE { ?x ttn:position ttn:headOfState . "
                      "?x ttn:statsEndpoint ?src }")
               .sql("stats", source_variable="src",
                    sql="SELECT rate AS rate FROM unemployment WHERE year = 2015")
               .build())
        result = instance.execute(cmq)
        assert len(result) == 3
        assert set(result.column("src")) == {"sql://insee"}

    def test_dynamic_source_unknown_uri_raises(self, instance, politics_graph):
        from repro.rdf import triple

        politics_graph.add(triple("ttn:POL1", "ttn:statsEndpoint", "sql://missing"))
        instance.add_glue_triples([])
        cmq = (instance.builder("q", head=["rate"])
               .graph("SELECT ?src WHERE { ?x ttn:statsEndpoint ?src }")
               .sql("stats", source_variable="src",
                    sql="SELECT rate AS rate FROM unemployment")
               .build())
        with pytest.raises(UnknownSourceError):
            instance.execute(cmq)

    def test_free_source_variable_fans_out_to_accepting_sources(self, instance):
        cmq = (instance.builder("q", head=["t", "d"])
               .fulltext("anytweets", source_variable="d", query="entities.hashtags:sia2016",
                         fields={"t": "text"})
               .build())
        result = instance.execute(cmq)
        assert len(result) == 1
        assert result.rows[0]["d"] == "solr://tweets"

    def test_result_helpers(self, instance, qsia):
        result = instance.execute(qsia)
        assert result.column("id") == ["fhollande"]
        assert "fhollande" in result.to_table()
        assert len(result.sorted_by("id").rows) == len(result.rows)


class TestInstanceRegistry:
    def test_size_summary(self, instance):
        stats = instance.size_summary()
        assert stats["glue_triples"] > 0
        assert set(stats["sources"]) == {"sql://insee", "solr://tweets"}

    def test_statistics_accessor_is_shared(self, instance):
        from repro.core import StatisticsCatalog

        stats = instance.statistics()
        assert isinstance(stats, StatisticsCatalog)
        assert instance.statistics() is stats
        assert instance.executor().planner.statistics is stats

    def test_source_lookup(self, instance):
        assert instance.source("sql://insee").model == "relational"
        assert instance.source("#glue").model == "rdf"
        with pytest.raises(UnknownSourceError):
            instance.source("sql://absent")

    def test_accepting_sources(self, instance):
        from repro.core.sources import FullTextQuery

        q = FullTextQuery.create("*:*", {"t": "text"})
        assert [s.uri for s in instance.accepting_sources(q)] == ["solr://tweets"]

    def test_has_source(self, instance):
        assert instance.has_source("solr://tweets")
        assert not instance.has_source("solr://facebook")
