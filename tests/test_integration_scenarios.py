"""Integration tests reproducing the paper's demonstration scenarios (E1–E7)."""

import pytest

from repro.analytics import (
    PMIVocabularyAnalyzer,
    per_group_influential,
    vocabulary_drift,
    weekly_tag_clouds,
)
from repro.baselines import RDFWarehouse, STRATEGIES
from repro.core import PlannerOptions
from repro.datasets import (
    INSEE_URI,
    TWEETS_JSON_URI,
    TWEETS_URI,
    fact_checking_query,
    party_vocabulary_query,
    qsia_json_query,
    qsia_query,
)
from repro.digest import JSONDataguide


class TestE1MixedInstance:
    def test_instance_spans_four_data_models(self, demo):
        models = {source.model for source in demo.instance.sources()}
        assert models == {"rdf", "relational", "fulltext", "json"}

    def test_textual_cmq_round_trip(self, demo):
        cmq = demo.instance.parse(
            'qSIA(t, id) :- qG(id), tweetContains(t, id, "sia2016")[solr://tweets]'
        )
        result = demo.instance.execute(cmq)
        assert len(result) >= 1
        assert all("#SIA2016" in row["t"] or "sia2016" in row["t"].lower() for row in result)


class TestE2TweetIngestion:
    def test_figure2_tweet_searchable_by_every_indexed_field(self, demo):
        store = demo.instance.source(TWEETS_URI).store
        head = demo.head_of_state()
        assert store.search("entities.hashtags:sia2016", limit=None).total >= 1
        assert store.search(f"user.screen_name:{head.twitter_account}", limit=None).total >= 1
        assert store.search("retweet_count:[469 TO 469]", limit=None).total >= 1

    def test_dataguide_covers_figure2_paths(self, demo):
        store = demo.instance.source(TWEETS_URI).store
        guide = JSONDataguide.build(store.documents())
        paths = set(guide.path_names())
        assert {"created_at", "id", "text", "user.id", "user.name", "user.screen_name",
                "user.followers_count", "retweet_count", "favorite_count",
                "entities.hashtags"} <= paths


class TestE3Figure3TagClouds:
    @pytest.fixture(scope="class")
    def weekly(self, demo):
        result = demo.instance.execute(party_vocabulary_query(demo, "urgence"), limit=None)
        analyzer = PMIVocabularyAnalyzer(min_group_count=1, min_corpus_count=2)
        return analyzer.analyze_weekly(
            (row["week"], row["group"], row["t"]) for row in result.rows
        )

    def test_four_weeks_of_vocabularies(self, weekly):
        assert len(weekly) == 4

    def test_tag_clouds_have_colored_group_entries(self, weekly):
        clouds = weekly_tag_clouds(weekly)
        assert len(clouds) == 4
        assert all(cloud.entries for cloud in clouds)
        groups = set().union(*(cloud.groups() for cloud in clouds))
        assert len(groups) >= 3

    def test_discourse_drift_across_weeks(self, weekly):
        # The paper's narrative: the vocabulary changes from factual to
        # institutional to critical — weekly top terms should not be stable.
        drifts = vocabulary_drift(weekly, top_k=8)
        assert drifts
        average_jaccard = sum(d.jaccard for d in drifts) / len(drifts)
        assert average_jaccard < 0.6

    def test_phase_terms_appear_in_matching_weeks(self, weekly):
        weeks = sorted(weekly)
        first_terms = {t.term for vocab in weekly[weeks[0]].values() for t in vocab.top(15)}
        third_terms = {t.term for vocab in weekly[weeks[2]].values() for t in vocab.top(15)}
        assert any(term.startswith(("hommage", "victime", "deuil", "solidarit"))
                   for term in first_terms)
        assert any(term.startswith(("abus", "exce", "risque", "perquisition", "libert"))
                   for term in third_terms)


class TestE4QSIAScenario:
    def test_qsia_returns_head_of_state_tweets_only(self, demo):
        result = demo.instance.execute(qsia_query(demo))
        head = demo.head_of_state()
        assert len(result) >= 1
        assert set(result.column("id")) == {head.twitter_account}

    def test_qsia_answers_identical_across_strategies(self, demo):
        query = qsia_query(demo)
        reference = None
        for options in STRATEGIES.values():
            rows = {tuple(sorted(r.items())) for r in demo.instance.execute(query, options=options)}
            if reference is None:
                reference = rows
            assert rows == reference

    def test_qsia_warehouse_equivalence(self, demo):
        query = qsia_query(demo)
        warehouse = RDFWarehouse(demo.instance)
        warehouse.export()
        mediator_rows = {tuple(sorted(r.items())) for r in demo.instance.execute(query)}
        warehouse_rows = {tuple(sorted(r.items())) for r in warehouse.execute(query)}
        assert mediator_rows == warehouse_rows


class TestE6FactChecking:
    def test_fact_checking_joins_claims_to_insee_statistics(self, demo):
        result = demo.instance.execute(fact_checking_query(demo, "chomage"))
        assert len(result) >= 1
        assert all(row["src"] == INSEE_URI for row in result)
        head_department = demo.head_of_state().birth_department
        assert set(result.column("dept")) == {head_department}
        assert all(isinstance(row["rate"], float) for row in result)

    def test_dynamic_source_discovery_used(self, demo):
        query = fact_checking_query(demo, "chomage")
        assert query.uses_dynamic_sources()
        result = demo.instance.execute(query)
        assert result.trace.calls_to(INSEE_URI) >= 2  # registry + discovered statistics


class TestE7PartyVocabulary:
    def test_vocabularies_differ_across_groups(self, demo):
        result = demo.instance.execute(party_vocabulary_query(demo, "urgence"), limit=None)
        analyzer = PMIVocabularyAnalyzer(min_group_count=2, min_corpus_count=2)
        vocabularies = analyzer.analyze((row["group"], row["t"]) for row in result.rows)
        assert len(vocabularies) >= 3
        tops = {group: tuple(t.term for t in vocab.top(5))
                for group, vocab in vocabularies.items() if vocab.terms}
        assert len(set(tops.values())) > 1

    def test_influential_tweets_ranked_by_engagement(self, demo):
        result = demo.instance.execute(party_vocabulary_query(demo, "urgence"), limit=None)
        records = [{"text": r["t"], "author": r["id"], "group": r["group"],
                    "retweet_count": r["rt"]} for r in result.rows]
        by_group = per_group_influential(records, top_per_group=3)
        for tweets in by_group.values():
            retweet_counts = [t.retweets for t in tweets]
            assert retweet_counts == sorted(retweet_counts, reverse=True)


class TestE5KeywordSearch:
    def test_keyword_search_regenerates_qsia(self, demo, demo_catalog):
        outcome = demo.instance.keyword_query(["head of state", "SIA2016"],
                                              catalog=demo_catalog)
        assert outcome.best is not None
        assert outcome.result is not None and len(outcome.result) >= 1
        # The generated CMQ reaches the tweets — through the glue + Solr
        # bridge or directly through the native JSON document source.
        sources = {atom.source for atom in outcome.best.query.atoms}
        assert sources & {TWEETS_URI, TWEETS_JSON_URI}
        # And its answer contains the same head-of-state SIA2016 tweet qSIA finds.
        qsia_texts = set(demo.instance.execute(qsia_query(demo)).column("t"))
        keyword_texts = {value for row in outcome.result.rows for value in row.values()
                         if isinstance(value, str)}
        assert qsia_texts & keyword_texts

    def test_keyword_search_reaches_json_source(self, demo, demo_catalog):
        # The JSON store indexes every dotted path, so a hashtag keyword has
        # a candidate route through the native document source too.
        outcome = demo.instance.keyword_query(["SIA2016"], catalog=demo_catalog)
        assert outcome.result is not None and len(outcome.result) >= 1
        candidate_sources = {atom.source for candidate in outcome.candidates
                             for atom in candidate.query.atoms}
        assert TWEETS_JSON_URI in candidate_sources or TWEETS_URI in candidate_sources

    def test_keyword_search_across_relational_and_rdf(self, demo, demo_catalog):
        outcome = demo.instance.keyword_query(["Gironde"], catalog=demo_catalog)
        assert outcome.result is not None and len(outcome.result) >= 1
        # The keyword hits both the IGN RDF source and the INSEE table; every
        # retained candidate targets one of them through its "name" position.
        hit_positions = {node.position for candidate in outcome.candidates
                         for node in candidate.path}
        assert hit_positions & {"nom", "name"}
        candidate_sources = {atom.source for candidate in outcome.candidates
                             for atom in candidate.query.atoms}
        assert {"rdf://ign", INSEE_URI} & candidate_sources


class TestE8JSONTreePatterns:
    """The JSON document model as a first-class CMQ source."""

    def test_json_store_holds_figure2_shaped_documents(self, demo):
        store = demo.instance.source(TWEETS_JSON_URI).store
        # The store replaces on id, so distinct ids is the right yardstick.
        assert len(store) == len({tweet["id"] for tweet in demo.tweets})
        paths = set(store.paths())
        assert {"created_at", "id", "text", "user.screen_name", "user.name",
                "user.followers_count", "retweet_count", "favorite_count",
                "entities.hashtags"} <= paths
        # Native shape only: the flattened-path metadata stays out.
        assert "group" not in paths and "week" not in paths

    def test_three_model_mix_plans_and_executes(self, demo):
        query = qsia_json_query(demo)
        models = {type(atom.query).__name__ for atom in query.atoms}
        assert models == {"RDFQuery", "JSONQuery", "SQLQuery"}
        result = demo.instance.execute(query)
        head = demo.head_of_state()
        assert len(result) >= 1
        assert set(result.column("id")) == {head.twitter_account}
        assert set(result.column("dept")) == {head.birth_department}
        assert all(isinstance(row["rate"], float) for row in result)
        assert all("sia2016" in row["t"].lower() for row in result)

    def test_json_atom_runs_in_bind_and_materialize_modes(self, demo):
        query = qsia_json_query(demo)
        plan = demo.instance.plan(query)
        json_step = next(s for s in plan.steps if s.atom.name == "tweetJson")
        assert json_step.mode == "bind"
        materialized = demo.instance.plan(
            query, PlannerOptions(use_bind_joins=False, selectivity_ordering=False,
                                  parallel_stages=False))
        json_step = next(s for s in materialized.steps if s.atom.name == "tweetJson")
        assert json_step.mode == "materialize"
        fast = demo.instance.execute(query)
        naive = demo.instance.execute(query, options=PlannerOptions(
            use_bind_joins=False, selectivity_ordering=False, parallel_stages=False))
        assert sorted(map(str, fast.rows)) == sorted(map(str, naive.rows))

    def test_textual_cmq_with_free_document_source_variable(self, demo):
        # [dTweets] is a free source variable: the JSON atom fans out to
        # every document source of the instance and binds dTweets to the
        # URI that answered.
        cmq = demo.instance.parse(
            'qTag(t, id, dTweets) :- qG(id), tweetJson(t, id, "sia2016")[dTweets]'
        )
        result = demo.instance.execute(cmq)
        assert len(result) >= 1
        assert set(result.column("dTweets")) == {TWEETS_JSON_URI}
        assert set(result.column("id")) == {demo.head_of_state().twitter_account}

    def test_json_selectivity_estimates_guide_the_planner(self, demo):
        source = demo.instance.source(TWEETS_JSON_URI)
        from repro.core import JSONQuery

        everything = JSONQuery.from_text("{ text: ?t }")
        tagged = JSONQuery.from_text('{ text: ?t, entities.hashtags: "sia2016" }')
        assert source.estimate(tagged) < source.estimate(everything)
        assert source.estimate(everything) == float(len(source.store))
        # Dataguide-driven: a path the collection never exhibits is free.
        missing = JSONQuery.from_text("{ nonexistent.path: ?x }")
        assert source.estimate(missing) == 0.0

    def test_json_source_digest_in_catalog(self, demo, demo_catalog):
        digest = demo_catalog.digest(TWEETS_JSON_URI)
        assert digest.model == "json"
        assert digest.metadata["documents"] == len({t["id"] for t in demo.tweets})
        positions = {node.position for node in digest.nodes}
        assert "entities.hashtags" in positions and "user.screen_name" in positions
