"""Batched bind joins: wrapper batching, the digest sieve, equivalence.

The equivalence harness at the bottom proves, for every source model,
that the batched engine returns exactly the per-binding engine's rows
while issuing strictly fewer ``SubQueryCall``s — and that the digest
sieve never drops a true match.
"""

from __future__ import annotations

import pytest

from repro.core import CMQBuilder, MixedInstance, PlannerOptions
from repro.core.planner import MAX_BIND_BATCH, MIN_BIND_BATCH, auto_batch_size
from repro.core.sources import FullTextQuery, JSONQuery, RDFQuery, SQLQuery
from repro.digest.sieve import DigestSieve
from repro.json import JSONDocumentStore
from repro.rdf import Graph, triple
from repro.relational import Database


PER_BINDING = PlannerOptions(batch_bind_joins=False)


@pytest.fixture
def json_store(small_tweet_store):
    store = JSONDocumentStore("mini_tweets_json")
    for document in small_tweet_store.documents():
        store.add(document.fields)
    return store


@pytest.fixture
def instance(politics_graph, small_database, small_tweet_store, json_store):
    inst = MixedInstance(graph=politics_graph, name="mini")
    inst.register_relational("sql://insee", small_database)
    inst.register_fulltext("solr://tweets", small_tweet_store)
    inst.register_json("json://tweets", json_store)
    rdf_graph = Graph("handles")
    for handle, followers in [("fhollande", 1_500_000), ("mlepen", 900_000),
                              ("nobody", 3)]:
        rdf_graph.add(triple(f"ttn:U_{handle}", "ttn:handle", handle))
        rdf_graph.add(triple(f"ttn:U_{handle}", "ttn:followers", followers))
    inst.register_rdf("rdf://handles", rdf_graph)
    return inst


def assert_equivalent(instance, cmq, digests=None):
    """Run batched vs per-binding and assert identical result sets."""
    batched = instance.execute(cmq, digests=digests)
    per_binding = instance.execute(cmq, options=PER_BINDING)
    assert sorted(map(str, batched.rows)) == sorted(map(str, per_binding.rows))
    return batched, per_binding


# ---------------------------------------------------------------------------
# Wrapper-level execute_batch
# ---------------------------------------------------------------------------

class TestExecuteBatch:
    def assert_batch_matches_loop(self, source, query, batch):
        reference = [source.execute(query, bindings) for bindings in batch]
        batched = source.execute_batch(query, batch)
        assert len(batched) == len(batch)
        for expected, got in zip(reference, batched):
            assert sorted(map(str, expected)) == sorted(map(str, got))

    def test_relational_without_placeholders(self, instance):
        source = instance.source("sql://insee")
        query = SQLQuery(sql="SELECT dept_code AS dept, rate AS rate FROM unemployment")
        batch = [{"dept": "75"}, {"dept": "33"}, {"dept": "nowhere"}, {}]
        self.assert_batch_matches_loop(source, query, batch)

    def test_relational_in_list_rewrite(self, instance):
        source = instance.source("sql://insee")
        query = SQLQuery(sql="SELECT dept_code AS dept, rate AS rate "
                             "FROM unemployment WHERE dept_code = {dept}")
        batch = [{"dept": "75"}, {"dept": "33"}, {"dept": "29"}, {"dept": "nope"}]
        self.assert_batch_matches_loop(source, query, batch)
        # The rewrite really issues IN-list SQL: one statement answers all.
        calls = []
        original = source.database.execute

        def spy(sql, bindings=None):
            calls.append(sql)
            return original(sql, bindings)

        source.database.execute = spy
        try:
            source.execute_batch(query, batch)
        finally:
            source.database.execute = original
        assert len(calls) == 1
        assert " in " in calls[0].lower()

    def test_relational_fallback_placeholder(self, instance):
        source = instance.source("sql://insee")
        query = SQLQuery(sql="SELECT name AS name FROM departments "
                             "WHERE population > {minpop}")
        batch = [{"minpop": 0}, {"minpop": 1_000_000}, {"minpop": 10 ** 10}]
        self.assert_batch_matches_loop(source, query, batch)

    def test_relational_or_context_disables_in_rewrite(self, instance):
        # A placeholder equality under OR is not a necessary condition on
        # the rows; the IN rewrite + echo attribution would drop the
        # disjunct's rows, so the wrapper must fall back.
        source = instance.source("sql://insee")
        query = SQLQuery(sql="SELECT dept_code AS dept, rate AS rate "
                             "FROM unemployment WHERE dept_code = {dept} "
                             "OR rate > 9.0")
        batch = [{"dept": "75"}, {"dept": "zz"}]
        self.assert_batch_matches_loop(source, query, batch)
        assert source.execute_batch(query, batch)[1]  # the OR branch's rows

    def test_relational_not_context_disables_in_rewrite(self, instance):
        source = instance.source("sql://insee")
        query = SQLQuery(sql="SELECT dept_code AS dept, rate AS rate "
                             "FROM unemployment WHERE NOT (dept_code = {dept})")
        batch = [{"dept": "75"}, {"dept": "33"}]
        self.assert_batch_matches_loop(source, query, batch)

    def test_relational_limit_disables_in_rewrite(self, instance):
        # A shared LIMIT over the IN-list would starve later bindings;
        # the wrapper must fall back to per-statement execution.
        source = instance.source("sql://insee")
        query = SQLQuery(sql="SELECT dept_code AS dept, rate AS rate "
                             "FROM unemployment WHERE dept_code = {dept} LIMIT 1")
        batch = [{"dept": "75"}, {"dept": "33"}, {"dept": "29"}]
        self.assert_batch_matches_loop(source, query, batch)
        for rows in source.execute_batch(query, batch):
            assert len(rows) == 1

    def test_fulltext_without_placeholders(self, instance):
        source = instance.source("solr://tweets")
        query = FullTextQuery.create("*:*", {"t": "text", "id": "user.screen_name"})
        batch = [{"id": "fhollande"}, {"id": "mlepen"}, {"id": "missing"}, {}]
        self.assert_batch_matches_loop(source, query, batch)

    def test_fulltext_disjunctive_rewrite(self, instance):
        source = instance.source("solr://tweets")
        query = FullTextQuery.create("user.screen_name:{id}",
                                     {"t": "text", "id": "user.screen_name"})
        batch = [{"id": "fhollande"}, {"id": "mlepen"}, {"id": "missing"}]
        self.assert_batch_matches_loop(source, query, batch)
        searches = []
        original = source.store.search

        def spy(text, limit=10, sort_by=None):
            searches.append(str(text))
            return original(text, limit=limit, sort_by=sort_by)

        source.store.search = spy
        try:
            source.execute_batch(query, batch)
        finally:
            source.store.search = original
        assert len(searches) == 1
        assert " OR " in searches[0]

    def test_fulltext_case_insensitive_attribution(self, instance):
        source = instance.source("solr://tweets")
        query = FullTextQuery.create("user.screen_name:{id}",
                                     {"t": "text", "id": "user.screen_name"})
        batch = [{"id": "FHOLLANDE"}, {"id": "mlepen"}]
        self.assert_batch_matches_loop(source, query, batch)

    def test_fulltext_or_context_disables_disjunction(self, instance):
        # OR-merging a clause that already sits under OR (or NOT) would
        # attribute the other disjunct's hits wrongly; fall back instead.
        source = instance.source("solr://tweets")
        query = FullTextQuery.create("text:urgence OR user.screen_name:{id}",
                                     {"t": "text", "id": "user.screen_name"})
        batch = [{"id": "fhollande"}, {"id": "missing"}]
        self.assert_batch_matches_loop(source, query, batch)
        assert source.execute_batch(query, batch)[1]  # the OR branch's hits
        negated = FullTextQuery.create("NOT user.screen_name:{id}",
                                       {"t": "text", "id2": "user.screen_name"})
        self.assert_batch_matches_loop(source, negated,
                                       [{"id": "fhollande"}, {"id": "mlepen"}])

    def test_fulltext_score_output_disables_disjunction(self, instance):
        # OR-ing the filled clauses repeats constant text terms and
        # inflates BM25; _score outputs force the per-statement fallback.
        source = instance.source("solr://tweets")
        query = FullTextQuery.create("text:urgence AND user.screen_name:{id}",
                                     {"t": "text", "id": "user.screen_name",
                                      "s": "_score"})
        batch = [{"id": "mlepen"}, {"id": "fhollande"}]
        self.assert_batch_matches_loop(source, query, batch)

    def test_fulltext_text_field_falls_back(self, instance):
        source = instance.source("solr://tweets")
        query = FullTextQuery.create("text:{word}", {"t": "text"})
        batch = [{"word": "chomage"}, {"word": "urgence"}, {"word": "zzz"}]
        self.assert_batch_matches_loop(source, query, batch)

    def test_rdf_batch(self, instance):
        source = instance.source("rdf://handles")
        query = RDFQuery.from_text("SELECT ?h ?f WHERE { ?u ttn:handle ?h . "
                                   "?u ttn:followers ?f }")
        batch = [{"h": "fhollande"}, {"h": "mlepen"}, {"h": "ghost"},
                 {"f": 900_000}, {}]
        self.assert_batch_matches_loop(source, query, batch)

    def test_rdf_batch_with_non_projected_bound_variable(self, instance):
        # Bindings on a body variable the SELECT projects away cannot be
        # bucketed from the (projected) solutions; the wrapper must fall
        # back to per-binding evaluation for them.
        source = instance.source("rdf://handles")
        query = RDFQuery.from_text("SELECT ?h WHERE { ?u ttn:handle ?h . "
                                   "?u ttn:followers ?f }")
        batch = [{"f": 1_500_000}, {"f": 900_000}, {"f": -1}]
        self.assert_batch_matches_loop(source, query, batch)
        assert source.execute_batch(query, batch)[0] == [{"h": "fhollande"}]

    def test_rdf_batch_distinguishes_uri_and_literal(self, instance):
        graph = Graph("mixed-values")
        graph.add(triple("ttn:A", "ttn:ref", "http://example.org/x"))
        inst = MixedInstance(graph=Graph("empty"))
        rdf = inst.register_rdf("rdf://mixed", graph)
        query = RDFQuery.from_text("SELECT ?v WHERE { ?s ttn:ref ?v }")
        batch = [{"v": "http://example.org/x"}, {"v": "http://example.org/y"}]
        self.assert_batch_matches_loop(rdf, query, batch)

    def test_json_batch_with_pushdown(self, instance):
        source = instance.source("json://tweets")
        query = JSONQuery.from_text('{ user.screen_name: ?id, text: ?t }')
        batch = [{"id": "fhollande"}, {"id": "mlepen"}, {"id": "missing"}, {}]
        self.assert_batch_matches_loop(source, query, batch)

    def test_json_batch_with_parameters_and_limit(self, instance):
        source = instance.source("json://tweets")
        query = JSONQuery.from_text('{ user.screen_name: {id}, text: ?t }', limit=1)
        batch = [{"id": "fhollande"}, {"id": "mlepen"}]
        self.assert_batch_matches_loop(source, query, batch)

    def test_base_fallback_used_by_unknown_models(self, instance):
        # The base class answers batches with a per-binding loop, so any
        # source without a native implementation still satisfies the
        # protocol contract.
        from repro.core.sources import DataSource

        class Fixed(DataSource):
            model = "fulltext"

            def execute(self, query, bindings=None):
                return [{"x": (bindings or {}).get("x", 0)}]

        fixed = Fixed("stub://fixed")
        query = FullTextQuery.create("*:*", {"x": "x"})
        assert fixed.execute_batch(query, [{"x": 1}, {"x": 2}]) == [
            [{"x": 1}], [{"x": 2}]]


# ---------------------------------------------------------------------------
# Planner knobs
# ---------------------------------------------------------------------------

class TestPlannerBatching:
    def test_bind_steps_carry_batch_size(self, instance):
        cmq = (instance.builder("q", head=["t", "id"])
               .graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
               .fulltext("tweets", source="solr://tweets", query="*:*",
                         fields={"t": "text", "id": "user.screen_name"})
               .build())
        plan = instance.plan(cmq)
        bind_steps = [s for s in plan.steps if s.mode == "bind"]
        assert bind_steps and all(s.batch_size >= MIN_BIND_BATCH for s in bind_steps)

    def test_explicit_batch_size_wins(self, instance):
        cmq = (instance.builder("q", head=["t", "id"])
               .graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
               .fulltext("tweets", source="solr://tweets", query="*:*",
                         fields={"t": "text", "id": "user.screen_name"})
               .build())
        plan = instance.plan(cmq, PlannerOptions(bind_batch_size=7))
        assert all(s.batch_size == 7 for s in plan.steps if s.mode == "bind")

    def test_auto_batch_size_bounds(self):
        assert auto_batch_size(1) == MAX_BIND_BATCH
        assert auto_batch_size(10 ** 9) == MIN_BIND_BATCH
        assert MIN_BIND_BATCH <= auto_batch_size(float("inf")) <= MAX_BIND_BATCH

    def test_batching_disabled_resets_step_batch_size(self, instance):
        cmq = (instance.builder("q", head=["t", "id"])
               .graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
               .fulltext("tweets", source="solr://tweets", query="*:*",
                         fields={"t": "text", "id": "user.screen_name"})
               .build())
        plan = instance.plan(cmq, PER_BINDING)
        assert all(s.batch_size == 0 for s in plan.steps)


# ---------------------------------------------------------------------------
# End-to-end equivalence: batched engine == per-binding engine
# ---------------------------------------------------------------------------

class TestBatchedExecutionEquivalence:
    def test_fulltext_atom(self, instance):
        cmq = (instance.builder("q", head=["id", "t"])
               .graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
               .fulltext("tweets", source="solr://tweets", query="*:*",
                         fields={"t": "text", "id": "user.screen_name"})
               .build())
        batched, per_binding = assert_equivalent(instance, cmq)
        assert len(batched.trace.calls) < len(per_binding.trace.calls)
        assert batched.trace.batched_calls() >= 1

    def test_relational_atom_with_placeholder(self, instance, politics_graph):
        politics_graph.add(triple("ttn:POL1", "ttn:inDept", "75"))
        politics_graph.add(triple("ttn:POL2", "ttn:inDept", "33"))
        instance.add_glue_triples([])
        cmq = (instance.builder("q", head=["dept", "rate"])
               .graph("SELECT ?dept WHERE { ?x ttn:inDept ?dept }")
               .sql("stats", source="sql://insee",
                    sql="SELECT dept_code AS dept, rate AS rate FROM unemployment "
                        "WHERE dept_code = {dept}")
               .build())
        batched, per_binding = assert_equivalent(instance, cmq)
        assert len(batched.rows) == 3  # 75 has two years, 33 one
        assert len(batched.trace.calls) < len(per_binding.trace.calls)

    def test_rdf_atom(self, instance):
        cmq = (instance.builder("q", head=["id", "f"])
               .graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
               .rdf("followers", source="rdf://handles",
                    sparql_text="SELECT ?id ?f WHERE { ?u ttn:handle ?id . "
                                "?u ttn:followers ?f }")
               .build())
        batched, per_binding = assert_equivalent(instance, cmq)
        assert {row["id"] for row in batched.rows} == {"fhollande", "mlepen"}

    def test_json_atom(self, instance):
        cmq = (instance.builder("q", head=["id", "t"])
               .graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
               .json("docs", source="json://tweets",
                     pattern='{ user.screen_name: ?id, text: ?t }')
               .build())
        batched, per_binding = assert_equivalent(instance, cmq)
        assert len(batched.rows) == 3
        assert len(batched.trace.calls) < len(per_binding.trace.calls)

    def test_dynamic_source_from_binding(self, instance, politics_graph):
        politics_graph.add(triple("ttn:POL1", "ttn:statsEndpoint", "sql://insee"))
        instance.add_glue_triples([])
        cmq = (instance.builder("q", head=["rate", "src"])
               .graph("SELECT ?src WHERE { ?x ttn:position ttn:headOfState . "
                      "?x ttn:statsEndpoint ?src }")
               .sql("stats", source_variable="src",
                    sql="SELECT rate AS rate FROM unemployment WHERE year = 2015")
               .build())
        batched, _ = assert_equivalent(instance, cmq)
        assert set(batched.column("src")) == {"sql://insee"}

    def test_free_source_variable_fans_out(self, instance):
        cmq = (instance.builder("q", head=["t", "d"])
               .fulltext("anytweets", source_variable="d",
                         query="entities.hashtags:sia2016", fields={"t": "text"})
               .build())
        batched, _ = assert_equivalent(instance, cmq)
        assert batched.rows[0]["d"] == "solr://tweets"

    def test_small_batch_size_still_equivalent(self, instance):
        cmq = (instance.builder("q", head=["id", "t"])
               .graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
               .fulltext("tweets", source="solr://tweets", query="*:*",
                         fields={"t": "text", "id": "user.screen_name"})
               .build())
        tiny = instance.execute(cmq, options=PlannerOptions(bind_batch_size=1))
        reference = instance.execute(cmq, options=PER_BINDING)
        assert sorted(map(str, tiny.rows)) == sorted(map(str, reference.rows))


# ---------------------------------------------------------------------------
# Digest sieve
# ---------------------------------------------------------------------------

class TestDigestSieve:
    @pytest.fixture
    def catalog(self, instance):
        return instance.build_digests()

    def test_sieve_never_drops_a_true_match(self, instance, catalog):
        # Every binding that has an answer must survive the sieve: with
        # and without the catalog the result set is identical.
        for cmq in self._queries(instance):
            sieved = instance.execute(cmq, digests=catalog)
            plain = instance.execute(cmq)
            per_binding = instance.execute(cmq, options=PER_BINDING)
            assert sorted(map(str, sieved.rows)) == sorted(map(str, plain.rows))
            assert sorted(map(str, sieved.rows)) == sorted(map(str, per_binding.rows))

    def _queries(self, instance):
        yield (instance.builder("ft", head=["id", "t"])
               .graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
               .fulltext("tweets", source="solr://tweets", query="*:*",
                         fields={"t": "text", "id": "user.screen_name"})
               .build())
        yield (instance.builder("js", head=["id", "t"])
               .graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
               .json("docs", source="json://tweets",
                     pattern='{ user.screen_name: ?id, text: ?t }')
               .build())
        yield (instance.builder("rdfq", head=["id", "f"])
               .graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
               .rdf("followers", source="rdf://handles",
                    sparql_text="SELECT ?id ?f WHERE { ?u ttn:handle ?id . "
                                "?u ttn:followers ?f }")
               .build())

    def test_sieve_drops_provably_absent_bindings(self, politics_graph, small_database):
        graph = Graph("glue")
        codes = ["75", "33", "29"]
        for i in range(12):
            code = codes[i] if i < 3 else f"X{i}"
            graph.add(triple(f"ttn:P{i}", "ttn:deptCode", code))
        inst = MixedInstance(graph=graph, name="sieve")
        inst.register_relational("sql://insee", small_database)
        catalog = inst.build_digests()
        cmq = (inst.builder("q", head=["dept", "rate"])
               .graph("SELECT ?dept WHERE { ?x ttn:deptCode ?dept }")
               .sql("stats", source="sql://insee",
                    sql="SELECT dept_code AS dept, rate AS rate FROM unemployment "
                        "WHERE dept_code = {dept}")
               .build())
        sieved = inst.execute(cmq, digests=catalog)
        reference = inst.execute(cmq, options=PER_BINDING)
        assert sorted(map(str, sieved.rows)) == sorted(map(str, reference.rows))
        assert sieved.trace.sieved_bindings == 9
        shipped = [c for c in sieved.trace.calls if c.batched]
        assert shipped and shipped[-1].bindings_in == 3

    def test_sieve_keeps_numeric_bindings_across_int_float_spelling(self):
        # str()-normalised digests spell 5 and 5.0 differently, but the
        # sources compare them equal: the sieve must probe both forms.
        from repro.digest.sieve import _might_match, _probe_variants
        from repro.digest.valueset import ValueSetSummary

        summary = ValueSetSummary([5, 7, 9])
        assert not summary.might_contain(5.0)  # the spelling gap
        assert _probe_variants(5.0) == [5.0, 5]
        assert _might_match({"bucket": 5.0}, {"bucket": [summary]})
        assert _might_match({"bucket": 7}, {"bucket": [summary]})
        assert not _might_match({"bucket": 99}, {"bucket": [summary]})

        # Sources compare 1 == True: a digested boolean column must not
        # sieve out its 0/1 integer (or float) spellings.
        flags = ValueSetSummary([True, False])
        for value in (1, 0, 1.0, 0.0):
            assert _might_match({"flag": value}, {"flag": [flags]})
        assert not _might_match({"flag": 2}, {"flag": [flags]})

        # End to end: a float glue binding must reach the int column.
        database = Database("nums")
        database.create_table_from_rows("measures", [
            {"bucket": 5, "label": "five"}, {"bucket": 7, "label": "seven"}])
        graph = Graph("glue")
        graph.add(triple("ttn:A", "ttn:bucket", 5.0))
        graph.add(triple("ttn:B", "ttn:bucket", 7))
        inst = MixedInstance(graph=graph, name="nums")
        inst.register_relational("sql://nums", database)
        catalog = inst.build_digests()
        cmq = (inst.builder("q", head=["bucket", "label"])
               .graph("SELECT ?bucket WHERE { ?x ttn:bucket ?bucket }")
               .sql("lookup", source="sql://nums",
                    sql="SELECT bucket AS bucket, label AS label FROM measures")
               .build())
        sieved = inst.execute(cmq, digests=catalog)
        reference = inst.execute(cmq, options=PER_BINDING)
        assert sorted(map(str, sieved.rows)) == sorted(map(str, reference.rows))
        assert {row["label"] for row in sieved.rows} == {"five", "seven"}

    def test_sieve_for_returns_none_without_digest(self, instance):
        from repro.digest.graph import DigestCatalog

        sieve = DigestSieve(DigestCatalog())  # empty catalog: no digests
        cmq = (instance.builder("q", head=["id", "t"])
               .graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
               .fulltext("tweets", source="solr://tweets", query="*:*",
                         fields={"t": "text", "id": "user.screen_name"})
               .build())
        atom = cmq.atoms[1]
        assert sieve.sieve_for(atom, [instance.source("solr://tweets")]) is None

    def test_sieve_skips_entailed_rdf_sources(self, instance, catalog):
        sieve = DigestSieve(catalog)
        cmq = (instance.builder("q", head=["id"])
               .graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
               .build())
        # The glue source saturates under entailment; its digest only
        # covers the raw graph, so no sieve may be built for it.
        assert sieve.sieve_for(cmq.atoms[0], [instance.glue_source]) is None

    def test_sieve_can_be_disabled_by_options(self, instance, catalog):
        cmq = (instance.builder("q", head=["id", "t"])
               .graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
               .fulltext("tweets", source="solr://tweets", query="*:*",
                         fields={"t": "text", "id": "user.screen_name"})
               .build())
        result = instance.execute(cmq, options=PlannerOptions(digest_sieve=False),
                                  digests=catalog)
        assert result.trace.sieved_bindings == 0
