"""EXPLAIN ANALYZE: plan-vs-reality reports and span reconciliation."""

from __future__ import annotations

import pytest

from repro.core import CMQBuilder, MixedInstance, PlannerOptions
from repro.obs.explain import ExplainReport, explain_analyze
from repro.rdf import Graph, triple
from repro.relational import Database

pytestmark = pytest.mark.obs

HANDLES = [f"u{i}" for i in range(8)]


@pytest.fixture
def instance() -> MixedInstance:
    glue = Graph("glue")
    for i, handle in enumerate(HANDLES):
        glue.add(triple(f"ttn:P{i}", "ttn:twitterAccount", handle))
    database = Database("profiles-db")
    database.create_table_from_rows(
        "profiles", [{"handle": handle, "followers": 100 * (i + 1)}
                     for i, handle in enumerate(HANDLES)])
    inst = MixedInstance(graph=glue, name="explain", entailment=False)
    inst.register_relational("sql://profiles", database)
    return inst


def profile_query(instance: MixedInstance):
    builder = instance.builder("profiles", head=["id", "f"])
    builder.graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
    builder.sql("prof", source="sql://profiles",
                sql="SELECT handle AS id, followers AS f FROM profiles "
                    "WHERE handle = {id}")
    return builder.build()


class TestExplainAnalyze:
    def test_instance_explain_analyze_merges_plan_and_actuals(self, instance):
        report = instance.explain_analyze(profile_query(instance))
        assert isinstance(report, ExplainReport)
        assert report.query == "profiles"
        assert report.rows == len(HANDLES)
        assert [step.mode for step in report.steps] == ["materialize", "bind"]
        glue_step = report.step("qG")
        assert glue_step is not None and glue_step.actual_rows == len(HANDLES)
        bind_step = report.step("prof")
        assert bind_step.bindings == len(HANDLES)
        assert bind_step.calls >= 1
        assert bind_step.batched_calls >= 1
        assert bind_step.rows_fetched == len(HANDLES)
        assert bind_step.seconds > 0.0
        assert bind_step.q_error >= 1.0
        assert report.total_seconds > 0.0

    def test_render_contains_the_table_and_timings(self, instance):
        report = instance.explain_analyze(profile_query(instance))
        text = report.render()
        assert "EXPLAIN ANALYZE" in text
        assert "prof" in text and "[batched]" in text
        assert "plan" in text and "execute" in text
        assert "trace total" in text
        assert "plan for profiles" in text  # plan text included by default
        assert "plan for profiles" not in report.render(include_plan=False)
        spanful = report.render(include_plan=False, include_spans=True)
        assert "stage:materialize" in spanful
        assert str(report) == report.render()

    def test_span_phases_populated_when_tracing(self, instance):
        report = instance.explain_analyze(profile_query(instance))
        assert report.plan_seconds is not None and report.plan_seconds > 0.0
        assert report.execute_seconds is not None
        assert report.queue_seconds is None  # no service queue involved
        assert report.span_tree is not None

    def test_span_phases_absent_when_tracing_off(self, instance):
        options = PlannerOptions(tracing=False)
        result = instance.execute(profile_query(instance), options=options)
        assert result.trace.spans is None
        report = explain_analyze(result)
        assert report.plan_seconds is None
        assert report.execute_seconds is None
        assert "trace total" in report.render()

    def test_spans_reconcile_with_trace_total(self, instance):
        """The execute span and `ExecutionTrace.total_seconds` time the
        same region with the same clock: within 5% (plus a small
        absolute slack for sub-millisecond queries)."""
        result = instance.execute(profile_query(instance))
        trace = result.trace
        execute_spans = trace.spans.find("execute")
        assert len(execute_spans) == 1
        span_seconds = execute_spans[0].seconds
        assert span_seconds == pytest.approx(
            trace.total_seconds, rel=0.05, abs=0.002)
        # Children never outlive the execute span.
        for child in trace.spans.spans:
            assert child.seconds <= span_seconds + 1e-6

    def test_explain_analyze_requires_a_trace(self):
        class Resultless:
            trace = None
            rows = []

        with pytest.raises(ValueError):
            explain_analyze(Resultless())

    def test_self_join_steps_attribute_calls_by_atom_identity(self, instance):
        """Two atoms sharing a relation (and a display name via the same
        SQL) must not pool each other's calls in the report."""
        builder = instance.builder("selfjoin", head=["id", "f"])
        builder.graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
        builder.sql("prof", source="sql://profiles",
                    sql="SELECT handle AS id, followers AS f FROM profiles "
                        "WHERE handle = {id}")
        builder.sql("prof", source="sql://profiles",
                    sql="SELECT handle AS id, followers AS f FROM profiles "
                        "WHERE handle = {id}")
        report = instance.explain_analyze(builder.build())
        prof_steps = [s for s in report.steps if s.atom == "prof"]
        assert len(prof_steps) == 2
        for step in prof_steps:
            assert step.calls >= 1
            assert step.rows_fetched == step.actual_rows
