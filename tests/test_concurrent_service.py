"""Concurrent mediator service: stress/equivalence + thread-safety seams.

The stress harness races N writer threads (mutating all four store
kinds) against M reader threads submitting mixed CMQs through the
:class:`~repro.service.MediatorService`.  Every completed ticket is then
re-evaluated **serially** against the snapshot catalog it pinned — the
two result sets must be identical, proving snapshot isolation: a query
never observes a torn or half-applied delta, only the exact versions it
pinned.

The second half regression-tests the thread-safety seams the service
leans on: the LRU cache, the statistics catalog's feedback revisions,
the sub-query result cache's per-binding probes, and the service's
scheduler semantics (priorities, admission, deadlines, cancellation).
"""

from __future__ import annotations

import os
import random
import threading
import time

import pytest

from repro.cache.lru import LRUCache
from repro.cache.results import CachedSource, SubQueryResultCache
from repro.core import CMQBuilder, MixedInstance, PlannerOptions
from repro.core.sources import DataSource, SQLQuery
from repro.errors import AdmissionError, QueryCancelledError, QueryTimeoutError
from repro.fulltext.store import FieldConfig, FullTextStore
from repro.json.store import JSONDocumentStore
from repro.rdf import Graph, triple
from repro.relational import Database
from repro.service import MediatorService, ServiceConfig
from repro.stats.catalog import StatisticsCatalog

#: Reduced-budget knobs for CI (`REPRO_STRESS_READERS=4 ... pytest -m stress`).
READERS = int(os.environ.get("REPRO_STRESS_READERS", "8"))
WRITERS = int(os.environ.get("REPRO_STRESS_WRITERS", "2"))
QUERIES_PER_READER = int(os.environ.get("REPRO_STRESS_QUERIES", "5"))

HANDLES = [f"u{i}" for i in range(8)]
TOPICS = ["politics", "sports", "culture"]


def build_instance() -> MixedInstance:
    """A four-model instance: glue RDF + relational + full-text + JSON."""
    glue = Graph("glue")
    for i, handle in enumerate(HANDLES):
        glue.add(triple(f"ttn:P{i}", "ttn:twitterAccount", handle))
        glue.add(triple(f"ttn:P{i}", "ttn:memberOf", f"ttn:PARTY{i % 3}"))
    database = Database("profiles-db")
    database.create_table_from_rows(
        "profiles", [{"handle": handle, "followers": 100 * (i + 1)}
                     for i, handle in enumerate(HANDLES)])
    store = FullTextStore("posts", fields=[
        FieldConfig("text", "text"),
        FieldConfig("user.screen_name", "keyword"),
    ], default_field="text")
    documents = JSONDocumentStore("tweets")
    for i in range(24):
        handle = HANDLES[i % len(HANDLES)]
        topic = TOPICS[i % len(TOPICS)]
        store.add({"id": i, "text": f"post about {topic} by {handle}",
                   "user": {"screen_name": handle}})
        documents.add({"id": i, "author": handle, "topic": topic,
                       "likes": (i * 7) % 40})
    instance = MixedInstance(graph=glue, name="stress", entailment=False)
    instance.register_relational("sql://profiles", database)
    instance.register_fulltext("solr://posts", store)
    instance.register_json("json://tweets", documents)
    return instance


def mixed_queries(instance: MixedInstance) -> list:
    """CMQs spanning every model, bind joins included."""
    queries = []
    for topic in TOPICS:
        builder = instance.builder(f"q_{topic}")
        builder.graph("SELECT ?id ?p WHERE { ?x ttn:twitterAccount ?id . "
                      "?x ttn:memberOf ?p }")
        builder.sql("prof", source="sql://profiles",
                    sql="SELECT handle AS id, followers AS f FROM profiles "
                        "WHERE handle = {id}")
        builder.json("tweets", source="json://tweets",
                     pattern=f'{{ author: ?id, topic: "{topic}", likes: ?l }}')
        queries.append(builder.build())
    builder = instance.builder("q_posts")
    builder.graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
    builder.fulltext("posts", source="solr://posts",
                     query="user.screen_name:{id}",
                     fields={"t": "text", "id": "user.screen_name"})
    queries.append(builder.build())
    return queries


def result_set(result):
    return sorted(tuple(sorted((k, str(v)) for k, v in row.items()))
                  for row in result.rows)


class Writers:
    """Background mutators hitting all four stores until stopped."""

    def __init__(self, instance: MixedInstance, count: int):
        self.instance = instance
        self.stop = threading.Event()
        self.errors: list[BaseException] = []
        self.threads = [threading.Thread(target=self._run, args=(i,), daemon=True)
                        for i in range(count)]

    def _run(self, seed: int) -> None:
        rng = random.Random(seed)
        graph = self.instance.glue_source
        table = self.instance.source("sql://profiles").database.table("profiles")
        posts = self.instance.source("solr://posts").store
        tweets = self.instance.source("json://tweets").store
        try:
            tick = 0
            while not self.stop.is_set():
                tick += 1
                handle = f"w{seed}_{tick}"
                kind = rng.randrange(4)
                if kind == 0:
                    graph.add_triples([
                        triple(f"ttn:W{seed}_{tick}", "ttn:twitterAccount", handle),
                        triple(f"ttn:W{seed}_{tick}", "ttn:memberOf", "ttn:PARTY0"),
                    ])
                elif kind == 1:
                    table.insert({"handle": handle, "followers": tick})
                elif kind == 2:
                    posts.add({"id": f"{seed}_{tick}",
                               "text": f"post about {rng.choice(TOPICS)} by {handle}",
                               "user": {"screen_name": handle}})
                else:
                    tweets.add({"id": f"{seed}_{tick}", "author": handle,
                                "topic": rng.choice(TOPICS), "likes": tick % 40})
                time.sleep(0.0005)
        except BaseException as exc:  # noqa: BLE001 - surfaced by the test
            self.errors.append(exc)

    def __enter__(self) -> "Writers":
        for thread in self.threads:
            thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop.set()
        for thread in self.threads:
            thread.join(timeout=10)
        assert not self.errors, f"writer crashed: {self.errors[0]!r}"


# ---------------------------------------------------------------------------
# Stress / equivalence harness
# ---------------------------------------------------------------------------

@pytest.mark.stress
class TestStressEquivalence:
    def test_readers_vs_writers_snapshot_equivalence(self):
        """M readers × N writers over all four models: zero violations."""
        instance = build_instance()
        queries = mixed_queries(instance)
        violations: list[str] = []
        reader_errors: list[BaseException] = []
        tickets: list = []
        tickets_lock = threading.Lock()

        config = ServiceConfig(workers=max(4, READERS), max_queue_depth=256,
                               max_in_flight=512)
        with MediatorService(instance, config) as service, \
                Writers(instance, WRITERS):
            def read(seed: int) -> None:
                rng = random.Random(1000 + seed)
                try:
                    for _ in range(QUERIES_PER_READER):
                        ticket = service.submit(rng.choice(queries))
                        ticket.result(timeout=60)
                        with tickets_lock:
                            tickets.append(ticket)
                except BaseException as exc:  # noqa: BLE001
                    reader_errors.append(exc)

            readers = [threading.Thread(target=read, args=(i,), daemon=True)
                       for i in range(READERS)]
            for thread in readers:
                thread.start()
            for thread in readers:
                thread.join(timeout=120)
            assert not reader_errors, f"reader crashed: {reader_errors[0]!r}"

            # Serial verification: each ticket's result must equal a
            # fresh, serial, cache-free run against the snapshot vector
            # the query pinned (the pinned stores are immutable, so this
            # is exact no matter what the writers did since).
            for ticket in tickets:
                serial = ticket.pinned.execute(
                    instance, ticket.query, cache=False,
                    options=PlannerOptions(parallel_stages=False))
                if result_set(ticket.result()) != result_set(serial):
                    violations.append(ticket.query.name)

        assert tickets, "no queries completed"
        assert len(tickets) == READERS * QUERIES_PER_READER
        assert not violations, f"snapshot equivalence violated: {violations}"

    def test_pinned_vector_is_a_store_prefix(self):
        """Pinned versions never exceed live ones and stay internally
        consistent: the pinned wrapper's version matches its vector entry."""
        instance = build_instance()
        with Writers(instance, WRITERS):
            for _ in range(20):
                pinned = instance.pin()
                for uri, source in pinned.sources.items():
                    assert source.version() == pinned.versions[uri]
                    live = instance.source(uri)
                    assert pinned.versions[uri] <= live.version()
                assert pinned.glue.version() == pinned.versions["#glue"]
                time.sleep(0.002)


# ---------------------------------------------------------------------------
# Scheduler semantics
# ---------------------------------------------------------------------------

class TestScheduler:
    @pytest.fixture
    def instance(self):
        return build_instance()

    @pytest.fixture
    def query(self, instance):
        return mixed_queries(instance)[0]

    def test_priority_orders_the_queue(self, instance, query):
        """With one worker, lower priority values run first (FIFO ties)."""
        order: list[str] = []
        gate = threading.Event()

        class GatedSource(DataSource):
            model = "relational"

            def __init__(self, inner):
                super().__init__(inner.uri, name=inner.name)
                self.inner = inner

            def execute(self, q, bindings=None):
                gate.wait(10)
                return self.inner.execute(q, bindings)

            def execute_batch(self, q, batch):
                gate.wait(10)
                return self.inner.execute_batch(q, batch)

            def estimate(self, q, bound_variables=None):
                return self.inner.estimate(q, bound_variables)

            def version(self):
                return self.inner.version()

            def size(self):
                return self.inner.size()

        instance.register(GatedSource(instance.source("sql://profiles")))
        service = MediatorService(instance, ServiceConfig(workers=1))
        try:
            blocker = service.submit(query)  # occupies the single worker
            deadline = time.monotonic() + 10
            while blocker.status != "running" and time.monotonic() < deadline:
                time.sleep(0.001)
            low = service.submit(query, priority=50)
            high = service.submit(query, priority=1)
            mid = service.submit(query, priority=10)
            for ticket, label in ((low, "low"), (high, "high"), (mid, "mid")):
                ticket._original_finish = ticket._finish

                def finish(status, result=None, error=None, t=ticket, label=label):
                    order.append(label)
                    t._original_finish(status, result=result, error=error)

                ticket._finish = finish
            gate.set()
            for ticket in (blocker, low, high, mid):
                ticket.wait(timeout=30)
            assert order == ["high", "mid", "low"]
        finally:
            gate.set()
            service.shutdown()

    def test_admission_control_rejects_past_queue_depth(self, instance, query):
        gate = threading.Event()

        class SlowGlue(DataSource):
            model = "rdf"

            def __init__(self, inner):
                super().__init__(inner.uri, name=inner.name)
                self.inner = inner

            def execute(self, q, bindings=None):
                gate.wait(10)
                return self.inner.execute(q, bindings)

            def execute_batch(self, q, batch):
                gate.wait(10)
                return self.inner.execute_batch(q, batch)

            def estimate(self, q, bound_variables=None):
                return self.inner.estimate(q, bound_variables)

            def version(self):
                return self.inner.version()

            def size(self):
                return self.inner.size()

        instance._glue_source = SlowGlue(instance.glue_source)
        service = MediatorService(instance, ServiceConfig(
            workers=1, max_queue_depth=2, max_in_flight=8))
        try:
            tickets = [service.submit(query)]  # running
            deadline = time.monotonic() + 10
            while tickets[0].status != "running" and time.monotonic() < deadline:
                time.sleep(0.001)  # wait until it left the queue
            assert tickets[0].status == "running"
            tickets.append(service.submit(query))  # queued 1
            tickets.append(service.submit(query))  # queued 2
            with pytest.raises(AdmissionError):
                service.submit(query)
            assert service.statistics()["rejected"] == 1
            gate.set()
            for ticket in tickets:
                ticket.result(timeout=30)
        finally:
            gate.set()
            service.shutdown()

    def test_deadline_times_out_queued_query(self, instance, query):
        gate = threading.Event()

        class Stall(DataSource):
            model = "rdf"

            def __init__(self, inner):
                super().__init__(inner.uri, name=inner.name)
                self.inner = inner

            def execute(self, q, bindings=None):
                gate.wait(10)
                return self.inner.execute(q, bindings)

            def execute_batch(self, q, batch):
                gate.wait(10)
                return self.inner.execute_batch(q, batch)

            def estimate(self, q, bound_variables=None):
                return self.inner.estimate(q, bound_variables)

            def version(self):
                return self.inner.version()

            def size(self):
                return self.inner.size()

        instance._glue_source = Stall(instance.glue_source)
        service = MediatorService(instance, ServiceConfig(workers=1))
        try:
            service.submit(query)  # occupies the worker behind the gate
            doomed = service.submit(query, deadline=0.05)
            time.sleep(0.2)
            gate.set()
            with pytest.raises(QueryTimeoutError):
                doomed.result(timeout=30)
            assert doomed.status == "timed_out"
            assert service.statistics()["timed_out"] >= 1
        finally:
            gate.set()
            service.shutdown()

    def test_cancel_queued_query(self, instance, query):
        gate = threading.Event()

        class Stall(DataSource):
            model = "rdf"

            def __init__(self, inner):
                super().__init__(inner.uri, name=inner.name)
                self.inner = inner

            def execute(self, q, bindings=None):
                gate.wait(10)
                return self.inner.execute(q, bindings)

            def execute_batch(self, q, batch):
                gate.wait(10)
                return self.inner.execute_batch(q, batch)

            def estimate(self, q, bound_variables=None):
                return self.inner.estimate(q, bound_variables)

            def version(self):
                return self.inner.version()

            def size(self):
                return self.inner.size()

        instance._glue_source = Stall(instance.glue_source)
        service = MediatorService(instance, ServiceConfig(workers=1))
        try:
            service.submit(query)
            doomed = service.submit(query)
            assert doomed.cancel()
            gate.set()
            with pytest.raises(QueryCancelledError):
                doomed.result(timeout=30)
            assert doomed.status == "cancelled"
        finally:
            gate.set()
            service.shutdown()

    def test_results_match_direct_execution(self, instance, query):
        expected = result_set(instance.execute(query))
        with MediatorService(instance, ServiceConfig(workers=2)) as service:
            assert result_set(service.execute(query)) == expected

    def test_shutdown_rejects_new_work(self, instance, query):
        service = MediatorService(instance, ServiceConfig(workers=1))
        service.shutdown()
        from repro.errors import ServiceError

        with pytest.raises(ServiceError):
            service.submit(query)


# ---------------------------------------------------------------------------
# Pinned entailment: seeded saturation, no per-version full fixpoint
# ---------------------------------------------------------------------------

class TestPinnedEntailment:
    def _source(self):
        from repro.core.sources import RDFSource

        graph = Graph("ent")
        graph.add(triple("ttn:politician", "rdfs:subClassOf", "ttn:person"))
        graph.add(triple("ttn:X", "rdf:type", "ttn:politician"))
        return RDFSource("rdf://ent", graph, entailment=True)

    def _people(self, source):
        from repro.core.sources import RDFQuery

        query = RDFQuery.from_text(
            "SELECT ?s WHERE { ?s rdf:type ttn:person }")
        return sorted(str(row["s"]).rsplit("#", 1)[-1]
                      for row in source.execute(query))

    def test_pinned_entailment_matches_live(self):
        source = self._source()
        assert self._people(source.pin()) == ["X"]
        source.add_triples([triple("ttn:Y", "rdf:type", "ttn:politician")])
        assert self._people(source.pin()) == ["X", "Y"]
        # The live wrapper agrees with its pins at every step.
        assert self._people(source) == ["X", "Y"]

    def test_pin_seeds_saturation_without_full_fixpoint(self, monkeypatch):
        import repro.core.sources as sources_mod

        source = self._source()
        assert self._people(source) == ["X"]  # live saturation in sync

        def forbidden(*args, **kwargs):  # pragma: no cover - failure path
            raise AssertionError("pin() ran a full from-scratch saturation")

        monkeypatch.setattr(sources_mod, "saturate", forbidden)
        # Seeded from the in-sync live saturation: no fixpoint.
        assert self._people(source.pin()) == ["X"]
        # Deltas through add_triples keep the live saturation in sync,
        # so the next pin seeds again instead of recomputing.
        source.add_triples([triple("ttn:Y", "rdf:type", "ttn:politician")])
        assert self._people(source.pin()) == ["X", "Y"]


# ---------------------------------------------------------------------------
# Thread-safety regression seams (PR 3 / PR 4 structures)
# ---------------------------------------------------------------------------

class TestLRUCacheConcurrency:
    def test_concurrent_put_get_remove_keeps_stats_consistent(self):
        cache = LRUCache(max_entries=64)
        errors: list[BaseException] = []

        def hammer(seed: int) -> None:
            rng = random.Random(seed)
            try:
                for i in range(400):
                    key = ("k", rng.randrange(128))
                    op = rng.randrange(3)
                    if op == 0:
                        cache.put(key, (seed, i))
                    elif op == 1:
                        value = cache.get(key)
                        # Values are only whole tuples — never torn.
                        assert value is None or (isinstance(value, tuple)
                                                 and len(value) == 2)
                    else:
                        cache.remove(key)
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=hammer, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors[0]
        stats = cache.stats
        assert len(cache) <= 64
        assert stats.probes == stats.hits + stats.misses
        # Every entry still present was inserted and neither evicted nor
        # invalidated; the counters must balance exactly.
        assert stats.insertions - stats.evictions - stats.invalidations == len(cache)

    def test_eviction_under_concurrent_insertion(self):
        cache = LRUCache(max_entries=16)

        def fill(base: int) -> None:
            for i in range(200):
                cache.put((base, i), i)

        threads = [threading.Thread(target=fill, args=(i,)) for i in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert len(cache) == 16
        assert cache.stats.insertions == 800
        assert cache.stats.evictions == 800 - 16


class TestStatisticsCatalogConcurrency:
    def _source(self):
        database = Database("stats-db")
        database.create_table_from_rows(
            "t", [{"a": i, "b": i % 3} for i in range(10)])
        instance = MixedInstance(name="stats", entailment=False)
        return instance.register_relational("sql://stats", database)

    def test_concurrent_feedback_revision_bumps(self):
        catalog = StatisticsCatalog()
        source = self._source()
        threads = 8
        keys_per_thread = 25

        def record(seed: int) -> None:
            for i in range(keys_per_thread):
                # Distinct WHERE constants keep the canonical keys apart
                # (aliases alone could be canonicalised away).
                query = SQLQuery(
                    sql=f"SELECT a AS x FROM t WHERE a = {seed * 1000 + i}")
                catalog.record(source, query, set(), float(i))

        workers = [threading.Thread(target=record, args=(i,)) for i in range(threads)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60)
        # Every (thread, i) records a structurally distinct query with a
        # fresh value: all are effective, each bumps the revision once.
        assert catalog.feedback_count() == threads * keys_per_thread
        assert catalog.revision == threads * keys_per_thread

    def test_identical_feedback_bumps_once(self):
        catalog = StatisticsCatalog()
        source = self._source()
        query = SQLQuery(sql="SELECT a AS x FROM t")
        barrier = threading.Barrier(8)

        def record() -> None:
            barrier.wait(10)
            catalog.record(source, query, set(), 7.0)

        workers = [threading.Thread(target=record) for _ in range(8)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60)
        assert catalog.feedback_count() == 1
        # Only the first effective change may bump (same value afterwards).
        assert catalog.revision == 1


class TestResultCacheConcurrency:
    def test_parallel_probes_return_whole_rows(self):
        """Concurrent CachedSource probes: never torn, always correct."""
        database = Database("cc-db")
        database.create_table_from_rows(
            "t", [{"k": f"k{i}", "v": i} for i in range(16)])
        instance = MixedInstance(name="cc", entailment=False)
        source = instance.register_relational("sql://cc", database)
        cache = SubQueryResultCache(max_entries=256)
        proxy = CachedSource(source, cache)
        query = SQLQuery(sql="SELECT k AS k, v AS v FROM t WHERE k = {k}")
        errors: list[BaseException] = []

        def probe(seed: int) -> None:
            rng = random.Random(seed)
            try:
                for _ in range(200):
                    i = rng.randrange(16)
                    rows = proxy.execute(query, {"k": f"k{i}"})
                    assert rows == [{"k": f"k{i}", "v": i}], rows
            except BaseException as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=probe, args=(i,)) for i in range(8)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        assert not errors, errors[0]
        stats = cache.stats
        assert stats.probes == 8 * 200
        # At most one miss per distinct binding is *required*; duplicated
        # fills under races are allowed but must stay rare and harmless.
        assert stats.hits >= stats.probes - 8 * 16

    def test_parallel_batch_probes_ship_only_misses(self):
        database = Database("cc2-db")
        database.create_table_from_rows(
            "t", [{"k": f"k{i}", "v": i} for i in range(8)])
        instance = MixedInstance(name="cc2", entailment=False)
        source = instance.register_relational("sql://cc2", database)
        cache = SubQueryResultCache(max_entries=256)
        proxy = CachedSource(source, cache)
        query = SQLQuery(sql="SELECT k AS k, v AS v FROM t WHERE k = {k}")
        batch = [{"k": f"k{i}"} for i in range(8)]
        expected = [[{"k": f"k{i}", "v": i}] for i in range(8)]
        results: dict[int, list] = {}

        def run(seed: int) -> None:
            results[seed] = proxy.execute_batch(query, batch)

        threads = [threading.Thread(target=run, args=(i,)) for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=60)
        for seed in range(6):
            assert results[seed] == expected
