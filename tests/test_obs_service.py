"""Service observability: stats(), span trees, warnings, stress series."""

from __future__ import annotations

import logging
import os
import threading

import pytest

from repro.core import CMQBuilder, MixedInstance
from repro.errors import AdmissionError
from repro.fulltext.store import FieldConfig, FullTextStore
from repro.json.store import JSONDocumentStore
from repro.obs.metrics import MetricsRegistry, get_registry, reset_registry
from repro.rdf import Graph, triple
from repro.relational import Database
from repro.service import MediatorService, ServiceConfig

pytestmark = pytest.mark.obs

HANDLES = [f"u{i}" for i in range(8)]
TOPICS = ["politics", "sports", "culture"]

QUERIES = int(os.environ.get("REPRO_STRESS_QUERIES", "5"))


def build_instance(cache: bool = True) -> MixedInstance:
    glue = Graph("glue")
    for i, handle in enumerate(HANDLES):
        glue.add(triple(f"ttn:P{i}", "ttn:twitterAccount", handle))
        glue.add(triple(f"ttn:P{i}", "ttn:memberOf", f"ttn:PARTY{i % 3}"))
    database = Database("profiles-db")
    database.create_table_from_rows(
        "profiles", [{"handle": handle, "followers": 100 * (i + 1)}
                     for i, handle in enumerate(HANDLES)])
    store = FullTextStore("posts", fields=[
        FieldConfig("text", "text"),
        FieldConfig("user.screen_name", "keyword"),
    ], default_field="text")
    documents = JSONDocumentStore("tweets")
    for i in range(24):
        handle = HANDLES[i % len(HANDLES)]
        topic = TOPICS[i % len(TOPICS)]
        store.add({"id": i, "text": f"post about {topic} by {handle}",
                   "user": {"screen_name": handle}})
        documents.add({"id": i, "author": handle, "topic": topic,
                       "likes": (i * 7) % 40})
    instance = MixedInstance(graph=glue, name="obs-service",
                             entailment=False, cache=cache)
    instance.register_relational("sql://profiles", database)
    instance.register_fulltext("solr://posts", store)
    instance.register_json("json://tweets", documents)
    return instance


def profile_query(instance: MixedInstance):
    builder = instance.builder("profiles", head=["id", "f"])
    builder.graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
    builder.sql("prof", source="sql://profiles",
                sql="SELECT handle AS id, followers AS f FROM profiles "
                    "WHERE handle = {id}")
    return builder.build()


def wide_query(instance: MixedInstance, topic: str = "politics"):
    """A query with a two-atom materialize stage (drives the pools)."""
    builder = instance.builder(f"wide_{topic}", head=["id", "f", "l"])
    builder.graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
    builder.sql("prof", source="sql://profiles",
                sql="SELECT handle AS id, followers AS f FROM profiles")
    builder.json("tweets", source="json://tweets",
                 pattern=f'{{ author: ?id, topic: "{topic}", likes: ?l }}')
    return builder.build()


class TestServiceStats:
    def test_stats_counts_and_latency_summary(self):
        instance = build_instance()
        with MediatorService(instance, metrics=MetricsRegistry()) as service:
            for _ in range(3):
                service.execute(profile_query(instance), timeout=10)
            stats = service.stats()
        assert stats["submitted"] == 3
        assert stats["completed"] == 3
        assert stats["failed"] == 0
        assert stats["rejected"] == 0
        assert stats["deadline_misses"] == 0
        assert stats["latency_seconds"]["count"] == 3
        assert stats["latency_seconds"]["p95"] >= stats["latency_seconds"]["p50"]
        assert stats["queue_wait_seconds"]["count"] == 3

    def test_dedicated_registry_is_used(self):
        instance = build_instance()
        registry = MetricsRegistry()
        with MediatorService(instance, metrics=registry) as service:
            service.execute(profile_query(instance), timeout=10)
        assert registry.value("service_completed_total") == 1.0
        assert registry.value("executor_queries_total") == 1.0
        # Cache callbacks registered against the service's registry.
        assert registry.value("cache_entries", cache="results") is not None


class TestServiceSpans:
    def test_ticket_span_tree_covers_every_phase(self):
        instance = build_instance()
        with MediatorService(instance, metrics=MetricsRegistry()) as service:
            ticket = service.submit(profile_query(instance))
            ticket.result(timeout=10)
        tracer = ticket.span_tree
        assert tracer is not None
        names = [span.name for span in tracer.spans]
        assert names[0] == "query:profiles"
        for expected in ("queue", "execute", "plan", "stage:materialize",
                         "call", "bind:prof"):
            assert expected in names, f"missing span {expected!r}"
        root = tracer.root()
        assert root.attributes["status"] == "done"
        # Every span is closed and parented inside the tree.
        ids = {span.span_id for span in tracer.spans}
        for span in tracer.spans:
            assert span.ended_at is not None
            assert span.parent_id is None or span.parent_id in ids
        # The executor's trace shares the ticket's tracer.
        assert ticket.result().trace.spans is tracer

    def test_ticket_explain_analyze_includes_queue_wait(self):
        instance = build_instance()
        with MediatorService(instance, metrics=MetricsRegistry()) as service:
            ticket = service.submit(profile_query(instance))
            report = ticket.explain_analyze(timeout=10)
        assert report.query == "profiles"
        assert report.queue_seconds is not None and report.queue_seconds >= 0.0
        assert report.execute_seconds is not None
        assert "queue" in report.render()

    def test_tracing_off_leaves_no_tree(self):
        instance = build_instance()
        config = ServiceConfig(tracing=False)
        with MediatorService(instance, config,
                             metrics=MetricsRegistry()) as service:
            ticket = service.submit(profile_query(instance))
            ticket.result(timeout=10)
        assert ticket.span_tree is None
        assert ticket.root_span is None


class TestServiceWarnings:
    def test_admission_rejection_warns(self, caplog):
        instance = build_instance()
        config = ServiceConfig(max_queue_depth=0, max_in_flight=0)
        with MediatorService(instance, config,
                             metrics=MetricsRegistry()) as service:
            with caplog.at_level(logging.WARNING, logger="repro.service"):
                with pytest.raises(AdmissionError):
                    service.submit(profile_query(instance))
        assert any("admission refused" in record.message
                   for record in caplog.records)
        assert service.stats()["rejected"] == 1

    def test_deadline_miss_warns_and_counts(self, caplog):
        instance = build_instance()
        registry = MetricsRegistry()
        with MediatorService(instance, metrics=registry) as service:
            with caplog.at_level(logging.WARNING, logger="repro.service"):
                ticket = service.submit(profile_query(instance), deadline=0.0)
                ticket.wait(timeout=10)
        assert ticket.status == "timed_out"
        assert any("missed its deadline" in record.message
                   for record in caplog.records)
        assert registry.value("service_deadline_misses_total") == 1.0
        assert service.stats()["deadline_misses"] == 1.0


@pytest.mark.stress
class TestMetricsUnderLoad:
    def test_snapshot_reports_every_subsystem(self):
        """After a loaded run the global registry must have non-zero
        queue, cache, sieve, pool and per-source series (the issue's
        acceptance check)."""
        registry = reset_registry()
        try:
            from repro.core import PlannerOptions

            instance = build_instance()
            queries = [wide_query(instance, topic) for topic in TOPICS]
            # Hash-join mode materialises every atom of a wide query in
            # one parallel stage, which drives the shared work pools.
            hash_join = PlannerOptions(use_bind_joins=False)
            with MediatorService(instance, ServiceConfig(workers=4)) as service:
                tickets = [service.submit(queries[i % len(queries)],
                                          options=hash_join if i % 2 else None)
                           for i in range(max(4, QUERIES * 2))]
                for ticket in tickets:
                    ticket.result(timeout=30)

            # The digest sieve runs outside the service path: drive one
            # digest-backed execution explicitly, with glue handles that
            # provably cannot match any profiles row.
            from repro.rdf import triple as _triple

            for i in range(6):
                instance.graph.add(
                    _triple(f"ttn:G{i}", "ttn:twitterAccount", f"ghost{i}"))
            catalog = instance.build_digests()
            executor = instance.executor(digests=catalog)
            builder = instance.builder("sieved", head=["id", "f"])
            builder.graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
            builder.sql("prof", source="sql://profiles",
                        sql="SELECT handle AS id, followers AS f FROM profiles "
                            "WHERE handle = {id}")
            sieved = executor.execute(builder.build())
            assert sieved.trace.sieved_bindings > 0

            snapshot = get_registry().snapshot()
            assert snapshot["service_submitted_total"] >= 4
            assert snapshot["service_completed_total"] >= 4
            assert snapshot["service_latency_seconds"]["count"] >= 4
            assert snapshot["service_queue_wait_seconds"]["count"] >= 4
            assert snapshot["executor_queries_total"] >= 5
            # Per-source series for every registered source.
            for uri in ("#glue", "sql://profiles", "json://tweets"):
                assert snapshot[f"source_calls_total{{source={uri}}}"] > 0
                assert snapshot[f"source_rows_total{{source={uri}}}"] > 0
                assert snapshot[
                    f"source_call_seconds{{source={uri}}}"]["count"] > 0
            # Cache callbacks (the service registered the instance cache).
            assert snapshot["cache_misses{cache=results}"] > 0
            assert snapshot["cache_entries{cache=results}"] > 0
            # Batched bind joins shipped bindings; the digest run sieved.
            assert snapshot["sieve_shipped_bindings_total"] > 0
            assert snapshot["sieve_sieved_bindings_total"] > 0
            # The wide queries' two-atom stages exercised a pool.
            pools = get_registry().series("pool_tasks_total")
            assert sum(pools.values()) > 0
            text = get_registry().render_prometheus()
            assert "service_latency_seconds_bucket" in text
        finally:
            reset_registry()

    def test_rwlock_contention_is_recorded(self):
        registry = reset_registry()
        try:
            from repro.locks import RWLock

            lock = RWLock()
            entered = threading.Event()
            release = threading.Event()

            def writer():
                with lock.write_locked():
                    entered.set()
                    release.wait(5)

            thread = threading.Thread(target=writer)
            thread.start()
            entered.wait(5)
            waited = threading.Event()

            def reader():
                with lock.read_locked():
                    waited.set()

            reader_thread = threading.Thread(target=reader)
            reader_thread.start()
            # Let the reader actually block on the held write lock.
            import time as _time

            _time.sleep(0.05)
            release.set()
            thread.join(5)
            reader_thread.join(5)
            assert waited.is_set()
            summary = registry.value("rwlock_wait_seconds", side="read")
            assert summary is not None and summary["count"] >= 1
            assert summary["max"] >= 0.04
        finally:
            reset_registry()
