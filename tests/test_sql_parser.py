"""Unit tests for the SQL lexer and parser."""

import pytest

from repro.errors import SQLParseError
from repro.relational import (
    BinaryOp,
    ColumnRef,
    CreateTableStatement,
    FunctionCall,
    InsertStatement,
    LiteralValue,
    SelectStatement,
    parse_sql,
    tokenize,
)


class TestTokenizer:
    def test_keywords_and_identifiers(self):
        tokens = tokenize("SELECT name FROM departments")
        assert [t.kind for t in tokens] == ["keyword", "identifier", "keyword", "identifier"]

    def test_strings_keep_quotes(self):
        tokens = tokenize("WHERE name = 'Paris'")
        assert tokens[-1].kind == "string"

    def test_comments_ignored(self):
        tokens = tokenize("SELECT 1 -- a comment\n FROM t")
        assert all("comment" not in t.text for t in tokens)

    def test_unexpected_character_raises(self):
        with pytest.raises(SQLParseError):
            tokenize("SELECT @name FROM t")

    def test_operators(self):
        tokens = tokenize("a <= 3 AND b <> 4")
        assert ("operator", "<=") in [(t.kind, t.text) for t in tokens]
        assert ("operator", "<>") in [(t.kind, t.text) for t in tokens]


class TestSelectParsing:
    def test_simple_select(self):
        stmt = parse_sql("SELECT name, population FROM departments")
        assert isinstance(stmt, SelectStatement)
        assert [i.output_name() for i in stmt.items] == ["name", "population"]
        assert stmt.table.name == "departments"

    def test_select_star(self):
        stmt = parse_sql("SELECT * FROM departments")
        assert stmt.items[0].star

    def test_where_clause_tree(self):
        stmt = parse_sql("SELECT name FROM d WHERE population > 100 AND code = '75'")
        assert isinstance(stmt.where, BinaryOp)
        assert stmt.where.operator == "AND"

    def test_aliases(self):
        stmt = parse_sql("SELECT code AS dept, population pop FROM departments d")
        assert [i.output_name() for i in stmt.items] == ["dept", "pop"]
        assert stmt.table.effective_alias == "d"

    def test_join_with_on(self):
        stmt = parse_sql(
            "SELECT d.name, u.rate FROM departments d JOIN unemployment u ON d.code = u.dept_code"
        )
        assert len(stmt.joins) == 1
        assert stmt.joins[0].kind == "INNER"

    def test_left_join(self):
        stmt = parse_sql("SELECT * FROM a LEFT JOIN b ON a.x = b.y")
        assert stmt.joins[0].kind == "LEFT"

    def test_group_by_having(self):
        stmt = parse_sql(
            "SELECT dept_code, AVG(rate) AS avg_rate FROM unemployment "
            "GROUP BY dept_code HAVING AVG(rate) > 9"
        )
        assert len(stmt.group_by) == 1
        assert stmt.having is not None
        assert stmt.items[1].expression.is_aggregate

    def test_order_by_and_limit(self):
        stmt = parse_sql("SELECT name FROM d ORDER BY population DESC, name ASC LIMIT 3")
        assert stmt.order_by[0].descending is True
        assert stmt.order_by[1].descending is False
        assert stmt.limit == 3

    def test_distinct(self):
        assert parse_sql("SELECT DISTINCT region FROM departments").distinct

    def test_in_list_and_like(self):
        stmt = parse_sql("SELECT * FROM d WHERE code IN ('75', '33') AND name LIKE 'P%'")
        assert stmt.where is not None

    def test_is_null(self):
        stmt = parse_sql("SELECT * FROM d WHERE population IS NOT NULL")
        assert stmt.where is not None

    def test_function_calls(self):
        stmt = parse_sql("SELECT UPPER(name), COUNT(*) FROM d")
        assert isinstance(stmt.items[0].expression, FunctionCall)
        assert stmt.items[1].expression.star

    def test_arithmetic_precedence(self):
        stmt = parse_sql("SELECT 1 + 2 * 3 AS x FROM d")
        expression = stmt.items[0].expression
        assert expression.operator == "+"
        assert expression.right.operator == "*"

    def test_parenthesised_expression(self):
        stmt = parse_sql("SELECT (1 + 2) * 3 AS x FROM d")
        assert stmt.items[0].expression.operator == "*"

    def test_qualified_column_refs(self):
        stmt = parse_sql("SELECT d.name FROM departments d")
        ref = stmt.items[0].expression
        assert isinstance(ref, ColumnRef) and ref.table == "d"

    def test_trailing_garbage_rejected(self):
        with pytest.raises(SQLParseError):
            parse_sql("SELECT name FROM d garbage garbage garbage '")

    def test_missing_from_is_allowed_for_constant_select(self):
        stmt = parse_sql("SELECT 1 AS one")
        assert stmt.table is None


class TestOtherStatements:
    def test_create_table(self):
        stmt = parse_sql(
            "CREATE TABLE departments (code TEXT PRIMARY KEY, name VARCHAR(40) NOT NULL, "
            "region TEXT, population INTEGER)"
        )
        assert isinstance(stmt, CreateTableStatement)
        assert stmt.columns[0] == ("code", "TEXT", False, True)
        assert stmt.columns[1][2] is True  # NOT NULL

    def test_create_table_with_references(self):
        stmt = parse_sql(
            "CREATE TABLE unemployment (dept_code TEXT REFERENCES departments(code), rate FLOAT)"
        )
        assert stmt.foreign_keys == [("dept_code", "departments", "code")]

    def test_insert_with_columns(self):
        stmt = parse_sql("INSERT INTO d (code, name) VALUES ('75', 'Paris'), ('33', 'Gironde')")
        assert isinstance(stmt, InsertStatement)
        assert stmt.columns == ["code", "name"]
        assert len(stmt.rows) == 2

    def test_insert_without_columns(self):
        stmt = parse_sql("INSERT INTO d VALUES ('75', 'Paris', 100)")
        assert stmt.columns == []
        assert stmt.rows[0] == ["75", "Paris", 100]

    def test_insert_with_null_and_boolean(self):
        stmt = parse_sql("INSERT INTO d (a, b) VALUES (NULL, TRUE)")
        assert stmt.rows[0] == [None, True]

    def test_quoted_quote_in_string(self):
        stmt = parse_sql("INSERT INTO d (name) VALUES ('Côte d''Or')")
        assert stmt.rows[0] == ["Côte d'Or"]

    def test_unsupported_statement_raises(self):
        with pytest.raises(SQLParseError):
            parse_sql("DELETE FROM departments")

    def test_empty_statement_raises(self):
        with pytest.raises(SQLParseError):
            parse_sql("   ")
