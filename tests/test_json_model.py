"""Unit tests of the JSON document model: patterns, store, matcher, wrapper."""

import random

import pytest

from repro.core import JSONQuery, JSONSource, MixedInstance, PlannerOptions
from repro.errors import JSONError, MixedQueryError, ParseError
from repro.json import (
    JSONDocumentStore,
    Parameter,
    PatternLeaf,
    Predicate,
    TreePattern,
    TreePatternMatcher,
    leaf_values,
    match_document,
    parse_pattern,
    pattern_to_text,
)


@pytest.fixture
def tweet_docs():
    return [
        {"id": 1, "created_at": "2016-03-01T03:42:31",
         "text": "solidarité nationale #SIA2016", "retweet_count": 469,
         "favorite_count": 883,
         "user": {"id": 483794260, "name": "François Hollande",
                  "screen_name": "fhollande", "followers_count": 1502835},
         "entities": {"hashtags": ["SIA2016"], "urls": []}},
        {"id": 2, "created_at": "2015-11-20T09:00:00",
         "text": "l'état d'urgence sera prolongé", "retweet_count": 120,
         "favorite_count": 210,
         "user": {"id": 99, "name": "Marine LePen", "screen_name": "mlepen",
                  "followers_count": 900000},
         "entities": {"hashtags": ["EtatDurgence"], "urls": []}},
        {"id": 3, "created_at": "2016-03-02T10:00:00",
         "text": "au salon de l'agriculture #SIA2016", "retweet_count": 87,
         "favorite_count": 40,
         "user": {"id": 483794260, "name": "François Hollande",
                  "screen_name": "fhollande", "followers_count": 1502835},
         "entities": {"hashtags": ["SIA2016", "agriculture"], "urls": []}},
    ]


@pytest.fixture
def store(tweet_docs):
    s = JSONDocumentStore(name="tweets", text_path="text")
    s.add_all(tweet_docs)
    return s


class TestPatternParser:
    def test_round_trip_is_stable(self):
        texts = [
            '{ user.screen_name: ?id, entities.hashtags: "sia2016" }',
            '{ retweet_count: ?rt >= 100, text: ?t }',
            '{ entities.hashtags: {tag}, text: ?t }',
            '{ favorite_count: > 50, favorite_count: <= 900 }',
            '{ user.name: *, text: ?t != "spam" }',
            '{ active: true, deleted: null, score: 3.5 }',
        ]
        for text in texts:
            pattern = parse_pattern(text)
            assert parse_pattern(pattern_to_text(pattern)) == pattern

    def test_nested_and_dotted_forms_are_equivalent(self):
        dotted = parse_pattern('{ user.screen_name: ?id, entities.hashtags: "x" }')
        nested = parse_pattern(
            '{ user: { screen_name: ?id }, entities: { hashtags: "x" } }')
        assert dotted == nested

    def test_duplicate_paths_merge_predicates(self):
        pattern = parse_pattern('{ rt: > 10, rt: <= 100 }')
        assert len(pattern.leaves) == 1
        assert len(pattern.leaves[0].predicates) == 2

    def test_variables_and_parameters_collected(self):
        pattern = parse_pattern('{ text: ?t, entities.hashtags: {tag}, rt: ?r > 1 }')
        assert pattern.variables() == {"t", "r"}
        assert pattern.parameters() == {"tag"}

    def test_bareword_is_a_string_constant(self):
        pattern = parse_pattern("{ entities.hashtags: sia2016 }")
        assert pattern.leaves[0].predicates[0].value == "sia2016"

    def test_parameter_lookahead_distinguishes_nested_objects(self):
        parameter = parse_pattern("{ tag: {name} }")
        nested = parse_pattern("{ tag: { name: ?n } }")
        assert parameter.leaves[0].path == "tag"
        assert isinstance(parameter.leaves[0].predicates[0].value, Parameter)
        assert nested.leaves[0].path == "tag.name"

    def test_parse_errors(self):
        for bad in ["text: ?t", "{ text ?t }", "{ text: }", "{ text: ?t",
                    "{ text: ?t } trailing", "{ : ?t }", "{ a: ?x, a: ?y }"]:
            with pytest.raises((ParseError, JSONError)):
                parse_pattern(bad)

    def test_escaped_quotes_round_trip(self):
        pattern = parse_pattern('{ text: "dit \\"non\\"" }')
        assert pattern.leaves[0].predicates[0].value == 'dit "non"'
        assert parse_pattern(pattern.to_text()) == pattern


class TestLeafValues:
    def test_arrays_fan_out_at_any_level(self):
        doc = {"a": [{"b": [1, 2]}, {"b": [3]}], "c": {"d": "x"}}
        assert leaf_values(doc, "a.b") == [1, 2, 3]
        assert leaf_values(doc, "c.d") == ["x"]
        assert leaf_values(doc, "c.missing") == []


class TestMatcher:
    def test_index_and_naive_matching_agree(self, store, tweet_docs):
        matcher = TreePatternMatcher(store)
        patterns = [
            '{ user.screen_name: ?id, entities.hashtags: "sia2016", text: ?t }',
            '{ retweet_count: ?rt > 100 }',
            '{ entities.hashtags: ?tag }',
            '{ user.followers_count: >= 1000000, text: ?t }',
            '{ text: ?t != "spam" }',
            '{ user.name: * }',
        ]
        for text in patterns:
            pattern = parse_pattern(text)
            indexed = matcher.match(pattern)
            naive = [row for doc in store.documents()
                     for row in match_document(pattern, doc)]
            assert sorted(map(str, indexed)) == sorted(map(str, naive)), text

    def test_index_and_naive_agree_on_random_documents(self):
        rng = random.Random(17)
        store = JSONDocumentStore(name="random")
        tags = ["a", "b", "c", "d"]
        for i in range(200):
            store.add({
                "id": i,
                "n": rng.randrange(100),
                "tags": rng.sample(tags, k=rng.randrange(0, 3) + 1),
                "nested": {"flag": rng.choice([True, False]),
                           "label": rng.choice(["x", "y", "z"])},
            })
        matcher = TreePatternMatcher(store)
        patterns = [
            '{ tags: "b", n: ?n }',
            '{ n: >= 50, nested.flag: true }',
            '{ nested.label: ?l, tags: ?t }',
            '{ n: ?n < 10, tags: "a" }',
        ]
        for text in patterns:
            pattern = parse_pattern(text)
            indexed = matcher.match(pattern)
            naive = [row for doc in store.documents()
                     for row in match_document(pattern, doc)]
            assert sorted(map(str, indexed)) == sorted(map(str, naive)), text

    def test_interior_paths_match_like_the_naive_semantics(self, store):
        # "user" is an interior node: no value index, but presence pruning
        # through descendant-leaf indexes must keep index and naive agreeing.
        matcher = TreePatternMatcher(store)
        for text in ["{ user: *, text: ?t }", "{ entities: ?e }"]:
            pattern = parse_pattern(text)
            indexed = matcher.match(pattern)
            naive = [row for doc in store.documents()
                     for row in match_document(pattern, doc)]
            assert sorted(map(str, indexed)) == sorted(map(str, naive)), text
        assert len(matcher.match(parse_pattern("{ user: *, text: ?t }"))) == 3

    def test_candidate_pruning_is_a_superset_of_matches(self, store):
        matcher = TreePatternMatcher(store)
        pattern = parse_pattern('{ entities.hashtags: "sia2016" }')
        candidates = matcher.candidates(pattern)
        assert set(candidates) == {"1", "3"}
        assert matcher.selectivity(pattern) == pytest.approx(2 / 3)

    def test_string_equality_is_case_insensitive(self, store):
        matcher = TreePatternMatcher(store)
        upper = matcher.match(parse_pattern('{ entities.hashtags: "SIA2016" }'))
        lower = matcher.match(parse_pattern('{ entities.hashtags: "sia2016" }'))
        assert len(upper) == len(lower) == 2

    def test_pushdown_aligns_rows_to_the_bound_value(self, store):
        matcher = TreePatternMatcher(store)
        pattern = parse_pattern("{ user.screen_name: ?id, text: ?t }")
        rows = matcher.match(pattern, pushdown={"id": "FHOLLANDE"})
        assert rows and all(row["id"] == "FHOLLANDE" for row in rows)

    def test_parameters_fill_predicates(self, store):
        matcher = TreePatternMatcher(store)
        pattern = parse_pattern("{ entities.hashtags: {tag}, text: ?t }")
        rows = matcher.match(pattern, parameters={"tag": "etatdurgence"})
        assert [row["t"] for row in rows] == ["l'état d'urgence sera prolongé"]
        with pytest.raises(JSONError):
            matcher.match(pattern)  # unbound parameter

    def test_same_variable_at_two_paths_must_agree(self):
        pattern = TreePattern(leaves=(
            PatternLeaf(path="a", variable="v"),
            PatternLeaf(path="b", variable="v"),
        ))
        assert match_document(pattern, {"id": 1, "a": "x", "b": "x"}) == [{"v": "x"}]
        assert match_document(pattern, {"id": 1, "a": "x", "b": "y"}) == []


class TestStore:
    def test_add_replace_remove_maintain_indexes(self, store):
        assert len(store) == 3
        assert store.index_for("entities.hashtags").lookup_eq("agriculture") == {"3"}
        store.add({"id": 3, "text": "replaced", "entities": {"hashtags": ["other"]}})
        assert len(store) == 3
        assert store.index_for("entities.hashtags").lookup_eq("agriculture") == set()
        assert store.remove("3") and len(store) == 2
        assert "3" not in store.index_for("text").presence

    def test_missing_id_raises(self):
        with pytest.raises(JSONError):
            JSONDocumentStore().add({"text": "no id"})

    def test_documents_are_insulated_from_caller_mutation(self, tweet_docs):
        store = JSONDocumentStore()
        store.add(tweet_docs[0])
        tweet_docs[0]["user"]["screen_name"] = "mutated"
        assert store.get("1")["user"]["screen_name"] == "fhollande"

    def test_dataguide_rebuilds_after_updates(self, store):
        assert "user.screen_name" in store.dataguide().path_names()
        store.add({"id": 9, "brand_new": {"path": 1}})
        assert "brand_new.path" in store.dataguide().path_names()


class TestJSONSourceWrapper:
    @pytest.fixture
    def source(self, store):
        return JSONSource("json://tweets", store)

    def test_execute_type_checks_the_query(self, source):
        from repro.core import FullTextQuery

        with pytest.raises(MixedQueryError):
            source.execute(FullTextQuery.create("*:*", {"t": "text"}))

    def test_execute_requires_bound_parameters(self, source):
        query = JSONQuery.from_text("{ entities.hashtags: {tag}, text: ?t }")
        with pytest.raises(MixedQueryError):
            source.execute(query)
        rows = source.execute(query, {"tag": "sia2016"})
        assert len(rows) == 2

    def test_constant_equality_sharpens_the_estimate(self, source, store):
        everything = JSONQuery.from_text("{ text: ?t }")
        tagged = JSONQuery.from_text('{ entities.hashtags: "sia2016", text: ?t }')
        assert source.estimate(everything) == float(len(store))
        assert source.estimate(tagged) == 2.0

    def test_dataguide_coverage_drives_rare_path_estimates(self, store):
        store.add({"id": 50, "rare": {"path": "only once"}})
        source = JSONSource("json://tweets", store)
        rare = JSONQuery.from_text("{ rare.path: ?x }")
        assert source.estimate(rare) == pytest.approx(
            store.dataguide().coverage("rare.path") * len(store))
        assert source.estimate(JSONQuery.from_text("{ never.seen: ?x }")) == 0.0
        # Interior nodes estimate through descendant presence.
        assert source.estimate(JSONQuery.from_text("{ rare: * }")) == 1.0

    def test_bound_variables_reduce_the_estimate(self, source):
        query = JSONQuery.from_text("{ user.screen_name: ?id, text: ?t }")
        unbound = source.estimate(query)
        bound = source.estimate(query, {"id"})
        assert bound < unbound

    def test_conjunctive_intersection_beats_per_leaf_minima(self, store):
        # hashtag sia2016 -> docs {1, 3}; screen_name mlepen -> doc {2}:
        # independently the minimum is 1, the intersection is empty.
        source = JSONSource("json://tweets", store)
        query = JSONQuery.from_text(
            '{ entities.hashtags: "sia2016", user.screen_name: "mlepen" }')
        assert source.estimate(query) == 0.0

    def test_limit_caps_execution_and_estimate(self, source):
        query = JSONQuery.from_text("{ text: ?t }", limit=1)
        assert len(source.execute(query)) == 1
        assert source.estimate(query) == 1.0


class TestJSONModelInMiniInstance:
    @pytest.fixture
    def instance(self, politics_graph, store):
        inst = MixedInstance(graph=politics_graph, name="mini-json")
        inst.register_json("json://tweets", store)
        return inst

    def test_bind_join_through_the_glue_graph(self, instance):
        cmq = (instance.builder("qSIA", head=["t", "id"])
               .graph("SELECT ?id WHERE { ?x ttn:position ttn:headOfState . "
                      "?x ttn:twitterAccount ?id }")
               .json("tweetJson", source="json://tweets",
                     pattern='{ text: ?t, user.screen_name: ?id, '
                             'entities.hashtags: "sia2016" }')
               .build())
        plan = instance.plan(cmq)
        assert [s.mode for s in plan.steps] == ["materialize", "bind"]
        result = instance.execute(cmq)
        assert set(result.column("id")) == {"fhollande"}
        assert len(result) == 2

    def test_materialize_mode_gives_identical_answers(self, instance):
        cmq = (instance.builder("q", head=["t", "id"])
               .graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
               .json("docs", source="json://tweets",
                     pattern="{ text: ?t, user.screen_name: ?id }")
               .build())
        fast = instance.execute(cmq)
        naive = instance.execute(cmq, options=PlannerOptions(
            use_bind_joins=False, selectivity_ordering=False, parallel_stages=False))
        assert sorted(map(str, fast.rows)) == sorted(map(str, naive.rows))
        assert len(fast) == 3

    def test_free_source_variable_fans_out_to_document_sources(self, instance):
        cmq = (instance.builder("q", head=["t", "d"])
               .json("anyDocs", source_variable="d",
                     pattern='{ text: ?t, entities.hashtags: "etatdurgence" }')
               .build())
        result = instance.execute(cmq)
        assert len(result) == 1
        assert result.rows[0]["d"] == "json://tweets"

    def test_range_predicate_inside_a_mixed_plan(self, instance):
        cmq = (instance.builder("q", head=["id", "rt"])
               .graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
               .json("popular", source="json://tweets",
                     pattern="{ user.screen_name: ?id, retweet_count: ?rt >= 100 }")
               .build())
        result = instance.execute(cmq)
        assert {(row["id"], row["rt"]) for row in result} == {
            ("fhollande", 469), ("mlepen", 120)}

    def test_statistics_count_the_json_source(self, instance):
        stats = instance.size_summary()
        assert stats["sources"]["json://tweets"] == 3
