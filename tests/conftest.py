"""Shared fixtures: small graphs, databases, stores and the demo instance."""

from __future__ import annotations

import pytest

from repro.datasets import DemoConfig, build_demo_instance


def pytest_configure(config):
    config.addinivalue_line(
        "markers",
        "optimizer: cost-based planner suites (estimation accuracy, "
        "plan equivalence, adaptive re-planning); run in isolation with "
        "`pytest -m optimizer`.")
    config.addinivalue_line(
        "markers",
        "stress: concurrent-service stress/equivalence suites (writer "
        "threads racing reader queries); run in isolation with "
        "`pytest -m stress`; thread/iteration budget shrinks via the "
        "REPRO_STRESS_* environment variables.")
    config.addinivalue_line(
        "markers",
        "obs: observability suites (span tracer, metrics registry, "
        "EXPLAIN ANALYZE, service instrumentation); run in isolation "
        "with `pytest -m obs`.")
    config.addinivalue_line(
        "markers",
        "json_accel: JSON XPath-accelerator suites (columnar encoding, "
        "structural range joins, accelerator-vs-reference equivalence "
        "including hypothesis property tests); run in isolation with "
        "`pytest -m json_accel`.")
    config.addinivalue_line(
        "markers",
        "remote: remote source federation suites (wire protocol, "
        "retry/hedging/circuit-breaker resilience, graceful degradation "
        "and the deterministic chaos harness); run in isolation with "
        "`pytest -m remote`.")
    config.addinivalue_line(
        "markers",
        "mqo: multi-query optimization suites (group admission, "
        "single-flight shared sub-plans, cross-query probe fusion, "
        "group-vs-per-query equivalence including hypothesis property "
        "tests); run in isolation with `pytest -m mqo`.")
    config.addinivalue_line(
        "markers",
        "streaming: streaming-ingestion suites (delta journals, "
        "batch version bumps, delta-join cache repair vs cold "
        "re-execution including hypothesis property tests, standing "
        "queries); run in isolation with `pytest -m streaming`.")
from repro.fulltext import tweet_store
from repro.rdf import Graph, RDFSchema, triple, uri
from repro.relational import Database


@pytest.fixture
def politics_graph() -> Graph:
    """A tiny glue-like RDF graph about two politicians."""
    g = Graph("politics")
    g.add(triple("ttn:POL1", "rdf:type", "ttn:politician"))
    g.add(triple("ttn:POL1", "ttn:position", "ttn:headOfState"))
    g.add(triple("ttn:POL1", "ttn:twitterAccount", "fhollande"))
    g.add(triple("ttn:POL1", "foaf:name", "François Hollande"))
    g.add(triple("ttn:POL2", "rdf:type", "ttn:politician"))
    g.add(triple("ttn:POL2", "ttn:position", "ttn:deputy"))
    g.add(triple("ttn:POL2", "ttn:twitterAccount", "mlepen"))
    g.add(triple("ttn:POL2", "foaf:name", "Marine LePen"))
    g.add(triple("ttn:POL1", "ttn:memberOf", "ttn:PARTY1"))
    g.add(triple("ttn:POL2", "ttn:memberOf", "ttn:PARTY2"))
    g.add(triple("ttn:PARTY1", "rdf:type", "ttn:party"))
    g.add(triple("ttn:PARTY2", "rdf:type", "ttn:party"))
    return g


@pytest.fixture
def politics_schema() -> RDFSchema:
    """An RDFS schema matching :func:`politics_graph`."""
    schema = RDFSchema()
    schema.add_subclass(uri("ttn:politician"), uri("ttn:person"))
    schema.add_subproperty(uri("ttn:memberOf"), uri("ttn:affiliatedWith"))
    schema.add_domain(uri("ttn:twitterAccount"), uri("ttn:politician"))
    schema.add_range(uri("ttn:memberOf"), uri("ttn:party"))
    return schema


@pytest.fixture
def small_database() -> Database:
    """A tiny INSEE-like database with two tables."""
    db = Database("mini_insee")
    db.execute(
        "CREATE TABLE departments (code TEXT PRIMARY KEY, name TEXT NOT NULL, "
        "population INTEGER)"
    )
    db.execute(
        "INSERT INTO departments (code, name, population) VALUES "
        "('75', 'Paris', 2165423), ('33', 'Gironde', 1601845), ('29', 'Finistere', 915090)"
    )
    db.execute(
        "CREATE TABLE unemployment (dept_code TEXT REFERENCES departments(code), "
        "year INTEGER, rate FLOAT)"
    )
    db.execute(
        "INSERT INTO unemployment (dept_code, year, rate) VALUES "
        "('75', 2015, 8.2), ('75', 2014, 8.6), ('33', 2015, 9.4), ('29', 2015, 7.9)"
    )
    return db


@pytest.fixture
def small_tweet_store():
    """A tweet store with a handful of hand-written documents."""
    store = tweet_store("mini_tweets")
    store.add_all([
        {
            "id": 1,
            "text": "Solidarité nationale avec nos agriculteurs #SIA2016",
            "created_at": "2016-03-01T10:00:00",
            "user": {"screen_name": "fhollande", "name": "François Hollande",
                     "followers_count": 1_500_000},
            "entities": {"hashtags": ["SIA2016"]},
            "retweet_count": 469, "favorite_count": 883,
        },
        {
            "id": 2,
            "text": "L'état d'urgence doit être prolongé par le parlement",
            "created_at": "2015-11-20T09:00:00",
            "user": {"screen_name": "mlepen", "name": "Marine LePen",
                     "followers_count": 900_000},
            "entities": {"hashtags": ["EtatDurgence"]},
            "retweet_count": 120, "favorite_count": 210,
        },
        {
            "id": 3,
            "text": "Le chomage baisse, les chiffres le prouvent",
            "created_at": "2015-12-01T12:00:00",
            "user": {"screen_name": "fhollande", "name": "François Hollande",
                     "followers_count": 1_500_000},
            "entities": {"hashtags": []},
            "retweet_count": 300, "favorite_count": 150,
        },
    ])
    return store


@pytest.fixture(scope="session")
def demo():
    """A small but complete demonstration instance (built once per session)."""
    return build_demo_instance(DemoConfig(politicians=18, weeks=4,
                                          tweets_per_politician_per_week=2.0, seed=42))


@pytest.fixture(scope="session")
def demo_catalog(demo):
    """Digest catalog of the session demo instance."""
    return demo.instance.build_digests()
