"""Adaptive re-planning: wrong estimates are corrected mid-flight.

A stub source advertises a deliberately wrong cardinality
(``trust_wrapper_estimate`` routes the lie past the digest-backed
estimators).  The executor must notice the estimate-vs-actual gap after
the step runs, record feedback into the statistics layer, invalidate
the stale plan-cache entry, and re-plan the remaining steps from the
observed intermediate cardinality.
"""

import pytest

from repro.core import MixedInstance, PlannerOptions
from repro.core.sources import RelationalSource
from repro.relational import Database

pytestmark = pytest.mark.optimizer

POSTS = 400
VIP = 12


class LyingSource(RelationalSource):
    """Claims every sub-query returns ~2 rows, whatever the truth."""

    trust_wrapper_estimate = True

    def estimate(self, query, bound_variables=None):
        return 2.0


@pytest.fixture
def instance():
    posts = Database("posts-db")
    posts.create_table_from_rows(
        "posts", [{"handle": f"u{i:04d}", "score": i % 97} for i in range(POSTS)])
    vip = Database("vip-db")
    vip.create_table_from_rows(
        "vip", [{"handle": f"u{i:04d}", "rank": i} for i in range(VIP)])
    inst = MixedInstance(name="adaptive")
    inst.register(LyingSource("sql://posts", posts))
    inst.register_relational("sql://vip", vip)
    return inst


@pytest.fixture
def cmq(instance):
    return (instance.builder("qAdaptive", head=["handle", "rank", "score"])
            .sql("allPosts", source="sql://posts",
                 sql="SELECT handle AS handle, score AS score FROM posts")
            .sql("vipRank", source="sql://vip",
                 sql="SELECT handle AS handle, rank AS rank FROM vip")
            .build())


EXPECTED = {(f"u{i:04d}", i, i % 97) for i in range(VIP)}


def rows_of(result):
    return {(r["handle"], r["rank"], r["score"]) for r in result.rows}


class TestAdaptiveReplan:
    def test_replans_tail_and_records_est_vs_actual(self, instance, cmq):
        result = instance.execute(cmq)
        assert rows_of(result) == EXPECTED
        trace = result.trace
        assert trace.replanned and trace.replans >= 1
        observations = {o.atom: o for o in trace.steps}
        lied = observations["allPosts"]
        # The stub claimed 2 rows; the source really returned every post.
        assert lied.estimate == pytest.approx(2.0)
        assert lied.actual_rows == POSTS
        assert lied.replanned_after
        assert lied.q_error() > PlannerOptions().replan_threshold
        assert "re-planned after allPosts" in trace.plan_text

    def test_feedback_lands_in_the_statistics_layer(self, instance, cmq):
        stats = instance.statistics()
        before = stats.revision
        instance.execute(cmq)
        assert stats.revision > before
        assert stats.feedback_count() >= 1
        # The corrected cardinality now overrides the lying wrapper.
        lying = instance.source("sql://posts")
        corrected = stats.estimate(lying, cmq.atoms[0].query)
        assert corrected == pytest.approx(float(POSTS))

    def test_stale_plan_cache_entry_is_invalidated(self, instance, cmq):
        # Plan twice: the second plan must come from the plan cache.
        first = instance.plan(cmq)
        assert not first.cached
        assert instance.plan(cmq).cached
        # Executing replans mid-flight; the feedback bumps the statistics
        # revision, so the stale entry can never be served again.
        result = instance.execute(cmq)
        assert result.trace.replanned
        replanned = instance.plan(cmq)
        assert not replanned.cached
        # The fresh plan is built from corrected statistics: materialising
        # the lying atom is now known to ship every post, so the small VIP
        # table runs first instead.
        assert replanned.atom_order()[0] == "vipRank"
        unbound = instance.statistics().estimate(
            instance.source("sql://posts"), cmq.atoms[0].query)
        assert unbound == pytest.approx(float(POSTS))

    def test_disabled_adaptivity_keeps_the_misplan(self, instance, cmq):
        result = instance.execute(cmq, options=PlannerOptions(adaptive=False))
        assert rows_of(result) == EXPECTED
        assert not result.trace.replanned
        assert instance.statistics().feedback_count() == 0

    def test_cached_plan_rebind_remaps_bound_variables(self, instance):
        def query(var):
            # Identical sub-query texts, different CMQ-level variable
            # names: renaming-equivalent, so the second plan is a hit.
            return (instance.builder(f"q_{var}", head=[var])
                    .sql("vipAll", source="sql://vip",
                         sql="SELECT handle AS h FROM vip",
                         renames={"h": var})
                    .sql("vipLookup", source="sql://vip",
                         sql="SELECT handle AS h, rank AS r "
                             "FROM vip WHERE handle = {h}",
                         renames={"h": var, "r": f"r_{var}"})
                    .build())

        assert not instance.plan(query("h")).cached
        hit = instance.plan(query("x"))
        assert hit.cached
        # Feedback from this plan keys on the *requesting* query's names.
        assert hit.steps[0].bound_variables == frozenset()
        assert hit.steps[1].bound_variables == frozenset({"x"})

    def test_replanned_result_equals_naive_reference(self, instance, cmq):
        naive = instance.execute(cmq, options=PlannerOptions(
            cost_based=False, adaptive=False, use_bind_joins=False,
            selectivity_ordering=False))
        adaptive = instance.execute(cmq)
        assert rows_of(adaptive) == rows_of(naive) == EXPECTED
