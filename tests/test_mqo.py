"""Multi-query optimization: fusion bus, group admission, equivalence.

Covers the three layers of the MQO subsystem:

* :class:`~repro.service.mqo.MQOCoordinator` in isolation — identical
  in-flight probes single-flight onto one evaluation, compatible
  distinct probes fuse into one call, a failed carrier never poisons
  its riders;
* the served path — a burst of overlapping queries through
  :class:`MediatorService` evaluates each shared sub-plan exactly once
  (asserted via source call counters) and reports the sharing in
  ``stats()["mqo"]``, the trace and EXPLAIN ANALYZE;
* correctness — a hypothesis property that group-planned results equal
  per-query results over random overlapping CMQ batches across all
  four data models, and a stress test that single-flight fan-out under
  concurrent tickets and writers never mixes pinned snapshot versions.

Also the satellite regressions: :class:`CachedSource` delegation of
``cost_kind`` / ``trust_wrapper_estimate`` / ``pin()``, per-entry stale
pointer eviction and the bounded canonical memo.
"""

from __future__ import annotations

import os
import threading
import time

import pytest
from hypothesis import HealthCheck, given, settings, strategies as st

from repro.cache.results import CachedSource, SubQueryResultCache
from repro.core import MixedInstance, PlannerOptions
from repro.core.sources import DataSource, SQLQuery
from repro.fulltext.store import FieldConfig, FullTextStore
from repro.json.store import JSONDocumentStore
from repro.rdf import Graph, triple
from repro.relational import Database
from repro.remote import LocalTransport, RemoteSource, RemoteSourceHandler
from repro.service import MediatorService, ServiceConfig
from repro.service.mqo import MQOCoordinator

pytestmark = pytest.mark.mqo

HANDLES = [f"u{i}" for i in range(6)]
TOPICS = ["politics", "sports"]

#: Serial, cache-free evaluation for independent reference runs.
SERIAL = PlannerOptions(parallel_stages=False, result_cache=False,
                        plan_cache=False)

STRESS_QUERIES = int(os.environ.get("REPRO_STRESS_QUERIES", "24"))


class CountingSource(DataSource):
    """Delegating wrapper counting real source calls, with a delay.

    The delay models a network round trip: it keeps a fused call in
    flight long enough for concurrently-admitted tickets to ride it,
    which is what makes the exactly-once assertions deterministic.
    """

    def __init__(self, inner: DataSource, counters: "CallCounters",
                 delay: float = 0.0):
        super().__init__(inner.uri, name=inner.name,
                         description=inner.description)
        self.inner = inner
        self.counters = counters
        self.delay = delay
        self.model = inner.model

    def _count(self) -> None:
        with self.counters.lock:
            self.counters.calls[self.uri] = self.counters.calls.get(self.uri, 0) + 1

    def execute(self, query, bindings=None):
        self._count()
        if self.delay:
            time.sleep(self.delay)
        return self.inner.execute(query, bindings)

    def execute_batch(self, query, bindings_batch):
        self._count()
        if self.delay:
            time.sleep(self.delay)
        return self.inner.execute_batch(query, bindings_batch)

    def estimate(self, query, bound_variables=None):
        return self.inner.estimate(query, bound_variables)

    def version(self):
        return self.inner.version()

    def size(self):
        return self.inner.size()

    def pin(self):
        if self.pinned_at is not None:
            return self
        pinned_inner = self.inner.pin()
        return self._memoized_pin(
            pinned_inner.version(),
            lambda: CountingSource(pinned_inner, self.counters, self.delay))


class CallCounters:
    def __init__(self):
        self.lock = threading.Lock()
        self.calls: dict[str, int] = {}


def build_instance(delay: float = 0.0,
                   counters: CallCounters | None = None) -> MixedInstance:
    """A four-model instance: glue + SQL + full-text + JSON + RDF."""
    glue = Graph("glue")
    for i, handle in enumerate(HANDLES):
        glue.add(triple(f"ttn:P{i}", "ttn:twitterAccount", handle))
    database = Database("db")
    database.create_table_from_rows(
        "profiles", [{"handle": handle, "followers": 100 * (i + 1)}
                     for i, handle in enumerate(HANDLES)])
    store = FullTextStore("posts", fields=[
        FieldConfig("text", "text"),
        FieldConfig("user.screen_name", "keyword"),
    ], default_field="text")
    documents = JSONDocumentStore("tweets")
    for i in range(12):
        handle = HANDLES[i % len(HANDLES)]
        topic = TOPICS[i % len(TOPICS)]
        store.add({"id": i, "text": f"post about {topic} by {handle}",
                   "user": {"screen_name": handle}})
        documents.add({"id": i, "author": handle, "topic": topic, "likes": i})
    rdf_graph = Graph("handles")
    for i, handle in enumerate(HANDLES):
        rdf_graph.add(triple(f"ttn:A{i}", "ttn:handle", handle))
        rdf_graph.add(triple(f"ttn:A{i}", "ttn:followers", 1000 * (i + 1)))
    instance = MixedInstance(graph=glue, name="mqo-test", entailment=False)
    registered = [
        instance.register_relational("sql://profiles", database),
        instance.register_fulltext("solr://posts", store),
        instance.register_json("json://tweets", documents),
        instance.register_rdf("rdf://handles", rdf_graph),
    ]
    if counters is not None or delay:
        for wrapper in registered:
            instance.register(CountingSource(wrapper, counters or CallCounters(),
                                             delay))
    return instance


def make_query(instance: MixedInstance, shape: int, param: int):
    """One of four overlapping CMQ shapes, each hitting a different model."""
    topic = TOPICS[param % len(TOPICS)]
    builder = instance.builder(f"mqo_{shape}_{param}")
    builder.graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
    if shape == 0:
        builder.sql("prof", source="sql://profiles",
                    sql="SELECT handle AS id, followers AS f FROM profiles "
                        "WHERE handle = {id}")
    elif shape == 1:
        builder.json("tweets", source="json://tweets",
                     pattern=f'{{ author: ?id, topic: "{topic}", likes: ?l }}')
    elif shape == 2:
        builder.fulltext("posts", source="solr://posts",
                         query="user.screen_name:{id}",
                         fields={"t": "text", "id": "user.screen_name"})
    else:
        builder.rdf("acc", "SELECT ?id ?f WHERE { ?a ttn:handle ?id . "
                           "?a ttn:followers ?f }", source="rdf://handles")
    return builder.build()


def result_set(result):
    return sorted(tuple(sorted((k, str(v)) for k, v in row.items()))
                  for row in result.rows)


# ---------------------------------------------------------------------------
# MQOCoordinator in isolation
# ---------------------------------------------------------------------------

KEY = ("sql://s", 1, 7, ("sql", "q"), ("?0",))


def probe_for(value: str):
    return ((("sql://s", 1, 7, ("sql", "q"), (("?0", ("str", value)),)),
             {"?0": value}))


def must_not_run(probes):  # pragma: no cover - failure path
    raise AssertionError("a rider's runner must never be invoked")


def test_single_flight_evaluates_once():
    bus = MQOCoordinator(window=0.05)
    bus.ticket_started()
    bus.ticket_started()
    calls: list[list] = []
    started, gate = threading.Event(), threading.Event()

    def slow_runner(probes):
        calls.append([key for key, _ in probes])
        started.set()
        assert gate.wait(5.0)
        return [[{"?0": "a", "rows": 1}] for _ in probes]

    outcome: dict[str, tuple] = {}

    def leader():
        outcome["leader"] = bus.fuse(KEY, [probe_for("a")], slow_runner)

    def rider():
        outcome["rider"] = bus.fuse(KEY, [probe_for("a")], must_not_run)

    leader_thread = threading.Thread(target=leader)
    leader_thread.start()
    assert started.wait(5.0)
    rider_thread = threading.Thread(target=rider)
    rider_thread.start()
    time.sleep(0.1)  # let the rider register on the in-flight slot
    gate.set()
    leader_thread.join(5.0)
    rider_thread.join(5.0)

    assert len(calls) == 1  # the shared sub-plan ran exactly once
    lead_rows, lead_shared, lead_fused = outcome["leader"]
    ride_rows, ride_shared, ride_fused = outcome["rider"]
    assert lead_rows == ride_rows
    assert (lead_shared, lead_fused) == (0, 0)
    assert (ride_shared, ride_fused) == (1, 0)
    stats = bus.stats()
    assert stats["shared_subqueries"] == 1
    assert stats["source_calls_saved"] == 1


def test_probe_fusion_merges_distinct_probes_into_one_call():
    bus = MQOCoordinator(window=0.5)
    bus.ticket_started()
    bus.ticket_started()
    calls: list[list] = []

    def leader_runner(probes):
        calls.append(sorted(binding["?0"] for _, binding in probes))
        return [[{"?0": binding["?0"]}] for _, binding in probes]

    outcome: dict[str, tuple] = {}

    def leader():
        outcome["leader"] = bus.fuse(KEY, [probe_for("a")], leader_runner,
                                     batched=True)

    leader_thread = threading.Thread(target=leader)
    leader_thread.start()
    time.sleep(0.1)  # inside the leader's fusion window
    outcome["rider"] = bus.fuse(KEY, [probe_for("b")], must_not_run,
                                batched=True)
    leader_thread.join(5.0)

    assert calls == [["a", "b"]]  # one fused call carried both probes
    assert outcome["rider"][0] == [[{"?0": "b"}]]
    assert outcome["rider"][1:] == (0, 1)
    assert outcome["leader"][0] == [[{"?0": "a"}]]
    stats = bus.stats()
    assert stats["fused_probes"] == 1
    assert stats["fused_calls"] == 1


def test_rider_falls_back_when_the_carrier_fails():
    bus = MQOCoordinator(window=0.05)
    bus.ticket_started()
    bus.ticket_started()
    started, gate = threading.Event(), threading.Event()

    def failing_runner(probes):
        started.set()
        assert gate.wait(5.0)
        raise RuntimeError("the leader's source call died")

    recovered: list[list] = []

    def recovery_runner(probes):
        recovered.append([binding["?0"] for _, binding in probes])
        return [[{"?0": binding["?0"]}] for _, binding in probes]

    outcome: dict[str, object] = {}

    def leader():
        try:
            bus.fuse(KEY, [probe_for("a")], failing_runner)
        except RuntimeError as exc:
            outcome["leader_error"] = exc

    def rider():
        outcome["rider"] = bus.fuse(KEY, [probe_for("a")], recovery_runner)

    leader_thread = threading.Thread(target=leader)
    leader_thread.start()
    assert started.wait(5.0)
    rider_thread = threading.Thread(target=rider)
    rider_thread.start()
    time.sleep(0.1)
    gate.set()
    leader_thread.join(5.0)
    rider_thread.join(5.0)

    # The leader sees its own failure; the rider re-evaluates on its
    # own and is not charged any sharing.
    assert isinstance(outcome["leader_error"], RuntimeError)
    rows, shared, fused = outcome["rider"]
    assert rows == [[{"?0": "a"}]]
    assert (shared, fused) == (0, 0)
    assert recovered == [["a"]]


# ---------------------------------------------------------------------------
# Satellite regressions in the cache layer
# ---------------------------------------------------------------------------

def test_cached_source_delegates_cost_kind_trust_and_pin():
    """A remote source seen through the cache proxy keeps remote pricing."""
    database = Database("db")
    database.create_table_from_rows(
        "profiles", [{"handle": "u0", "followers": 100}])
    inner = MixedInstance(graph=Graph("g"), name="inner", entailment=False)
    wrapper = inner.register_relational("sql://profiles", database)
    remote = RemoteSource(LocalTransport(RemoteSourceHandler(wrapper).handle))
    proxy = CachedSource(remote, SubQueryResultCache())

    assert proxy.cost_kind == "remote"
    assert proxy.trust_wrapper_estimate is remote.trust_wrapper_estimate
    pinned = proxy.pin()
    assert isinstance(pinned, CachedSource)
    assert pinned.inner.pinned_at is not None
    assert pinned.pinned_at == pinned.inner.pinned_at
    assert pinned.cost_kind == "remote"
    assert pinned.cache is proxy.cache


def sql_probe_key(cache, wrapper, version, value):
    query = SQLQuery(sql="SELECT handle AS id, followers AS f FROM profiles "
                         "WHERE handle = {id}")
    keyed = cache.key_for(wrapper, version, query, {"id": value})
    assert keyed is not None
    return keyed


def test_stale_pointers_are_evicted_per_entry():
    """LRU evictions drop exactly their own stale pointer, nothing else."""
    database = Database("db")
    database.create_table_from_rows(
        "profiles", [{"handle": h, "followers": 1} for h in HANDLES])
    inner = MixedInstance(graph=Graph("g"), name="inner", entailment=False)
    wrapper = inner.register_relational("sql://profiles", database)
    cache = SubQueryResultCache(max_entries=2)

    keys = [sql_probe_key(cache, wrapper, 1, f"u{i}") for i in range(3)]
    for (key, canon), i in zip(keys, range(3)):
        cache.insert(key, canon, [{"id": f"u{i}", "f": i}])

    # Entry 0 was evicted (capacity 2): its stale pointer is gone, the
    # survivors' pointers still answer — no wholesale flush.
    query = SQLQuery(sql="SELECT handle AS id, followers AS f FROM profiles "
                         "WHERE handle = {id}")
    assert cache.fetch_stale(wrapper, query, {"id": "u0"}) is None
    assert cache.fetch_stale(wrapper, query, {"id": "u1"}) == [{"id": "u1", "f": 1}]
    assert cache.fetch_stale(wrapper, query, {"id": "u2"}) == [{"id": "u2", "f": 2}]
    # The index can never outgrow the entries map again.
    assert len(cache._stale) == len(cache.entries) == 2


def test_stale_pointer_redirected_to_newer_version_survives_old_eviction():
    database = Database("db")
    database.create_table_from_rows(
        "profiles", [{"handle": h, "followers": 1} for h in HANDLES])
    inner = MixedInstance(graph=Graph("g"), name="inner", entailment=False)
    wrapper = inner.register_relational("sql://profiles", database)
    cache = SubQueryResultCache(max_entries=2)

    old_key, canon = sql_probe_key(cache, wrapper, 1, "u0")
    new_key, _ = sql_probe_key(cache, wrapper, 2, "u0")
    cache.insert(old_key, canon, [{"id": "u0", "f": 1}])
    cache.insert(new_key, canon, [{"id": "u0", "f": 2}])  # pointer -> v2
    filler, filler_canon = sql_probe_key(cache, wrapper, 1, "u1")
    cache.insert(filler, filler_canon, [{"id": "u1", "f": 1}])  # evicts v1 entry

    # Evicting the *old* version's entry must not drop the pointer that
    # already targets the newer entry.
    query = SQLQuery(sql="SELECT handle AS id, followers AS f FROM profiles "
                         "WHERE handle = {id}")
    assert cache.fetch_stale(wrapper, query, {"id": "u0"}) == [{"id": "u0", "f": 2}]


def test_canonical_memo_is_a_bounded_lru(monkeypatch):
    monkeypatch.setattr(SubQueryResultCache, "MAX_CANONICAL_MEMO", 4)
    cache = SubQueryResultCache()
    hot = SQLQuery(sql="SELECT a FROM hot WHERE a = {p}")
    assert cache.canonicalize(hot) is not None
    for i in range(8):
        cold = SQLQuery(sql=f"SELECT a FROM t{i} WHERE a = {{p}}")
        assert cache.canonicalize(cold) is not None
        # Keep the hot query recent: it must never be flushed by cold
        # forms aging through the memo.
        assert cache.canonicalize(hot) is not None
    assert len(cache._canonical) <= 4
    assert hot in cache._canonical


# ---------------------------------------------------------------------------
# The served path: exactly-once sharing across tickets
# ---------------------------------------------------------------------------

def test_burst_of_overlapping_queries_shares_the_subplan():
    counters = CallCounters()
    instance = build_instance(delay=0.4, counters=counters)
    query = make_query(instance, 0, 0)
    reference = result_set(instance.pin().execute(instance, query,
                                                  options=SERIAL, cache=False))
    baseline = counters.calls.get("sql://profiles", 0)
    config = ServiceConfig(workers=4, mqo_fusion_window=0.05)
    with MediatorService(instance, config) as service:
        tickets = [service.submit(query) for _ in range(4)]
        served = [result_set(ticket.result(timeout=60)) for ticket in tickets]
        stats = service.stats()

    assert all(rows == reference for rows in served)
    # The shared sub-plan (the SQL probes of all four tickets) hit the
    # source exactly once: one leader shipped, everyone else rode.
    assert counters.calls["sql://profiles"] - baseline == 1
    mqo = stats["mqo"]
    assert mqo["shared_subqueries"] + mqo["fused_probes"] > 0
    traces = [ticket.result().trace for ticket in tickets]
    assert sum(t.shared_subqueries + t.fused_probes for t in traces) > 0
    sharing = next(t for t in tickets
                   if t.result().trace.shared_subqueries
                   or t.result().trace.fused_probes)
    assert "mqo:" in sharing.explain_analyze().render()
    assert "mqo:" in sharing.result().trace.summary()


# ---------------------------------------------------------------------------
# Correctness properties
# ---------------------------------------------------------------------------

batches = st.lists(st.tuples(st.integers(min_value=0, max_value=3),
                             st.integers(min_value=0, max_value=1)),
                   min_size=2, max_size=6)


@given(batch=batches)
@settings(max_examples=10, deadline=None,
          suppress_health_check=[HealthCheck.too_slow])
def test_group_planned_results_equal_per_query_results(batch):
    """MQO-served answers == independent per-query evaluation, across
    random overlapping batches over all four data models."""
    instance = build_instance()
    queries = [make_query(instance, shape, param) for shape, param in batch]
    pinned = instance.pin()
    reference = [result_set(pinned.execute(instance, q, options=SERIAL,
                                           cache=False))
                 for q in queries]
    config = ServiceConfig(workers=4, mqo_group_size=8,
                           mqo_fusion_window=0.005)
    with MediatorService(instance, config) as service:
        tickets = [service.submit(q) for q in queries]
        served = [result_set(t.result(timeout=60)) for t in tickets]
    assert served == reference


@pytest.mark.stress
def test_single_flight_never_mixes_pinned_snapshot_versions():
    """Concurrent tickets sharing work under racing writers each answer
    exactly what their own pinned snapshot answers."""
    instance = build_instance(delay=0.005, counters=CallCounters())
    query = make_query(instance, 0, 0)
    database = instance.source("sql://profiles").inner.database
    stop = threading.Event()

    def writer():
        i = 0
        while not stop.is_set():
            database.table("profiles").insert(
                {"handle": f"w{i}", "followers": i})
            i += 1
            time.sleep(0.002)

    writer_thread = threading.Thread(target=writer)
    config = ServiceConfig(workers=8, mqo_group_size=4,
                           mqo_fusion_window=0.01)
    with MediatorService(instance, config) as service:
        writer_thread.start()
        try:
            tickets = []
            for _ in range(STRESS_QUERIES):
                tickets.append(service.submit(query))
                time.sleep(0.004)
            for ticket in tickets:
                ticket.result(timeout=60)
        finally:
            stop.set()
            writer_thread.join(5.0)

    by_version: dict[tuple, list] = {}
    for ticket in tickets:
        version_vector = tuple(sorted(ticket.versions.items()))
        rows = result_set(ticket.result())
        # Same pinned vector => same rows, regardless of who evaluated
        # which shared sub-plan.
        assert by_version.setdefault(version_vector, rows) == rows
        # And the rows are exactly what this ticket's own (immutable)
        # snapshot answers when evaluated independently.
        independent = result_set(ticket.pinned.execute(
            instance, query, options=SERIAL, cache=False))
        assert rows == independent
