"""Unit tests for query-oriented RDF graph summaries."""

from repro.rdf import Graph, RDFSummary, triple, uri


class TestRDFSummary:
    def test_resources_grouped_by_property_signature(self, politics_graph):
        summary = RDFSummary.build(politics_graph)
        node1 = summary.node_of(uri("ttn:POL1"))
        node2 = summary.node_of(uri("ttn:POL2"))
        assert node1 is not None and node2 is not None
        assert node1.node_id == node2.node_id  # same outgoing properties

    def test_parties_form_a_distinct_node(self, politics_graph):
        summary = RDFSummary.build(politics_graph)
        politician_node = summary.node_of(uri("ttn:POL1"))
        party_node = summary.node_of(uri("ttn:PARTY1"))
        assert politician_node.node_id != party_node.node_id

    def test_member_counts(self, politics_graph):
        summary = RDFSummary.build(politics_graph)
        node = summary.node_of(uri("ttn:POL1"))
        assert node.member_count == 2

    def test_classes_recorded(self, politics_graph):
        summary = RDFSummary.build(politics_graph)
        node = summary.node_of(uri("ttn:POL1"))
        assert uri("ttn:politician") in node.classes

    def test_values_collected_per_property(self, politics_graph):
        summary = RDFSummary.build(politics_graph)
        node = summary.node_of(uri("ttn:POL1"))
        values = summary.values[(node.node_id, uri("ttn:twitterAccount"))]
        assert {v.value for v in values} == {"fhollande", "mlepen"}

    def test_edges_between_summary_nodes(self, politics_graph):
        summary = RDFSummary.build(politics_graph)
        kinds = {(e.prop, e.source != e.target) for e in summary.edges}
        assert any(prop == uri("ttn:memberOf") and cross for prop, cross in kinds)

    def test_properties_cover_graph_predicates(self, politics_graph):
        summary = RDFSummary.build(politics_graph)
        assert politics_graph.predicates() <= summary.properties()

    def test_compression_ratio_below_one(self, politics_graph):
        summary = RDFSummary.build(politics_graph)
        assert 0 < summary.compression_ratio(politics_graph) < 1

    def test_literal_values_helper(self, politics_graph):
        summary = RDFSummary.build(politics_graph)
        assert "fhollande" in summary.literal_values(uri("ttn:twitterAccount"))

    def test_empty_graph_summary(self):
        summary = RDFSummary.build(Graph())
        assert len(summary.nodes) == 0
        assert summary.compression_ratio(Graph()) == 0.0

    def test_node_of_unknown_resource_is_none(self, politics_graph):
        summary = RDFSummary.build(politics_graph)
        assert summary.node_of(uri("ttn:unknown")) is None

    def test_summary_scales_with_structure_not_size(self):
        g = Graph()
        for i in range(200):
            g.add(triple(f"ttn:r{i}", "ttn:p", f"value {i}"))
            g.add(triple(f"ttn:r{i}", "ttn:q", f"other {i}"))
        summary = RDFSummary.build(g)
        assert len(summary.nodes) == 1
        assert summary.nodes[list(summary.nodes)[0]].member_count == 200
