"""Span tracer: nesting, no-op mode, cross-thread propagation, clocks."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.engine.parallel import WorkPool
from repro.obs.spans import (
    SpanTracer,
    attach,
    current_span,
    detach,
    span,
    span_under,
    trace,
)

pytestmark = pytest.mark.obs


class TestSpanBasics:
    def test_trace_opens_root_and_restores_context(self):
        assert current_span() is None
        with trace("unit", kind="test") as root:
            assert current_span() is root
            assert root.parent_id is None
            assert root.attributes == {"kind": "test"}
        assert current_span() is None
        assert root.ended_at is not None

    def test_span_nests_under_current(self):
        with trace("root") as root:
            with span("child") as child:
                assert child.parent_id == root.span_id
                with span("grandchild") as grandchild:
                    assert grandchild.parent_id == child.span_id
            assert current_span() is root
        tracer = root.tracer
        assert [s.name for s in tracer.spans] == ["root", "child", "grandchild"]

    def test_span_is_noop_outside_any_trace(self):
        with span("orphan") as sp:
            assert sp is None
        assert current_span() is None

    def test_span_under_explicit_parent_and_none(self):
        with trace("root") as root:
            pass
        with span_under(root, "late-child") as sp:
            assert sp.parent_id == root.span_id
        with span_under(None, "nothing") as sp:
            assert sp is None

    def test_end_is_idempotent(self):
        tracer = SpanTracer("t")
        sp = tracer.start("s")
        sp.end()
        first = sp.ended_at
        time.sleep(0.002)
        sp.end()
        assert sp.ended_at == first

    def test_set_and_end_attributes(self):
        tracer = SpanTracer("t")
        sp = tracer.start("s", a=1)
        sp.set(b=2)
        sp.end(c=3)
        assert sp.attributes == {"a": 1, "b": 2, "c": 3}

    def test_exports(self):
        with trace("root") as root:
            with span("child", rows=3):
                time.sleep(0.001)
        tracer = root.tracer
        assert len(tracer) == 2
        assert tracer.root() is root
        assert len(tracer.find("child")) == 1
        assert tracer.total_seconds() >= 0.001
        dicts = tracer.to_dicts()
        assert dicts[0]["parent"] is None
        assert dicts[1]["parent"] == root.span_id
        assert dicts[1]["attributes"] == {"rows": 3}
        payload = json.loads(tracer.to_json())
        assert payload["trace"] == "root"
        assert len(payload["spans"]) == 2
        rendered = tracer.render()
        assert "root" in rendered and "child" in rendered
        assert "ms" in rendered and "%" in rendered

    def test_attach_detach_roundtrip(self):
        tracer = SpanTracer("t")
        root = tracer.start("root")
        token = attach(root)
        assert current_span() is root
        detach(token)
        assert current_span() is None


class TestCrossThreadPropagation:
    def test_workpool_map_carries_the_current_span(self):
        pool = WorkPool(max_workers=4, name="obs-test-dispatch")
        try:
            with trace("root") as root:
                def work(i):
                    parent = current_span()
                    with span(f"task-{i}") as sp:
                        return parent.span_id, sp.parent_id, threading.get_ident()

                outcomes = pool.map(work, list(range(6)))
            parents = {parent for parent, _, _ in outcomes}
            assert parents == {root.span_id}
            assert all(parent == span_parent for parent, span_parent, _ in outcomes)
            # The pooled spans all landed in the root's tracer.
            names = {s.name for s in root.tracer.spans}
            assert {f"task-{i}" for i in range(6)} <= names
        finally:
            pool.shutdown()

    def test_nested_pools_keep_parentage_across_roles(self):
        """dispatch-pool task fans out into the tasks pool; grandchildren
        must still chain to the dispatch-level spans."""
        dispatch = WorkPool(max_workers=3, name="obs-test-dispatch2")
        tasks = WorkPool(max_workers=3, name="obs-test-tasks2")
        try:
            with trace("root") as root:
                def stage(i):
                    with span(f"stage-{i}") as stage_span:
                        def call(j):
                            with span(f"call-{i}-{j}") as call_span:
                                return call_span.parent_id
                        parents = tasks.map(call, [0, 1])
                        return stage_span.span_id, parents

                outcomes = dispatch.map(stage, [0, 1, 2])
            for stage_id, parents in outcomes:
                assert parents == [stage_id, stage_id]
            assert len(root.tracer) == 1 + 3 + 6
        finally:
            dispatch.shutdown()
            tasks.shutdown()

    def test_inline_fast_path_propagates_too(self):
        pool = WorkPool(max_workers=1, name="obs-test-inline")
        with trace("root") as root:
            outcomes = pool.map(
                lambda i: current_span().span_id, [1, 2, 3])
        assert outcomes == [root.span_id] * 3


class TestMonotonicClocks:
    def test_span_durations_survive_wall_clock_freeze(self, monkeypatch):
        """Spans must time with perf_counter, not the wall clock."""
        import repro.obs.spans as spans_mod

        monkeypatch.setattr(time, "time", lambda: 0.0)
        with trace("root") as root:
            time.sleep(0.005)
        assert root.seconds >= 0.004

    def test_no_wall_clock_timing_in_library_sources(self):
        """`time.time()` must not be used for durations anywhere in src.

        Every duration stamp (`SubQueryCall.seconds`,
        `ExecutionTrace.total_seconds`, span timings, lock waits) uses
        the monotonic `time.perf_counter()`.
        """
        from pathlib import Path

        src = Path(__file__).resolve().parent.parent / "src" / "repro"
        offenders = []
        for path in sorted(src.rglob("*.py")):
            for number, line in enumerate(path.read_text().splitlines(), 1):
                if "time.time()" in line.split("#")[0]:
                    offenders.append(f"{path.name}:{number}")
        assert offenders == []
