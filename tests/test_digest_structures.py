"""Unit tests for Bloom filters, histograms, value-set summaries and dataguides."""

import pytest

from repro.digest import (
    BloomFilter,
    EquiWidthHistogram,
    JSONDataguide,
    TopKSummary,
    ValueSetSummary,
)


class TestBloomFilter:
    def test_no_false_negatives(self):
        bloom = BloomFilter(expected_items=100, bits_per_value=8)
        values = [f"value-{i}" for i in range(100)]
        bloom.add_all(values)
        assert all(v in bloom for v in values)

    def test_membership_is_case_insensitive(self):
        bloom = BloomFilter(10)
        bloom.add("SIA2016")
        assert bloom.might_contain("sia2016")

    def test_false_positive_rate_reasonable(self):
        bloom = BloomFilter(expected_items=500, bits_per_value=16)
        bloom.add_all(f"in-{i}" for i in range(500))
        false_positives = sum(1 for i in range(2000) if bloom.might_contain(f"out-{i}"))
        assert false_positives / 2000 < 0.05

    def test_more_bits_fewer_false_positives(self):
        small = BloomFilter(expected_items=300, bits_per_value=4)
        big = BloomFilter(expected_items=300, bits_per_value=24)
        for i in range(300):
            small.add(f"in-{i}")
            big.add(f"in-{i}")
        small_fp = sum(1 for i in range(2000) if small.might_contain(f"out-{i}"))
        big_fp = sum(1 for i in range(2000) if big.might_contain(f"out-{i}"))
        assert big_fp <= small_fp
        assert big.size_in_bytes() > small.size_in_bytes()

    def test_theoretical_rate_increases_with_load(self):
        bloom = BloomFilter(expected_items=10, bits_per_value=8)
        assert bloom.false_positive_rate() == 0.0
        bloom.add_all(range(50))
        assert 0 < bloom.false_positive_rate() <= 1.0
        assert 0 < bloom.fill_ratio() <= 1.0

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValueError):
            BloomFilter(10, bits_per_value=0)


class TestHistogram:
    def test_bucket_counts_sum_to_total(self):
        histogram = EquiWidthHistogram([float(i) for i in range(100)], buckets=10)
        assert sum(b.count for b in histogram.buckets) == 100

    def test_range_estimate(self):
        histogram = EquiWidthHistogram([float(i) for i in range(100)], buckets=10)
        assert histogram.estimate_range(0, 49) == pytest.approx(50, rel=0.2)
        assert histogram.estimate_selectivity(0, 99) == pytest.approx(1.0, rel=0.05)

    def test_out_of_range_estimates_zero(self):
        histogram = EquiWidthHistogram([1.0, 2.0, 3.0], buckets=4)
        assert histogram.estimate_range(10, 20) == 0.0
        assert not histogram.might_contain(50)

    def test_might_contain_inside_range(self):
        histogram = EquiWidthHistogram([1.0, 2.0, 3.0], buckets=2)
        assert histogram.might_contain(1.5)

    def test_empty_histogram(self):
        histogram = EquiWidthHistogram([], buckets=4)
        assert histogram.estimate_range(0, 10) == 0.0

    def test_top_k_summary(self):
        summary = TopKSummary(["left", "left", "right", "left", "center"], k=2)
        assert summary.frequency("left") == 3
        assert summary.contains("right")
        assert not summary.contains("ecologists")
        assert summary.estimate_equality_selectivity("left") == pytest.approx(0.6)


class TestValueSetSummary:
    def test_exact_membership_for_small_sets(self):
        summary = ValueSetSummary(["fhollande", "mlepen"])
        assert summary.might_contain("FHOLLANDE")
        assert not summary.might_contain("unknown")
        assert summary.stats().exact_kept

    def test_keyword_matches_full_value_and_tokens(self):
        summary = ValueSetSummary(["headOfState", "primeMinister"])
        assert summary.matches_keyword("head of state")
        assert summary.matches_keyword("headofstate")
        assert not summary.matches_keyword("senator")

    def test_keyword_aliases_do_not_pollute_joins(self):
        uri = "http://tatooine.inria.fr/ns#headOfState"
        summary = ValueSetSummary([uri], keyword_aliases=["headOfState"])
        other = ValueSetSummary(["headofstate"])
        assert summary.matches_keyword("head of state")
        assert summary.overlap_estimate(other) == 0.0
        assert other.overlap_estimate(summary) == 0.0

    def test_matching_values(self):
        summary = ValueSetSummary(["SIA2016", "etatdurgence"])
        assert summary.matching_values("sia2016") == ["sia2016"]

    def test_overlap_estimate(self):
        left = ValueSetSummary([f"code{i}" for i in range(20)])
        right = ValueSetSummary([f"code{i}" for i in range(10)])
        assert left.overlap_estimate(right) == pytest.approx(0.5, abs=0.1)
        assert right.overlap_estimate(left) == pytest.approx(1.0, abs=0.05)

    def test_numeric_summary_uses_histogram(self):
        summary = ValueSetSummary(list(range(1000)))
        assert summary.numeric
        assert summary.histogram is not None
        assert summary.selectivity(10) < 0.1

    def test_large_sets_fall_back_to_bloom(self):
        summary = ValueSetSummary([f"v{i}" for i in range(2000)], exact_limit=100)
        assert summary.exact is None
        assert summary.might_contain("v42")
        assert summary.matches_keyword("v42")

    def test_selectivity_zero_for_absent_value(self):
        summary = ValueSetSummary(["a", "b", "c"])
        assert summary.selectivity("zzz") == 0.0


class TestDataguide:
    def test_paths_and_counts(self):
        guide = JSONDataguide.build([
            {"id": 1, "user": {"screen_name": "a"}, "entities": {"hashtags": ["x", "y"]}},
            {"id": 2, "user": {"screen_name": "b", "followers_count": 10}},
        ])
        assert guide.document_count == 2
        assert "user.screen_name" in guide.path_names()
        assert guide.info("entities.hashtags").count == 2
        assert guide.info("user.followers_count").is_numeric

    def test_coverage(self):
        guide = JSONDataguide.build([{"a": 1}, {"a": 2, "b": 3}])
        assert guide.coverage("a") == 1.0
        assert guide.coverage("b") == 0.5
        assert guide.coverage("missing") == 0.0

    def test_tree_structure(self):
        guide = JSONDataguide.build([{"user": {"name": "x", "id": 1}}])
        children = guide.parent_children()
        assert set(children.get("user", [])) == {"user.name", "user.id"}

    def test_to_text_rendering(self):
        guide = JSONDataguide.build([{"id": 1, "text": "hello"}])
        rendered = guide.to_text()
        assert "id" in rendered and "text" in rendered

    def test_len(self):
        guide = JSONDataguide.build([{"a": 1, "b": {"c": 2}}])
        assert len(guide) == 2
