"""Unit tests for RDFS schema extraction and saturation (G∞)."""

import pytest

from repro.rdf import (
    Graph,
    RDF_TYPE,
    RDFSchema,
    implicit_triples,
    saturate,
    saturate_delta,
    triple,
    uri,
)
from repro.rdf.terms import Triple


class TestSchemaExtraction:
    def test_observe_subclass(self, politics_graph):
        schema = RDFSchema()
        assert schema.observe(triple("ttn:politician", "rdfs:subClassOf", "ttn:person"))
        assert uri("ttn:person") in schema.subclasses[uri("ttn:politician")]

    def test_observe_non_schema_triple_returns_false(self):
        schema = RDFSchema()
        assert not schema.observe(triple("ttn:a", "foaf:name", "Alice"))

    def test_from_graph_extracts_all_four_statement_kinds(self):
        g = Graph()
        g.add(triple("ttn:politician", "rdfs:subClassOf", "ttn:person"))
        g.add(triple("ttn:worksFor", "rdfs:subPropertyOf", "ttn:paidBy"))
        g.add(triple("ttn:foundedIn", "rdfs:domain", "ttn:organization"))
        g.add(triple("ttn:worksFor", "rdfs:range", "ttn:organization"))
        schema = RDFSchema.from_graph(g)
        assert not schema.is_empty()
        assert len(schema.classes()) >= 2
        assert len(schema.properties()) >= 2

    def test_transitive_superclasses(self):
        schema = RDFSchema()
        schema.add_subclass(uri("ttn:deputy"), uri("ttn:politician"))
        schema.add_subclass(uri("ttn:politician"), uri("ttn:person"))
        supers = schema.superclasses(uri("ttn:deputy"))
        assert supers == {uri("ttn:politician"), uri("ttn:person")}

    def test_subclasses_of_inverse_closure(self):
        schema = RDFSchema()
        schema.add_subclass(uri("ttn:deputy"), uri("ttn:politician"))
        schema.add_subclass(uri("ttn:politician"), uri("ttn:person"))
        subs = schema.subclasses_of(uri("ttn:person"))
        assert uri("ttn:deputy") in subs and uri("ttn:politician") in subs

    def test_triples_round_trip(self, politics_schema):
        triples = politics_schema.triples()
        rebuilt = RDFSchema.from_triples(triples)
        assert rebuilt.subclasses == politics_schema.subclasses
        assert rebuilt.domains == politics_schema.domains


class TestSaturation:
    def setup_method(self):
        # The running example of the paper's §2.1.
        self.graph = Graph("lemonde")
        self.graph.add(triple("ttn:LeMonde", "ttn:foundedIn", "1944"))
        self.graph.add(triple("ttn:Samuel", "ttn:worksFor", "ttn:LeMonde"))
        self.graph.add(triple("ttn:Samuel", "rdf:type", "ttn:Journalist"))
        self.graph.add(triple("ttn:Journalist", "rdfs:subClassOf", "ttn:Employee"))
        self.graph.add(triple("ttn:worksFor", "rdfs:subPropertyOf", "ttn:paidBy"))
        self.graph.add(triple("ttn:foundedIn", "rdfs:domain", "ttn:Organization"))
        self.graph.add(triple("ttn:worksFor", "rdfs:range", "ttn:Organization"))

    def test_rdfs7_subproperty_propagation(self):
        saturated, _ = saturate(self.graph)
        assert triple("ttn:Samuel", "ttn:paidBy", "ttn:LeMonde") in saturated

    def test_rdfs9_type_propagation(self):
        saturated, _ = saturate(self.graph)
        assert triple("ttn:Samuel", "rdf:type", "ttn:Employee") in saturated

    def test_rdfs2_domain_typing(self):
        saturated, _ = saturate(self.graph)
        assert triple("ttn:LeMonde", "rdf:type", "ttn:Organization") in saturated

    def test_rdfs3_range_typing(self):
        saturated, _ = saturate(self.graph)
        # LeMonde is the object of worksFor whose range is Organization.
        assert triple("ttn:LeMonde", "rdf:type", "ttn:Organization") in saturated

    def test_explicit_triples_preserved(self):
        saturated, stats = saturate(self.graph)
        for t in self.graph:
            assert t in saturated
        assert stats.explicit_triples == len(self.graph)

    def test_stats_count_implicit_triples(self):
        saturated, stats = saturate(self.graph)
        assert stats.implicit_triples == len(saturated) - len(self.graph)
        assert stats.implicit_triples > 0
        assert stats.total_triples == len(saturated)

    def test_original_graph_unchanged(self):
        before = len(self.graph)
        saturate(self.graph)
        assert len(self.graph) == before

    def test_implicit_triples_helper(self):
        implicit = implicit_triples(self.graph)
        assert triple("ttn:Samuel", "ttn:paidBy", "ttn:LeMonde") in implicit
        assert all(t not in self.graph for t in implicit)

    def test_saturation_is_idempotent(self):
        saturated, _ = saturate(self.graph)
        twice, stats = saturate(saturated)
        assert len(twice) == len(saturated)
        assert stats.implicit_triples == 0

    def test_subclass_transitivity_rdfs11(self):
        self.graph.add(triple("ttn:Employee", "rdfs:subClassOf", "ttn:Person"))
        saturated, _ = saturate(self.graph)
        assert triple("ttn:Journalist", "rdfs:subClassOf", "ttn:Person") in saturated
        assert triple("ttn:Samuel", "rdf:type", "ttn:Person") in saturated

    def test_external_schema_merged(self):
        schema = RDFSchema()
        schema.add_subclass(uri("ttn:Employee"), uri("ttn:Person"))
        saturated, _ = saturate(self.graph, schema)
        assert triple("ttn:Samuel", "rdf:type", "ttn:Person") in saturated

    def test_literal_objects_not_typed_by_range(self):
        from repro.rdf import Literal

        g = Graph()
        g.add(triple("ttn:p", "rdfs:range", "ttn:Organization"))
        g.add(triple("ttn:x", "ttn:p", "a literal value"))
        saturated, _ = saturate(g)
        assert not any(isinstance(t.subject, Literal) for t in saturated)
        # rdfs3 must not fire for a literal object, and no domain is declared,
        # so saturation derives no rdf:type triple at all.
        assert [t for t in saturated if t.predicate == RDF_TYPE] == []

    def test_empty_graph_saturation(self):
        saturated, stats = saturate(Graph())
        assert len(saturated) == 0
        assert stats.implicit_triples == 0


class TestIncrementalSaturation:
    """`saturate_delta` must agree with from-scratch saturation."""

    def setup_method(self):
        self.graph = Graph("lemonde")
        self.graph.add(triple("ttn:LeMonde", "ttn:foundedIn", "1944"))
        self.graph.add(triple("ttn:Samuel", "ttn:worksFor", "ttn:LeMonde"))
        self.graph.add(triple("ttn:Samuel", "rdf:type", "ttn:Journalist"))
        self.graph.add(triple("ttn:Journalist", "rdfs:subClassOf", "ttn:Employee"))
        self.graph.add(triple("ttn:worksFor", "rdfs:subPropertyOf", "ttn:paidBy"))
        self.graph.add(triple("ttn:foundedIn", "rdfs:domain", "ttn:Organization"))
        self.graph.add(triple("ttn:worksFor", "rdfs:range", "ttn:Organization"))

    def assert_delta_equals_scratch(self, delta):
        incremental, _ = saturate(self.graph)
        saturate_delta(incremental, delta)
        merged = self.graph.copy("merged")
        merged.add_all(delta)
        scratch, _ = saturate(merged)
        assert set(incremental) == set(scratch)

    def test_data_delta(self):
        self.assert_delta_equals_scratch([
            triple("ttn:Marie", "ttn:worksFor", "ttn:Figaro"),
            triple("ttn:Marie", "rdf:type", "ttn:Journalist"),
        ])

    def test_new_subclass_edge_activates_existing_types(self):
        self.assert_delta_equals_scratch([
            triple("ttn:Employee", "rdfs:subClassOf", "ttn:Person"),
        ])

    def test_new_subproperty_edge_activates_existing_triples(self):
        self.assert_delta_equals_scratch([
            triple("ttn:paidBy", "rdfs:subPropertyOf", "ttn:linkedTo"),
        ])

    def test_new_domain_and_range_activate_existing_triples(self):
        self.assert_delta_equals_scratch([
            triple("ttn:paidBy", "rdfs:domain", "ttn:Worker"),
            triple("ttn:paidBy", "rdfs:range", "ttn:Payer"),
        ])

    def test_mixed_schema_and_data_delta(self):
        self.assert_delta_equals_scratch([
            triple("ttn:Marie", "ttn:freelancesFor", "ttn:Figaro"),
            triple("ttn:freelancesFor", "rdfs:subPropertyOf", "ttn:worksFor"),
            triple("ttn:Figaro", "rdf:type", "ttn:Newspaper"),
            triple("ttn:Newspaper", "rdfs:subClassOf", "ttn:Organization"),
        ])

    def test_subclass_cycle(self):
        self.assert_delta_equals_scratch([
            triple("ttn:Employee", "rdfs:subClassOf", "ttn:Journalist"),
        ])

    def test_delta_already_entailed_is_a_no_op(self):
        saturated, _ = saturate(self.graph)
        before = len(saturated)
        stats = saturate_delta(saturated, [
            triple("ttn:Samuel", "ttn:paidBy", "ttn:LeMonde"),  # already implicit
        ])
        assert len(saturated) == before
        assert stats.rounds == 0

    def test_empty_delta(self):
        saturated, _ = saturate(self.graph)
        stats = saturate_delta(saturated, [])
        assert stats.implicit_triples == 0

    def test_maintained_schema_threads_through_deltas(self):
        saturated, _ = saturate(self.graph)
        schema = RDFSchema.from_graph(saturated)
        saturate_delta(saturated, [triple("ttn:Employee", "rdfs:subClassOf", "ttn:Person")],
                       schema=schema)
        # The maintained schema saw the new edge: a later data delta uses it.
        saturate_delta(saturated, [triple("ttn:Anna", "rdf:type", "ttn:Journalist")],
                       schema=schema)
        assert triple("ttn:Anna", "rdf:type", "ttn:Person") in saturated


class TestRDFSourceStaleness:
    """Regression: the saturation cache must track versions, not sizes."""

    def _source(self):
        from repro.core.sources import RDFSource
        graph = Graph("src")
        graph.add(triple("ttn:Journalist", "rdfs:subClassOf", "ttn:Employee"))
        graph.add(triple("ttn:Samuel", "rdf:type", "ttn:Journalist"))
        return RDFSource("rdf://src", graph, entailment=True)

    def test_equal_size_mutation_is_not_served_stale(self):
        from repro.core.sources import RDFQuery
        query = RDFQuery.from_text("SELECT ?x WHERE { ?x rdf:type ttn:Employee }")
        source = self._source()
        assert source.execute(query)  # saturating query
        source.graph.remove(triple("ttn:Samuel", "rdf:type", "ttn:Journalist"))
        source.graph.add(triple("ttn:Anna", "rdf:type", "ttn:Journalist"))
        rows = source.execute(query)
        assert [str(row["x"]).rsplit("#", 1)[-1] for row in rows] == ["Anna"]

    def test_removal_triggers_full_recompute(self):
        source = self._source()
        saturated = source._effective_graph()
        assert triple("ttn:Samuel", "rdf:type", "ttn:Employee") in saturated
        source.graph.remove(triple("ttn:Samuel", "rdf:type", "ttn:Journalist"))
        saturated = source._effective_graph()
        assert triple("ttn:Samuel", "rdf:type", "ttn:Employee") not in saturated

    def test_out_of_band_addition_is_absorbed_incrementally(self):
        source = self._source()
        first = source._effective_graph()
        source.graph.add(triple("ttn:Anna", "rdf:type", "ttn:Journalist"))
        second = source._effective_graph()
        assert second is first  # maintained in place, not recomputed
        assert triple("ttn:Anna", "rdf:type", "ttn:Employee") in second

    def test_add_triples_maintains_saturation(self):
        source = self._source()
        source._effective_graph()
        added = source.add_triples([triple("ttn:Anna", "rdf:type", "ttn:Journalist"),
                                    triple("ttn:Anna", "rdf:type", "ttn:Journalist")])
        assert added == 1
        assert triple("ttn:Anna", "rdf:type", "ttn:Employee") in source._effective_graph()

    def test_version_follows_graph(self):
        source = self._source()
        before = source.version()
        source.graph.add(triple("ttn:x", "ttn:p", "ttn:y"))
        assert source.version() == before + 1
