"""Unit tests for PMI vocabularies, tag clouds, influence and timelines."""

import pytest

from repro.analytics import (
    GROUP_COLORS,
    PMIVocabularyAnalyzer,
    build_tag_cloud,
    bucket_by_week,
    influence_score,
    per_group_influential,
    rank_influential,
    top_terms_table,
    vocabulary_drift,
    week_index,
    week_of,
    weekly_tag_clouds,
)

CORPUS = [
    ("left", "la solidarite nationale et la protection de la republique"),
    ("left", "protection des citoyens et responsabilite collective"),
    ("left", "la protection sociale est notre responsabilite"),
    ("right", "fermete et autorite pour proteger nos frontieres"),
    ("right", "autorite de l etat et fermete contre le laxisme"),
    ("right", "le retour de l autorite et de l ordre"),
]


class TestPMI:
    def test_group_specific_terms_rank_highest(self):
        vocabularies = PMIVocabularyAnalyzer(min_group_count=2, min_corpus_count=2).analyze(CORPUS)
        left_terms = [t.term for t in vocabularies["left"].top(3)]
        right_terms = [t.term for t in vocabularies["right"].top(3)]
        assert any(t.startswith("protect") or t.startswith("responsabilit") for t in left_terms)
        assert any(t.startswith("autorit") or t.startswith("fermet") for t in right_terms)

    def test_shared_terms_have_pmi_close_to_one(self):
        corpus = CORPUS + [("left", "la france avance"), ("right", "la france avance")]
        vocabularies = PMIVocabularyAnalyzer(min_group_count=1, min_corpus_count=1).analyze(corpus)
        scores = vocabularies["left"].term_scores()
        assert scores.get("franc", scores.get("france", 1.0)) == pytest.approx(1.0, rel=0.6)

    def test_exclusive_term_pmi_equals_corpus_over_group_share(self):
        # A term used only by one group has PMI = N_Q / N_P (per the paper formula).
        vocabularies = PMIVocabularyAnalyzer(min_group_count=2, min_corpus_count=2).analyze(CORPUS)
        for scored in vocabularies["right"].terms:
            if scored.term.startswith("autorit"):
                assert scored.pmi > 1.5
                break
        else:  # pragma: no cover - defensive
            pytest.fail("expected an 'autorite' term in the right-wing vocabulary")

    def test_rare_terms_filtered(self):
        vocabularies = PMIVocabularyAnalyzer(min_group_count=2, min_corpus_count=2).analyze(CORPUS)
        assert all(t.group_count >= 2 for t in vocabularies["left"].terms)

    def test_empty_group_returns_empty_vocabulary(self):
        vocabularies = PMIVocabularyAnalyzer().analyze([("left", "")])
        assert vocabularies["left"].terms == []

    def test_weekly_analysis_splits_by_week(self):
        docs = [("2015-W47", "left", "hommage aux victimes"),
                ("2015-W47", "right", "hommage et fermete"),
                ("2015-W48", "left", "le parlement vote la prolongation"),
                ("2015-W48", "right", "le parlement vote la loi")]
        weekly = PMIVocabularyAnalyzer(min_group_count=1, min_corpus_count=1).analyze_weekly(docs)
        assert sorted(weekly) == ["2015-W47", "2015-W48"]
        assert "left" in weekly["2015-W47"]

    def test_top_terms_table_renders_all_groups(self):
        vocabularies = PMIVocabularyAnalyzer(min_group_count=1, min_corpus_count=1).analyze(CORPUS)
        table = top_terms_table(vocabularies, k=3)
        assert "left" in table and "right" in table


class TestTagCloud:
    def make_vocabularies(self):
        return PMIVocabularyAnalyzer(min_group_count=1, min_corpus_count=1).analyze(CORPUS)

    def test_entries_colored_by_group(self):
        cloud = build_tag_cloud(self.make_vocabularies(), title="test")
        colors = {e.group: e.color for e in cloud.entries}
        assert colors.get("left") == GROUP_COLORS["left"]
        assert colors.get("right") == GROUP_COLORS["right"]

    def test_term_attributed_to_most_distinctive_group(self):
        cloud = build_tag_cloud(self.make_vocabularies(), title="test", terms_per_group=10)
        by_term = {e.term: e for e in cloud.entries}
        for term, entry in by_term.items():
            if term.startswith("autorit"):
                assert entry.group == "right"

    def test_text_rendering(self):
        cloud = build_tag_cloud(self.make_vocabularies(), title="week 1")
        text = cloud.to_text()
        assert "week 1" in text and "[" in text

    def test_svg_rendering(self):
        cloud = build_tag_cloud(self.make_vocabularies(), title="week 1 <svg>")
        svg = cloud.to_svg()
        assert svg.startswith("<svg") and "&lt;svg&gt;" in svg

    def test_weekly_tag_clouds_ordered(self):
        weekly = {"2015-W48": self.make_vocabularies(), "2015-W47": self.make_vocabularies()}
        clouds = weekly_tag_clouds(weekly)
        assert [c.title for c in clouds] == ["2015-W47", "2015-W48"]

    def test_empty_cloud_text(self):
        from repro.analytics import TagCloud

        assert "(empty)" in TagCloud(title="empty").to_text()


class TestInfluence:
    TWEETS = [
        {"text": "a", "author": "x", "group": "left", "retweet_count": 100, "favorite_count": 10},
        {"text": "b", "author": "y", "group": "right", "retweet_count": 500, "favorite_count": 50},
        {"text": "c", "author": "z", "group": "left", "retweet_count": 5, "favorite_count": 2},
    ]

    def test_score_monotone_in_retweets(self):
        assert influence_score(100, 0) > influence_score(10, 0)
        assert influence_score(0, 0, followers=1000) > 0

    def test_ranking(self):
        ranked = rank_influential(self.TWEETS, top=2)
        assert [t.author for t in ranked] == ["y", "x"]

    def test_per_group(self):
        by_group = per_group_influential(self.TWEETS, top_per_group=1)
        assert by_group["left"][0].author == "x"
        assert by_group["right"][0].author == "y"

    def test_missing_counters_default_to_zero(self):
        ranked = rank_influential([{"text": "t", "author": "a", "group": "g"}])
        assert ranked[0].score == 0.0


class TestTimeline:
    def test_week_of_iso_label(self):
        assert week_of("2015-11-16") == "2015-W47"
        assert week_of("2015-11-22T23:00:00") == "2015-W47"
        assert week_of("2015-11-23") == "2015-W48"

    def test_week_index(self):
        assert week_index("2015-11-16", "2015-11-16") == 0
        assert week_index("2015-11-16", "2015-12-07") == 3

    def test_bucket_by_week(self):
        records = [{"created_at": "2015-11-16T10:00:00"}, {"created_at": "2015-11-24"},
                   {"created_at": None}]
        buckets = bucket_by_week(records)
        assert sorted(buckets) == ["2015-W47", "2015-W48"]

    def test_invalid_timestamp_raises(self):
        with pytest.raises(ValueError):
            week_of("not a date")

    def test_vocabulary_drift_detects_change(self):
        analyzer = PMIVocabularyAnalyzer(min_group_count=1, min_corpus_count=1)
        weekly = analyzer.analyze_weekly([
            ("2015-W47", "left", "hommage victimes solidarite deuil " * 3),
            ("2015-W48", "left", "parlement vote prolongation loi " * 3),
        ])
        drifts = vocabulary_drift(weekly, top_k=5)
        assert len(drifts) == 1
        assert drifts[0].jaccard < 0.5
        assert drifts[0].new_terms
