"""Unit tests for documents, the inverted index and the Solr-like store."""

import pytest

from repro.errors import FullTextError
from repro.fulltext import (
    Document,
    FieldConfig,
    FullTextStore,
    InvertedIndex,
    bm25_score,
    make_document,
    parse_query,
    tf_idf_score,
)
from repro.fulltext.query import BooleanQuery, PhraseQuery, RangeQuery, TermQuery


class TestDocument:
    def test_nested_field_access(self):
        doc = Document("1", {"user": {"screen_name": "fhollande"}, "retweet_count": 4})
        assert doc.get("user.screen_name") == "fhollande"
        assert doc.get("missing.path", "default") == "default"

    def test_flat_fields_include_list_members(self):
        doc = Document("1", {"entities": {"hashtags": ["SIA2016", "Agriculture"]}})
        paths = [p for p, _ in doc.flat_fields()]
        assert paths.count("entities.hashtags") == 2

    def test_make_document_requires_id(self):
        with pytest.raises(FullTextError):
            make_document({"text": "no id"})

    def test_make_document_nested_id_field(self):
        doc = make_document({"user": {"id": 42}, "text": "x"}, id_field="user.id")
        assert doc.doc_id == "42"

    def test_text_of_concatenates(self):
        doc = Document("1", {"a": "hello", "b": ["x", "y"], "c": 3})
        assert doc.text_of(["a", "b", "c"]) == "hello x y 3"


class TestInvertedIndex:
    def test_postings_and_frequencies(self):
        index = InvertedIndex("text")
        index.add("d1", ["urgence", "etat", "urgence"])
        index.add("d2", ["parlement", "etat"])
        assert index.document_frequency("etat") == 2
        assert index.term_frequency("urgence", "d1") == 2
        assert index.documents_with("parlement") == {"d2"}

    def test_document_lengths_and_average(self):
        index = InvertedIndex("text")
        index.add("d1", ["a", "b", "c"])
        index.add("d2", ["a"])
        assert index.document_length("d1") == 3
        assert index.average_document_length() == 2.0

    def test_remove_document(self):
        index = InvertedIndex("text")
        index.add("d1", ["a"])
        index.remove("d1")
        assert index.document_frequency("a") == 0
        assert index.document_count() == 0

    def test_idf_decreases_with_frequency(self):
        index = InvertedIndex("text")
        for i in range(10):
            index.add(f"d{i}", ["common"] + (["rare"] if i == 0 else []))
        assert index.idf("rare") > index.idf("common")

    def test_scoring_prefers_matching_documents(self):
        index = InvertedIndex("text")
        index.add("d1", ["urgence", "urgence", "etat"])
        index.add("d2", ["agriculture", "salon"])
        assert bm25_score(index, ["urgence"], "d1") > bm25_score(index, ["urgence"], "d2")
        assert tf_idf_score(index, ["urgence"], "d1") > 0.0


class TestQueryParser:
    def test_bare_term(self):
        q = parse_query("urgence")
        assert isinstance(q, TermQuery) and q.field is None

    def test_field_term(self):
        q = parse_query("entities.hashtags:SIA2016")
        assert q.field == "entities.hashtags" and q.term == "SIA2016"

    def test_phrase(self):
        q = parse_query('text:"etat d urgence"')
        assert isinstance(q, PhraseQuery) and len(q.terms) == 3

    def test_boolean_and_or_not(self):
        q = parse_query("text:urgence AND (user.screen_name:fhollande OR NOT text:agriculture)")
        assert isinstance(q, BooleanQuery) and q.operator == "AND"

    def test_implicit_and(self):
        q = parse_query("text:urgence text:parlement")
        assert isinstance(q, BooleanQuery) and q.operator == "AND"

    def test_range(self):
        q = parse_query("retweet_count:[100 TO *]")
        assert isinstance(q, RangeQuery) and q.low == 100 and q.high is None

    def test_match_all(self):
        assert parse_query("*:*").__class__.__name__ == "MatchAllQuery"
        assert parse_query("").__class__.__name__ == "MatchAllQuery"


class TestStoreSearch:
    def test_add_and_len(self, small_tweet_store):
        assert len(small_tweet_store) == 3
        assert "1" in small_tweet_store

    def test_hashtag_keyword_search(self, small_tweet_store):
        result = small_tweet_store.search("entities.hashtags:sia2016")
        assert result.total == 1
        assert result.hits[0].get("user.screen_name") == "fhollande"

    def test_text_search_is_stemmed_and_accent_insensitive(self, small_tweet_store):
        result = small_tweet_store.search("text:solidarite")
        assert result.total == 1

    def test_keyword_field_exact_match(self, small_tweet_store):
        assert small_tweet_store.search("user.screen_name:fhollande").total == 2

    def test_boolean_combination(self, small_tweet_store):
        result = small_tweet_store.search("user.screen_name:fhollande AND text:chomage")
        assert result.total == 1

    def test_not_query(self, small_tweet_store):
        result = small_tweet_store.search("NOT user.screen_name:fhollande", limit=None)
        assert result.total == 1

    def test_range_query_on_counts(self, small_tweet_store):
        assert small_tweet_store.search("retweet_count:[300 TO *]").total == 2

    def test_phrase_query(self, small_tweet_store):
        assert small_tweet_store.search('text:"solidarite nationale"').total == 1
        assert small_tweet_store.search('text:"nationale solidarite"').total == 0

    def test_sort_by_stored_field(self, small_tweet_store):
        result = small_tweet_store.search("user.screen_name:fhollande", sort_by="retweet_count")
        assert [h.get("retweet_count") for h in result.hits] == [469, 300]

    def test_limit(self, small_tweet_store):
        result = small_tweet_store.search("*:*", limit=2)
        assert len(result.hits) == 2 and result.total == 3

    def test_facets(self, small_tweet_store):
        result = small_tweet_store.search("*:*", facet_fields=["user.screen_name"], limit=None)
        facets = dict(result.facets["user.screen_name"])
        assert facets == {"fhollande": 2, "mlepen": 1}

    def test_count(self, small_tweet_store):
        assert small_tweet_store.count("text:urgence") == 1

    def test_reindex_replaces_document(self, small_tweet_store):
        small_tweet_store.add({"id": 1, "text": "nouveau texte sans hashtag",
                               "user": {"screen_name": "fhollande"}, "entities": {"hashtags": []}})
        assert len(small_tweet_store) == 3
        assert small_tweet_store.search("entities.hashtags:sia2016").total == 0

    def test_remove_document(self, small_tweet_store):
        assert small_tweet_store.remove("2") is True
        assert small_tweet_store.search("text:parlement").total == 0
        assert small_tweet_store.remove("2") is False

    def test_unknown_field_falls_back_to_stored_comparison(self, small_tweet_store):
        assert small_tweet_store.search("favorite_count:883").total == 1

    def test_field_values_for_digests(self, small_tweet_store):
        values = small_tweet_store.field_values("user.screen_name")
        assert sorted(values) == ["fhollande", "fhollande", "mlepen"]

    def test_relevance_ranking_prefers_more_matching_terms(self):
        store = FullTextStore("mini", [FieldConfig("text", "text")], id_field="id")
        store.add({"id": 1, "text": "urgence urgence parlement"})
        store.add({"id": 2, "text": "urgence seulement ici"})
        hits = store.search("text:urgence").hits
        assert hits[0].document.doc_id == "1"
        assert hits[0].score >= hits[1].score

    def test_invalid_field_type_rejected(self):
        with pytest.raises(FullTextError):
            FieldConfig("text", "vector")
