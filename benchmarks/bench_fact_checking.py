"""E6 (§3 scenario 1): fact-checking presidential claims with INSEE data.

The CMQ chains the glue graph, the tweet store, the INSEE open-data
registry and a *dynamically discovered* relational source.  The series
reports the per-source calls, showing that bindings (the topic, the
department) restrict what is shipped to the statistics source.
"""

from __future__ import annotations

from conftest import report

from repro.datasets import INSEE_URI, fact_checking_query


def test_fact_checking_query(benchmark, demo_small):
    """Latency and call profile of the four-source fact-checking CMQ."""
    query = fact_checking_query(demo_small, "chomage")
    result = benchmark(lambda: demo_small.instance.execute(query))
    assert len(result) >= 1
    per_source = {}
    for call in result.trace.calls:
        per_source.setdefault(call.source_uri, {"calls": 0, "rows": 0})
        per_source[call.source_uri]["calls"] += 1
        per_source[call.source_uri]["rows"] += call.rows_out
    report("E6: fact-checking call profile", [
        {"source": uri, **counts} for uri, counts in sorted(per_source.items())
    ])
    assert result.trace.calls_to(INSEE_URI) >= 2  # registry + discovered statistics
    assert query.uses_dynamic_sources()


def test_fact_checking_plan_orders_dependencies(benchmark, demo_small):
    """Planning cost; the plan must discover the statistics source last."""
    query = fact_checking_query(demo_small, "chomage")
    plan = benchmark(lambda: demo_small.instance.plan(query))
    order = plan.atom_order()
    report("E6: evaluation order", [{"position": i, "atom": name}
                                    for i, name in enumerate(order)])
    assert order.index("datasetRegistry") < order.index("statistics")
    assert order.index("qG") < order.index("statistics")
