"""E3 (Figure 3): weekly PMI tag clouds on the state-of-emergency corpus.

Regenerates the content of Figure 3 — per-week, per-group PMI-ranked
vocabularies rendered as coloured tag clouds — and prints the top terms per
week so the discourse drift (factual → institutional → objections →
vigilance) can be eyeballed against the paper's narrative.
"""

from __future__ import annotations

from conftest import report

from repro.analytics import PMIVocabularyAnalyzer, vocabulary_drift, weekly_tag_clouds
from repro.datasets import party_vocabulary_query


def _corpus(demo):
    result = demo.instance.execute(party_vocabulary_query(demo, "urgence"), limit=None)
    return [(row["week"], row["group"], row["t"]) for row in result.rows]


def test_weekly_pmi_analysis(benchmark, demo_medium):
    """Time of the full per-week per-group PMI computation."""
    corpus = _corpus(demo_medium)
    analyzer = PMIVocabularyAnalyzer(min_group_count=2, min_corpus_count=3)
    weekly = benchmark(lambda: analyzer.analyze_weekly(iter(corpus)))
    assert len(weekly) == 4
    rows = []
    for week in sorted(weekly):
        for group in sorted(weekly[week]):
            top = ", ".join(t.term for t in weekly[week][group].top(4))
            rows.append({"week": week, "group": group, "top PMI terms": top})
    report("E3: weekly per-group top PMI terms (Figure 3 content)", rows)


def test_tag_cloud_rendering(benchmark, demo_medium):
    """Time to render the four weekly tag clouds (text + SVG)."""
    corpus = _corpus(demo_medium)
    analyzer = PMIVocabularyAnalyzer(min_group_count=2, min_corpus_count=3)
    weekly = analyzer.analyze_weekly(corpus)

    def render():
        clouds = weekly_tag_clouds(weekly, terms_per_group=6)
        return [(c.title, c.to_text(), c.to_svg()) for c in clouds]

    rendered = benchmark(render)
    assert len(rendered) == 4
    drifts = vocabulary_drift(weekly, top_k=8)
    average = sum(d.jaccard for d in drifts) / len(drifts)
    report("E3: discourse drift", [
        {"metric": "weekly tag clouds", "value": len(rendered)},
        {"metric": "mean week-over-week Jaccard (top-8 terms)", "value": round(average, 3)},
    ])
    assert average < 0.8  # the vocabulary visibly moves week over week
