"""E2 (Figure 2): ingesting tweet JSON into the Solr-like store.

Measures indexing throughput for Figure-2-shaped documents, the latency of
the hashtag/author/range queries the mediator ships to the store, and the
dataguide extraction used by the digests.
"""

from __future__ import annotations

from conftest import report

from repro.datasets import TweetGeneratorConfig, generate_politicians, generate_tweets
from repro.digest import JSONDataguide
from repro.fulltext import tweet_store

_POLITICIANS = generate_politicians(count=40, seed=1)
_TWEETS = generate_tweets(_POLITICIANS, TweetGeneratorConfig(weeks=4, seed=2,
                                                             tweets_per_politician_per_week=4.0))


def test_index_tweets(benchmark):
    """Indexing throughput (documents/second reported by pytest-benchmark)."""
    def index():
        store = tweet_store()
        store.add_all(_TWEETS)
        return store

    store = benchmark(index)
    assert len(store) == len(_TWEETS)
    report("E2: corpus", [{"tweets": len(_TWEETS),
                           "vocabulary": len(store.field_values("entities.hashtags"))}])


def test_query_latency(benchmark):
    """Latency of the sub-queries the mediator ships to the store."""
    store = tweet_store()
    store.add_all(_TWEETS)

    def run_queries():
        hashtag = store.search("entities.hashtags:etatdurgence", limit=None).total
        author = store.search(f"user.screen_name:{_POLITICIANS[0].twitter_account}",
                              limit=None).total
        engaged = store.search("retweet_count:[50 TO *]", limit=None).total
        text = store.search("text:urgence AND text:parlement", limit=None).total
        return hashtag, author, engaged, text

    hashtag, author, engaged, text = benchmark(run_queries)
    report("E2: query selectivities", [
        {"query": "hashtags:etatdurgence", "matches": hashtag},
        {"query": "screen_name:<head>", "matches": author},
        {"query": "retweet_count:[50 TO *]", "matches": engaged},
        {"query": "text:urgence AND parlement", "matches": text},
    ])
    assert hashtag > 0


def test_dataguide_extraction(benchmark):
    """Cost of deriving the JSON dataguide (digest structural summary)."""
    store = tweet_store()
    store.add_all(_TWEETS)
    guide = benchmark(lambda: JSONDataguide.build(store.documents()))
    assert "user.screen_name" in guide.path_names()
    report("E2: dataguide", [{"documents": guide.document_count, "paths": len(guide)}])
