"""E9: JSON tree patterns — index pruning vs naive scans, and mixed plans.

Measures (a) index-assisted tree-pattern matching against the naive
document scan it must agree with, (b) the pruning factor the path indexes
achieve, and (c) the canonical three-model mixed query (RDF glue + JSON
tree pattern + SQL) in both bind-join and materialize modes.
"""

from __future__ import annotations

import time

from conftest import report

from repro.core import PlannerOptions
from repro.datasets import TWEETS_JSON_URI, qsia_json_query
from repro.json import TreePatternMatcher, match_document, parse_pattern

PATTERN = '{ user.screen_name: ?id, entities.hashtags: "sia2016", text: ?t }'


def test_index_vs_naive_matching(benchmark, demo_medium):
    """Index-pruned matching vs a full scan with the reference matcher."""
    store = demo_medium.instance.source(TWEETS_JSON_URI).store
    pattern = parse_pattern(PATTERN)
    matcher = TreePatternMatcher(store)

    indexed = benchmark(lambda: matcher.match(pattern))

    start = time.perf_counter()
    naive = [row for doc in store.documents() for row in match_document(pattern, doc)]
    naive_seconds = time.perf_counter() - start
    assert sorted(map(str, indexed)) == sorted(map(str, naive))

    candidates = matcher.candidates(pattern)
    report("E9: path-index pruning", [
        {"metric": "documents", "value": len(store)},
        {"metric": "candidates after pruning", "value": len(candidates)},
        {"metric": "pruning factor", "value": len(store) / max(1, len(candidates))},
        {"metric": "answers", "value": len(indexed)},
        {"metric": "naive scan seconds", "value": naive_seconds},
    ])


def test_three_model_mixed_query(benchmark, demo_medium):
    """The qSIAJson query: RDF glue + JSON tree pattern + SQL statistics."""
    query = qsia_json_query(demo_medium)
    result = benchmark(lambda: demo_medium.instance.execute(query))
    assert len(result) >= 1
    report("E9: qSIAJson evaluation", [
        {"metric": "answers", "value": len(result)},
        {"metric": "sub-queries", "value": len(result.trace.atom_order)},
        {"metric": "source calls", "value": len(result.trace.calls)},
        {"metric": "rows fetched", "value": result.trace.total_rows_fetched()},
    ])


def test_bind_vs_materialize_json_atom(demo_medium):
    """Bind joins push bindings into the path indexes; materialize does not."""
    query = qsia_json_query(demo_medium)
    instance = demo_medium.instance
    timings = []
    reference = None
    for label, options in [
        ("bind (tatooine)", PlannerOptions()),
        ("materialize (naive)", PlannerOptions(use_bind_joins=False,
                                               selectivity_ordering=False,
                                               parallel_stages=False)),
    ]:
        start = time.perf_counter()
        result = instance.execute(query, options=options)
        elapsed = time.perf_counter() - start
        rows = sorted(map(str, result.rows))
        if reference is None:
            reference = rows
        assert rows == reference
        timings.append({"strategy": label, "seconds": elapsed,
                        "rows fetched": result.trace.total_rows_fetched(),
                        "answers": len(result)})
    report("E9: JSON atom bind vs materialize", timings)
