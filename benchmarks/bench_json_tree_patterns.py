"""E9: JSON tree patterns — index pruning, structural joins, mixed plans.

Measures (a) index-assisted tree-pattern matching against the naive
document scan it must agree with, (b) the pruning factor the path indexes
achieve, (c) the canonical three-model mixed query (RDF glue + JSON
tree pattern + SQL) in both bind-join and materialize modes, and
(d) the XPath-accelerator: deep (4+-level) tree patterns evaluated as
columnar structural range joins against the tree-walking reference
matcher, over a 100k-document corpus.

Run as a script (``python bench_json_tree_patterns.py [--smoke]``) the
accelerator scenario writes ``BENCH_json.json`` to the repo root for
trajectory tracking; under pytest a smoke-sized version runs as
assertions.
"""

from __future__ import annotations

import json
import statistics
import sys
import time
from pathlib import Path

try:  # pytest import path (benchmarks/conftest.py) vs script execution
    from conftest import report
except ImportError:  # pragma: no cover - script mode
    def report(title, rows, columns=None):
        print(f"\n[{title}]")
        for row in rows:
            print("  " + " | ".join(f"{k}={v}" for k, v in row.items()))

from repro.core import PlannerOptions
from repro.datasets import TWEETS_JSON_URI, qsia_json_query
from repro.json import (JSONDocumentStore, TreePatternMatcher, match_document,
                        parse_pattern)
from repro.json.accel import structural_row_estimate

PATTERN = '{ user.screen_name: ?id, entities.hashtags: "sia2016", text: ?t }'


def test_index_vs_naive_matching(benchmark, demo_medium):
    """Index-pruned matching vs a full scan with the reference matcher."""
    store = demo_medium.instance.source(TWEETS_JSON_URI).store
    pattern = parse_pattern(PATTERN)
    matcher = TreePatternMatcher(store)

    indexed = benchmark(lambda: matcher.match(pattern))

    start = time.perf_counter()
    naive = [row for doc in store.documents() for row in match_document(pattern, doc)]
    naive_seconds = time.perf_counter() - start
    assert sorted(map(str, indexed)) == sorted(map(str, naive))

    candidates = matcher.candidates(pattern)
    report("E9: path-index pruning", [
        {"metric": "documents", "value": len(store)},
        {"metric": "candidates after pruning", "value": len(candidates)},
        {"metric": "pruning factor", "value": len(store) / max(1, len(candidates))},
        {"metric": "answers", "value": len(indexed)},
        {"metric": "naive scan seconds", "value": naive_seconds},
    ])


def test_three_model_mixed_query(benchmark, demo_medium):
    """The qSIAJson query: RDF glue + JSON tree pattern + SQL statistics."""
    query = qsia_json_query(demo_medium)
    result = benchmark(lambda: demo_medium.instance.execute(query))
    assert len(result) >= 1
    report("E9: qSIAJson evaluation", [
        {"metric": "answers", "value": len(result)},
        {"metric": "sub-queries", "value": len(result.trace.atom_order)},
        {"metric": "source calls", "value": len(result.trace.calls)},
        {"metric": "rows fetched", "value": result.trace.total_rows_fetched()},
    ])


def test_bind_vs_materialize_json_atom(demo_medium):
    """Bind joins push bindings into the path indexes; materialize does not."""
    query = qsia_json_query(demo_medium)
    instance = demo_medium.instance
    timings = []
    reference = None
    for label, options in [
        ("bind (tatooine)", PlannerOptions()),
        ("materialize (naive)", PlannerOptions(use_bind_joins=False,
                                               selectivity_ordering=False,
                                               parallel_stages=False)),
    ]:
        start = time.perf_counter()
        result = instance.execute(query, options=options)
        elapsed = time.perf_counter() - start
        rows = sorted(map(str, result.rows))
        if reference is None:
            reference = rows
        assert rows == reference
        timings.append({"strategy": label, "seconds": elapsed,
                        "rows fetched": result.trace.total_rows_fetched(),
                        "answers": len(result)})
    report("E9: JSON atom bind vs materialize", timings)


# ---------------------------------------------------------------------------
# XPath-accelerator: deep patterns as columnar structural range joins
# ---------------------------------------------------------------------------

def build_accel_corpus(documents: int) -> JSONDocumentStore:
    """Deep, broad tweet-thread documents (~60 nodes, 5 levels each)."""
    store = JSONDocumentStore("accel-corpus")
    for i in range(documents):
        posts = []
        for j in range(5):
            v = (i * 7 + j * 13) % 100
            posts.append({
                "body": {"text": f"post {i}-{j}",
                         "lang": "fr" if (i * 5 + j) % 97 == 0 else "en"},
                "stats": {"likes": v, "shares": (v * 3) % 50},
                "tags": [f"t{v % 11}", f"t{(v + 5) % 11}"],
            })
        store.add({
            "id": i,
            "user": {"name": f"u{i % 997}",
                     "geo": {"lat": 48.0 + (i % 10) * 0.1, "lon": 2.0}},
            "thread": {"posts": posts},
            "meta": {"window": {"day": {"bucket": {"score": i % 1000}}}},
        })
    return store


# Every pattern reaches at least four levels down; the wildcard ones are
# the accelerator showcase (the reference walker must explore whole
# subtrees, the encoding answers with a few bisect probes per document).
ACCEL_PATTERNS = [
    ("child-4-range", "{ thread.posts.stats.likes: ?l >= 95, user.name: ?u }"),
    ("desc-4-constant", '{ thread.**.lang: "fr", thread.posts.body.text: ?t }'),
    ("desc-5-range", "{ meta.**.score: ?s >= 990 }"),
]


def run_accel_vs_reference(documents: int, repeats: int = 3) -> dict:
    store = build_accel_corpus(documents)

    start = time.perf_counter()
    view = store.encoding_view()  # cold columnar build
    build_seconds = time.perf_counter() - start
    nodes = view.encoding.node_count

    accelerated = TreePatternMatcher(store)
    reference = TreePatternMatcher(store, accel=False)
    workloads = []
    for name, text in ACCEL_PATTERNS:
        pattern = parse_pattern(text)

        start = time.perf_counter()
        expected = reference.match(pattern)
        reference_seconds = time.perf_counter() - start

        samples = []
        rows = None
        for _ in range(repeats):
            start = time.perf_counter()
            rows = accelerated.match(pattern)
            samples.append(time.perf_counter() - start)
        accel_seconds = statistics.median(samples)

        assert sorted(map(str, rows)) == sorted(map(str, expected)), \
            f"accelerated rows diverged from the reference on {name}"
        estimate = structural_row_estimate(store.encoding_view(), pattern)
        workloads.append({
            "pattern": name, "text": text, "rows": len(rows),
            "reference_seconds": reference_seconds,
            "accel_seconds": accel_seconds,
            "speedup": reference_seconds / max(1e-9, accel_seconds),
            "docs_per_second": documents / max(1e-9, accel_seconds),
            "structural_estimate": estimate,
        })

    report(f"E9: accelerator vs reference, {documents} documents", [
        {"pattern": w["pattern"], "rows": w["rows"],
         "reference s": round(w["reference_seconds"], 3),
         "accel s": round(w["accel_seconds"], 3),
         "speedup": round(w["speedup"], 1)}
        for w in workloads])
    return {"documents": documents, "nodes": nodes,
            "build_seconds": build_seconds,
            "build_nodes_per_second": nodes / max(1e-9, build_seconds),
            "workloads": workloads,
            "best_speedup": max(w["speedup"] for w in workloads)}


def test_accelerator_matches_reference_on_deep_patterns():
    outcome = run_accel_vs_reference(documents=4000, repeats=3)
    assert all(w["rows"] > 0 for w in outcome["workloads"])
    assert outcome["best_speedup"] >= 2.0  # conservative under pytest noise


# ---------------------------------------------------------------------------
# Script mode: the trajectory runner
# ---------------------------------------------------------------------------

def main(argv: list[str]) -> None:
    smoke = "--smoke" in argv
    documents = 8_000 if smoke else 100_000
    target = 3.0 if smoke else 10.0

    payload = {"benchmark": "json_accel", "smoke": smoke}
    payload["accelerator"] = run_accel_vs_reference(documents)

    best = payload["accelerator"]["best_speedup"]
    deep_wildcards = [w["speedup"] for w in payload["accelerator"]["workloads"]
                      if w["pattern"].startswith("desc-")]
    print(f"\ndeep-pattern speedup: {best:6.1f}x (target >= {target:.0f}x)")
    assert max(deep_wildcards) >= target, \
        f"deep-pattern speedup {max(deep_wildcards):.1f}x below the " \
        f"{target:.0f}x acceptance bar"

    out_path = Path(__file__).resolve().parents[1] / "BENCH_json.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")


if __name__ == "__main__":
    main(sys.argv[1:])
