"""Observability overhead: tracing on vs off on the service workload.

Spans and metrics are on by default, so their cost has to be provably
negligible.  This bench reuses the mixed latency-bound workload from
:mod:`bench_service_concurrency` and drives it through the
:class:`~repro.service.MediatorService` twice per repetition — once
with tracing enabled (the default) and once with
``ServiceConfig(tracing=False)`` plus ``PlannerOptions(tracing=False)``
— interleaved so machine noise hits both arms equally.  The best
repetition of each arm is compared: tracing-on throughput must stay
within 5% of tracing-off.

Run as a script (``python bench_observability_overhead.py [--smoke]``)
it writes ``BENCH_obs.json`` to the repo root; the full run asserts the
5% bound.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from bench_service_concurrency import build_instance, workload
from repro.core import PlannerOptions
from repro.obs.metrics import reset_registry
from repro.service import MediatorService, ServiceConfig

try:  # pytest import path (benchmarks/conftest.py) vs script execution
    from conftest import report
except ImportError:  # pragma: no cover - script mode
    def report(title, rows, columns=None):
        print(f"\n[{title}]")
        for row in rows:
            print("  " + " | ".join(f"{k}={v}" for k, v in row.items()))

#: Throughput floor: tracing-on must reach this fraction of tracing-off.
OVERHEAD_FLOOR = 0.95


def measure(tracing: bool, total_queries: int, workers: int = 8) -> dict:
    """One service run; returns throughput with tracing on or off."""
    reset_registry()
    instance = build_instance()
    queries = workload(instance)
    config = ServiceConfig(workers=workers, tracing=tracing,
                           max_queue_depth=total_queries + 8,
                           max_in_flight=total_queries + 16,
                           dispatch_workers=4, task_workers=4)
    options = None if tracing else PlannerOptions(tracing=False)
    with MediatorService(instance, config) as service:
        start = time.perf_counter()
        tickets = [service.submit(queries[i % len(queries)], options=options)
                   for i in range(total_queries)]
        for ticket in tickets:
            ticket.result(timeout=300)
        wall = time.perf_counter() - start
    return {
        "tracing": tracing,
        "queries": total_queries,
        "wall_seconds": round(wall, 4),
        "throughput_qps": round(total_queries / wall, 2),
    }


def run(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    total_queries = 24 if smoke else 80
    repetitions = 2 if smoke else 3

    # Warm both arms (thread pools, plan caches, bytecode) so the first
    # measured repetition is not a cold start.
    measure(False, max(8, total_queries // 4))
    measure(True, max(8, total_queries // 4))

    on_runs, off_runs = [], []
    for _ in range(repetitions):
        off_runs.append(measure(False, total_queries))
        on_runs.append(measure(True, total_queries))

    best_on = max(run["throughput_qps"] for run in on_runs)
    best_off = max(run["throughput_qps"] for run in off_runs)
    ratio = best_on / best_off
    series = [
        {"arm": "tracing_off", "best_qps": best_off,
         "runs": [run["throughput_qps"] for run in off_runs]},
        {"arm": "tracing_on", "best_qps": best_on,
         "runs": [run["throughput_qps"] for run in on_runs]},
    ]
    report("observability overhead (tracing on vs off)", [
        {"arm": row["arm"], "best_qps": row["best_qps"]} for row in series])
    print(f"\ntracing-on / tracing-off throughput: {ratio:.3f} "
          f"(floor {OVERHEAD_FLOOR})")

    payload = {
        "benchmark": "observability_overhead",
        "smoke": smoke,
        "queries_per_run": total_queries,
        "repetitions": repetitions,
        "series": series,
        "on_over_off": round(ratio, 4),
        "floor": OVERHEAD_FLOOR,
    }
    if not smoke:
        assert ratio >= OVERHEAD_FLOOR, (
            f"tracing overhead too high: on/off throughput ratio "
            f"{ratio:.3f} < {OVERHEAD_FLOOR}")

    out_path = Path(__file__).resolve().parents[1] / "BENCH_obs.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")
    return 0


# ---------------------------------------------------------------------------
# pytest entry point (smoke-sized)
# ---------------------------------------------------------------------------

def test_tracing_overhead_is_bounded():
    """Tracing-on throughput stays within 10% of off (smoke-sized, one
    interleaved repetition each; the full bench asserts the 5% bound)."""
    off = max(measure(False, 16)["throughput_qps"] for _ in range(2))
    on = max(measure(True, 16)["throughput_qps"] for _ in range(2))
    assert on >= off * 0.90


if __name__ == "__main__":
    sys.exit(run(sys.argv[1:]))
