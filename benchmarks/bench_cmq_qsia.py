"""E4 (§2.2): the qSIA CMQ at growing corpus sizes, fixed vs dynamic source.

The series shows how the mediator's cost scales with the tweet corpus when
the glue sub-query stays selective (one head of state), and the overhead of
dispatching the full-text sub-query through a free source variable (every
accepting source is probed) instead of a fixed URI.
"""

from __future__ import annotations

import pytest
from conftest import report

from repro.datasets import DemoConfig, build_demo_instance, qsia_query

_SCALES = [10, 30, 60]
_INSTANCES = {}


def _demo(scale: int):
    if scale not in _INSTANCES:
        _INSTANCES[scale] = build_demo_instance(
            DemoConfig(politicians=scale, weeks=4, tweets_per_politician_per_week=3.0, seed=42)
        )
    return _INSTANCES[scale]


@pytest.mark.parametrize("scale", _SCALES)
def test_qsia_scaling(benchmark, scale):
    """qSIA latency as the number of politicians (and thus tweets) grows."""
    demo = _demo(scale)
    query = qsia_query(demo)
    result = benchmark(lambda: demo.instance.execute(query))
    tweets = demo.instance.source("solr://tweets").size()
    report(f"E4: qSIA at scale {scale}", [
        {"politicians": scale, "tweets": tweets, "answers": len(result),
         "rows fetched": result.trace.total_rows_fetched(),
         "source calls": len(result.trace.calls)},
    ])
    assert len(result) >= 1


def test_qsia_dynamic_source_overhead(benchmark, demo_small):
    """Free source variable: the sub-query fans out to every full-text source."""
    instance = demo_small.instance
    dynamic = instance.parse(
        'qSIA(t, id) :- qG(id), tweetContains(t, id, "sia2016")[dSolr]'
    )
    fixed = qsia_query(demo_small)

    dynamic_result = benchmark(lambda: instance.execute(dynamic))
    fixed_result = instance.execute(fixed)
    report("E4: fixed URI vs free source variable", [
        {"variant": "fixed solr://tweets", "source calls": len(fixed_result.trace.calls),
         "answers": len(fixed_result)},
        {"variant": "free variable dSolr", "source calls": len(dynamic_result.trace.calls),
         "answers": len(dynamic_result)},
    ])
    # Same answers, but the dynamic variant probes both full-text sources.
    assert {r["t"] for r in dynamic_result} == {r["t"] for r in fixed_result}
    assert len(dynamic_result.trace.calls) >= len(fixed_result.trace.calls)
