"""E13: cross-query result caching and incremental RDFS saturation.

Two scenarios from the paper's data-journalism deployment:

* **repeated workload** — the same fact-checking CMQ runs over and over
  (every incoming article re-triggers it).  Cold, the mediator ships
  every sub-query to its sources; warm, the result cache answers the
  probes and only the iterator engine runs.  Measured: wall time and
  cache counters, with result equality asserted against an uncached
  reference.
* **streaming updates** — tweets keep arriving as new glue triples.
  Each micro-batch (≤ 1% of the graph) is absorbed by
  ``saturate_delta`` instead of recomputing G∞ from scratch.  Measured:
  per-delta time of incremental vs full saturation, with G∞ equality
  asserted.

Run as a script (``python bench_caching.py [--smoke]``) it writes
``BENCH_cache.json`` to the repo root for trajectory tracking; under
pytest the same scenarios run as assertions.
"""

from __future__ import annotations

import json
import statistics
import sys
import time
from pathlib import Path

from repro.core import MediatorCache, MixedInstance, PlannerOptions
from repro.fulltext.store import FieldConfig, FullTextStore
from repro.rdf import Graph, RDFSchema, Triple, saturate, saturate_delta, triple, uri
from repro.relational import Database

try:  # pytest import path (benchmarks/conftest.py) vs script execution
    from conftest import report
except ImportError:  # pragma: no cover - script mode
    def report(title, rows, columns=None):
        print(f"\n[{title}]")
        for row in rows:
            print("  " + " | ".join(f"{k}={v}" for k, v in row.items()))

NO_CACHE = PlannerOptions(result_cache=False, plan_cache=False)


# ---------------------------------------------------------------------------
# Scenario 1: repeated CMQ workload
# ---------------------------------------------------------------------------

def build_workload_instance(accounts: int) -> MixedInstance:
    """Glue (accounts) + relational profile + full-text posts.

    The full-text atom searches an analysed *text* field per binding, so
    it cannot be batched into one disjunctive query — exactly the shape
    whose repeated cost the cross-query cache is meant to erase.
    """
    glue = Graph("bench-glue")
    database = Database("bench-db")
    store = FullTextStore("bench-posts", fields=[
        FieldConfig("text", "text"),
        FieldConfig("user.screen_name", "keyword"),
    ], default_field="text")
    rows = []
    for i in range(accounts):
        handle = f"user{i:05d}"
        glue.add(triple(f"ttn:P{i}", "ttn:twitterAccount", handle))
        rows.append({"handle": handle, "followers": (i * 37) % 10_000})
        store.add({"id": i, "text": f"dispatch from {handle} about the election",
                   "user": {"screen_name": handle}})
    database.create_table_from_rows("accounts", rows)
    # Size the result cache to hold the whole working set (one SQL and
    # one full-text entry per account, plus the glue scan).
    cache = MediatorCache(result_entries=2 * accounts + 16)
    instance = MixedInstance(graph=glue, name="bench-cache", entailment=False,
                             cache=cache)
    instance.register_relational("sql://accounts", database)
    instance.register_fulltext("solr://posts", store)
    return instance


def workload_cmq(instance: MixedInstance):
    return (instance.builder("qFactCheck", head=["id", "f", "t"])
            .graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
            .sql("followers", source="sql://accounts",
                 sql="SELECT handle AS id, followers AS f FROM accounts "
                     "WHERE handle = {id}")
            .fulltext("posts", source="solr://posts",
                      query="text:election text:{id}",
                      fields={"t": "text", "id": "user.screen_name"})
            .build())


def run_repeated_workload(accounts: int, repeats: int) -> dict:
    instance = build_workload_instance(accounts)
    cmq = workload_cmq(instance)

    def timed(options=None):
        start = time.perf_counter()
        result = instance.execute(cmq, options=options)
        return result, time.perf_counter() - start

    reference, reference_seconds = timed(NO_CACHE)
    cold, cold_seconds = timed()
    warm_runs = [timed() for _ in range(repeats)]
    warm_seconds = statistics.median(seconds for _, seconds in warm_runs)
    warm = warm_runs[-1][0]

    expected = sorted(map(str, reference.rows))
    assert sorted(map(str, cold.rows)) == expected, "cold cached run diverged"
    for result, _ in warm_runs:
        assert sorted(map(str, result.rows)) == expected, "warm run diverged"
    assert warm.trace.cache_misses == 0

    speedup = cold_seconds / max(1e-9, warm_seconds)
    measurements = [
        {"run": "uncached", "seconds": reference_seconds,
         "cache hits": 0, "answers": len(reference)},
        {"run": "cold (populating)", "seconds": cold_seconds,
         "cache hits": cold.trace.cache_hits, "answers": len(cold)},
        {"run": f"warm (median of {repeats})", "seconds": warm_seconds,
         "cache hits": warm.trace.cache_hits, "answers": len(warm)},
    ]
    report(f"E13: repeated CMQ, {accounts} accounts", measurements)
    return {"accounts": accounts, "repeats": repeats,
            "uncached_seconds": reference_seconds,
            "cold_seconds": cold_seconds, "warm_seconds": warm_seconds,
            "warm_cache_hits": warm.trace.cache_hits,
            "plan_cached": warm.trace.plan_cached,
            "speedup": speedup,
            "cache_stats": instance.cache_statistics()}


# ---------------------------------------------------------------------------
# Scenario 2: streaming updates and incremental saturation
# ---------------------------------------------------------------------------

def build_stream_graph(size: int) -> Graph:
    """A tweet-like glue graph with an RDFS schema worth saturating."""
    graph = Graph("stream")
    graph.add(triple("ttn:Tweet", "rdfs:subClassOf", "ttn:Document"))
    graph.add(triple("ttn:Document", "rdfs:subClassOf", "ttn:Resource"))
    graph.add(triple("ttn:retweetOf", "rdfs:subPropertyOf", "ttn:derivedFrom"))
    graph.add(triple("ttn:postedBy", "rdfs:domain", "ttn:Tweet"))
    graph.add(triple("ttn:postedBy", "rdfs:range", "ttn:Account"))
    for i in range(size):
        graph.add(triple(f"ttn:T{i}", "rdf:type", "ttn:Tweet"))
        graph.add(triple(f"ttn:T{i}", "ttn:postedBy", f"ttn:U{i % (size // 10 or 1)}"))
        if i % 3 == 0:
            graph.add(triple(f"ttn:T{i}", "ttn:retweetOf", f"ttn:T{i // 2}"))
    return graph


def tweet_delta(start: int, count: int) -> list[Triple]:
    out = []
    for i in range(start, start + count):
        out.append(triple(f"ttn:T{i}", "rdf:type", "ttn:Tweet"))
        out.append(triple(f"ttn:T{i}", "ttn:postedBy", f"ttn:U{i % 97}"))
        out.append(triple(f"ttn:T{i}", "ttn:retweetOf", f"ttn:T{i - start}"))
    return out


def run_streaming_updates(size: int, deltas: int) -> dict:
    graph = build_stream_graph(size)
    saturated, _ = saturate(graph)
    schema = RDFSchema.from_graph(saturated)
    # Delta ≤ 1% of the (explicit) graph size.
    delta_tweets = max(1, len(graph) // 300)

    incremental_seconds = []
    full_seconds = []
    next_id = size
    for _ in range(deltas):
        delta = tweet_delta(next_id, delta_tweets)
        next_id += delta_tweets
        graph.add_all(delta)

        start = time.perf_counter()
        saturate_delta(saturated, delta, schema=schema)
        incremental_seconds.append(time.perf_counter() - start)

        start = time.perf_counter()
        scratch, _ = saturate(graph)
        full_seconds.append(time.perf_counter() - start)

        assert set(saturated) == set(scratch), \
            "incremental saturation diverged from from-scratch G∞"

    incremental = statistics.median(incremental_seconds)
    full = statistics.median(full_seconds)
    speedup = full / max(1e-9, incremental)
    measurements = [
        {"strategy": "full saturate", "seconds/delta": full,
         "G∞": len(saturated)},
        {"strategy": "saturate_delta", "seconds/delta": incremental,
         "G∞": len(saturated)},
        {"strategy": "speedup", "seconds/delta": round(speedup, 1), "G∞": ""},
    ]
    report(f"E13: streaming updates, |G|≈{len(graph)}, "
           f"delta={delta_tweets * 3} triples", measurements)
    return {"graph_triples": len(graph), "delta_triples": delta_tweets * 3,
            "deltas": deltas, "incremental_seconds": incremental,
            "full_seconds": full, "speedup": speedup}


# ---------------------------------------------------------------------------
# pytest entry points (smoke-sized)
# ---------------------------------------------------------------------------

def test_repeated_workload_hits_cache():
    outcome = run_repeated_workload(accounts=250, repeats=3)
    assert outcome["warm_cache_hits"] > 0
    assert outcome["plan_cached"]
    assert outcome["speedup"] >= 2.0  # conservative under pytest noise


def test_incremental_saturation_beats_full_recompute():
    outcome = run_streaming_updates(size=2000, deltas=2)
    assert outcome["speedup"] >= 5.0  # conservative under pytest noise


# ---------------------------------------------------------------------------
# Script mode: the trajectory runner
# ---------------------------------------------------------------------------

def main(argv: list[str]) -> None:
    smoke = "--smoke" in argv
    accounts = 800 if smoke else 3000
    repeats = 3 if smoke else 5
    graph_size = 3000 if smoke else 12000
    deltas = 2 if smoke else 5

    payload = {"benchmark": "caching", "smoke": smoke}
    payload["repeated_workload"] = run_repeated_workload(accounts, repeats)
    payload["streaming_updates"] = run_streaming_updates(graph_size, deltas)

    workload_speedup = payload["repeated_workload"]["speedup"]
    saturation_speedup = payload["streaming_updates"]["speedup"]
    print(f"\nwarm-cache speedup:        {workload_speedup:6.1f}x (target >= 5x)")
    print(f"incremental-saturation:    {saturation_speedup:6.1f}x (target >= 10x)")
    assert workload_speedup >= 5.0, \
        f"warm cache speedup {workload_speedup:.1f}x below the 5x acceptance bar"
    assert saturation_speedup >= 10.0, \
        f"incremental saturation {saturation_speedup:.1f}x below the 10x acceptance bar"

    out_path = Path(__file__).resolve().parents[1] / "BENCH_cache.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")


if __name__ == "__main__":
    main(sys.argv[1:])
