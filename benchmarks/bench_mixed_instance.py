"""E1 (Figure 1): assembling and querying a full mixed instance.

Measures (a) the cost of assembling the whole mixed instance — the
"lightweight" setup the paper contrasts with building a warehouse — and
(b) one end-to-end mixed query over it.
"""

from __future__ import annotations

from conftest import report, small_config

from repro.datasets import build_demo_instance, qsia_query


def test_build_mixed_instance(benchmark):
    """Time to assemble the glue graph plus six heterogeneous sources."""
    demo = benchmark(build_demo_instance, small_config())
    stats = demo.instance.size_summary()
    report("E1: mixed instance composition", [
        {"component": "glue graph (triples)", "size": stats["glue_triples"]},
        *[{"component": uri, "size": size} for uri, size in stats["sources"].items()],
    ])
    assert len(demo.instance.sources()) == 7


def test_end_to_end_qsia(benchmark, demo_small):
    """Time of the canonical qSIA mixed query over the assembled instance."""
    result = benchmark(lambda: demo_small.instance.execute(qsia_query(demo_small)))
    assert len(result) >= 1
    report("E1: qSIA evaluation", [
        {"metric": "answers", "value": len(result)},
        {"metric": "sub-queries", "value": len(result.trace.atom_order)},
        {"metric": "source calls", "value": len(result.trace.calls)},
        {"metric": "rows fetched", "value": result.trace.total_rows_fetched()},
    ])
