"""Streaming ingestion: delta-join cache repair vs invalidate-everything.

The paper's mediator sits on *live* stores — tweets keep arriving while
journalists keep re-asking the same questions.  Before the repair
engine, every write bumped a source version and orphaned every cached
sub-query result for that source: the next identical question paid full
re-dispatch ("writes poison every cache").  This bench replays that
workload: a fixed panel of four CMQs (one per data model) is re-run
after every ingest round, while each round batch-writes all five stores
(glue graph, SQL, full text, JSON, external RDF).

Two modes over the *same deterministic stream*:

* **repair** — the delta-join repair engine patches version-orphaned
  cache entries from the stores' delta journals and re-stamps them, so
  warm re-runs stay cache hits;
* **invalidate** — repair disabled (the old behaviour): every write
  makes every cached entry for that source stale, so warm re-runs are
  cold re-executions.

Because the invalidate mode re-executes from scratch, its rows are by
construction the cold truth — the bench asserts the repaired rows match
it exactly (multiset semantics) at every round, and that each ingest
batch bumped its store's version exactly once.

Run as a script (``python bench_streaming.py [--smoke]``) it writes
``BENCH_streaming.json`` to the repo root; the full run asserts the
>= 5x warm hit-rate target.
"""

from __future__ import annotations

import json
import sys
import time
from collections import Counter
from pathlib import Path

from repro.core import MixedInstance
from repro.fulltext.store import FieldConfig, FullTextStore
from repro.json.store import JSONDocumentStore
from repro.rdf import Graph, triple
from repro.relational import Database

try:  # pytest import path (benchmarks/conftest.py) vs script execution
    from conftest import report
except ImportError:  # pragma: no cover - script mode
    def report(title, rows, columns=None):
        print(f"\n[{title}]")
        for row in rows:
            print("  " + " | ".join(f"{k}={v}" for k, v in row.items()))

DEPTS = ["75", "62", "33"]
HANDLES = ["fhollande", "mlepen", "njdam"]


def build_instance() -> MixedInstance:
    glue = Graph("stream-glue")
    for i, (handle, dept) in enumerate(zip(HANDLES, DEPTS)):
        glue.add(triple(f"ttn:P{i}", "ttn:twitterAccount", handle))
        glue.add(triple(f"ttn:P{i}", "ttn:deptCode", dept))
    database = Database("insee")
    database.create_table_from_rows(
        "unemployment", [{"dept_code": dept, "year": 2015, "rate": 7.0 + i}
                         for i, dept in enumerate(DEPTS)])
    posts = FullTextStore("posts", fields=[
        FieldConfig("text", "text"),
        FieldConfig("user.screen_name", "keyword"),
    ], default_field="text")
    posts.add_all([{"id": i, "text": "campagne en cours",
                    "user": {"screen_name": handle}}
                   for i, handle in enumerate(HANDLES)])
    tweets = JSONDocumentStore("tweets")
    tweets.add_all([{"id": str(i), "author": handle, "topic": "politics",
                     "likes": 10 * i} for i, handle in enumerate(HANDLES)])
    profiles = Graph("profiles")
    for i, handle in enumerate(HANDLES):
        profiles.add(triple(f"ttn:U{i}", "ttn:handle", handle))
        profiles.add(triple(f"ttn:U{i}", "ttn:followers", 1000 * (i + 1)))
    instance = MixedInstance(graph=glue, name="bench-streaming",
                             entailment=False)
    instance.register_relational("sql://insee", database)
    instance.register_fulltext("solr://posts", posts)
    instance.register_json("json://tweets", tweets)
    instance.register_rdf("rdf://profiles", profiles)
    return instance


def build_queries(instance: MixedInstance) -> list:
    """One CMQ per data model, all probed from the same glue graph."""
    sql = (instance.builder("rates", head=["dept", "rate"])
           .graph("SELECT ?dept WHERE { ?x ttn:deptCode ?dept }")
           .sql("stats", source="sql://insee",
                sql="SELECT dept_code AS dept, rate AS rate "
                    "FROM unemployment WHERE dept_code = {dept}")
           .build())
    fulltext = (instance.builder("posts", head=["id", "t"])
                .graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
                .fulltext("posts", source="solr://posts",
                          query="user.screen_name:{id}",
                          fields={"t": "text", "id": "user.screen_name"})
                .build())
    json_q = (instance.builder("tweets", head=["id", "likes"])
              .graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
              .json("tweets", source="json://tweets",
                    pattern='{ author: ?id, likes: ?likes }')
              .build())
    rdf = (instance.builder("followers", head=["id", "f"])
           .rdf("prof", "SELECT ?id ?f WHERE { ?u ttn:handle ?id . "
                "?u ttn:followers ?f }", source="rdf://profiles")
           .build())
    return [sql, fulltext, json_q, rdf]


def ingest_round(instance: MixedInstance, tick: int) -> None:
    """Batch-write all five stores; each batch must bump exactly once.

    The writes add *facts about already-known entities* — the streaming
    sweet spot: the panel's probe bindings stay stable, so a repaired
    cache entry keeps answering, while an invalidated one re-dispatches.
    """
    glue = instance.graph
    database = instance.source("sql://insee").database
    posts = instance.source("solr://posts").store
    tweets = instance.source("json://tweets").store
    profiles = instance.source("rdf://profiles").graph

    def bump(store, label, write):
        before = store.version() if callable(store.version) else store.version
        write()
        after = store.version() if callable(store.version) else store.version
        assert after == before + 1, (
            f"{label}: one ingest batch must bump the version exactly once "
            f"(saw {before} -> {after})")

    bump(glue, "glue", lambda: glue.add_all([
        triple(f"ttn:Evt{tick}", "ttn:observedAt", tick),
        triple(f"ttn:Evt{tick}", "ttn:severity", tick % 5)]))
    bump(database, "sql", lambda: database.execute(
        "INSERT INTO unemployment (dept_code, year, rate) VALUES " +
        ", ".join(f"('{dept}', {2016 + tick}, {7.0 + tick % 4})"
                  for dept in DEPTS)))
    bump(posts, "fulltext", lambda: posts.add_all([
        {"id": 1000 + 10 * tick + i,
         "text": f"reaction {tick} en direct",
         "user": {"screen_name": handle}}
        for i, handle in enumerate(HANDLES)]))
    bump(tweets, "json", lambda: tweets.add_all([
        {"id": f"t{tick}-{i}", "author": handle, "topic": "politics",
         "likes": tick + i} for i, handle in enumerate(HANDLES)]))
    bump(profiles, "rdf", lambda: profiles.add_all([
        triple(f"ttn:U{i}", "ttn:followers", 1000 * (i + 1) + tick + 1)
        for i in range(len(HANDLES))]))


def _multiset(rows: list[dict]) -> Counter:
    return Counter(tuple(sorted(row.items())) for row in rows)


def run_mode(repair: bool, rounds: int) -> dict[str, object]:
    instance = build_instance()
    if not repair:
        # The old behaviour: no repair engine, so a version bump strands
        # every cached entry for the written source (invalidate-everything).
        instance.cache.repair = None
    queries = build_queries(instance)
    for query in queries:  # cold start, not measured
        instance.execute(query)
    hits = misses = 0
    answers: list[Counter] = []
    start = time.perf_counter()
    for tick in range(rounds):
        ingest_round(instance, tick)
        for query in queries:
            result = instance.execute(query)
            hits += result.trace.cache_hits
            misses += result.trace.cache_misses
            answers.append(_multiset(result.rows))
    wall = time.perf_counter() - start
    row = {
        "mode": "repair" if repair else "invalidate",
        "rounds": rounds,
        "warm_runs": rounds * len(queries),
        "cache_hits": hits,
        "cache_misses": misses,
        "hit_rate": round(hits / max(hits + misses, 1), 4),
        "wall_seconds": round(wall, 4),
    }
    if repair:
        row["repair"] = instance.cache.statistics()["repair"]
    return row, answers


def run(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    rounds = 3 if smoke else 25

    repaired, repaired_answers = run_mode(True, rounds)
    invalidated, cold_answers = run_mode(False, rounds)
    report(f"warm re-runs under a write stream ({rounds} ingest rounds, "
           "5 stores batch-written per round)", [repaired, invalidated])

    # The invalidate mode re-executed everything cold: its answers are
    # ground truth.  Repaired entries must reproduce them exactly.
    assert len(repaired_answers) == len(cold_answers)
    for i, (warm, cold) in enumerate(zip(repaired_answers, cold_answers)):
        assert warm == cold, f"repaired answer #{i} diverged from cold re-run"

    stats = repaired["repair"]
    assert stats["repaired"] > 0, "the stream never exercised the repair path"
    assert not stats["fallbacks"], (
        f"this workload is fully repairable, saw fallbacks {stats['fallbacks']}")

    ratio = repaired["hit_rate"] / max(invalidated["hit_rate"], 1e-9)
    ratio = round(min(ratio, 999.0), 2)
    print(f"\nwarm-cache hit rate: {repaired['hit_rate']} (repair) vs "
          f"{invalidated['hit_rate']} (invalidate) -> {ratio}x; "
          f"{stats['repaired']} entries repaired "
          f"({stats['rows_appended']} rows appended, "
          f"{stats['restamped']} pure re-stamps)")
    assert repaired["hit_rate"] >= 5 * invalidated["hit_rate"], (
        f"expected >= 5x the invalidate-everything hit rate, got "
        f"{repaired['hit_rate']} vs {invalidated['hit_rate']}")
    if not smoke:
        assert repaired["hit_rate"] >= 0.95, (
            "a fully repairable stream should keep warm re-runs at ~100% "
            f"cache hits, got {repaired['hit_rate']}")

    payload = {
        "benchmark": "streaming",
        "smoke": smoke,
        "rounds": rounds,
        "series": [repaired, invalidated],
        "hit_rate_ratio": ratio,
        "repaired_equals_cold_checks": len(repaired_answers),
    }
    out_path = Path(__file__).resolve().parents[1] / "BENCH_streaming.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")
    return 0


# ---------------------------------------------------------------------------
# pytest entry point (smoke-sized)
# ---------------------------------------------------------------------------

def test_repair_keeps_warm_runs_hot_and_correct():
    """Repaired warm runs stay cache hits and match cold re-execution."""
    repaired, warm_answers = run_mode(True, 3)
    invalidated, cold_answers = run_mode(False, 3)
    assert warm_answers == cold_answers
    assert repaired["cache_misses"] == 0
    assert repaired["repair"]["repaired"] > 0
    assert repaired["hit_rate"] >= 5 * invalidated["hit_rate"]


if __name__ == "__main__":
    sys.exit(run(sys.argv[1:]))
