"""E8 (§2.3): evaluation-strategy ablation and warehouse comparison.

Compares, on the same CMQ workload:

* the full TATOOINE strategy (bind joins + selectivity ordering + parallel
  dispatch),
* degraded mediator strategies (no bind joins, no ordering, sequential),
* the warehouse baseline (export everything to one RDF graph, then query).

Expected shape: the full strategy ships the fewest rows from the sources;
the warehouse answers individual queries quickly *after* paying an export
cost larger than any single mediated query — which is exactly the paper's
argument for lightweight integration under short news cycles.
"""

from __future__ import annotations

import time

import pytest
from conftest import report

from repro.baselines import RDFWarehouse, STRATEGIES
from repro.datasets import qsia_query


def _workload(demo):
    instance = demo.instance
    qsia = qsia_query(demo)
    # A selective glue restriction (one politician) joined with an unselective
    # full-text sub-query: exactly the case where pushing bindings to the
    # source (bind join) avoids shipping the whole matching tweet set.
    head_emergency = (instance.builder("headEmergency", head=["t", "id"])
                      .graph("SELECT ?id WHERE { ?x ttn:position ttn:headOfState . "
                             "?x ttn:twitterAccount ?id }")
                      .fulltext("tweets", source="solr://tweets", query="text:urgence",
                                fields={"t": "text", "id": "user.screen_name"})
                      .build())
    return {"qSIA": qsia, "headEmergency": head_emergency}


@pytest.mark.parametrize("strategy", list(STRATEGIES))
def test_strategy(benchmark, demo_small, strategy):
    """Per-strategy latency; the printed table adds rows-fetched and calls."""
    options = STRATEGIES[strategy]
    workload = _workload(demo_small)

    def run():
        return [demo_small.instance.execute(query, options=options)
                for query in workload.values()]

    results = benchmark(run)
    rows = []
    for name, result in zip(workload, results):
        rows.append({"strategy": strategy, "query": name, "answers": len(result),
                     "rows fetched": result.trace.total_rows_fetched(),
                     "source calls": len(result.trace.calls)})
    report(f"E8: strategy {strategy}", rows)
    assert all(len(r) >= 1 for r in results)


def test_strategies_fetch_comparison(benchmark, demo_small):
    """The headline E8 series: rows shipped from sources per strategy."""
    workload = _workload(demo_small)

    def sweep():
        rows = []
        reference_answers = None
        for strategy, options in STRATEGIES.items():
            fetched = 0
            answers = []
            for query in workload.values():
                result = demo_small.instance.execute(query, options=options)
                fetched += result.trace.total_rows_fetched()
                answers.append({tuple(sorted(r.items())) for r in result.rows})
            if reference_answers is None:
                reference_answers = answers
            assert answers == reference_answers, f"{strategy} changed the answers"
            rows.append({"strategy": strategy, "total rows fetched": fetched})
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    rows.sort(key=lambda r: r["total rows fetched"])
    report("E8: rows shipped from sources (lower is better)", rows)
    by_name = {r["strategy"]: r["total rows fetched"] for r in rows}
    assert by_name["tatooine"] <= by_name["naive"]


def test_warehouse_baseline(benchmark, demo_small):
    """Warehouse: per-query latency after a full export, plus the export cost."""
    warehouse = RDFWarehouse(demo_small.instance)
    export_start = time.perf_counter()
    stats = warehouse.export()
    export_seconds = time.perf_counter() - export_start

    workload = _workload(demo_small)

    def run():
        return [warehouse.execute(query) for query in workload.values()]

    results = benchmark(run)
    mediator_results = [demo_small.instance.execute(q) for q in workload.values()]
    report("E8: warehouse baseline", [
        {"metric": "exported triples", "value": stats.exported_triples},
        {"metric": "export time (s)", "value": round(export_seconds, 3)},
        {"metric": "answers identical to mediator", "value":
            all({tuple(sorted(r.items())) for r in w.rows} ==
                {tuple(sorted(r.items())) for r in m.rows}
                for w, m in zip(results, mediator_results))},
    ])
    assert stats.exported_triples > len(demo_small.instance.graph)
