"""Concurrent serving: throughput and latency vs worker count.

The mediator's sources are remote systems in the paper's deployment —
every sub-query is a network round trip.  This bench wraps each source
in a :class:`LatencySource` simulating that round-trip delay, then
drives a **mixed read/write workload** through the
:class:`~repro.service.MediatorService`: reader clients submit CMQs
spanning all four models while a writer keeps mutating every store
(forcing fresh snapshot pins along the way).  Measured per worker
count: query throughput and p50/p95 end-to-end latency.

Run as a script (``python bench_service_concurrency.py [--smoke]``) it
writes ``BENCH_service.json`` to the repo root; the full run asserts
the ≥3x throughput target at 8 workers vs 1.
"""

from __future__ import annotations

import json
import statistics
import sys
import threading
import time
from pathlib import Path

from repro.core import MixedInstance
from repro.core.sources import DataSource
from repro.fulltext.store import FieldConfig, FullTextStore
from repro.json.store import JSONDocumentStore
from repro.rdf import Graph, triple
from repro.relational import Database
from repro.service import MediatorService, ServiceConfig

try:  # pytest import path (benchmarks/conftest.py) vs script execution
    from conftest import report
except ImportError:  # pragma: no cover - script mode
    def report(title, rows, columns=None):
        print(f"\n[{title}]")
        for row in rows:
            print("  " + " | ".join(f"{k}={v}" for k, v in row.items()))

HANDLES = [f"u{i}" for i in range(8)]
TOPICS = ["politics", "sports", "culture"]

#: Simulated source round-trip (seconds); one per mediator call, so a
#: batched bind join pays it once per batch, like the real wrappers.
LATENCY = 0.008


class LatencySource(DataSource):
    """Delegating wrapper adding a per-call network round-trip delay."""

    def __init__(self, inner: DataSource, delay: float = LATENCY):
        super().__init__(inner.uri, name=inner.name, description=inner.description)
        self.inner = inner
        self.delay = delay
        self.model = inner.model

    def execute(self, query, bindings=None):
        time.sleep(self.delay)
        return self.inner.execute(query, bindings)

    def execute_batch(self, query, bindings_batch):
        time.sleep(self.delay)
        return self.inner.execute_batch(query, bindings_batch)

    def estimate(self, query, bound_variables=None):
        return self.inner.estimate(query, bound_variables)

    def version(self):
        return self.inner.version()

    def size(self):
        return self.inner.size()

    def pin(self):
        if self.pinned_at is not None:
            return self
        pinned_inner = self.inner.pin()
        version = pinned_inner.version()
        return self._memoized_pin(
            version, lambda: LatencySource(pinned_inner, self.delay))


def build_instance() -> MixedInstance:
    glue = Graph("bench-glue")
    for i, handle in enumerate(HANDLES):
        glue.add(triple(f"ttn:P{i}", "ttn:twitterAccount", handle))
        glue.add(triple(f"ttn:P{i}", "ttn:memberOf", f"ttn:PARTY{i % 3}"))
    database = Database("bench-db")
    database.create_table_from_rows(
        "profiles", [{"handle": handle, "followers": 100 * (i + 1)}
                     for i, handle in enumerate(HANDLES)])
    store = FullTextStore("bench-posts", fields=[
        FieldConfig("text", "text"),
        FieldConfig("user.screen_name", "keyword"),
    ], default_field="text")
    documents = JSONDocumentStore("bench-tweets")
    for i in range(48):
        handle = HANDLES[i % len(HANDLES)]
        topic = TOPICS[i % len(TOPICS)]
        store.add({"id": i, "text": f"post about {topic} by {handle}",
                   "user": {"screen_name": handle}})
        documents.add({"id": i, "author": handle, "topic": topic,
                       "likes": (i * 7) % 40})
    # cache=False: the bench measures dispatch concurrency, not the
    # result cache (bench_caching covers that axis).
    instance = MixedInstance(graph=glue, name="bench-service",
                             entailment=False, cache=False)
    instance.register(LatencySource(
        instance.register_relational("sql://profiles", database)))
    instance.register(LatencySource(
        instance.register_fulltext("solr://posts", store)))
    instance.register(LatencySource(
        instance.register_json("json://tweets", documents)))
    return instance


def workload(instance: MixedInstance) -> list:
    """Mixed CMQs: every query joins the glue graph with a remote source."""
    queries = []
    for topic in TOPICS:
        builder = instance.builder(f"w_sql_{topic}")
        builder.graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
        builder.sql("prof", source="sql://profiles",
                    sql="SELECT handle AS id, followers AS f FROM profiles "
                        "WHERE handle = {id}")
        queries.append(builder.build())
        builder = instance.builder(f"w_json_{topic}")
        builder.graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
        builder.json("tweets", source="json://tweets",
                     pattern=f'{{ author: ?id, topic: "{topic}", likes: ?l }}')
        queries.append(builder.build())
    builder = instance.builder("w_posts")
    builder.graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
    builder.fulltext("posts", source="solr://posts",
                     query="user.screen_name:{id}",
                     fields={"t": "text", "id": "user.screen_name"})
    queries.append(builder.build())
    return queries


class Writer:
    """Mutates all four stores for the duration of one measurement."""

    def __init__(self, instance: MixedInstance, period: float = 0.005):
        self.instance = instance
        self.period = period
        self.stop = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)
        self.mutations = 0

    def _run(self) -> None:
        graph = self.instance.glue_source
        table = self.instance.source("sql://profiles").inner.database.table("profiles")
        posts = self.instance.source("solr://posts").inner.store
        tweets = self.instance.source("json://tweets").inner.store
        tick = 0
        while not self.stop.is_set():
            tick += 1
            handle = f"w{tick}"
            kind = tick % 4
            if kind == 0:
                graph.add_triples(
                    [triple(f"ttn:W{tick}", "ttn:twitterAccount", handle)])
            elif kind == 1:
                table.insert({"handle": handle, "followers": tick})
            elif kind == 2:
                posts.add({"id": f"w{tick}", "text": "delta post about politics",
                           "user": {"screen_name": handle}})
            else:
                tweets.add({"id": f"w{tick}", "author": handle,
                            "topic": "politics", "likes": tick % 40})
            self.mutations += 1
            time.sleep(self.period)

    def __enter__(self) -> "Writer":
        self.thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop.set()
        self.thread.join(timeout=10)


def measure(workers: int, total_queries: int) -> dict[str, object]:
    """One mixed read/write measurement at a given worker count."""
    instance = build_instance()
    queries = workload(instance)
    config = ServiceConfig(workers=workers, max_queue_depth=total_queries + 8,
                           max_in_flight=total_queries + 16,
                           dispatch_workers=4, task_workers=4)
    with MediatorService(instance, config) as service, Writer(instance):
        start = time.perf_counter()
        tickets = [service.submit(queries[i % len(queries)])
                   for i in range(total_queries)]
        for ticket in tickets:
            ticket.result(timeout=300)
        wall = time.perf_counter() - start
    latencies = sorted(t.latency for t in tickets)
    p50 = statistics.median(latencies)
    p95 = latencies[min(len(latencies) - 1, int(0.95 * len(latencies)))]
    return {
        "workers": workers,
        "queries": total_queries,
        "wall_seconds": round(wall, 4),
        "throughput_qps": round(total_queries / wall, 2),
        "p50_ms": round(p50 * 1000, 2),
        "p95_ms": round(p95 * 1000, 2),
    }


def run(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    total_queries = 24 if smoke else 80
    worker_counts = [1, 8] if smoke else [1, 2, 4, 8]

    series = [measure(workers, total_queries) for workers in worker_counts]
    report("service concurrency (mixed read/write workload)", series)

    by_workers = {row["workers"]: row for row in series}
    speedup = (by_workers[8]["throughput_qps"] / by_workers[1]["throughput_qps"]
               if 8 in by_workers and 1 in by_workers else None)
    payload = {
        "benchmark": "service_concurrency",
        "smoke": smoke,
        "latency_per_call_seconds": LATENCY,
        "series": series,
        "speedup_8_vs_1": round(speedup, 2) if speedup is not None else None,
    }
    print(f"\nthroughput speedup at 8 workers vs 1: {payload['speedup_8_vs_1']}x")
    if not smoke and speedup is not None:
        assert speedup >= 3.0, (
            f"expected >= 3x throughput at 8 workers vs 1, got {speedup:.2f}x")

    out_path = Path(__file__).resolve().parents[1] / "BENCH_service.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")
    return 0


# ---------------------------------------------------------------------------
# pytest entry point (smoke-sized)
# ---------------------------------------------------------------------------

def test_service_scales_with_workers():
    """More workers → more throughput on the latency-bound mixed workload."""
    one = measure(1, 16)
    eight = measure(8, 16)
    assert eight["throughput_qps"] > one["throughput_qps"] * 1.5


if __name__ == "__main__":
    sys.exit(run(sys.argv[1:]))
