"""E14: cost-based plan search and adaptive re-planning.

Two scenarios on skewed multi-model workloads:

* **skewed join order** — a relational atom whose WHERE hits a heavily
  skewed value (`topic = 'politics'` matches 90% of the table).  The
  greedy pass trusts the wrapper's ad-hoc ``rows/10`` guess, orders the
  SQL atom first and ships the whole skewed result; the cost-based
  planner prices the same atom from the column's top-k summary, starts
  from the small glue graph instead and ships an order of magnitude
  fewer rows.  Measured: total rows shipped by each plan (identical
  result sets asserted).
* **adaptive recovery** — a source wrapper advertises a deliberately
  wrong cardinality (10 instead of thousands).  Planned statically, the
  mis-estimate puts a per-binding full-text search in front of the
  selective filter and the query pays thousands of text searches.  With
  adaptivity on, the executor observes the estimate-vs-actual gap after
  the first step, records feedback and re-plans the tail — landing
  within the acceptance bound of the oracle plan built from truthful
  statistics.  Measured: wall time of misplanned / adaptive / oracle
  runs (identical result sets asserted).

Run as a script (``python bench_optimizer.py [--smoke]``) it writes
``BENCH_planner.json`` to the repo root for trajectory tracking; under
pytest the same scenarios run as assertions.
"""

from __future__ import annotations

import json
import statistics
import sys
import time
from pathlib import Path

from repro.core import MixedInstance, PlannerOptions
from repro.core.sources import RelationalSource
from repro.fulltext.store import FieldConfig, FullTextStore
from repro.rdf import Graph, triple
from repro.relational import Database

try:  # pytest import path (benchmarks/conftest.py) vs script execution
    from conftest import report
except ImportError:  # pragma: no cover - script mode
    def report(title, rows, columns=None):
        print(f"\n[{title}]")
        for row in rows:
            print("  " + " | ".join(f"{k}={v}" for k, v in row.items()))

GREEDY = PlannerOptions(cost_based=False, adaptive=False,
                        result_cache=False, plan_cache=False)
COST_BASED = PlannerOptions(cost_based=True, adaptive=False,
                            result_cache=False, plan_cache=False)
ADAPTIVE = PlannerOptions(cost_based=True, adaptive=True,
                          result_cache=False, plan_cache=False)


# ---------------------------------------------------------------------------
# Scenario 1: skewed join order (greedy vs cost-based shipped rows)
# ---------------------------------------------------------------------------

def build_skew_instance(posts: int, glue_authors: int) -> MixedInstance:
    """Glue member graph + a posts table whose topic column is skewed."""
    shared = max(1, glue_authors // 10)
    database = Database("posts-db")
    rows = []
    politics = int(posts * 0.9)
    for i in range(posts):
        if i < politics:
            # 90% of the table is 'politics'; every tenth row belongs to
            # an author the glue graph knows, the rest are strangers.
            author = (f"auth:a{i % shared}" if i % 10 == 0
                      else f"auth:b{i % (7 * glue_authors)}")
            topic = "politics"
        else:
            author = f"auth:c{i}"
            topic = f"niche{i % 25}"
        rows.append({"author": author, "topic": topic})
    database.create_table_from_rows("posts", rows)
    glue = Graph("members")
    for i in range(glue_authors):
        glue.add(triple(f"auth:a{i}", "ttn:memberOf", f"ttn:party{i % 5}"))
    instance = MixedInstance(graph=glue, name="skew", entailment=False, cache=False)
    instance.register_relational("sql://posts", database)
    return instance


def skew_cmq(instance: MixedInstance):
    return (instance.builder("qSkew", head=["a", "p"])
            .graph("SELECT ?a ?p WHERE { ?a ttn:memberOf ?p }")
            .sql("politicsPosts", source="sql://posts",
                 sql="SELECT author AS a FROM posts WHERE topic = 'politics'")
            .build())


def run_skewed_join_order(posts: int, glue_authors: int) -> dict:
    instance = build_skew_instance(posts, glue_authors)
    cmq = skew_cmq(instance)

    greedy = instance.execute(cmq, options=GREEDY)
    cost_based = instance.execute(cmq, options=COST_BASED)
    assert sorted(map(str, greedy.rows)) == sorted(map(str, cost_based.rows)), \
        "cost-based plan diverged from the greedy plan's answers"

    greedy_rows = greedy.trace.total_rows_fetched()
    cost_rows = cost_based.trace.total_rows_fetched()
    ratio = greedy_rows / max(1, cost_rows)
    report(f"E14: skewed join order, {posts} posts", [
        {"planner": "greedy (ad-hoc estimates)", "first atom": greedy.trace.atom_order[0],
         "rows shipped": greedy_rows, "answers": len(greedy)},
        {"planner": "cost-based (top-k skew)", "first atom": cost_based.trace.atom_order[0],
         "rows shipped": cost_rows, "answers": len(cost_based)},
        {"planner": "shipped-rows ratio", "first atom": "",
         "rows shipped": round(ratio, 1), "answers": ""},
    ])
    return {"posts": posts, "glue_authors": glue_authors,
            "greedy_rows_shipped": greedy_rows,
            "cost_based_rows_shipped": cost_rows,
            "greedy_order": greedy.trace.atom_order,
            "cost_based_order": cost_based.trace.atom_order,
            "shipped_rows_ratio": ratio}


# ---------------------------------------------------------------------------
# Scenario 2: adaptive recovery from a deliberately wrong estimate
# ---------------------------------------------------------------------------

class LyingSource(RelationalSource):
    """Advertises ~10 rows whatever the sub-query really returns."""

    trust_wrapper_estimate = True

    def estimate(self, query, bound_variables=None):
        return 10.0


def build_adaptive_instance(handles: int, vip: int, lying: bool) -> MixedInstance:
    posts = Database("posts-db")
    posts.create_table_from_rows(
        "posts", [{"h": f"u{i:05d}"} for i in range(handles)])
    vip_db = Database("vip-db")
    vip_db.create_table_from_rows(
        "vip", [{"h": f"u{i:05d}", "r": i} for i in range(vip)])
    store = FullTextStore("wire", fields=[FieldConfig("text", "text")],
                          default_field="text")
    for i in range(handles):
        # The handle is the only token, so each binding's search is a
        # genuine per-binding index round trip (no disjunctive rewrite
        # for analysed fields) and the average df is exactly 1.
        store.add({"id": i, "text": f"u{i:05d}"})
    instance = MixedInstance(name="adaptive-bench", cache=False)
    wrapper = (LyingSource if lying else RelationalSource)("sql://posts", posts)
    instance.register(wrapper)
    instance.register_relational("sql://vip", vip_db)
    instance.register_fulltext("solr://wire", store)
    return instance


def adaptive_cmq(instance: MixedInstance):
    # Body order matters for the tie-break: under the lying cardinality
    # the full-text and VIP tails price within noise of each other, and
    # the mis-plan settles on the full-text atom first.
    return (instance.builder("qWire", head=["h", "t", "r"])
            .sql("allPosts", source="sql://posts",
                 sql="SELECT h AS h FROM posts")
            .fulltext("wire", source="solr://wire", query="text:{h}",
                      fields={"t": "text"})
            .sql("vipRank", source="sql://vip",
                 sql="SELECT h AS h, r AS r FROM vip")
            .build())


def timed_run(instance, cmq, options, repeats: int):
    results, seconds = [], []
    for _ in range(repeats):
        start = time.perf_counter()
        result = instance.execute(cmq, options=options)
        seconds.append(time.perf_counter() - start)
        results.append(result)
    return results[-1], statistics.median(seconds)


def run_adaptive_recovery(handles: int, vip: int, repeats: int) -> dict:
    # Separate instances per strategy: feedback recorded by the adaptive
    # run must not leak into the misplanned baseline, and the oracle gets
    # a truthful wrapper from the start.
    misplanned_inst = build_adaptive_instance(handles, vip, lying=True)
    oracle_inst = build_adaptive_instance(handles, vip, lying=False)

    misplanned, misplanned_seconds = timed_run(
        misplanned_inst, adaptive_cmq(misplanned_inst), COST_BASED, repeats)
    oracle, oracle_seconds = timed_run(
        oracle_inst, adaptive_cmq(oracle_inst), COST_BASED, repeats)
    # The adaptive run replans on its first, cold execution (recording
    # feedback) — that cold recovery is the claim being measured, so
    # every repetition gets a fresh instance with no prior feedback.
    adaptive_runs = []
    for _ in range(repeats):
        inst = build_adaptive_instance(handles, vip, lying=True)
        start = time.perf_counter()
        result = inst.execute(adaptive_cmq(inst), options=ADAPTIVE)
        adaptive_runs.append((result, time.perf_counter() - start))
    adaptive = adaptive_runs[-1][0]
    adaptive_seconds = statistics.median(seconds for _, seconds in adaptive_runs)

    expected = sorted(map(str, oracle.rows))
    assert sorted(map(str, misplanned.rows)) == expected
    assert sorted(map(str, adaptive.rows)) == expected
    assert adaptive.trace.replanned, "the adaptive run never re-planned"

    recovery = adaptive_seconds / max(1e-9, oracle_seconds)
    report(f"E14: adaptive recovery, {handles} handles", [
        {"strategy": "misplanned (static, lying estimate)",
         "seconds": misplanned_seconds,
         "searches": misplanned.trace.total_rows_fetched()},
        {"strategy": "adaptive (replans mid-flight)", "seconds": adaptive_seconds,
         "searches": adaptive.trace.total_rows_fetched()},
        {"strategy": "oracle (truthful statistics)", "seconds": oracle_seconds,
         "searches": oracle.trace.total_rows_fetched()},
        {"strategy": "adaptive vs oracle", "seconds": round(recovery, 2),
         "searches": ""},
    ])
    return {"handles": handles, "vip": vip,
            "misplanned_seconds": misplanned_seconds,
            "adaptive_seconds": adaptive_seconds,
            "oracle_seconds": oracle_seconds,
            "misplanned_order": misplanned.trace.atom_order,
            "adaptive_replans": adaptive.trace.replans,
            "adaptive_vs_oracle": recovery,
            "misplanned_vs_oracle": misplanned_seconds / max(1e-9, oracle_seconds)}


# ---------------------------------------------------------------------------
# pytest entry points (smoke-sized)
# ---------------------------------------------------------------------------

def test_cost_based_plan_ships_fewer_rows():
    outcome = run_skewed_join_order(posts=2000, glue_authors=300)
    assert outcome["shipped_rows_ratio"] >= 2.0
    assert outcome["cost_based_order"][0] == "qG"


def test_adaptive_replanning_recovers_misplan():
    outcome = run_adaptive_recovery(handles=1200, vip=100, repeats=3)
    assert outcome["adaptive_replans"] >= 1
    # 50ms absolute slack absorbs scheduler noise on loaded machines; it
    # is an order of magnitude below the misplanned run's overhead.
    assert (outcome["adaptive_seconds"]
            <= 1.5 * outcome["oracle_seconds"] + 0.05)
    assert outcome["misplanned_seconds"] > outcome["adaptive_seconds"]


# ---------------------------------------------------------------------------
# Script mode: the trajectory runner
# ---------------------------------------------------------------------------

def main(argv: list[str]) -> None:
    smoke = "--smoke" in argv
    posts = 2000 if smoke else 6000
    glue_authors = 300 if smoke else 800
    handles = 1500 if smoke else 4000
    vip = 150 if smoke else 400
    repeats = 3 if smoke else 5

    payload = {"benchmark": "optimizer", "smoke": smoke}
    payload["skewed_join_order"] = run_skewed_join_order(posts, glue_authors)
    payload["adaptive_recovery"] = run_adaptive_recovery(handles, vip, repeats)

    ratio = payload["skewed_join_order"]["shipped_rows_ratio"]
    recovery = payload["adaptive_recovery"]["adaptive_vs_oracle"]
    misplan = payload["adaptive_recovery"]["misplanned_vs_oracle"]
    print(f"\ncost-based vs greedy shipped rows: {ratio:6.1f}x (target >= 2x)")
    print(f"adaptive runtime vs oracle:        {recovery:6.2f}x (target <= 1.5x)")
    print(f"misplanned runtime vs oracle:      {misplan:6.2f}x")
    assert ratio >= 2.0, \
        f"cost-based plan only saved {ratio:.1f}x shipped rows (need >= 2x)"
    adaptive_seconds = payload["adaptive_recovery"]["adaptive_seconds"]
    oracle_seconds = payload["adaptive_recovery"]["oracle_seconds"]
    assert adaptive_seconds <= 1.5 * oracle_seconds + 0.05, \
        f"adaptive run {recovery:.2f}x oracle runtime (need <= 1.5x)"

    out_path = Path(__file__).resolve().parents[1] / "BENCH_planner.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")


if __name__ == "__main__":
    main(sys.argv[1:])
