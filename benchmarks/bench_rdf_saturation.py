"""E10 (§2.1): RDFS saturation cost and answer completeness.

Measures the cost of computing G∞ for growing glue graphs and the number of
answers gained by querying the saturation instead of the explicit triples
(the paper's BGP *answers* are defined over G∞).
"""

from __future__ import annotations

import pytest
from conftest import report

from repro.datasets import generate_landscape
from repro.rdf import BGPQuery, evaluate_bgp, saturate

_SIZES = [20, 60, 150]
_LANDSCAPES = {size: generate_landscape(count=size, seed=11) for size in _SIZES}

_TYPE_QUERY = BGPQuery.create(head=["x"], patterns=[("?x", "rdf:type", "ttn:person")])
_AFFILIATION_QUERY = BGPQuery.create(head=["x", "y"],
                                     patterns=[("?x", "ttn:affiliatedWith", "?y")])


@pytest.mark.parametrize("size", _SIZES)
def test_saturation_cost(benchmark, size):
    """Saturation time and the number of implicit triples derived."""
    graph = _LANDSCAPES[size].graph
    saturated, stats = benchmark(lambda: saturate(graph))
    report(f"E10: saturation of {size}-politician glue graph", [{
        "politicians": size,
        "explicit triples": stats.explicit_triples,
        "implicit triples": stats.implicit_triples,
        "rounds": stats.rounds,
    }])
    assert stats.implicit_triples > 0


@pytest.mark.parametrize("size", [60])
def test_answer_completeness(benchmark, size):
    """Answers over G vs over G∞ for typing and sub-property queries."""
    graph = _LANDSCAPES[size].graph
    saturated, _ = saturate(graph)

    def query_both():
        return (evaluate_bgp(_TYPE_QUERY, graph), evaluate_bgp(_TYPE_QUERY, saturated),
                evaluate_bgp(_AFFILIATION_QUERY, graph),
                evaluate_bgp(_AFFILIATION_QUERY, saturated))

    plain_type, full_type, plain_aff, full_aff = benchmark(query_both)
    report("E10: answers on G vs G∞", [
        {"query": "?x rdf:type ttn:person", "on G": len(plain_type), "on G∞": len(full_type)},
        {"query": "?x ttn:affiliatedWith ?y", "on G": len(plain_aff), "on G∞": len(full_aff)},
    ])
    assert len(full_type) > len(plain_type)
    assert len(full_aff) > len(plain_aff)
