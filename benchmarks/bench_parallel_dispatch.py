"""E11 (§2.3): parallel vs sequential dispatch of independent sub-queries.

In the real system each sub-query is a network round trip to a remote
source; here sources are in-process, so a wrapper adds a fixed per-call
latency (20 ms) to model that round trip, and the bench compares wall-clock
time with parallel stages enabled and disabled.  Expected shape: with N
independent sub-queries, the parallel strategy approaches max(latency)
instead of sum(latency).
"""

from __future__ import annotations

import time

from conftest import report

from repro.baselines import sequential_options, tatooine_options
from repro.core import MixedQueryExecutor
from repro.core.sources import DataSource

_LATENCY_SECONDS = 0.02


class _DelayedSource(DataSource):
    """Decorates a wrapped source with a fixed per-call network latency."""

    def __init__(self, inner: DataSource, latency: float = _LATENCY_SECONDS):
        super().__init__(inner.uri, inner.name, inner.description)
        self._inner = inner
        self._latency = latency
        self.model = inner.model

    def execute(self, query, bindings=None):
        time.sleep(self._latency)
        return self._inner.execute(query, bindings)

    def estimate(self, query, bound_variables=None):
        return self._inner.estimate(query, bound_variables)

    def accepts(self, query):
        return self._inner.accepts(query)

    def size(self):
        return self._inner.size()


def _delayed_executor(demo, options):
    instance = demo.instance
    sources = {uri: _DelayedSource(instance.source(uri)) for uri in instance.source_uris()}
    return MixedQueryExecutor(sources, instance.glue_source, options=options, max_workers=4)


def _independent_query(demo):
    """Three sub-queries on three different sources, none depending on another."""
    return (demo.instance.builder("panorama", head=["name", "t", "rate"])
            .graph("SELECT ?name WHERE { ?x ttn:position ttn:headOfState . "
                   "?x foaf:name ?name }")
            .fulltext("tweets", source="solr://tweets", query="entities.hashtags:sia2016",
                      fields={"t": "text"})
            .sql("stats", source="sql://insee",
                 sql="SELECT AVG(rate) AS rate FROM unemployment WHERE year = 2015")
            .build())


def test_parallel_dispatch(benchmark, demo_small):
    """Wall-clock with parallel stages (independent sub-queries overlap)."""
    executor = _delayed_executor(demo_small, tatooine_options())
    query = _independent_query(demo_small)
    result = benchmark(lambda: executor.execute(query))
    assert len(result) >= 1


def test_sequential_dispatch(benchmark, demo_small):
    """Wall-clock with sequential dispatch (sub-query latencies add up)."""
    executor = _delayed_executor(demo_small, sequential_options())
    query = _independent_query(demo_small)
    result = benchmark(lambda: executor.execute(query))
    assert len(result) >= 1


def test_parallel_speedup_summary(benchmark, demo_small):
    """The headline E11 series: measured wall-clock for both strategies."""
    query = _independent_query(demo_small)

    def sweep():
        timings = {}
        answers = {}
        for label, options in (("parallel", tatooine_options()),
                               ("sequential", sequential_options())):
            executor = _delayed_executor(demo_small, options)
            start = time.perf_counter()
            result = executor.execute(query)
            timings[label] = time.perf_counter() - start
            answers[label] = {tuple(sorted(r.items())) for r in result.rows}
        return timings, answers

    timings, answers = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report("E11: parallel vs sequential dispatch (3 independent sub-queries, "
           f"{int(_LATENCY_SECONDS * 1000)} ms simulated latency each)", [
        {"strategy": label, "wall-clock (ms)": round(seconds * 1000, 1)}
        for label, seconds in timings.items()
    ])
    assert answers["parallel"] == answers["sequential"]
    assert timings["parallel"] < timings["sequential"]
