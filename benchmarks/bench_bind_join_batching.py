"""E12: batched bind joins — source calls and wall time vs batch size.

The classic mediator bottleneck: a bind join with a large intermediate
result re-issues one sub-query per distinct binding.  This benchmark
builds a bind-join-heavy CMQ with >= 1k intermediate bindings and
measures, per strategy (per-binding, batched at several batch sizes,
batched + digest sieve):

* the number of ``SubQueryCall``s shipped to the sources,
* wall-clock time,
* result-set equality against the per-binding reference.

Run as a script (``python bench_bind_join_batching.py [--smoke]``) it
also writes ``BENCH_executor.json`` to the repo root for trajectory
tracking; under pytest the same scenarios run as assertions.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.core import MixedInstance, PlannerOptions
from repro.fulltext.store import FieldConfig, FullTextStore
from repro.rdf import Graph, triple
from repro.relational import Database

try:  # pytest import path (benchmarks/conftest.py) vs script execution
    from conftest import report
except ImportError:  # pragma: no cover - script mode
    def report(title, rows, columns=None):
        print(f"\n[{title}]")
        for row in rows:
            print("  " + " | ".join(f"{k}={v}" for k, v in row.items()))

#: Departments that exist in the relational source (the sieve keeps these).
KNOWN_DEPTS = [f"{code:02d}" for code in range(1, 31)]


def build_bench_instance(accounts: int = 1200) -> MixedInstance:
    """A mixed instance whose qG produces ``accounts`` distinct bindings.

    * glue graph: one politician per account with a twitter handle and a
      department code (two thirds of the codes do not exist in the
      relational source, so the digest sieve has something to prove);
    * relational source: an ``accounts`` table keyed by handle;
    * full-text source: one profile document per handle.
    """
    glue = Graph("bench-glue")
    database = Database("bench-accounts")
    rows = []
    documents = []
    for i in range(accounts):
        handle = f"user{i:05d}"
        dept = KNOWN_DEPTS[i % len(KNOWN_DEPTS)] if i % 3 == 0 else f"X{i:05d}"
        glue.add(triple(f"ttn:P{i}", "ttn:twitterAccount", handle))
        glue.add(triple(f"ttn:P{i}", "ttn:deptCode", dept))
        rows.append({"handle": handle, "followers": (i * 37) % 10_000,
                     "dept": KNOWN_DEPTS[i % len(KNOWN_DEPTS)]})
        documents.append({"id": i, "text": f"profile of {handle}",
                          "user": {"screen_name": handle}})
    database.create_table_from_rows("accounts", rows)
    store = FullTextStore("bench-profiles", fields=[
        FieldConfig("text", "text"),
        FieldConfig("user.screen_name", "keyword"),
    ], default_field="text")
    store.add_all(documents)

    # Caching off: this benchmark measures *batching*, and the default
    # cross-query result cache would serve every strategy after the first
    # from warm entries (see bench_caching.py for the caching numbers).
    instance = MixedInstance(graph=glue, name="bench-batching", entailment=False,
                             cache=False)
    instance.register_relational("sql://accounts", database)
    instance.register_fulltext("solr://profiles", store)
    return instance


def sql_query(instance: MixedInstance):
    """qG (all accounts) |> SQL bind atom with an IN-rewritable placeholder."""
    return (instance.builder("qAccounts", head=["id", "f"])
            .graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
            .sql("followers", source="sql://accounts",
                 sql="SELECT handle AS id, followers AS f FROM accounts "
                     "WHERE handle = {id}")
            .build())


def fulltext_query(instance: MixedInstance):
    """qG |> full-text bind atom answered by one disjunctive search per batch."""
    return (instance.builder("qProfiles", head=["id", "t"])
            .graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
            .fulltext("profile", source="solr://profiles",
                      query="user.screen_name:{id}",
                      fields={"t": "text", "id": "user.screen_name"})
            .build())


def sieve_query(instance: MixedInstance):
    """qG (dept codes, mostly absent from the source) |> SQL bind atom."""
    return (instance.builder("qDepts", head=["dept", "f"])
            .graph("SELECT ?dept WHERE { ?x ttn:deptCode ?dept }")
            .sql("byDept", source="sql://accounts",
                 sql="SELECT dept AS dept, followers AS f FROM accounts "
                     "WHERE dept = {dept}")
            .build())


def run_strategies(instance, cmq, digests=None, batch_sizes=(64, 256, 1024)):
    """Evaluate one CMQ under every strategy; return comparable measurements."""
    measurements = []

    def run(label, options, digests=None):
        start = time.perf_counter()
        result = instance.execute(cmq, options=options, digests=digests)
        elapsed = time.perf_counter() - start
        measurements.append({
            "strategy": label,
            "source calls": len(result.trace.calls),
            "rows fetched": result.trace.total_rows_fetched(),
            "sieved": result.trace.sieved_bindings,
            "seconds": elapsed,
            "answers": len(result),
            "_rows": sorted(map(str, result.rows)),
        })

    run("per-binding", PlannerOptions(batch_bind_joins=False))
    for size in batch_sizes:
        run(f"batched({size})", PlannerOptions(bind_batch_size=size))
    if digests is not None:
        run("batched+sieve", PlannerOptions(), digests=digests)

    reference = measurements[0]["_rows"]
    for measurement in measurements[1:]:
        assert measurement["_rows"] == reference, \
            f"{measurement['strategy']} diverged from the per-binding engine"
    for measurement in measurements:
        del measurement["_rows"]
    return measurements


# ---------------------------------------------------------------------------
# pytest entry points
# ---------------------------------------------------------------------------

def test_sql_bind_join_batching():
    instance = build_bench_instance(accounts=1200)
    cmq = sql_query(instance)
    measurements = run_strategies(instance, cmq)
    report("E12: SQL bind join, 1200 bindings", measurements)
    per_binding = measurements[0]
    assert per_binding["source calls"] >= 1200
    for measurement in measurements[1:]:
        assert measurement["source calls"] * 5 <= per_binding["source calls"]


def test_fulltext_bind_join_batching():
    instance = build_bench_instance(accounts=1000)
    cmq = fulltext_query(instance)
    measurements = run_strategies(instance, cmq, batch_sizes=(256,))
    report("E12: full-text bind join, 1000 bindings", measurements)
    assert measurements[1]["source calls"] * 5 <= measurements[0]["source calls"]


def test_digest_sieve_prunes_bindings():
    instance = build_bench_instance(accounts=900)
    digests = instance.build_digests()
    cmq = sieve_query(instance)
    measurements = run_strategies(instance, cmq, digests=digests, batch_sizes=(256,))
    report("E12: digest sieve", measurements)
    sieved = measurements[-1]
    assert sieved["strategy"] == "batched+sieve"
    assert sieved["sieved"] > 0


# ---------------------------------------------------------------------------
# Script mode: the trajectory runner
# ---------------------------------------------------------------------------

def main(argv: list[str]) -> None:
    smoke = "--smoke" in argv
    accounts = 300 if smoke else 1500
    instance = build_bench_instance(accounts=accounts)
    digests = instance.build_digests()

    payload = {"benchmark": "bind_join_batching", "accounts": accounts,
               "smoke": smoke, "scenarios": {}}
    for name, cmq, extra in [
        ("sql", sql_query(instance), {}),
        ("fulltext", fulltext_query(instance), {"batch_sizes": (256,)}),
        ("sieve", sieve_query(instance), {"digests": digests,
                                          "batch_sizes": (256,)}),
    ]:
        measurements = run_strategies(instance, cmq, **extra)
        report(f"bind join batching [{name}]", measurements)
        payload["scenarios"][name] = measurements
        per_binding = measurements[0]
        best = min(measurements[1:], key=lambda m: m["source calls"])
        payload["scenarios"][name + "_summary"] = {
            "call_reduction": per_binding["source calls"] / max(1, best["source calls"]),
            "speedup": per_binding["seconds"] / max(1e-9, best["seconds"]),
        }

    out_path = Path(__file__).resolve().parents[1] / "BENCH_executor.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {out_path}")


if __name__ == "__main__":
    main(sys.argv[1:])
