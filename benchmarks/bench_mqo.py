"""Multi-query optimization: shared sub-plans vs the per-query path.

The paper's mediator serves many journalists asking near-identical
questions about the same live stores.  This bench models that load: a
**capacity-constrained remote source** (one request at a time, a fixed
round-trip delay — rate limits and connection pools make real wrappers
behave this way) under an **80%-overlapping workload** — four out of
five submissions are the same hot CMQ, the rest rotate through distinct
shapes — while a writer keeps mutating every store so the cross-version
result cache cannot hide the source calls.

Measured: throughput with MQO on (group admission + single-flight
shared sub-plans + cross-query probe fusion) vs ``ServiceConfig(mqo=
False)`` (the old per-query path), plus a thundering-herd burst of
identical queries asserting the shared sub-plan hits the source
**exactly once** (via source call counters).

Run as a script (``python bench_mqo.py [--smoke]``) it writes
``BENCH_mqo.json`` to the repo root; the full run asserts the >= 3x
throughput target.
"""

from __future__ import annotations

import json
import sys
import threading
import time
from pathlib import Path

from repro.core import MixedInstance
from repro.core.sources import DataSource
from repro.fulltext.store import FieldConfig, FullTextStore
from repro.json.store import JSONDocumentStore
from repro.rdf import Graph, triple
from repro.relational import Database
from repro.service import MediatorService, ServiceConfig

try:  # pytest import path (benchmarks/conftest.py) vs script execution
    from conftest import report
except ImportError:  # pragma: no cover - script mode
    def report(title, rows, columns=None):
        print(f"\n[{title}]")
        for row in rows:
            print("  " + " | ".join(f"{k}={v}" for k, v in row.items()))

HANDLES = [f"u{i}" for i in range(8)]
TOPICS = ["politics", "sports", "culture"]

#: Simulated source round-trip (seconds per call).
LATENCY = 0.04
#: Fraction of submissions that are the hot query.
HOT_FRACTION = 0.8


class CallCounters:
    def __init__(self):
        self.lock = threading.Lock()
        self.calls: dict[str, int] = {}

    def total(self) -> int:
        with self.lock:
            return sum(self.calls.values())


class ConstrainedSource(DataSource):
    """Delegating wrapper: counted calls, fixed delay, capacity one.

    The per-source gate is the point of the bench — a saved source call
    is saved *capacity*, not just saved latency, so redundant probes
    from overlapping queries queue up behind each other exactly like
    they would against a rate-limited remote API.
    """

    def __init__(self, inner: DataSource, counters: CallCounters,
                 delay: float = LATENCY, gate: threading.Lock | None = None):
        super().__init__(inner.uri, name=inner.name,
                         description=inner.description)
        self.inner = inner
        self.counters = counters
        self.delay = delay
        self.gate = gate if gate is not None else threading.Lock()
        self.model = inner.model

    def _call(self):
        with self.counters.lock:
            self.counters.calls[self.uri] = self.counters.calls.get(self.uri, 0) + 1

    def execute(self, query, bindings=None):
        with self.gate:
            self._call()
            time.sleep(self.delay)
            return self.inner.execute(query, bindings)

    def execute_batch(self, query, bindings_batch):
        with self.gate:
            self._call()
            time.sleep(self.delay)
            return self.inner.execute_batch(query, bindings_batch)

    def estimate(self, query, bound_variables=None):
        return self.inner.estimate(query, bound_variables)

    def version(self):
        return self.inner.version()

    def size(self):
        return self.inner.size()

    def pin(self):
        if self.pinned_at is not None:
            return self
        pinned_inner = self.inner.pin()
        # Share the gate and the counters: pinning a snapshot does not
        # conjure up extra capacity at the remote system.
        return self._memoized_pin(
            pinned_inner.version(),
            lambda: ConstrainedSource(pinned_inner, self.counters,
                                      self.delay, self.gate))


def build_instance(counters: CallCounters,
                   delay: float = LATENCY) -> MixedInstance:
    glue = Graph("mqo-glue")
    for i, handle in enumerate(HANDLES):
        glue.add(triple(f"ttn:P{i}", "ttn:twitterAccount", handle))
        glue.add(triple(f"ttn:P{i}", "ttn:memberOf", f"ttn:PARTY{i % 3}"))
    database = Database("mqo-db")
    database.create_table_from_rows(
        "profiles", [{"handle": handle, "followers": 100 * (i + 1)}
                     for i, handle in enumerate(HANDLES)])
    store = FullTextStore("mqo-posts", fields=[
        FieldConfig("text", "text"),
        FieldConfig("user.screen_name", "keyword"),
    ], default_field="text")
    documents = JSONDocumentStore("mqo-tweets")
    for i in range(48):
        handle = HANDLES[i % len(HANDLES)]
        topic = TOPICS[i % len(TOPICS)]
        store.add({"id": i, "text": f"post about {topic} by {handle}",
                   "user": {"screen_name": handle}})
        documents.add({"id": i, "author": handle, "topic": topic,
                       "likes": (i * 7) % 40})
    instance = MixedInstance(graph=glue, name="bench-mqo", entailment=False)
    instance.register(ConstrainedSource(
        instance.register_relational("sql://profiles", database),
        counters, delay))
    instance.register(ConstrainedSource(
        instance.register_fulltext("solr://posts", store),
        counters, delay))
    instance.register(ConstrainedSource(
        instance.register_json("json://tweets", documents),
        counters, delay))
    return instance


def hot_query(instance: MixedInstance):
    builder = instance.builder("hot_profiles")
    builder.graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
    builder.sql("prof", source="sql://profiles",
                sql="SELECT handle AS id, followers AS f FROM profiles "
                    "WHERE handle = {id}")
    return builder.build()


def party_query(instance: MixedInstance, party: int):
    """Same canonical SQL sub-query as :func:`hot_query`, but the glue
    restricts the probes to one party's handles — three of these carry
    disjoint binding sets that cross-query probe fusion can merge."""
    builder = instance.builder(f"party_{party}")
    builder.graph("SELECT ?id WHERE { ?x ttn:memberOf ttn:PARTY%d . "
                  "?x ttn:twitterAccount ?id }" % party)
    builder.sql("prof", source="sql://profiles",
                sql="SELECT handle AS id, followers AS f FROM profiles "
                    "WHERE handle = {id}")
    return builder.build()


def cold_queries(instance: MixedInstance) -> list:
    queries = []
    for topic in TOPICS:
        builder = instance.builder(f"cold_json_{topic}")
        builder.graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
        builder.json("tweets", source="json://tweets",
                     pattern=f'{{ author: ?id, topic: "{topic}", likes: ?l }}')
        queries.append(builder.build())
    builder = instance.builder("cold_posts")
    builder.graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
    builder.fulltext("posts", source="solr://posts",
                     query="user.screen_name:{id}",
                     fields={"t": "text", "id": "user.screen_name"})
    queries.append(builder.build())
    return queries


def schedule(instance: MixedInstance, total: int) -> list:
    """Deterministic 80%-overlapping submission order."""
    hot = hot_query(instance)
    cold = cold_queries(instance)
    period = max(2, round(1.0 / (1.0 - HOT_FRACTION)))
    out, cold_cursor = [], 0
    for i in range(total):
        if i % period == period - 1:
            out.append(cold[cold_cursor % len(cold)])
            cold_cursor += 1
        else:
            out.append(hot)
    return out


class Writer:
    """Mutates the stores so pinned versions keep advancing."""

    def __init__(self, instance: MixedInstance, period: float = 0.004):
        self.instance = instance
        self.period = period
        self.stop = threading.Event()
        self.thread = threading.Thread(target=self._run, daemon=True)

    def _run(self) -> None:
        table = self.instance.source("sql://profiles").inner.database.table("profiles")
        posts = self.instance.source("solr://posts").inner.store
        tweets = self.instance.source("json://tweets").inner.store
        tick = 0
        while not self.stop.is_set():
            tick += 1
            handle = f"w{tick}"
            kind = tick % 3
            if kind == 0:
                table.insert({"handle": handle, "followers": tick})
            elif kind == 1:
                posts.add({"id": f"w{tick}", "text": "delta post",
                           "user": {"screen_name": handle}})
            else:
                tweets.add({"id": f"w{tick}", "author": handle,
                            "topic": "politics", "likes": tick % 40})
            time.sleep(self.period)

    def __enter__(self) -> "Writer":
        self.thread.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop.set()
        self.thread.join(timeout=10)


def measure(mqo: bool, total_queries: int,
            delay: float = LATENCY) -> dict[str, object]:
    """One overlapping-workload measurement, MQO on or off."""
    counters = CallCounters()
    instance = build_instance(counters, delay)
    queries = schedule(instance, total_queries)
    config = ServiceConfig(workers=8, mqo=mqo, mqo_group_size=16,
                           mqo_fusion_window=0.02,
                           max_queue_depth=total_queries + 8,
                           max_in_flight=total_queries + 16,
                           dispatch_workers=4, task_workers=4)
    with MediatorService(instance, config) as service, Writer(instance):
        start = time.perf_counter()
        tickets = [service.submit(query) for query in queries]
        for ticket in tickets:
            ticket.result(timeout=300)
        wall = time.perf_counter() - start
        stats = service.stats()
    row = {
        "mode": "mqo" if mqo else "per-query",
        "queries": total_queries,
        "wall_seconds": round(wall, 4),
        "throughput_qps": round(total_queries / wall, 2),
        "source_calls": counters.total(),
    }
    if mqo:
        row["shared_subqueries"] = stats["mqo"]["shared_subqueries"]
        row["fused_probes"] = stats["mqo"]["fused_probes"]
        row["groups"] = stats["mqo"]["groups"]
    return row


def thundering_herd(mqo: bool, burst: int = 8,
                    delay: float = 0.15) -> dict[str, object]:
    """Burst of identical queries; count how often the source is hit."""
    counters = CallCounters()
    instance = build_instance(counters, delay)
    query = hot_query(instance)
    config = ServiceConfig(workers=burst, mqo=mqo, mqo_fusion_window=0.02)
    with MediatorService(instance, config) as service:
        start = time.perf_counter()
        tickets = [service.submit(query) for _ in range(burst)]
        rows = [len(ticket.result(timeout=300).rows) for ticket in tickets]
        wall = time.perf_counter() - start
    assert len(set(rows)) == 1, "identical queries must agree on the answer"
    return {
        "mode": "mqo" if mqo else "per-query",
        "burst": burst,
        "source_calls": counters.total(),
        "wall_seconds": round(wall, 4),
    }


def probe_fusion(mqo: bool, delay: float = 0.1) -> dict[str, object]:
    """Three concurrent queries whose probes partition the handles.

    The first arrival dispatches immediately (a lone in-flight query
    never opens a fusion window, so it pays no added latency); the two
    that arrive while it runs fuse their disjoint probe sets into one
    batched call — 3 queries, 2 source calls instead of 3."""
    counters = CallCounters()
    instance = build_instance(counters, delay)
    queries = [party_query(instance, party) for party in range(3)]
    config = ServiceConfig(workers=3, mqo=mqo, mqo_fusion_window=0.35)
    with MediatorService(instance, config) as service:
        start = time.perf_counter()
        tickets = [service.submit(query) for query in queries]
        for ticket in tickets:
            assert ticket.result(timeout=300).rows
        wall = time.perf_counter() - start
        stats = service.stats()
    row = {
        "mode": "mqo" if mqo else "per-query",
        "queries": len(queries),
        "source_calls": counters.total(),
        "wall_seconds": round(wall, 4),
    }
    if mqo:
        row["fused_probes"] = stats["mqo"]["fused_probes"]
    return row


def run(argv: list[str]) -> int:
    smoke = "--smoke" in argv
    total_queries = 16 if smoke else 64

    series = [measure(False, total_queries), measure(True, total_queries)]
    report(f"80%-overlapping workload ({total_queries} queries, "
           f"capacity-one sources)", series)
    herd = [thundering_herd(False), thundering_herd(True)]
    report("thundering herd (identical burst)", herd)
    fusion = [probe_fusion(False), probe_fusion(True)]
    report("probe fusion (disjoint binding sets, shared sub-query)", fusion)

    off, on = series
    speedup = round(on["throughput_qps"] / off["throughput_qps"], 2)
    print(f"\nMQO throughput speedup on the overlapping workload: {speedup}x "
          f"({off['source_calls']} -> {on['source_calls']} source calls)")
    herd_on = next(row for row in herd if row["mode"] == "mqo")
    herd_off = next(row for row in herd if row["mode"] == "per-query")
    # The headline exactly-once guarantee: the whole burst shares one
    # evaluation of the shared sub-plan.
    assert herd_on["source_calls"] == 1, (
        f"expected the herd's shared sub-plan to hit the source exactly "
        f"once, saw {herd_on['source_calls']} calls")
    assert on["source_calls"] < off["source_calls"]
    fusion_on = next(row for row in fusion if row["mode"] == "mqo")
    # Distinct compatible probes merged into fewer batched calls.
    assert fusion_on["source_calls"] < 3 and fusion_on["fused_probes"] >= 1
    if not smoke:
        assert speedup >= 3.0, (
            f"expected >= 3x throughput with MQO on the overlapping "
            f"workload, got {speedup:.2f}x")

    payload = {
        "benchmark": "mqo",
        "smoke": smoke,
        "latency_per_call_seconds": LATENCY,
        "hot_fraction": HOT_FRACTION,
        "series": series,
        "thundering_herd": herd,
        "probe_fusion": fusion,
        "speedup_mqo_vs_per_query": speedup,
        "herd_calls_per_query_path": herd_off["source_calls"],
    }
    out_path = Path(__file__).resolve().parents[1] / "BENCH_mqo.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {out_path}")
    return 0


# ---------------------------------------------------------------------------
# pytest entry point (smoke-sized)
# ---------------------------------------------------------------------------

def test_mqo_shares_the_herd_and_beats_per_query():
    """A burst of identical queries hits the source once under MQO, and
    the overlapping workload runs faster than the per-query path."""
    herd = thundering_herd(True, burst=6, delay=0.1)
    assert herd["source_calls"] == 1
    off = measure(False, 12, delay=0.02)
    on = measure(True, 12, delay=0.02)
    assert on["source_calls"] < off["source_calls"]
    assert on["throughput_qps"] > off["throughput_qps"]


if __name__ == "__main__":
    sys.exit(run(sys.argv[1:]))
