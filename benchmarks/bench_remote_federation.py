"""E13: remote federation — RTT amortisation and fault-tolerant retries.

A mediator that ships one sub-query per binding to a *remote* source pays
the network round-trip once per binding; batched bind joins pay it once
per batch.  This benchmark wraps the relational source of a bind-join
query behind the wire protocol with a simulated round-trip time (5, 25
and 50 ms) and measures, per strategy:

* wall-clock time and ``SubQueryCall`` counts (per-binding vs batched),
* result-set equality against the in-process reference,
* under injected faults (``FaultyTransport``), that retries keep every
  answer correct, and what the retry/latency cost of chaos is.

Run as a script (``python bench_remote_federation.py [--smoke]``) it
also writes ``BENCH_remote.json`` to the repo root for trajectory
tracking; under pytest the same scenarios run as assertions.
"""

from __future__ import annotations

import json
import sys
import time
from pathlib import Path

from repro.core import MixedInstance, PlannerOptions
from repro.rdf import Graph, triple
from repro.relational import Database
from repro.remote import (
    FaultyTransport,
    LocalTransport,
    RemoteOptions,
    RemoteSourceHandler,
)

try:  # pytest import path (benchmarks/conftest.py) vs script execution
    from conftest import report
except ImportError:  # pragma: no cover - script mode
    def report(title, rows, columns=None):
        print(f"\n[{title}]")
        for row in rows:
            print("  " + " | ".join(f"{k}={v}" for k, v in row.items()))

#: Hedging off, generous timeout: the RTT sweep isolates *batching*.
SWEEP_OPTIONS = RemoteOptions(timeout=10.0, retries=1,
                              hedge_min_samples=10**9)

#: Chaos options: enough retries that a 15% fault rate never loses an
#: answer, breaker sized so transient faults do not trip it mid-run.
CHAOS_OPTIONS = RemoteOptions(timeout=10.0, retries=5,
                              backoff_base=0.001, backoff_max=0.01,
                              hedge_min_samples=10**9,
                              breaker_failures=64)


def build_base(accounts: int) -> MixedInstance:
    """An in-process instance whose qG produces ``accounts`` bindings."""
    glue = Graph("bench-remote-glue")
    database = Database("bench-remote-accounts")
    rows = []
    for i in range(accounts):
        handle = f"user{i:05d}"
        glue.add(triple(f"ttn:P{i}", "ttn:twitterAccount", handle))
        rows.append({"handle": handle, "followers": (i * 37) % 10_000})
    database.create_table_from_rows("accounts", rows)
    # Caching off: a warm result cache would answer every strategy after
    # the first without touching the network (see bench_caching.py).
    base = MixedInstance(graph=glue, name="bench-remote-base",
                         entailment=False, cache=False)
    base.register_relational("sql://accounts", database)
    return base


def remote_instance(base: MixedInstance, rtt: float = 0.0,
                    fault_rate: float = 0.0, seed: int = 0,
                    options: RemoteOptions = SWEEP_OPTIONS):
    """The same instance with its relational source behind the wire.

    Returns ``(instance, remote_source, transport)`` — the transport is
    the outermost one (the fault proxy when ``fault_rate`` is set).
    """
    source = base.source("sql://accounts")
    transport = LocalTransport(RemoteSourceHandler(source).handle, rtt=rtt)
    if fault_rate:
        transport = FaultyTransport(transport, seed=seed,
                                    fault_rate=fault_rate,
                                    latency_range=(0.0, 0.001))
    instance = MixedInstance(graph=base.graph, name="bench-remote",
                             entailment=False, cache=False)
    remote = instance.register_remote(transport, uri=source.uri,
                                      model=source.model, name=source.name,
                                      size=source.size(), options=options)
    return instance, remote, transport


def accounts_query(instance: MixedInstance):
    """qG (all handles) |> SQL bind atom answered remotely."""
    return (instance.builder("qRemote", head=["id", "f"])
            .graph("SELECT ?id WHERE { ?x ttn:twitterAccount ?id }")
            .sql("followers", source="sql://accounts",
                 sql="SELECT handle AS id, followers AS f FROM accounts "
                     "WHERE handle = {id}")
            .build())


def run_once(instance: MixedInstance, options: PlannerOptions) -> dict:
    start = time.perf_counter()
    result = instance.execute(accounts_query(instance), options=options)
    elapsed = time.perf_counter() - start
    return {"seconds": elapsed, "source calls": len(result.trace.calls),
            "answers": len(result),
            "_rows": sorted(map(str, result.rows))}


def rtt_sweep(base: MixedInstance, rtts_ms) -> list[dict]:
    """Per-binding vs batched bind joins at each simulated RTT."""
    reference = run_once(base, PlannerOptions())["_rows"]
    measurements = []
    for rtt_ms in rtts_ms:
        instance, _, _ = remote_instance(base, rtt=rtt_ms / 1000.0)
        per_binding = run_once(instance, PlannerOptions(batch_bind_joins=False))
        batched = run_once(instance, PlannerOptions())
        for label, m in (("per-binding", per_binding), ("batched", batched)):
            assert m["_rows"] == reference, \
                f"{label} @ {rtt_ms}ms diverged from the in-process engine"
        measurements.append({
            "rtt_ms": rtt_ms,
            "per-binding calls": per_binding["source calls"],
            "batched calls": batched["source calls"],
            "per-binding s": per_binding["seconds"],
            "batched s": batched["seconds"],
            "call_reduction": per_binding["source calls"]
                              / max(1, batched["source calls"]),
            "speedup": per_binding["seconds"] / max(1e-9, batched["seconds"]),
        })
    return measurements


def fault_tolerance(base: MixedInstance, rounds: int,
                    fault_rate: float = 0.15) -> dict:
    """Chaos scenario: every answer stays correct despite injected faults.

    Dispatches per binding so each round ships dozens of wire calls
    through the fault proxy — the retry loop, not batching, is what is
    under test here.
    """
    reference = run_once(base, PlannerOptions())["_rows"]
    instance, remote, transport = remote_instance(
        base, rtt=0.002, fault_rate=fault_rate, seed=7,
        options=CHAOS_OPTIONS)
    start = time.perf_counter()
    for _ in range(rounds):
        measurement = run_once(
            instance, PlannerOptions(batch_bind_joins=False))
        assert measurement["_rows"] == reference, \
            "a faulty run returned wrong rows"
    elapsed = time.perf_counter() - start
    stats = remote.stats()
    return {
        "rounds": rounds,
        "fault_rate": fault_rate,
        "seconds": elapsed,
        "transport calls": transport.calls,
        "injected": dict(transport.injected),
        "retries": stats["retries"],
        "breaker": stats["breaker"],
        "latency_p95_ms": (stats["latency_p95_s"] or 0.0) * 1000.0,
    }


# ---------------------------------------------------------------------------
# pytest entry points
# ---------------------------------------------------------------------------

def test_remote_rtt_amortisation():
    base = build_base(accounts=100)
    measurements = rtt_sweep(base, rtts_ms=(25,))
    report("E13: remote bind join, 100 bindings", measurements)
    at_25 = measurements[0]
    assert at_25["call_reduction"] >= 5
    assert at_25["speedup"] >= 5


def test_remote_fault_tolerance_preserves_answers():
    base = build_base(accounts=60)
    outcome = fault_tolerance(base, rounds=3)
    report("E13: chaos runs, 60 bindings", [outcome],
           columns=["rounds", "fault_rate", "transport calls",
                    "retries", "breaker", "latency_p95_ms"])
    assert outcome["retries"] > 0
    assert sum(outcome["injected"].values()) > 0
    assert outcome["breaker"] == "closed"


# ---------------------------------------------------------------------------
# Script mode: the trajectory runner
# ---------------------------------------------------------------------------

def main(argv: list[str]) -> None:
    smoke = "--smoke" in argv
    accounts = 80 if smoke else 200
    rtts_ms = (5, 25) if smoke else (5, 25, 50)
    base = build_base(accounts=accounts)

    sweep = rtt_sweep(base, rtts_ms)
    report(f"remote federation RTT sweep, {accounts} bindings", sweep)
    chaos = fault_tolerance(base, rounds=2 if smoke else 6)
    report("remote federation chaos", [chaos],
           columns=["rounds", "fault_rate", "transport calls",
                    "retries", "breaker", "latency_p95_ms"])

    at_25 = next(m for m in sweep if m["rtt_ms"] == 25)
    payload = {
        "benchmark": "remote_federation", "smoke": smoke,
        "accounts": accounts,
        "scenarios": {"rtt_sweep": sweep, "fault_tolerance": chaos},
        "summary": {"speedup_at_25ms": at_25["speedup"],
                    "call_reduction_at_25ms": at_25["call_reduction"]},
    }
    assert at_25["speedup"] >= 5, \
        f"batched remote bind joins only {at_25['speedup']:.1f}x at 25ms RTT"

    out_path = Path(__file__).resolve().parents[1] / "BENCH_remote.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(f"\nwrote {out_path}")


if __name__ == "__main__":
    main(sys.argv[1:])
