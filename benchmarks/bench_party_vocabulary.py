"""E7 (§3 scenario 2): party vocabulary comparison and influential tweets.

Measures the mixed query joining the glue graph with the tweet store on a
user-defined topic, the PMI ranking over its result, and the
influential-tweet ranking.
"""

from __future__ import annotations

from conftest import report

from repro.analytics import PMIVocabularyAnalyzer, per_group_influential
from repro.datasets import party_vocabulary_query


def test_party_vocabulary_mixed_query(benchmark, demo_medium):
    """The mixed query feeding scenario 2 (every tweet on the topic + group)."""
    query = party_vocabulary_query(demo_medium, "urgence")
    result = benchmark(lambda: demo_medium.instance.execute(query, limit=None))
    groups = set(result.column("group"))
    report("E7: mixed query result", [
        {"metric": "tweets", "value": len(result)},
        {"metric": "political groups", "value": len(groups)},
    ])
    assert len(groups) >= 3


def test_pmi_and_influence_ranking(benchmark, demo_medium):
    """PMI vocabulary comparison + per-group influential tweets."""
    result = demo_medium.instance.execute(party_vocabulary_query(demo_medium, "urgence"),
                                          limit=None)
    records = [{"text": r["t"], "author": r["id"], "group": r["group"],
                "retweet_count": r["rt"]} for r in result.rows]

    def analyse():
        analyzer = PMIVocabularyAnalyzer(min_group_count=2, min_corpus_count=3)
        vocabularies = analyzer.analyze((r["group"], r["text"]) for r in records)
        influential = per_group_influential(records, top_per_group=3)
        return vocabularies, influential

    vocabularies, influential = benchmark(analyse)
    rows = []
    for group in sorted(vocabularies):
        terms = ", ".join(t.term for t in vocabularies[group].top(4))
        top_tweet = influential.get(group, [])
        rows.append({"group": group, "top PMI terms": terms,
                     "top retweets": top_tweet[0].retweets if top_tweet else 0})
    report("E7: per-group vocabulary and influence", rows)
    assert len(vocabularies) >= 3
