"""E5 (§2.2): keyword querying — digest construction and query generation.

Measures the two phases of the keyword pipeline separately: building the
digest catalog (offline, amortised) and answering a keyword query (online:
lookup + shortest join paths + CMQ generation + evaluation), and checks the
generated query finds the same tweet as the hand-written qSIA.
"""

from __future__ import annotations

from conftest import report

from repro.datasets import TWEETS_URI, qsia_query
from repro.digest import KeywordQueryEngine


def test_digest_construction(benchmark, demo_small):
    """Offline cost: one digest per source plus cross-source join probing."""
    catalog = benchmark(lambda: demo_small.instance.build_digests())
    rows = [{"source": uri, "positions": len(d.nodes),
             "KiB": round(d.size_in_bytes() / 1024, 1)}
            for uri, d in sorted(catalog.digests.items())]
    rows.append({"source": "(join candidates)", "positions": len(catalog.join_edges),
                 "KiB": round(catalog.total_size_in_bytes() / 1024, 1)})
    report("E5: digest catalog", rows)
    assert len(catalog) == 8  # glue + seven sources (incl. the JSON store)


def test_keyword_query_head_of_state_sia2016(benchmark, demo_small, catalog_small):
    """Online cost of the paper's example keyword query."""
    engine = KeywordQueryEngine(demo_small.instance, catalog=catalog_small)
    outcome = benchmark(lambda: engine.search(["head of state", "SIA2016"]))
    assert outcome.result is not None and len(outcome.result) >= 1

    qsia_answers = set(demo_small.instance.execute(qsia_query(demo_small)).column("t"))
    keyword_strings = {v for row in outcome.result.rows for v in row.values()
                       if isinstance(v, str)}
    report("E5: keyword query vs hand-written qSIA", [
        {"metric": "candidate CMQs generated", "value": len(outcome.candidates)},
        {"metric": "best path length", "value": len(outcome.best.path)},
        {"metric": "answers", "value": len(outcome.result)},
        {"metric": "recovers qSIA answer", "value": bool(qsia_answers & keyword_strings)},
        {"metric": "bridges glue + tweets", "value":
            {a.source for a in outcome.best.query.atoms} >= {"#glue", TWEETS_URI}},
    ])
    assert qsia_answers & keyword_strings


def test_keyword_query_cross_model(benchmark, demo_small, catalog_small):
    """A keyword pair whose join path crosses the relational and RDF sources."""
    engine = KeywordQueryEngine(demo_small.instance, catalog=catalog_small)
    outcome = benchmark(lambda: engine.search(["Gironde", "unemployment"]))
    assert outcome.candidates
    report("E5: cross-model keyword query", [
        {"metric": "candidates", "value": len(outcome.candidates)},
        {"metric": "best cost", "value": round(outcome.best.cost, 3)},
        {"metric": "answers", "value": len(outcome.result) if outcome.result else 0},
    ])
