"""Shared fixtures and reporting helpers for the benchmark harness.

Each ``bench_*.py`` file regenerates one experiment of DESIGN.md (E1–E11).
Benchmarks print the paper-style series they produce (who wins, by what
factor, where crossovers fall); absolute timings depend on the machine and
are reported by pytest-benchmark itself.
"""

from __future__ import annotations

import pytest

from repro.datasets import DemoConfig, build_demo_instance


def small_config() -> DemoConfig:
    return DemoConfig(politicians=20, weeks=4, tweets_per_politician_per_week=2.0, seed=42)


def medium_config() -> DemoConfig:
    return DemoConfig(politicians=60, weeks=4, tweets_per_politician_per_week=3.0, seed=42)


@pytest.fixture(scope="session")
def demo_small():
    """A small demonstration instance (fast, used by most benches)."""
    return build_demo_instance(small_config())


@pytest.fixture(scope="session")
def demo_medium():
    """A larger demonstration instance (used by the scaling benches)."""
    return build_demo_instance(medium_config())


@pytest.fixture(scope="session")
def catalog_small(demo_small):
    """Digest catalog of the small instance."""
    return demo_small.instance.build_digests()


def report(title: str, rows: list[dict], columns: list[str] | None = None) -> None:
    """Print a small fixed-width table (the series a paper figure would plot)."""
    if not rows:
        print(f"\n[{title}] (no rows)")
        return
    columns = columns or list(rows[0].keys())
    widths = {c: max(len(c), max(len(_fmt(r.get(c))) for r in rows)) for c in columns}
    print(f"\n[{title}]")
    print("  " + " | ".join(c.ljust(widths[c]) for c in columns))
    print("  " + "-+-".join("-" * widths[c] for c in columns))
    for row in rows:
        print("  " + " | ".join(_fmt(row.get(c)).ljust(widths[c]) for c in columns))


def _fmt(value) -> str:
    if isinstance(value, float):
        return f"{value:.4g}"
    return "" if value is None else str(value)
