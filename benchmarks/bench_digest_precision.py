"""E9 (§2.2): digest precision vs space.

"The precision level of the value set representations is controlled by
parameters dividing up the available space; histograms and Bloom filters
are used."  This bench sweeps the Bloom bits-per-value budget and reports
digest size together with the keyword false-positive rate (keywords that
match a digest position whose source actually holds no such value).
Expected shape: false positives drop roughly exponentially with the bit
budget while size grows linearly.
"""

from __future__ import annotations

import pytest
from conftest import report

from repro.digest import DigestBuilder, ValueSetSummary

_BITS = [2, 4, 8, 16, 32]

#: Values resembling the demo corpus positions (hashtags, handles, codes).
_PRESENT = [f"hashtag{i}" for i in range(400)] + [f"handle{i}" for i in range(400)]
_ABSENT = [f"missing{i}" for i in range(2000)]


@pytest.mark.parametrize("bits", _BITS)
def test_bloom_budget(benchmark, bits):
    """Summary construction cost at each bit budget + measured false positives."""
    summary = benchmark(lambda: ValueSetSummary(_PRESENT, bloom_bits_per_value=bits,
                                                exact_limit=0))
    false_positives = sum(1 for v in _ABSENT if summary.might_contain(v))
    report(f"E9: bloom bits={bits}", [{
        "bits/value": bits,
        "bytes": summary.stats().bytes_used,
        "false positive rate": round(false_positives / len(_ABSENT), 4),
        "theoretical": round(summary.bloom.false_positive_rate(), 4),
    }])
    # No false negatives ever.
    assert all(summary.might_contain(v) for v in _PRESENT)


def test_precision_space_tradeoff_table(benchmark, demo_small):
    """The headline E9 series over the real demo instance digests."""
    def sweep():
        from repro.digest import DigestCatalog

        rows = []
        probes = [f"absent-keyword-{i}" for i in range(200)]
        for bits in _BITS:
            # exact_limit=0 forces every value set onto its Bloom filter, which
            # is the regime the precision/space trade-off is about (large
            # sources cannot keep exact sets).
            builder = DigestBuilder(bloom_bits_per_value=bits, exact_limit=0)
            catalog = DigestCatalog()
            catalog.add(builder.build_rdf(demo_small.instance.glue_source))
            for source in demo_small.instance.sources():
                catalog.add(builder.build(source))
            false_hits = sum(1 for keyword in probes for _ in catalog.lookup_keyword(keyword))
            rows.append({"bits/value": bits,
                         "digest size (KiB)": round(catalog.total_size_in_bytes() / 1024, 1),
                         "spurious keyword hits": false_hits})
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    report("E9: digest precision vs space", rows)
    assert rows[0]["digest size (KiB)"] < rows[-1]["digest size (KiB)"]
    assert rows[-1]["spurious keyword hits"] <= rows[0]["spurious keyword hits"]
