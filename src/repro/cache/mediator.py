"""The instance-wide cache facade handed to planners and executors."""

from __future__ import annotations

from repro.cache.plans import PlanCache
from repro.cache.repair import RepairEngine
from repro.cache.results import SubQueryResultCache


class MediatorCache:
    """Shared caches of one mixed instance.

    Executors are built per query; the caches live here so that results
    and plans survive across queries (and across executors).  Create
    with ``MixedInstance(cache=...)`` or let the instance build its own.
    """

    def __init__(self, result_entries: int = 4096, plan_entries: int = 256):
        self.results = SubQueryResultCache(result_entries)
        self.plans = PlanCache(plan_entries)
        # Delta-join repair of version-orphaned result entries; shared by
        # every CachedSource proxy so a streaming write repairs each
        # affected entry once, instance-wide.
        self.repair = RepairEngine(self.results)

    def clear(self) -> None:
        """Drop every cached result and plan."""
        self.results.clear()
        self.plans.clear()

    def statistics(self) -> dict[str, dict[str, object]]:
        """Counters of both caches (for demos, benchmarks and tuning)."""
        results = self.results.stats.as_dict()
        results["entries"] = len(self.results)
        plans = self.plans.stats.as_dict()
        plans["entries"] = len(self.plans)
        return {"results": results, "plans": plans,
                "repair": self.repair.stats.as_dict()}

    def register_metrics(self, registry=None) -> None:
        """Surface both caches in a metrics registry as lazy gauges.

        The caches already count hits/misses/evictions themselves
        (:class:`~repro.cache.lru.CacheStats`); callbacks read those
        counters at snapshot time instead of double-accounting them.
        """
        if registry is None:
            from repro.obs.metrics import get_registry

            registry = get_registry()
        for label, cache in (("results", self.results), ("plans", self.plans)):
            stats = cache.stats
            registry.register_callback("cache_hits", lambda s=stats: s.hits,
                                       cache=label)
            registry.register_callback("cache_misses", lambda s=stats: s.misses,
                                       cache=label)
            registry.register_callback("cache_insertions",
                                       lambda s=stats: s.insertions, cache=label)
            registry.register_callback("cache_evictions",
                                       lambda s=stats: s.evictions, cache=label)
            registry.register_callback("cache_invalidations",
                                       lambda s=stats: s.invalidations,
                                       cache=label)
            registry.register_callback("cache_entries",
                                       lambda c=cache: len(c), cache=label)
        repair = self.repair.stats
        registry.register_callback("cache_repair_attempts",
                                   lambda s=repair: s.attempts)
        registry.register_callback("cache_repair_repaired",
                                   lambda s=repair: s.repaired)
        registry.register_callback("cache_repair_rows_appended",
                                   lambda s=repair: s.rows_appended)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"MediatorCache(results={len(self.results)}, "
                f"plans={len(self.plans)})")
