"""The cross-query sub-query result cache and its dispatch proxy.

The mediator's dominant cost is shipping sub-queries to sources; across
a repeated workload (the paper's data-journalism scenario: the same
fact-checking CMQs run over and over as tweets stream in) most of those
calls recompute answers the mediator has already seen.
:class:`SubQueryResultCache` memoises per-source sub-query results under
a fully canonical key::

    (source URI, source identity token, source version,
     canonical query, canonical binding)

The identity token (allocated per wrapper, never reused) keeps a cache
shared across several instances safe: two glue graphs both live under
the ``#glue`` URI, yet can never serve each other's rows.

*Source versions* make invalidation precise: every store (RDF graph,
relational tables, full-text store, JSON store) bumps a version counter
on mutation, so an update to one source orphans exactly that source's
entries — results of every other source keep serving hits, and the
orphaned entries age out of the LRU.

:class:`CachedSource` wraps a :class:`~repro.core.sources.DataSource`
with the cache for the duration of a dispatch.  ``execute`` probes once;
``execute_batch`` probes *per binding* and forwards only the misses to
the wrapped source, so a batched bind join ships IN-lists/disjunctions
built solely from uncached bindings.  Sources whose ``version()`` is
unknown (``None``) are never cached.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional, Sequence

from repro.cache.keys import CanonicalQuery, canonical_query
from repro.cache.lru import CacheStats, LRUCache
from repro.core.sources import DataSource, Row, SourceQuery
from repro.errors import MixedQueryError

#: Memo sentinel: ``canonical_query`` answered "uncacheable" (``None``
#: cannot live in the LRU directly — a missing key also reads ``None``).
_UNCACHEABLE = object()


@dataclass
class MQOStats:
    """Per-executor multi-query-optimization counters.

    Filled in by the :class:`CachedSource` proxies of one executor while
    the service's MQO coordinator shares work across in-flight queries,
    then mirrored into the execution trace (``trace.shared_subqueries``
    / ``trace.fused_probes``).  Mutations happen under the executor's
    shared stats lock (the same one guarding its :class:`CacheStats`).
    """

    #: Probes answered by a sub-plan evaluation another in-flight query
    #: performed (single-flight: this executor waited instead of calling).
    shared_subqueries: int = 0
    #: Miss bindings this executor had evaluated by *riding* another
    #: query's batched source call instead of issuing its own.
    fused_probes: int = 0

    def snapshot(self) -> "MQOStats":
        return MQOStats(self.shared_subqueries, self.fused_probes)


class SubQueryResultCache:
    """LRU of sub-query results shared by every executor of an instance."""

    #: Bound on the canonical-form memo (an LRU of its own, so a workload
    #: of ever-changing query texts evicts cold forms one by one instead
    #: of periodically flushing every hot query's memoised form).
    MAX_CANONICAL_MEMO = 4096

    def __init__(self, max_entries: int = 4096):
        self.entries = LRUCache(max_entries, on_evict=self._entry_evicted)
        self._canonical = LRUCache(self.MAX_CANONICAL_MEMO)
        self._lock = threading.RLock()
        # Version-independent index: logical probe (URI, token, query,
        # binding) -> the full key of the *latest* inserted entry.  It
        # powers graceful degradation — when a remote source is down its
        # current version is unknowable, yet the mediator can still find
        # the freshest rows it ever cached for the probe.  Pointers are
        # dropped by ``_entry_evicted`` when the LRU evicts their target,
        # so the index never outgrows (or outlives) the entries map.
        self._stale: dict[tuple, tuple] = {}

    def _entry_evicted(self, key: tuple, value: object) -> None:
        """LRU eviction callback: drop the stale pointer of one entry.

        Only when the pointer still targets the evicted key — a newer
        version's insert may have redirected it already.
        """
        logical = self._logical(key)
        with self._lock:
            if self._stale.get(logical) == key:
                del self._stale[logical]

    @staticmethod
    def _logical(key: tuple) -> tuple:
        """The full key minus the source version."""
        return (key[0], key[1], key[3], key[4])

    @property
    def stats(self) -> CacheStats:
        return self.entries.stats

    # ------------------------------------------------------------------
    def canonicalize(self, query: SourceQuery) -> Optional[CanonicalQuery]:
        """Memoised canonical form of ``query`` (None = uncacheable)."""
        try:
            memo = self._canonical.get(query, record_miss=False)
            if memo is not None:
                return None if memo is _UNCACHEABLE else memo
            canon = canonical_query(query)
            self._canonical.put(query, canon if canon is not None else _UNCACHEABLE)
            return canon
        except TypeError:  # unhashable query object
            return None

    def key_for(self, source, version: int, query: SourceQuery,
                bindings: Row) -> Optional[tuple[tuple, CanonicalQuery]]:
        """The full cache key of one probe, or ``None`` when uncacheable.

        ``source`` is the raw wrapper whose URI *and* identity token
        enter the key; a wrapper without a token (a custom subclass that
        skipped ``DataSource.__init__``) is treated as uncacheable.
        """
        token = getattr(source, "cache_token", None)
        if token is None:
            return None
        canon = self.canonicalize(query)
        if canon is None:
            return None
        binding_key = canon.binding_key(bindings)
        if binding_key is None:
            return None
        return (source.uri, token, version, canon.key, binding_key), canon

    def fetch(self, key: tuple, canon: CanonicalQuery,
              record_miss: bool = True) -> Optional[list[Row]]:
        """Cached rows re-keyed for the requesting query, or ``None``."""
        stored = self.entries.get(key, record_miss=record_miss)
        if stored is None:
            return None
        return canon.original_rows(stored)

    def insert(self, key: tuple, canon: CanonicalQuery, rows: list[Row]) -> None:
        self.insert_canonical(key, canon.canonical_rows(rows))

    def insert_canonical(self, key: tuple, canonical_rows: list[Row]) -> None:
        """Insert rows already in canonical variable names.

        Used by the MQO fusion path, where the leader of a fused call
        caches every participant's probe — the rows it holds are already
        canonical, having crossed between differently-renamed queries.
        """
        self.entries.put(key, canonical_rows)
        with self._lock:
            self._stale[self._logical(key)] = key

    def prior_entry(self, key: tuple) -> Optional[tuple[tuple, list[Row]]]:
        """The latest surviving entry of this probe under an older version.

        Input is the full key of a probe that just *missed*; the stale
        index locates the newest entry ever inserted for the same
        logical probe.  Returns ``(prior_key, stored_rows)`` with the
        rows still in canonical names (they are the repair engine's
        merge base, not an answer), or ``None`` when the probe was never
        cached or its entry has aged out of the LRU.
        """
        logical = self._logical(key)
        with self._lock:
            prior_key = self._stale.get(logical)
        if prior_key is None or prior_key == key:
            return None
        stored = self.entries.get(prior_key, record_miss=False)
        if stored is None:
            return None
        return prior_key, stored

    def fetch_stale(self, source, query: SourceQuery,
                    bindings: Row) -> Optional[list[Row]]:
        """The latest rows ever cached for this probe, any version.

        Serving them is *degraded* reading: the source may have mutated
        since.  Callers must flag the result (``trace.degraded``) — this
        path exists so an outage yields flagged stale rows instead of a
        failed query.  Touches no hit/miss counters.
        """
        token = getattr(source, "cache_token", None)
        if token is None:
            return None
        canon = self.canonicalize(query)
        if canon is None:
            return None
        binding_key = canon.binding_key(bindings)
        if binding_key is None:
            return None
        with self._lock:
            key = self._stale.get((source.uri, token, canon.key, binding_key))
        if key is None:
            return None
        stored = self.entries.get(key, record_miss=False)
        if stored is None:
            return None
        return canon.original_rows(stored)

    # ------------------------------------------------------------------
    def invalidate_source(self, source_uri: str) -> int:
        """Eagerly drop every entry of one source (versioning already
        prevents stale hits; this just frees the slots)."""
        return self.entries.invalidate_where(lambda key: key[0] == source_uri)

    def clear(self) -> None:
        self.entries.clear()
        self._canonical.clear()
        with self._lock:
            self._stale.clear()

    def __len__(self) -> int:
        return len(self.entries)


class CachedSource(DataSource):
    """A dispatch proxy consulting the result cache before its source.

    Everything the executor needs (`uri`, `model`, `accepts`,
    ``estimate``, ...) delegates to the wrapped source; only
    ``execute`` / ``execute_batch`` interpose the cache.  The source
    version is snapshotted once per call, not per binding.

    ``stats`` is an optional per-executor :class:`CacheStats` receiving
    this proxy's hit/miss counts, so an execution's trace reports its
    own probes rather than a delta of the instance-wide counters (which
    other concurrent executions would pollute).

    ``mqo`` is an optional multi-query coordinator (duck-typed —
    :class:`repro.service.mqo.MQOCoordinator`): cache misses are then
    routed through its single-flight / probe-fusion bus, so a sub-plan
    another in-flight query is already evaluating is waited for instead
    of recomputed, and compatible miss batches from different queries
    fuse into one ``execute_batch`` source call.  ``mqo_stats`` collects
    this executor's share of that cross-query work for its trace.
    """

    def __init__(self, inner: DataSource, cache: SubQueryResultCache,
                 stats: CacheStats | None = None,
                 stats_lock: threading.Lock | None = None,
                 mqo=None, mqo_stats: MQOStats | None = None,
                 repair=None):
        self.inner = inner
        self.cache = cache
        self.local_stats = stats
        self.mqo = mqo
        self.mqo_stats = mqo_stats
        # Optional delta-join repair engine (duck-typed —
        # :class:`repro.cache.repair.RepairEngine`): a miss whose probe
        # has an entry under an older source version is first offered
        # for repair; success re-stamps the entry and counts as a hit,
        # since no source call happened.
        self.repair = repair
        # The stats object is shared by every proxy of one executor and
        # bumped from parallel dispatch threads; the (equally shared)
        # lock keeps the counters exact.
        self._stats_lock = stats_lock or threading.Lock()

    def _record(self, hit: bool) -> None:
        if self.local_stats is None:
            return
        with self._stats_lock:
            if hit:
                self.local_stats.hits += 1
            else:
                self.local_stats.misses += 1

    def _record_mqo(self, shared: int, fused: int) -> None:
        if self.mqo_stats is None or not (shared or fused):
            return
        with self._stats_lock:
            self.mqo_stats.shared_subqueries += shared
            self.mqo_stats.fused_probes += fused

    # -- delegation ---------------------------------------------------------
    @property
    def uri(self) -> str:  # type: ignore[override]
        return self.inner.uri

    @property
    def name(self) -> str:  # type: ignore[override]
        return self.inner.name

    @property
    def description(self) -> str:  # type: ignore[override]
        return self.inner.description

    @property
    def model(self) -> str:  # type: ignore[override]
        return self.inner.model

    @property
    def cache_token(self):  # type: ignore[override]
        return self.inner.cache_token

    @property
    def cost_kind(self) -> str:
        """The wrapped source's cost-model kind.

        Without this delegation a remote source seen through the proxy
        would fall back to ``model``-keyed (local-call) pricing and lose
        the network-aware batch sizing its ``"remote"`` kind buys.
        """
        return getattr(self.inner, "cost_kind", self.inner.model)

    @property
    def trust_wrapper_estimate(self) -> bool:  # type: ignore[override]
        return self.inner.trust_wrapper_estimate

    def pin(self) -> "CachedSource":
        """A proxy over the pinned inner source (same cache, same stats)."""
        pinned = self.inner.pin()
        if pinned is self.inner:
            return self
        return CachedSource(pinned, self.cache, stats=self.local_stats,
                            stats_lock=self._stats_lock, mqo=self.mqo,
                            mqo_stats=self.mqo_stats, repair=self.repair)

    @property
    def pinned_at(self) -> Optional[int]:  # type: ignore[override]
        return self.inner.pinned_at

    def version(self) -> Optional[int]:
        return self.inner.version()

    def accepts(self, query: SourceQuery) -> bool:
        return self.inner.accepts(query)

    def estimate(self, query: SourceQuery, bound_variables: set[str] | None = None) -> float:
        return self.inner.estimate(query, bound_variables)

    def size(self) -> int:
        return self.inner.size()

    def _try_repair(self, version: int, query: SourceQuery, key: tuple,
                    canon: CanonicalQuery,
                    bindings: Row) -> Optional[list[Row]]:
        """Offer a missed probe to the repair engine.

        Returns the repaired rows in *canonical* names (the engine's
        merge output), or ``None`` — no engine, no prior entry, or a
        shape/delta the engine declined.
        """
        if self.repair is None:
            return None
        return self.repair.repair(self.inner, version, query, key, canon,
                                  bindings)

    # -- MQO fusion bus -----------------------------------------------------
    def _fusion_runner(self, query: SourceQuery, canon: CanonicalQuery):
        """Leader-side evaluator handed to the MQO coordinator.

        Receives the union probe list of one fused slot — possibly
        containing probes contributed by *other* queries' executors, in
        canonical binding names — translates the bindings into this
        query's own variable names, ships ONE source call, and caches
        every answer under its (fully canonical) key so concurrent and
        later probes hit without a call of their own.
        """

        def run(probes: list[tuple[tuple, Row]]) -> list[list[Row]]:
            originals = [canon.original_binding(binding) for _, binding in probes]
            if len(originals) == 1:
                fetched = [self.inner.execute(query, originals[0])]
            else:
                fetched = self.inner.execute_batch(query, originals)
            if len(fetched) != len(probes):
                raise MixedQueryError(
                    f"source {self.inner.uri!r} answered {len(fetched)} bindings "
                    f"of a {len(probes)}-binding fused batch"
                )
            out: list[list[Row]] = []
            for (full_key, _), rows in zip(probes, fetched):
                canonical = canon.canonical_rows(rows)
                self.cache.insert_canonical(full_key, canonical)
                out.append(canonical)
            return out

        return run

    def _fusion_key(self, version: int, canon: CanonicalQuery,
                    canonical_binding: Row) -> tuple:
        """The bus key grouping probes that may share one source call.

        The sorted canonical binding-variable *schema* is part of the
        key: wrappers push a batch down natively (IN-lists, disjunctive
        templates) assuming a uniform binding shape, so probes binding
        different variable sets must never ride one call.
        """
        return (self.inner.uri, self.inner.cache_token, version, canon.key,
                tuple(sorted(canonical_binding)))

    # -- cached protocol ----------------------------------------------------
    def execute(self, query: SourceQuery, bindings: Row | None = None) -> list[Row]:
        bindings = bindings or {}
        version = self.inner.version()
        if version is None:
            return self.inner.execute(query, bindings)
        keyed = self.cache.key_for(self.inner, version, query, bindings)
        if keyed is None:
            return self.inner.execute(query, bindings)
        key, canon = keyed
        rows = self.cache.fetch(key, canon)
        if rows is not None:
            self._record(hit=True)
            return rows
        repaired = self._try_repair(version, query, key, canon, bindings)
        if repaired is not None:
            # The answer was rebuilt locally from the delta journal — no
            # source call happened, so the probe counts as a hit.
            self._record(hit=True)
            return canon.original_rows(repaired)
        self._record(hit=False)
        if self.mqo is not None:
            canonical = canon.canonical_binding(bindings)
            fetched, shared, fused = self.mqo.fuse(
                self._fusion_key(version, canon, canonical),
                [(key, canonical)], self._fusion_runner(query, canon),
                batched=False)
            self._record_mqo(shared, fused)
            return canon.original_rows(fetched[0])
        rows = self.inner.execute(query, bindings)
        self.cache.insert(key, canon, rows)
        return rows

    def execute_batch(self, query: SourceQuery,
                      bindings_batch: Sequence[Row]) -> list[list[Row]]:
        version = self.inner.version()
        if version is None:
            return self.inner.execute_batch(query, bindings_batch)
        batch = [dict(b or {}) for b in bindings_batch]
        results: list[Optional[list[Row]]] = [None] * len(batch)
        miss_indices: list[int] = []
        miss_keys: list[Optional[tuple[tuple, CanonicalQuery]]] = []
        for index, bindings in enumerate(batch):
            keyed = self.cache.key_for(self.inner, version, query, bindings)
            if keyed is not None:
                rows = self.cache.fetch(*keyed)
                if rows is not None:
                    self._record(hit=True)
                    results[index] = rows
                    continue
                repaired = self._try_repair(version, query, keyed[0],
                                            keyed[1], bindings)
                if repaired is not None:
                    self._record(hit=True)
                    results[index] = keyed[1].original_rows(repaired)
                    continue
                self._record(hit=False)
            miss_indices.append(index)
            miss_keys.append(keyed)
        if self.mqo is not None and any(k is not None for k in miss_keys):
            self._execute_misses_fused(query, version, batch, miss_indices,
                                       miss_keys, results)
        elif miss_indices:
            fetched = self.inner.execute_batch(query, [batch[i] for i in miss_indices])
            if len(fetched) != len(miss_indices):
                raise MixedQueryError(
                    f"source {self.inner.uri!r} answered {len(fetched)} bindings "
                    f"of a {len(miss_indices)}-binding batch"
                )
            for index, keyed, rows in zip(miss_indices, miss_keys, fetched):
                results[index] = rows
                if keyed is not None:
                    self.cache.insert(keyed[0], keyed[1], rows)
        return [rows if rows is not None else [] for rows in results]

    def _execute_misses_fused(self, query: SourceQuery, version: int,
                              batch: list[Row], miss_indices: list[int],
                              miss_keys: list, results: list) -> None:
        """Route a batch's cache misses through the MQO fusion bus.

        Keyed misses are grouped by binding schema (one bus slot per
        shape) so compatible probes from concurrent queries fuse into
        one source call; unkeyed (uncacheable) bindings ship directly.
        """
        direct: list[int] = []
        groups: dict[tuple, list[tuple[int, tuple, Row]]] = {}
        canon: Optional[CanonicalQuery] = None
        for index, keyed in zip(miss_indices, miss_keys):
            if keyed is None:
                direct.append(index)
                continue
            key, canon = keyed  # one query => one memoised canonical form
            canonical = canon.canonical_binding(batch[index])
            fusion_key = self._fusion_key(version, canon, canonical)
            groups.setdefault(fusion_key, []).append((index, key, canonical))
        if groups:
            assert canon is not None
            runner = self._fusion_runner(query, canon)
            shared = fused = 0
            for fusion_key, members in groups.items():
                fetched, s, f = self.mqo.fuse(
                    fusion_key, [(key, binding) for _, key, binding in members],
                    runner, batched=True)
                shared += s
                fused += f
                for (index, _, _), canonical_rows in zip(members, fetched):
                    results[index] = canon.original_rows(canonical_rows)
            self._record_mqo(shared, fused)
        if direct:
            fetched = self.inner.execute_batch(query, [batch[i] for i in direct])
            if len(fetched) != len(direct):
                raise MixedQueryError(
                    f"source {self.inner.uri!r} answered {len(fetched)} bindings "
                    f"of a {len(direct)}-binding batch"
                )
            for index, rows in zip(direct, fetched):
                results[index] = rows

    def peek(self, query: SourceQuery, bindings: Row) -> Optional[list[Row]]:
        """Cache-only probe (no source call, no miss recorded).

        Hits are not counted into ``local_stats`` either — the caller
        (the bind join's probe) keeps its own hit counter.
        """
        version = self.inner.version()
        if version is None:
            return None
        keyed = self.cache.key_for(self.inner, version, query, bindings)
        if keyed is None:
            return None
        rows = self.cache.fetch(keyed[0], keyed[1], record_miss=False)
        if rows is not None:
            return rows
        # A peek is the bind join's pre-probe: repairing here means the
        # dispatch that follows sees a plain hit.
        repaired = self._try_repair(version, query, keyed[0], keyed[1],
                                    bindings)
        if repaired is None:
            return None
        return keyed[1].original_rows(repaired)

    def peek_stale(self, query: SourceQuery, bindings: Row) -> Optional[list[Row]]:
        """Version-independent cache probe for graceful degradation.

        Unlike :meth:`peek` this works while ``inner.version()`` is
        unknowable (the source is down) and may return rows cached under
        an *older* version — the caller flags them as degraded.
        """
        return self.cache.fetch_stale(self.inner, query, bindings)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"CachedSource({self.inner!r})"
