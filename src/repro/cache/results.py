"""The cross-query sub-query result cache and its dispatch proxy.

The mediator's dominant cost is shipping sub-queries to sources; across
a repeated workload (the paper's data-journalism scenario: the same
fact-checking CMQs run over and over as tweets stream in) most of those
calls recompute answers the mediator has already seen.
:class:`SubQueryResultCache` memoises per-source sub-query results under
a fully canonical key::

    (source URI, source identity token, source version,
     canonical query, canonical binding)

The identity token (allocated per wrapper, never reused) keeps a cache
shared across several instances safe: two glue graphs both live under
the ``#glue`` URI, yet can never serve each other's rows.

*Source versions* make invalidation precise: every store (RDF graph,
relational tables, full-text store, JSON store) bumps a version counter
on mutation, so an update to one source orphans exactly that source's
entries — results of every other source keep serving hits, and the
orphaned entries age out of the LRU.

:class:`CachedSource` wraps a :class:`~repro.core.sources.DataSource`
with the cache for the duration of a dispatch.  ``execute`` probes once;
``execute_batch`` probes *per binding* and forwards only the misses to
the wrapped source, so a batched bind join ships IN-lists/disjunctions
built solely from uncached bindings.  Sources whose ``version()`` is
unknown (``None``) are never cached.
"""

from __future__ import annotations

import threading
from typing import Optional, Sequence

from repro.cache.keys import CanonicalQuery, canonical_query
from repro.cache.lru import CacheStats, LRUCache
from repro.core.sources import DataSource, Row, SourceQuery
from repro.errors import MixedQueryError


class SubQueryResultCache:
    """LRU of sub-query results shared by every executor of an instance."""

    #: Bound on the canonical-form memo (cleared wholesale past it, so a
    #: workload of ever-changing query texts cannot grow it unboundedly).
    MAX_CANONICAL_MEMO = 4096

    def __init__(self, max_entries: int = 4096):
        self.entries = LRUCache(max_entries)
        self._canonical: dict[SourceQuery, Optional[CanonicalQuery]] = {}
        self._lock = threading.RLock()
        # Version-independent index: logical probe (URI, token, query,
        # binding) -> the full key of the *latest* inserted entry.  It
        # powers graceful degradation — when a remote source is down its
        # current version is unknowable, yet the mediator can still find
        # the freshest rows it ever cached for the probe.
        self._stale: dict[tuple, tuple] = {}

    @staticmethod
    def _logical(key: tuple) -> tuple:
        """The full key minus the source version."""
        return (key[0], key[1], key[3], key[4])

    @property
    def stats(self) -> CacheStats:
        return self.entries.stats

    # ------------------------------------------------------------------
    def canonicalize(self, query: SourceQuery) -> Optional[CanonicalQuery]:
        """Memoised canonical form of ``query`` (None = uncacheable)."""
        try:
            with self._lock:
                if query in self._canonical:
                    return self._canonical[query]
                canon = canonical_query(query)
                if len(self._canonical) >= self.MAX_CANONICAL_MEMO:
                    self._canonical.clear()
                self._canonical[query] = canon
                return canon
        except TypeError:  # unhashable query object
            return None

    def key_for(self, source, version: int, query: SourceQuery,
                bindings: Row) -> Optional[tuple[tuple, CanonicalQuery]]:
        """The full cache key of one probe, or ``None`` when uncacheable.

        ``source`` is the raw wrapper whose URI *and* identity token
        enter the key; a wrapper without a token (a custom subclass that
        skipped ``DataSource.__init__``) is treated as uncacheable.
        """
        token = getattr(source, "cache_token", None)
        if token is None:
            return None
        canon = self.canonicalize(query)
        if canon is None:
            return None
        binding_key = canon.binding_key(bindings)
        if binding_key is None:
            return None
        return (source.uri, token, version, canon.key, binding_key), canon

    def fetch(self, key: tuple, canon: CanonicalQuery,
              record_miss: bool = True) -> Optional[list[Row]]:
        """Cached rows re-keyed for the requesting query, or ``None``."""
        stored = self.entries.get(key, record_miss=record_miss)
        if stored is None:
            return None
        return canon.original_rows(stored)

    def insert(self, key: tuple, canon: CanonicalQuery, rows: list[Row]) -> None:
        self.entries.put(key, canon.canonical_rows(rows))
        with self._lock:
            if len(self._stale) >= 2 * self.entries.max_entries:
                self._stale.clear()
            self._stale[self._logical(key)] = key

    def fetch_stale(self, source, query: SourceQuery,
                    bindings: Row) -> Optional[list[Row]]:
        """The latest rows ever cached for this probe, any version.

        Serving them is *degraded* reading: the source may have mutated
        since.  Callers must flag the result (``trace.degraded``) — this
        path exists so an outage yields flagged stale rows instead of a
        failed query.  Touches no hit/miss counters.
        """
        token = getattr(source, "cache_token", None)
        if token is None:
            return None
        canon = self.canonicalize(query)
        if canon is None:
            return None
        binding_key = canon.binding_key(bindings)
        if binding_key is None:
            return None
        with self._lock:
            key = self._stale.get((source.uri, token, canon.key, binding_key))
        if key is None:
            return None
        stored = self.entries.get(key, record_miss=False)
        if stored is None:
            return None
        return canon.original_rows(stored)

    # ------------------------------------------------------------------
    def invalidate_source(self, source_uri: str) -> int:
        """Eagerly drop every entry of one source (versioning already
        prevents stale hits; this just frees the slots)."""
        return self.entries.invalidate_where(lambda key: key[0] == source_uri)

    def clear(self) -> None:
        self.entries.clear()
        with self._lock:
            self._canonical.clear()
            self._stale.clear()

    def __len__(self) -> int:
        return len(self.entries)


class CachedSource(DataSource):
    """A dispatch proxy consulting the result cache before its source.

    Everything the executor needs (`uri`, `model`, `accepts`,
    ``estimate``, ...) delegates to the wrapped source; only
    ``execute`` / ``execute_batch`` interpose the cache.  The source
    version is snapshotted once per call, not per binding.

    ``stats`` is an optional per-executor :class:`CacheStats` receiving
    this proxy's hit/miss counts, so an execution's trace reports its
    own probes rather than a delta of the instance-wide counters (which
    other concurrent executions would pollute).
    """

    def __init__(self, inner: DataSource, cache: SubQueryResultCache,
                 stats: CacheStats | None = None,
                 stats_lock: threading.Lock | None = None):
        self.inner = inner
        self.cache = cache
        self.local_stats = stats
        # The stats object is shared by every proxy of one executor and
        # bumped from parallel dispatch threads; the (equally shared)
        # lock keeps the counters exact.
        self._stats_lock = stats_lock or threading.Lock()

    def _record(self, hit: bool) -> None:
        if self.local_stats is None:
            return
        with self._stats_lock:
            if hit:
                self.local_stats.hits += 1
            else:
                self.local_stats.misses += 1

    # -- delegation ---------------------------------------------------------
    @property
    def uri(self) -> str:  # type: ignore[override]
        return self.inner.uri

    @property
    def name(self) -> str:  # type: ignore[override]
        return self.inner.name

    @property
    def description(self) -> str:  # type: ignore[override]
        return self.inner.description

    @property
    def model(self) -> str:  # type: ignore[override]
        return self.inner.model

    @property
    def cache_token(self):  # type: ignore[override]
        return self.inner.cache_token

    def version(self) -> Optional[int]:
        return self.inner.version()

    def accepts(self, query: SourceQuery) -> bool:
        return self.inner.accepts(query)

    def estimate(self, query: SourceQuery, bound_variables: set[str] | None = None) -> float:
        return self.inner.estimate(query, bound_variables)

    def size(self) -> int:
        return self.inner.size()

    # -- cached protocol ----------------------------------------------------
    def execute(self, query: SourceQuery, bindings: Row | None = None) -> list[Row]:
        bindings = bindings or {}
        version = self.inner.version()
        if version is None:
            return self.inner.execute(query, bindings)
        keyed = self.cache.key_for(self.inner, version, query, bindings)
        if keyed is None:
            return self.inner.execute(query, bindings)
        key, canon = keyed
        rows = self.cache.fetch(key, canon)
        if rows is not None:
            self._record(hit=True)
            return rows
        self._record(hit=False)
        rows = self.inner.execute(query, bindings)
        self.cache.insert(key, canon, rows)
        return rows

    def execute_batch(self, query: SourceQuery,
                      bindings_batch: Sequence[Row]) -> list[list[Row]]:
        version = self.inner.version()
        if version is None:
            return self.inner.execute_batch(query, bindings_batch)
        batch = [dict(b or {}) for b in bindings_batch]
        results: list[Optional[list[Row]]] = [None] * len(batch)
        miss_indices: list[int] = []
        miss_keys: list[Optional[tuple[tuple, CanonicalQuery]]] = []
        for index, bindings in enumerate(batch):
            keyed = self.cache.key_for(self.inner, version, query, bindings)
            if keyed is not None:
                rows = self.cache.fetch(*keyed)
                if rows is not None:
                    self._record(hit=True)
                    results[index] = rows
                    continue
                self._record(hit=False)
            miss_indices.append(index)
            miss_keys.append(keyed)
        if miss_indices:
            fetched = self.inner.execute_batch(query, [batch[i] for i in miss_indices])
            if len(fetched) != len(miss_indices):
                raise MixedQueryError(
                    f"source {self.inner.uri!r} answered {len(fetched)} bindings "
                    f"of a {len(miss_indices)}-binding batch"
                )
            for index, keyed, rows in zip(miss_indices, miss_keys, fetched):
                results[index] = rows
                if keyed is not None:
                    self.cache.insert(keyed[0], keyed[1], rows)
        return [rows if rows is not None else [] for rows in results]

    def peek(self, query: SourceQuery, bindings: Row) -> Optional[list[Row]]:
        """Cache-only probe (no source call, no miss recorded).

        Hits are not counted into ``local_stats`` either — the caller
        (the bind join's probe) keeps its own hit counter.
        """
        version = self.inner.version()
        if version is None:
            return None
        keyed = self.cache.key_for(self.inner, version, query, bindings)
        if keyed is None:
            return None
        return self.cache.fetch(keyed[0], keyed[1], record_miss=False)

    def peek_stale(self, query: SourceQuery, bindings: Row) -> Optional[list[Row]]:
        """Version-independent cache probe for graceful degradation.

        Unlike :meth:`peek` this works while ``inner.version()`` is
        unknowable (the source is down) and may return rows cached under
        an *older* version — the caller flags them as degraded.
        """
        return self.cache.fetch_stale(self.inner, query, bindings)

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"CachedSource({self.inner!r})"
