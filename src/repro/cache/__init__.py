"""Cross-query caching for the mediator.

Sub-query results are cached under variable-renaming-invariant keys and
invalidated by per-source version counters; query plans are cached under
canonical CMQ signatures plus the catalog state.  See
:class:`~repro.cache.mediator.MediatorCache` for the entry point.
"""

from repro.cache.keys import CanonicalQuery, canonical_query
from repro.cache.lru import CacheStats, LRUCache
from repro.cache.mediator import MediatorCache
from repro.cache.plans import PlanCache, catalog_state, cmq_signature, plan_cache_key
from repro.cache.results import CachedSource, SubQueryResultCache

__all__ = [
    "CacheStats",
    "CachedSource",
    "CanonicalQuery",
    "LRUCache",
    "MediatorCache",
    "PlanCache",
    "SubQueryResultCache",
    "canonical_query",
    "catalog_state",
    "cmq_signature",
    "plan_cache_key",
]
