"""Plan caching: canonical CMQ signatures + catalog versioning.

Planning a CMQ re-estimates every atom against every candidate source;
for a repeated workload the catalog has not changed and the plan comes
out identical.  :func:`plan_cache_key` builds a key from

* the CMQ's *canonical signature* — atoms canonicalised with
  :func:`repro.cache.keys.canonical_query` and CMQ-level variables
  numbered by order of appearance, so queries equal up to variable
  renaming share a plan;
* the *catalog state* — every registered source's URI and version plus
  the glue graph's version, so any source mutation (which shifts
  cardinality estimates) or registration change re-plans;
* the planner options;
* the statistics revision — run-time cardinality feedback bumps it, so
  plans costed under superseded statistics are invalidated.

A source with an unknown version (``None``) disables plan caching
altogether rather than risk stale estimates.
"""

from __future__ import annotations

from dataclasses import astuple
from typing import Optional

from repro.cache.keys import canonical_query
from repro.cache.lru import CacheStats, LRUCache


class PlanCache:
    """LRU of :class:`~repro.core.planner.QueryPlan` objects."""

    def __init__(self, max_entries: int = 256):
        self.entries = LRUCache(max_entries)

    @property
    def stats(self) -> CacheStats:
        return self.entries.stats

    def get(self, key: tuple):
        return self.entries.get(key)

    def put(self, key: tuple, plan) -> None:
        self.entries.put(key, plan)

    def drop(self, key: tuple) -> bool:
        """Invalidate one entry (e.g. after statistics feedback)."""
        return self.entries.remove(key)

    def clear(self) -> None:
        self.entries.clear()

    def __len__(self) -> int:
        return len(self.entries)


def plan_cache_key(query, sources: dict, glue, options,
                   stats_revision: int = 0) -> Optional[tuple]:
    """The plan-cache key of ``query``, or ``None`` when uncacheable.

    ``stats_revision`` stamps the entry with the statistics snapshot the
    plan was costed under: run-time feedback bumps the revision, so a
    plan built from superseded estimates can never be served again.
    """
    signature = cmq_signature(query)
    if signature is None:
        return None
    catalog = catalog_state(sources, glue)
    if catalog is None:
        return None
    key = (signature, catalog, astuple(options), stats_revision)
    try:
        hash(key)
    except TypeError:
        return None
    return key


def catalog_state(sources: dict, glue) -> Optional[tuple]:
    """(URI, identity token, version) per source plus the glue state.

    The identity token keeps a cache shared across instances safe: two
    catalogs can register different sources under the same URI (every
    glue graph lives under ``#glue``), and a plan resolved against one
    must never be served to the other.
    """
    parts = []
    for uri in sorted(sources):
        state = _source_state(sources[uri])
        if state is None:
            return None
        parts.append((uri,) + state)
    glue_state = _source_state(glue)
    if glue_state is None:
        return None
    return tuple(parts), glue_state


def _source_state(source) -> Optional[tuple]:
    token = getattr(source, "cache_token", None)
    version = source.version()
    if token is None or version is None:
        return None
    return token, version


def cmq_signature(query) -> Optional[tuple]:
    """Canonical signature of a CMQ, invariant under variable renaming.

    CMQ-level variables are numbered by order of appearance scanning the
    atoms in body order; each atom contributes its canonical sub-query
    key, its target (URI or canonical source variable) and the mapping
    from its canonical formal positions to CMQ variables or constants.
    """
    cmq_names: dict[str, str] = {}

    def canon(name: str) -> str:
        return cmq_names.setdefault(name, f"?{len(cmq_names)}")

    atom_signatures = []
    for atom in query.atoms:
        canonical = canonical_query(atom.query)
        if canonical is None:
            return None
        if atom.source is not None:
            target = ("uri", atom.source)
        else:
            target = ("svar", canon(atom.source_variable))
        formals = (set(canonical.rename) | atom.query.output_variables()
                   | atom.query.required_parameters() | set(atom.constants))
        entries = []
        for formal in sorted(formals, key=lambda f: canonical.rename.get(f, f)):
            formal_key = canonical.rename.get(formal, formal)
            if formal in atom.constants:
                entries.append((formal_key, ("const", atom.constants[formal])))
            else:
                entries.append((formal_key,
                                ("var", canon(atom.renames.get(formal, formal)))))
        atom_signatures.append((canonical.key, target, tuple(entries)))
    head = tuple(canon(variable) for variable in query.output_variables())
    return tuple(atom_signatures), head
