"""Canonical, variable-renaming-invariant cache keys for sub-queries.

Two sub-queries that differ only in the *names* of their variables ask
the source for exactly the same rows, so they must share one cache
entry.  :func:`canonical_query` therefore rewrites every query shape
(BGP, SQL, full-text, JSON tree pattern) into a canonical structure in
which variables are numbered by order of appearance, together with the
renaming that maps the query's own variable names onto the canonical
ones.  Binding tuples and cached rows are translated through that
renaming on the way in and out of the cache, so a hit produced under one
spelling is served verbatim under another.

Canonicalisation is conservative: only the positions the mediator
treats as variables are renamed (BGP variables, ``{placeholder}``
parameters, full-text output fields, tree-pattern variables).  SQL
output *columns* are part of the statement text and stay structural.
"""

from __future__ import annotations

from typing import Optional

from repro.core.sources import (
    FullTextQuery,
    JSONQuery,
    RDFQuery,
    Row,
    SourceQuery,
    SQLQuery,
    _PLACEHOLDER_RE,
)
from repro.json.pattern import Parameter as JSONParameter
from repro.rdf.terms import Variable


class CanonicalQuery:
    """A query's canonical cache structure plus its variable renaming.

    ``key``
        hashable canonical representation (identical for queries equal
        up to variable renaming);
    ``rename``
        query variable name -> canonical name (``?0``, ``?1``, ...);
    ``inverse``
        canonical name -> query variable name (always a bijection, the
        canonical names are allocated one per distinct original name).
    """

    __slots__ = ("model", "key", "rename", "inverse")

    def __init__(self, model: str, key: tuple, rename: dict[str, str]):
        self.model = model
        self.key = (model,) + key
        self.rename = rename
        self.inverse = {canonical: original for original, canonical in rename.items()}

    def binding_key(self, bindings: Row) -> Optional[tuple]:
        """Canonical, hashable form of a binding tuple (None = uncacheable).

        Values are type-tagged: ``True``, ``1`` and ``1.0`` are equal
        (and hash alike) in Python, yet the wrappers render them
        differently at the source (``TRUE`` vs ``1`` in SQL, ``True``
        vs ``1`` in a query template) — they must never share an entry.
        """
        try:
            items = sorted((self.rename.get(name, name), _tagged(value))
                           for name, value in bindings.items())
            key = tuple(items)
            hash(key)
        except TypeError:
            return None
        return key

    def canonical_binding(self, bindings: Row) -> Row:
        """The binding dict re-keyed by canonical variable names.

        Unlike :meth:`binding_key` the values stay *raw* (no type
        tagging): this form is executable — the multi-query fusion bus
        carries bindings between isomorphic queries in it, and the
        fused call's leader translates them back through its own
        renaming via :meth:`original_binding`.
        """
        if not self.rename:
            return dict(bindings)
        return {self.rename.get(name, name): value
                for name, value in bindings.items()}

    def original_binding(self, bindings: Row) -> Row:
        """A canonical binding dict re-keyed by this query's own names."""
        if not self.rename:
            return dict(bindings)
        return {self.inverse.get(name, name): value
                for name, value in bindings.items()}

    def canonical_rows(self, rows: list[Row]) -> list[Row]:
        """Rows re-keyed by canonical variable names (for storage)."""
        if not self.rename:
            return [dict(row) for row in rows]
        return [{self.rename.get(name, name): value for name, value in row.items()}
                for row in rows]

    def original_rows(self, rows: list[Row]) -> list[Row]:
        """Fresh copies of stored rows, re-keyed by this query's names."""
        if not self.rename:
            return [dict(row) for row in rows]
        return [{self.inverse.get(name, name): value for name, value in row.items()}
                for row in rows]


def canonical_query(query: SourceQuery) -> Optional[CanonicalQuery]:
    """Canonicalise ``query``; ``None`` for unknown query types."""
    if isinstance(query, RDFQuery):
        return _canonical_rdf(query)
    if isinstance(query, SQLQuery):
        return _canonical_sql(query)
    if isinstance(query, FullTextQuery):
        return _canonical_fulltext(query)
    if isinstance(query, JSONQuery):
        return _canonical_json(query)
    return None


class _Namer:
    """Allocates ``?0``, ``?1``, ... per distinct original name."""

    def __init__(self) -> None:
        self.mapping: dict[str, str] = {}

    def __call__(self, name: str) -> str:
        return self.mapping.setdefault(name, f"?{len(self.mapping)}")


def _canonical_rdf(query: RDFQuery) -> CanonicalQuery:
    canon = _Namer()
    patterns = []
    for pattern in query.bgp.patterns:
        patterns.append(tuple(("v", canon(term.name)) if isinstance(term, Variable)
                              else term for term in pattern))
    head = tuple(canon(v.name) for v in query.bgp.head)
    return CanonicalQuery("rdf", (tuple(patterns), head, bool(query.bgp.head)),
                          canon.mapping)


def _canonical_sql(query: SQLQuery) -> CanonicalQuery:
    canon = _Namer()
    text = _PLACEHOLDER_RE.sub(lambda m: "{" + canon(m.group(1)) + "}", query.sql)
    return CanonicalQuery("sql", (text, query.output_columns), canon.mapping)


def _canonical_fulltext(query: FullTextQuery) -> CanonicalQuery:
    canon = _Namer()
    # Output variables are canonicalised in (path, name) order so that the
    # assignment does not depend on how the variables were spelled (two
    # variables on one path receive symmetric names — and identical values).
    fields = tuple((canon(variable), path)
                   for variable, path in sorted(query.output_fields,
                                                key=lambda pair: (pair[1], pair[0])))
    template = _PLACEHOLDER_RE.sub(lambda m: "{" + canon(m.group(1)) + "}",
                                   query.query_template)
    return CanonicalQuery("fulltext", (template, fields, query.limit, query.sort_by),
                          canon.mapping)


def _canonical_json(query: JSONQuery) -> CanonicalQuery:
    canon = _Namer()
    leaves = []
    for leaf in query.pattern.leaves:
        predicates = []
        for predicate in leaf.predicates:
            if isinstance(predicate.value, JSONParameter):
                predicates.append((predicate.op, ("param", canon(predicate.value.name))))
            else:
                # Tag constants with their type: 1 == True == 1.0 under
                # Python equality, but the pattern's comparison semantics
                # may distinguish them.
                predicates.append((predicate.op,
                                   ("const", type(predicate.value).__name__,
                                    predicate.value)))
        variable = canon(leaf.variable) if leaf.variable is not None else None
        leaves.append((leaf.path, variable, tuple(predicates)))
    return CanonicalQuery("json", (tuple(leaves), query.limit), canon.mapping)


def _tagged(value: object) -> tuple:
    """Recursively hashable form of a binding value, tagged by type.

    Raises ``TypeError`` (caught by :meth:`CanonicalQuery.binding_key`)
    for values that cannot be keyed deterministically.
    """
    if isinstance(value, (list, tuple)):
        return (type(value).__name__,) + tuple(_tagged(item) for item in value)
    if isinstance(value, (set, frozenset)):
        return ("set",) + tuple(sorted((_tagged(item) for item in value), key=repr))
    if isinstance(value, dict):
        return ("dict",) + tuple(sorted((key, _tagged(item))
                                        for key, item in value.items()))
    return (type(value).__name__, value)
