"""Incremental delta-join repair of cached sub-query results.

Without repair, every source mutation bumps the source version and
orphans *all* of that source's cached sub-query results at once — a
streaming ingest turns the result cache into a pure miss machine.  This
module closes the loop between the stores' typed delta journals
(:mod:`repro.core.deltas`) and the :class:`SubQueryResultCache`: on a
cache miss whose probe has an entry cached under an *older* version, the
:class:`RepairEngine` fetches the unbroken delta chain between the two
versions and, for repair-sound query shapes, evaluates the query **over
the delta alone**, appends the delta's contribution to the old rows, and
re-stamps the entry under the new version — the hot path then hits
without ever re-dispatching to the source.

Soundness is per model and deliberately conservative; anything outside
the gates falls back to plain invalidation (a recorded miss), never to a
wrong answer:

relational
    single-table SELECT without joins, aggregates, GROUP BY, HAVING,
    ORDER BY, LIMIT or DISTINCT.  Insert-only deltas *scoped to the
    queried table* are evaluated by running the very same SQL against a
    one-table delta database (reusing the wrapper's placeholder and
    post-filter semantics); deltas scoped to other tables re-stamp the
    entry verbatim — the database-wide version moved, the rows did not.
full-text
    queries without ``limit``, ``sort_by`` or a ``_score`` output (those
    depend on global corpus statistics / ranking, which every insert
    perturbs).  Insert-only deltas run against a delta store sharing the
    live store's field configs and analyzer.
json
    tree patterns without ``limit``.  Insert-only deltas run against a
    delta document store; document *upserts* are journalled as a
    distinct kind and fall back (the old copy's rows may be anywhere in
    the cached list).
rdf
    BGPs on non-entailment sources with a non-empty head.  Repair is a
    seeded semi-naive step: each delta triple is unified against each
    triple pattern and the full BGP re-evaluated over the *current*
    graph from that seed (plus the probe's own bindings), so joins
    between new and pre-existing triples are found; results are
    deduplicated against the cached rows (BGP results are distinct).

Merged rows equal a cold re-execution as a *multiset*; for relational
and JSON shapes even the order matches (inserts append).  Full-text hit
order may differ (cold results interleave by score) — cached rows are
consumed as sets by the bind joins, so this is observable only to
callers that already must not rely on order.
"""

from __future__ import annotations

import itertools
import threading
from typing import Optional

from repro.cache.keys import CanonicalQuery
from repro.cache.lru import LRUCache
from repro.core.deltas import INSERT, DeltaRecord
from repro.core.sources import (
    FullTextQuery,
    FullTextSource,
    JSONQuery,
    JSONSource,
    RDFQuery,
    RelationalSource,
    Row,
    SourceQuery,
    SQLQuery,
    _binding_term_variants,
    _PLACEHOLDER_RE,
    _to_python,
)
from repro.fulltext.store import FullTextStore
from repro.json.store import JSONDocumentStore
from repro.obs.metrics import get_registry
from repro.rdf.bgp import evaluate_bgp
from repro.rdf.terms import Variable
from repro.relational.ast import SelectStatement
from repro.relational.database import Database
from repro.relational.parser import parse_sql


class RepairStats:
    """Thread-safe counters of the engine's outcomes."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self.attempts = 0      # misses with a prior-version entry to repair
        self.repaired = 0      # entries re-stamped after delta evaluation
        self.restamped = 0     # of which: pure re-stamps (delta elsewhere)
        self.rows_appended = 0
        self.fallbacks: dict[str, int] = {}

    def attempt(self) -> None:
        with self._lock:
            self.attempts += 1

    def success(self, appended: int, pure_restamp: bool) -> None:
        with self._lock:
            self.repaired += 1
            self.rows_appended += appended
            if pure_restamp:
                self.restamped += 1

    def fallback(self, reason: str) -> None:
        with self._lock:
            self.fallbacks[reason] = self.fallbacks.get(reason, 0) + 1

    def as_dict(self) -> dict[str, object]:
        with self._lock:
            return {
                "attempts": self.attempts,
                "repaired": self.repaired,
                "restamped": self.restamped,
                "rows_appended": self.rows_appended,
                "fallbacks": dict(self.fallbacks),
            }


class RepairEngine:
    """Applies insert-only delta chains to cached sub-query results.

    One engine serves one :class:`SubQueryResultCache`; it is probed by
    every :class:`CachedSource` proxy on a cache miss.  All evaluation is
    local (delta stores built from journalled items, seeded BGP steps on
    the already-held graph) — the engine never calls a source.
    """

    #: Bound on memoised delta sources (one per (source, version span)).
    MAX_DELTA_SOURCES = 64
    #: A chain this large is cheaper to re-execute than to repair; it
    #: also bounds the seeded-BGP work (seeds x patterns).
    MAX_DELTA_ITEMS = 4096

    def __init__(self, cache) -> None:
        self.cache = cache
        self.stats = RepairStats()
        # (uri, token, pre, post) -> delta DataSource wrapper.  Shared
        # across probes and queries: one ingest batch is repaired against
        # one delta store no matter how many cached entries it touches.
        self._delta_sources = LRUCache(self.MAX_DELTA_SOURCES)
        self._delta_lock = threading.Lock()

    # ------------------------------------------------------------------
    def repair(self, source, version: int, query: SourceQuery, key: tuple,
               canon: CanonicalQuery, bindings: Row) -> Optional[list[Row]]:
        """Repair the probe's latest prior entry up to ``version``.

        On success the merged rows are inserted under ``key`` (stamping
        the entry at the current version) and returned in *canonical*
        variable names; ``None`` means "fall back to a plain miss".
        Never raises: any evaluation error is a counted fallback.
        """
        prior = self.cache.prior_entry(key)
        if prior is None:
            return None
        prior_key, stored = prior
        pre = prior_key[2]
        if not isinstance(pre, int) or not isinstance(version, int) \
                or pre >= version:
            return None
        self.stats.attempt()
        records = source.deltas_since(pre, version)
        if records is None:
            self.stats.fallback("no_journal")
            return None
        try:
            merged = self._apply(source, query, canon, bindings, stored,
                                 records)
        except Exception:  # noqa: BLE001 - repair must never break reads
            self.stats.fallback("error")
            return None
        if merged is None:
            return None
        self.cache.insert_canonical(key, merged)
        appended = len(merged) - len(stored)
        self.stats.success(appended, pure_restamp=merged is stored)
        registry = get_registry()
        registry.counter("cache_repairs_total").inc()
        registry.counter("cache_repair_rows_total").inc(appended)
        return merged

    # ------------------------------------------------------------------
    def _apply(self, source, query: SourceQuery, canon: CanonicalQuery,
               bindings: Row, stored: list[Row],
               records: list[DeltaRecord]) -> Optional[list[Row]]:
        """Dispatch on the query model; returns merged canonical rows.

        Returning ``stored`` itself signals a pure re-stamp.
        """
        if sum(len(r.items) for r in records) > self.MAX_DELTA_ITEMS:
            self.stats.fallback("delta_too_large")
            return None
        if isinstance(query, SQLQuery):
            return self._apply_sql(source, query, canon, bindings, stored,
                                   records)
        if isinstance(query, FullTextQuery):
            return self._apply_fulltext(source, query, canon, bindings,
                                        stored, records)
        if isinstance(query, JSONQuery):
            return self._apply_json(source, query, canon, bindings, stored,
                                    records)
        if isinstance(query, RDFQuery):
            return self._apply_rdf(source, query, canon, bindings, stored,
                                   records)
        self.stats.fallback("shape")
        return None

    # -- relational ----------------------------------------------------------
    def _apply_sql(self, source, query: SQLQuery, canon: CanonicalQuery,
                   bindings: Row, stored: list[Row],
                   records: list[DeltaRecord]) -> Optional[list[Row]]:
        statement = _simple_select(query.sql)
        if statement is None:
            self.stats.fallback("shape")
            return None
        table = statement.table.name.lower()
        relevant = [r for r in records if r.scope is None or r.scope == table]
        if not relevant:
            # The database version moved, the queried table did not:
            # yesterday's rows are today's rows.
            return stored
        if any(r.kind != INSERT for r in relevant):
            self.stats.fallback("removals")
            return None
        delta = self._delta_source(
            source, records[0].pre_version, records[-1].post_version,
            lambda: _sql_delta_source(source, records))
        rows = delta.execute(query, bindings)
        # Inserts append in the base table too, so stored + delta rows
        # reproduces a cold re-execution's order exactly.
        return stored + canon.canonical_rows(rows)

    # -- full-text -----------------------------------------------------------
    def _apply_fulltext(self, source, query: FullTextQuery,
                        canon: CanonicalQuery, bindings: Row,
                        stored: list[Row],
                        records: list[DeltaRecord]) -> Optional[list[Row]]:
        if query.limit is not None or query.sort_by is not None \
                or "_score" in query.fields().values():
            # Ranking, truncation and scores depend on corpus-global
            # statistics every insert perturbs.
            self.stats.fallback("shape")
            return None
        if any(r.kind != INSERT for r in records):
            self.stats.fallback("removals")
            return None
        delta = self._delta_source(
            source, records[0].pre_version, records[-1].post_version,
            lambda: _fulltext_delta_source(source, records))
        rows = delta.execute(query, bindings)
        return stored + canon.canonical_rows(rows)

    # -- json ----------------------------------------------------------------
    def _apply_json(self, source, query: JSONQuery, canon: CanonicalQuery,
                    bindings: Row, stored: list[Row],
                    records: list[DeltaRecord]) -> Optional[list[Row]]:
        if query.limit is not None:
            self.stats.fallback("shape")
            return None
        if any(r.kind != INSERT for r in records):
            # Removals and upserts may change or reorder old rows.
            self.stats.fallback("removals")
            return None
        delta = self._delta_source(
            source, records[0].pre_version, records[-1].post_version,
            lambda: _json_delta_source(source, records))
        rows = delta.execute(query, bindings)
        # New documents carry higher insertion ranks, so appending keeps
        # the matcher's rank order — identical to a cold re-execution.
        return stored + canon.canonical_rows(rows)

    # -- rdf -----------------------------------------------------------------
    def _apply_rdf(self, source, query: RDFQuery, canon: CanonicalQuery,
                   bindings: Row, stored: list[Row],
                   records: list[DeltaRecord]) -> Optional[list[Row]]:
        if getattr(source, "entailment", False) or not query.bgp.head:
            # Entailment: one explicit triple can derive unbounded new
            # facts; head-less (ASK-style) shapes are not row streams.
            self.stats.fallback("shape")
            return None
        if any(r.kind != INSERT for r in records):
            self.stats.fallback("removals")
            return None
        graph = source.graph
        bgp = query.bgp
        delta_triples = [t for r in records for t in r.items]
        if len(delta_triples) * max(1, len(bgp.patterns)) > self.MAX_DELTA_ITEMS:
            self.stats.fallback("delta_too_large")
            return None
        # Mirror RDFSource.execute: probe every numeric/CURIE spelling of
        # the probe's bindings.
        bound = [(variable, _binding_term_variants(bindings[variable.name]))
                 for variable in bgp.variables() if variable.name in bindings]
        combos = list(itertools.product(*(terms for _, terms in bound))) \
            if bound else [()]
        seen = {frozenset(row.items()) for row in stored}
        merged = list(stored)
        rename = canon.rename
        for triple in delta_triples:
            for pattern in bgp.patterns:
                seed = _unify(pattern, triple)
                if seed is None:
                    continue
                for combo in combos:
                    initial = dict(seed)
                    compatible = True
                    for (variable, _), term in zip(bound, combo):
                        held = initial.get(variable, term)
                        if held != term:
                            compatible = False
                            break
                        initial[variable] = term
                    if not compatible:
                        continue
                    for result in evaluate_bgp(bgp, graph,
                                               initial_binding=initial):
                        row = {rename.get(v.name, v.name): _to_python(t)
                               for v, t in result.items()}
                        fingerprint = frozenset(row.items())
                        if fingerprint in seen:
                            continue
                        seen.add(fingerprint)
                        merged.append(row)
        if len(merged) == len(stored):
            return stored
        return merged

    # ------------------------------------------------------------------
    def _delta_source(self, source, pre: int, post: int, build):
        """Memoised delta wrapper for one (source, version-span) pair."""
        key = (source.uri, source.cache_token, pre, post)
        with self._delta_lock:
            cached = self._delta_sources.get(key, record_miss=False)
            if cached is not None:
                return cached
        built = build()
        with self._delta_lock:
            cached = self._delta_sources.get(key, record_miss=False)
            if cached is not None:
                return cached
            self._delta_sources.put(key, built)
        return built


# ---------------------------------------------------------------------------
# Delta-store construction (one per version span, memoised by the engine)
# ---------------------------------------------------------------------------

def _sql_delta_source(source: RelationalSource,
                      records: list[DeltaRecord]) -> RelationalSource:
    """A one-off database holding only the chain's inserted rows.

    Every table with journalled inserts is created under the live
    schema, so any simple single-table SELECT of the workload can run
    against it unmodified.
    """
    delta_db = Database(f"{source.database.name}+delta")
    for record in records:
        if record.kind != INSERT or record.scope is None or not record.items:
            continue
        if not delta_db.has_table(record.scope):
            delta_db.create_table(source.database.table(record.scope).schema)
        delta_db.table(record.scope).insert_many(record.items)
    return RelationalSource(source.uri, delta_db, name=source.name)


def _fulltext_delta_source(source: FullTextSource,
                           records: list[DeltaRecord]) -> FullTextSource:
    store = source.store
    delta_store = FullTextStore(f"{store.name}+delta",
                                fields=store.field_configs(),
                                default_field=store.default_field,
                                id_field=store.id_field,
                                analyzer=store.analyzer)
    delta_store.add_all([doc for r in records for doc in r.items])
    return FullTextSource(source.uri, delta_store, name=source.name)


def _json_delta_source(source: JSONSource,
                       records: list[DeltaRecord]) -> JSONSource:
    store = source.store
    delta_store = JSONDocumentStore(f"{store.name}+delta",
                                    id_field=store.id_field,
                                    text_path=store.text_path)
    delta_store.add_all([doc for r in records for doc in r.items])
    return JSONSource(source.uri, delta_store, name=source.name)


# ---------------------------------------------------------------------------
# Shape gates and helpers
# ---------------------------------------------------------------------------

#: Memo of parsed placeholder-neutralised SQL shapes (text -> statement
#: or False for "not repair-simple").
_SQL_SHAPE_MEMO = LRUCache(256)


def _simple_select(sql: str) -> Optional[SelectStatement]:
    """Parse ``sql`` and return it only when repair-appendable.

    Placeholders are neutralised to ``NULL`` first — the *structure*
    (joins, aggregates, grouping, ordering, truncation) does not depend
    on the bound values.
    """
    memo = _SQL_SHAPE_MEMO.get(sql, record_miss=False)
    if memo is not None:
        return memo or None
    statement = _parse_simple_select(sql)
    _SQL_SHAPE_MEMO.put(sql, statement if statement is not None else False)
    return statement


def _parse_simple_select(sql: str) -> Optional[SelectStatement]:
    try:
        statement = parse_sql(_PLACEHOLDER_RE.sub("NULL", sql))
    except Exception:  # noqa: BLE001 - unparsable => not repairable
        return None
    if not isinstance(statement, SelectStatement) or statement.table is None:
        return None
    if statement.joins or statement.group_by or statement.having is not None \
            or statement.order_by or statement.limit is not None \
            or statement.distinct:
        return None
    for item in statement.items:
        if not item.star and item.expression.aggregates():
            return None
    return statement


def _unify(pattern, triple) -> Optional[dict]:
    """Bind a triple pattern against one concrete triple (None = no match)."""
    binding: dict = {}
    for term, value in ((pattern.subject, triple.subject),
                        (pattern.predicate, triple.predicate),
                        (pattern.obj, triple.obj)):
        if isinstance(term, Variable):
            held = binding.get(term, value)
            if held != value:
                return None
            binding[term] = value
        elif term != value:
            return None
    return binding
