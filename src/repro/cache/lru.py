"""A small thread-safe LRU cache with hit/miss statistics.

Both mediator caches (sub-query results, query plans) sit on this map.
Entries are keyed by fully canonical tuples built in
:mod:`repro.cache.keys` / :mod:`repro.cache.plans`; the LRU itself is
policy-free.  Executors may probe it from parallel dispatch threads, so
every operation takes the internal lock.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass, replace
from typing import Callable, Hashable, Optional


@dataclass
class CacheStats:
    """Counters accumulated over the lifetime of one cache."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    evictions: int = 0
    invalidations: int = 0

    @property
    def probes(self) -> int:
        return self.hits + self.misses

    @property
    def hit_rate(self) -> float:
        """Fraction of probes answered from the cache (0.0 when unprobed)."""
        return self.hits / self.probes if self.probes else 0.0

    def snapshot(self) -> "CacheStats":
        """An independent copy (used to compute per-execution deltas)."""
        return replace(self)

    def as_dict(self) -> dict[str, object]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "insertions": self.insertions,
            "evictions": self.evictions,
            "invalidations": self.invalidations,
            "hit_rate": round(self.hit_rate, 4),
        }


class LRUCache:
    """Bounded mapping with least-recently-used eviction.

    ``get`` refreshes recency; ``put`` evicts the oldest entries once
    ``max_entries`` is exceeded.  ``record_miss=False`` supports *peek*
    probes (e.g. the bind-join pre-probe) that should not inflate the
    miss counter of a binding that will be probed again at dispatch.

    ``on_evict(key, value)`` is invoked for every entry leaving the
    cache (LRU eviction, :meth:`remove`, :meth:`invalidate_where`,
    :meth:`clear`) — but never for a :meth:`put` refreshing an existing
    key.  Callbacks run *after* the internal lock is released, so they
    may take other locks (the result cache uses this to keep its stale
    degradation index pointing only at live entries).
    """

    def __init__(self, max_entries: int = 1024,
                 on_evict: Callable[[Hashable, object], None] | None = None):
        self.max_entries = max(1, max_entries)
        self._entries: OrderedDict[Hashable, object] = OrderedDict()
        self._lock = threading.RLock()
        self.stats = CacheStats()
        self._on_evict = on_evict

    def _notify(self, evicted: list[tuple[Hashable, object]]) -> None:
        if self._on_evict is not None:
            for key, value in evicted:
                self._on_evict(key, value)

    def get(self, key: Hashable, record_miss: bool = True) -> Optional[object]:
        """The cached value, or ``None`` (values themselves are never None)."""
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self.stats.hits += 1
                return self._entries[key]
            if record_miss:
                self.stats.misses += 1
            return None

    def put(self, key: Hashable, value: object) -> None:
        """Insert (or refresh) an entry, evicting the oldest past capacity."""
        evicted: list[tuple[Hashable, object]] = []
        with self._lock:
            if key in self._entries:
                self._entries.move_to_end(key)
                self._entries[key] = value
                return
            self._entries[key] = value
            self.stats.insertions += 1
            while len(self._entries) > self.max_entries:
                evicted.append(self._entries.popitem(last=False))
                self.stats.evictions += 1
        self._notify(evicted)

    def remove(self, key: Hashable) -> bool:
        """Drop one entry; True when it was present."""
        with self._lock:
            if key in self._entries:
                value = self._entries.pop(key)
                self.stats.invalidations += 1
            else:
                return False
        self._notify([(key, value)])
        return True

    def invalidate_where(self, predicate: Callable[[Hashable], bool]) -> int:
        """Drop every entry whose key satisfies ``predicate``."""
        with self._lock:
            doomed = [(key, value) for key, value in self._entries.items()
                      if predicate(key)]
            for key, _ in doomed:
                del self._entries[key]
            self.stats.invalidations += len(doomed)
        self._notify(doomed)
        return len(doomed)

    def clear(self) -> None:
        with self._lock:
            dropped = list(self._entries.items())
            self.stats.invalidations += len(dropped)
            self._entries.clear()
        self._notify(dropped)

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._entries
