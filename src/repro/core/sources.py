"""Data-source wrappers and per-model sub-query descriptions.

A mixed instance ``I = (G, D)`` contains sources of different data models,
"each of which resides within a system providing some query capabilities
over its data" (paper §1).  Each wrapper here adapts one substrate
(RDF graph, relational database, full-text store, JSON document store)
to the mediator's protocol:

* :meth:`DataSource.execute` takes a :class:`SourceQuery` plus the current
  binding tuple and returns binding rows (variable name → Python value);
* :meth:`DataSource.estimate` returns a cardinality estimate used by the
  planner's "most selective sub-queries first" rule.
"""

from __future__ import annotations

import re
import string
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional

from repro.errors import MixedQueryError
from repro.fulltext.store import FullTextStore
from repro.json.matcher import TreePatternMatcher
from repro.json.parser import parse_pattern
from repro.json.pattern import Parameter as JSONParameter, TreePattern
from repro.json.store import JSONDocumentStore
from repro.rdf.bgp import BGPQuery, evaluate_bgp
from repro.rdf.entailment import saturate
from repro.rdf.graph import Graph
from repro.rdf.sparql import parse_bgp
from repro.rdf.terms import Literal, Term, URI, Variable, literal, uri
from repro.relational.database import Database

#: A binding row at the mediator level: variable name -> Python value.
Row = dict[str, object]

_PLACEHOLDER_RE = re.compile(r"\{([A-Za-z_][\w]*)\}")


# ---------------------------------------------------------------------------
# Sub-query descriptions
# ---------------------------------------------------------------------------

class SourceQuery:
    """Base class for the per-model sub-queries embedded in a CMQ."""

    def output_variables(self) -> set[str]:
        """Variables this sub-query can bind."""
        raise NotImplementedError

    def required_parameters(self) -> set[str]:
        """Variables that must already be bound before execution."""
        return set()

    def pushable_parameters(self) -> set[str]:
        """Variables whose bindings the source can use to restrict results."""
        return self.output_variables()

    def compatible_models(self) -> set[str]:
        """Data models able to evaluate this sub-query."""
        raise NotImplementedError


@dataclass(frozen=True)
class RDFQuery(SourceQuery):
    """A BGP over an RDF source (or the glue graph).

    Variables of the BGP become mediator variables of the same name.
    """

    bgp: BGPQuery

    @classmethod
    def from_text(cls, sparql_text: str, name: str = "q") -> "RDFQuery":
        """Build from a SPARQL SELECT string (conjunctive subset)."""
        return cls(bgp=parse_bgp(sparql_text, name=name))

    def output_variables(self) -> set[str]:
        return {v.name for v in self.bgp.output_variables()}

    def compatible_models(self) -> set[str]:
        return {"rdf"}

    def __str__(self) -> str:  # pragma: no cover - trivial
        return str(self.bgp)


@dataclass(frozen=True)
class SQLQuery(SourceQuery):
    """A SQL SELECT over a relational source.

    The statement's output column names (aliases) become mediator
    variables.  ``{var}`` placeholders in the text are replaced with the
    SQL literal of the current binding of ``var`` (these are the
    sub-query's *required parameters*); bindings on plain output columns
    are applied as post-filters by the wrapper.
    """

    sql: str
    output_columns: tuple[str, ...] = ()

    def output_variables(self) -> set[str]:
        if self.output_columns:
            return set(self.output_columns)
        return set(_infer_sql_outputs(self.sql))

    def required_parameters(self) -> set[str]:
        return set(_PLACEHOLDER_RE.findall(self.sql))

    def compatible_models(self) -> set[str]:
        return {"relational"}

    def __str__(self) -> str:  # pragma: no cover - trivial
        return " ".join(self.sql.split())


@dataclass(frozen=True)
class FullTextQuery(SourceQuery):
    """A Solr-like query over a full-text source.

    ``query_template`` may contain ``{var}`` placeholders (required
    parameters); ``output_fields`` maps mediator variables to dotted
    document paths.
    """

    query_template: str
    output_fields: tuple[tuple[str, str], ...]
    limit: Optional[int] = None
    sort_by: Optional[str] = None

    @classmethod
    def create(cls, query_template: str, output_fields: dict[str, str],
               limit: int | None = None, sort_by: str | None = None) -> "FullTextQuery":
        """Convenience constructor accepting a dict of output fields."""
        return cls(query_template=query_template,
                   output_fields=tuple(sorted(output_fields.items())),
                   limit=limit, sort_by=sort_by)

    def fields(self) -> dict[str, str]:
        """Output fields as a dict (variable -> document path)."""
        return dict(self.output_fields)

    def output_variables(self) -> set[str]:
        return {variable for variable, _ in self.output_fields}

    def required_parameters(self) -> set[str]:
        return set(_PLACEHOLDER_RE.findall(self.query_template))

    def compatible_models(self) -> set[str]:
        return {"fulltext"}

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.query_template


@dataclass(frozen=True)
class JSONQuery(SourceQuery):
    """A tree pattern over a JSON document source.

    The pattern's ``?variables`` become mediator variables of the same
    name; its ``{parameters}`` are required parameters, filled with the
    current binding before evaluation (like ``{var}`` placeholders in SQL
    and full-text sub-queries).  Bindings on plain output variables are
    *pushed down* to the source's path indexes instead of being
    post-filtered.
    """

    pattern: TreePattern
    limit: Optional[int] = None

    @classmethod
    def from_text(cls, pattern_text: str, limit: int | None = None) -> "JSONQuery":
        """Build from the textual tree-pattern syntax."""
        return cls(pattern=parse_pattern(pattern_text), limit=limit)

    def output_variables(self) -> set[str]:
        return self.pattern.variables()

    def required_parameters(self) -> set[str]:
        return self.pattern.parameters()

    def compatible_models(self) -> set[str]:
        return {"json"}

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.pattern.to_text()


# ---------------------------------------------------------------------------
# Source wrappers
# ---------------------------------------------------------------------------

class DataSource:
    """Base class of the mediator's source wrappers."""

    model = "abstract"

    def __init__(self, source_uri: str, name: str | None = None,
                 description: str = ""):
        self.uri = source_uri
        self.name = name or source_uri.rsplit("/", 1)[-1]
        self.description = description

    # -- protocol -----------------------------------------------------------
    def execute(self, query: SourceQuery, bindings: Row | None = None) -> list[Row]:
        """Evaluate ``query`` with the given bindings and return rows."""
        raise NotImplementedError

    def estimate(self, query: SourceQuery, bound_variables: set[str] | None = None) -> float:
        """Estimated number of rows the sub-query would return."""
        raise NotImplementedError

    def accepts(self, query: SourceQuery) -> bool:
        """True when this source can evaluate ``query``."""
        return self.model in query.compatible_models()

    def size(self) -> int:
        """Number of base items (triples, rows, documents) in the source."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(uri={self.uri!r}, size={self.size()})"


class RDFSource(DataSource):
    """Wrapper around an RDF graph source (DBPedia-like, IGN-like, glue)."""

    model = "rdf"

    def __init__(self, source_uri: str, graph: Graph, name: str | None = None,
                 description: str = "", entailment: bool = False):
        super().__init__(source_uri, name or graph.name, description)
        self.graph = graph
        self.entailment = entailment
        self._saturated: Graph | None = None

    def _effective_graph(self) -> Graph:
        if not self.entailment:
            return self.graph
        if self._saturated is None or len(self._saturated) < len(self.graph):
            self._saturated, _ = saturate(self.graph)
        return self._saturated

    def invalidate(self) -> None:
        """Forget the cached saturation (call after updating the graph)."""
        self._saturated = None

    def execute(self, query: SourceQuery, bindings: Row | None = None) -> list[Row]:
        if not isinstance(query, RDFQuery):
            raise MixedQueryError(f"RDF source {self.uri} cannot evaluate {type(query).__name__}")
        bindings = bindings or {}
        graph = self._effective_graph()
        initial: dict[Variable, Term] = {}
        for variable in query.bgp.variables():
            if variable.name in bindings:
                initial[variable] = _to_rdf_term(bindings[variable.name])
        results = evaluate_bgp(query.bgp, graph, initial_binding=initial)
        rows: list[Row] = []
        for result in results:
            rows.append({v.name: _to_python(t) for v, t in result.items()})
        return rows

    def estimate(self, query: SourceQuery, bound_variables: set[str] | None = None) -> float:
        if not isinstance(query, RDFQuery):
            return float("inf")
        graph = self._effective_graph()
        bound_variables = bound_variables or set()
        estimate = float(len(graph))
        for p in query.bgp.patterns:
            estimate = min(estimate, float(graph.count(p)) or 1.0)
        for variable in query.output_variables() & bound_variables:
            estimate = max(1.0, estimate / 10.0)
        return estimate

    def size(self) -> int:
        return len(self.graph)


class RelationalSource(DataSource):
    """Wrapper around a relational database source (INSEE-like)."""

    model = "relational"

    def __init__(self, source_uri: str, database: Database, name: str | None = None,
                 description: str = ""):
        super().__init__(source_uri, name or database.name, description)
        self.database = database

    def execute(self, query: SourceQuery, bindings: Row | None = None) -> list[Row]:
        if not isinstance(query, SQLQuery):
            raise MixedQueryError(
                f"relational source {self.uri} cannot evaluate {type(query).__name__}"
            )
        bindings = bindings or {}
        sql = _fill_placeholders(query.sql, bindings, quote=_sql_literal)
        result = self.database.execute(sql)
        rows = [dict(zip(result.columns, row)) for row in result.rows]
        # Post-filter on bindings over output columns the SQL did not consume.
        filters = {k: v for k, v in bindings.items()
                   if k in query.output_variables() and k not in query.required_parameters()}
        if filters:
            rows = [r for r in rows if all(r.get(k) == v for k, v in filters.items())]
        return rows

    def estimate(self, query: SourceQuery, bound_variables: set[str] | None = None) -> float:
        if not isinstance(query, SQLQuery):
            return float("inf")
        bound_variables = bound_variables or set()
        table_names = _referenced_tables(query.sql)
        estimate = 1.0
        for table_name in table_names:
            if self.database.has_table(table_name):
                estimate *= max(1, len(self.database.table(table_name)))
        if " where " in query.sql.lower():
            estimate = max(1.0, estimate / 10.0)
        for _ in query.output_variables() & bound_variables:
            estimate = max(1.0, estimate / 10.0)
        for _ in query.required_parameters():
            estimate = max(1.0, estimate / 10.0)
        return estimate

    def size(self) -> int:
        return sum(len(t) for t in self.database.tables())


class FullTextSource(DataSource):
    """Wrapper around a Solr-like full-text store (tweets, Facebook posts)."""

    model = "fulltext"

    def __init__(self, source_uri: str, store: FullTextStore, name: str | None = None,
                 description: str = ""):
        super().__init__(source_uri, name or store.name, description)
        self.store = store

    def execute(self, query: SourceQuery, bindings: Row | None = None) -> list[Row]:
        if not isinstance(query, FullTextQuery):
            raise MixedQueryError(
                f"full-text source {self.uri} cannot evaluate {type(query).__name__}"
            )
        bindings = bindings or {}
        text = _fill_placeholders(query.query_template, bindings, quote=_fulltext_literal)
        result = self.store.search(text, limit=query.limit, sort_by=query.sort_by)
        fields = query.fields()
        rows: list[Row] = []
        for hit in result.hits:
            row: Row = {}
            for variable, path in fields.items():
                if path == "_score":
                    row[variable] = hit.score
                else:
                    row[variable] = _scalarize(hit.get(path))
            rows.append(row)
        # Post-filter on bindings over output variables (exact, lowercase-insensitive
        # for strings, mirroring keyword-field behaviour).
        filters = {k: v for k, v in bindings.items()
                   if k in query.output_variables() and k not in query.required_parameters()}
        if filters:
            rows = [r for r in rows if all(_loose_equal(r.get(k), v) for k, v in filters.items())]
        return rows

    def estimate(self, query: SourceQuery, bound_variables: set[str] | None = None) -> float:
        if not isinstance(query, FullTextQuery):
            return float("inf")
        bound_variables = bound_variables or set()
        if query.limit is not None:
            base = float(query.limit)
        else:
            base = float(len(self.store))
        template = query.query_template
        constants = sum(1 for part in template.split()
                        if ":" in part and "{" not in part and part != "*:*")
        for _ in range(constants):
            base = max(1.0, base / 20.0)
        for _ in query.required_parameters():
            base = max(1.0, base / 20.0)
        for _ in query.output_variables() & bound_variables:
            base = max(1.0, base / 10.0)
        return base

    def size(self) -> int:
        return len(self.store)


class JSONSource(DataSource):
    """Wrapper around a JSON document store queried with tree patterns."""

    model = "json"

    def __init__(self, source_uri: str, store: JSONDocumentStore,
                 name: str | None = None, description: str = ""):
        super().__init__(source_uri, name or store.name, description)
        self.store = store
        self.matcher = TreePatternMatcher(store)

    def execute(self, query: SourceQuery, bindings: Row | None = None) -> list[Row]:
        if not isinstance(query, JSONQuery):
            raise MixedQueryError(
                f"JSON source {self.uri} cannot evaluate {type(query).__name__}"
            )
        bindings = bindings or {}
        parameters: Row = {}
        for name in query.required_parameters():
            if name not in bindings:
                raise MixedQueryError(
                    f"sub-query parameter {{{name}}} is not bound; required parameters "
                    "must be produced by an earlier sub-query or a constant"
                )
            parameters[name] = bindings[name]
        # Bindings on plain output variables become index-backed equality
        # pushdowns (matching rows are aligned to the incoming value, so
        # the mediator's exact-equality joins accept them).
        pushdown = {variable: value for variable, value in bindings.items()
                    if variable in query.output_variables()
                    and variable not in parameters}
        return self.matcher.match(query.pattern, parameters=parameters,
                                  pushdown=pushdown, limit=query.limit)

    def estimate(self, query: SourceQuery, bound_variables: set[str] | None = None) -> float:
        if not isinstance(query, JSONQuery):
            return float("inf")
        bound_variables = bound_variables or set()
        guide = self.store.dataguide()
        estimate = float(len(self.store))
        for leaf in query.pattern.leaves:
            index = self.store.index_for(leaf.path)
            if index is None:
                # Interior (non-leaf) path: only presence statistics exist.
                present = len(self.store.doc_ids_with_path(leaf.path))
                if present == 0:
                    # Never observed anywhere: nothing can match.
                    return 0.0
                estimate = min(estimate, float(present))
                continue
            # Structural selectivity from the dataguide (path coverage),
            # refined by value-level index statistics below.
            leaf_estimate = guide.coverage(leaf.path) * guide.document_count
            leaf_estimate = min(leaf_estimate, float(index.document_count))
            for predicate in leaf.predicates:
                if isinstance(predicate.value, JSONParameter):
                    leaf_estimate = min(leaf_estimate, index.average_postings())
                elif predicate.op == "=":
                    leaf_estimate = min(leaf_estimate,
                                        float(len(index.lookup_eq(predicate.value))))
                elif predicate.op != "!=":
                    leaf_estimate = min(leaf_estimate,
                                        float(len(index.lookup_cmp(predicate.op,
                                                                   predicate.value))))
            if leaf.variable is not None and leaf.variable in bound_variables:
                leaf_estimate = min(leaf_estimate, index.average_postings())
            estimate = min(estimate, leaf_estimate)
        if any(leaf.constant_equality() is not None for leaf in query.pattern.leaves):
            # The per-path indexes can answer the conjunction of constant
            # predicates exactly (candidate-set intersection), which beats
            # the independent per-leaf minima above.
            estimate = min(estimate, float(len(self.matcher.candidates(query.pattern))))
        if query.limit is not None:
            estimate = min(estimate, float(query.limit))
        return estimate

    def size(self) -> int:
        return len(self.store)


# ---------------------------------------------------------------------------
# Value conversions
# ---------------------------------------------------------------------------

def _to_rdf_term(value: object) -> Term:
    if isinstance(value, (URI, Literal)):
        return value
    if isinstance(value, str) and value.startswith(("http://", "https://", "urn:")):
        return uri(value)
    return literal(value)


def _to_python(term: object) -> object:
    if isinstance(term, URI):
        return term.value
    if isinstance(term, Literal):
        return term.to_python()
    return term


def _scalarize(value: Any) -> object:
    if isinstance(value, list):
        if len(value) == 1:
            return value[0]
        return tuple(value)
    return value


def _loose_equal(left: object, right: object) -> bool:
    if left == right:
        return True
    if isinstance(left, str) and isinstance(right, str):
        return left.lower() == right.lower()
    if isinstance(left, tuple):
        return any(_loose_equal(item, right) for item in left)
    return False


def _fill_placeholders(template: str, bindings: Row, quote) -> str:
    def replace(match: re.Match) -> str:
        name = match.group(1)
        if name not in bindings:
            raise MixedQueryError(
                f"sub-query parameter {{{name}}} is not bound; required parameters "
                "must be produced by an earlier sub-query or a constant"
            )
        return quote(bindings[name])

    return _PLACEHOLDER_RE.sub(replace, template)


def _sql_literal(value: object) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return str(value)
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"


def _fulltext_literal(value: object) -> str:
    text = str(value)
    if any(ch.isspace() for ch in text):
        return f'"{text}"'
    return text


def _infer_sql_outputs(sql: str) -> list[str]:
    """Best-effort extraction of output column names from a SELECT."""
    match = re.search(r"select\s+(distinct\s+)?(.*?)\s+from\s", sql, re.IGNORECASE | re.DOTALL)
    if not match:
        return []
    outputs = []
    for item in _split_top_level(match.group(2)):
        item = item.strip()
        alias_match = re.search(r"\s+as\s+([A-Za-z_][\w]*)\s*$", item, re.IGNORECASE)
        if alias_match:
            outputs.append(alias_match.group(1))
            continue
        if item == "*":
            continue
        last = item.split(".")[-1].strip()
        if all(ch in string.ascii_letters + string.digits + "_" for ch in last):
            outputs.append(last)
    return outputs


def _split_top_level(text: str) -> list[str]:
    parts, depth, current = [], 0, []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if current:
        parts.append("".join(current))
    return parts


def _referenced_tables(sql: str) -> list[str]:
    return re.findall(r"\b(?:from|join)\s+([A-Za-z_][\w]*)", sql, re.IGNORECASE)
