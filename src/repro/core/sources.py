"""Data-source wrappers and per-model sub-query descriptions.

A mixed instance ``I = (G, D)`` contains sources of different data models,
"each of which resides within a system providing some query capabilities
over its data" (paper §1).  Each wrapper here adapts one substrate
(RDF graph, relational database, full-text store, JSON document store)
to the mediator's protocol:

* :meth:`DataSource.execute` takes a :class:`SourceQuery` plus the current
  binding tuple and returns binding rows (variable name → Python value);
* :meth:`DataSource.estimate` returns a cardinality estimate used by the
  planner's "most selective sub-queries first" rule.
"""

from __future__ import annotations

import functools
import itertools
import re
import string
import threading
import time
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Any, Iterable, Optional, Sequence

from repro.errors import MixedQueryError
from repro.fulltext.store import FullTextStore
from repro.obs.metrics import get_registry
from repro.json.accel import structural_row_estimate as accel_structural_row_estimate
from repro.json.matcher import TreePatternMatcher
from repro.json.parser import parse_pattern
from repro.json.pattern import Parameter as JSONParameter, TreePattern
from repro.json.store import JSONDocumentStore
from repro.rdf.bgp import BGPQuery, evaluate_bgp
from repro.rdf.entailment import saturate, saturate_delta
from repro.rdf.graph import Graph
from repro.rdf.schema import RDFSchema
from repro.rdf.sparql import parse_bgp
from repro.rdf.terms import Literal, Term, URI, Variable, literal, uri
from repro.relational.database import Database

#: A binding row at the mediator level: variable name -> Python value.
Row = dict[str, object]

_PLACEHOLDER_RE = re.compile(r"\{([A-Za-z_][\w]*)\}")

#: CURIE shape: letter-led prefix, exactly one colon — timestamps and
#: clock values ("2016-09-01T12:00:00") must not qualify.
_CURIE_RE = re.compile(r"[A-Za-z][\w.-]*:[^\s:]+")


# ---------------------------------------------------------------------------
# Sub-query descriptions
# ---------------------------------------------------------------------------

class SourceQuery:
    """Base class for the per-model sub-queries embedded in a CMQ."""

    def output_variables(self) -> set[str]:
        """Variables this sub-query can bind."""
        raise NotImplementedError

    def required_parameters(self) -> set[str]:
        """Variables that must already be bound before execution."""
        return set()

    def pushable_parameters(self) -> set[str]:
        """Variables whose bindings the source can use to restrict results."""
        return self.output_variables()

    def compatible_models(self) -> set[str]:
        """Data models able to evaluate this sub-query."""
        raise NotImplementedError


@dataclass(frozen=True)
class RDFQuery(SourceQuery):
    """A BGP over an RDF source (or the glue graph).

    Variables of the BGP become mediator variables of the same name.
    """

    bgp: BGPQuery

    @classmethod
    def from_text(cls, sparql_text: str, name: str = "q") -> "RDFQuery":
        """Build from a SPARQL SELECT string (conjunctive subset)."""
        return cls(bgp=parse_bgp(sparql_text, name=name))

    def output_variables(self) -> set[str]:
        return {v.name for v in self.bgp.output_variables()}

    def compatible_models(self) -> set[str]:
        return {"rdf"}

    def __str__(self) -> str:  # pragma: no cover - trivial
        return str(self.bgp)


@dataclass(frozen=True)
class SQLQuery(SourceQuery):
    """A SQL SELECT over a relational source.

    The statement's output column names (aliases) become mediator
    variables.  ``{var}`` placeholders in the text are replaced with the
    SQL literal of the current binding of ``var`` (these are the
    sub-query's *required parameters*); bindings on plain output columns
    are applied as post-filters by the wrapper.
    """

    sql: str
    output_columns: tuple[str, ...] = ()

    def output_variables(self) -> set[str]:
        if self.output_columns:
            return set(self.output_columns)
        return set(_infer_sql_outputs(self.sql))

    def required_parameters(self) -> set[str]:
        return set(_PLACEHOLDER_RE.findall(self.sql))

    def compatible_models(self) -> set[str]:
        return {"relational"}

    def __str__(self) -> str:  # pragma: no cover - trivial
        return " ".join(self.sql.split())


@dataclass(frozen=True)
class FullTextQuery(SourceQuery):
    """A Solr-like query over a full-text source.

    ``query_template`` may contain ``{var}`` placeholders (required
    parameters); ``output_fields`` maps mediator variables to dotted
    document paths.
    """

    query_template: str
    output_fields: tuple[tuple[str, str], ...]
    limit: Optional[int] = None
    sort_by: Optional[str] = None

    @classmethod
    def create(cls, query_template: str, output_fields: dict[str, str],
               limit: int | None = None, sort_by: str | None = None) -> "FullTextQuery":
        """Convenience constructor accepting a dict of output fields."""
        return cls(query_template=query_template,
                   output_fields=tuple(sorted(output_fields.items())),
                   limit=limit, sort_by=sort_by)

    def fields(self) -> dict[str, str]:
        """Output fields as a dict (variable -> document path)."""
        return dict(self.output_fields)

    def output_variables(self) -> set[str]:
        return {variable for variable, _ in self.output_fields}

    def required_parameters(self) -> set[str]:
        return set(_PLACEHOLDER_RE.findall(self.query_template))

    def compatible_models(self) -> set[str]:
        return {"fulltext"}

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.query_template


@dataclass(frozen=True)
class JSONQuery(SourceQuery):
    """A tree pattern over a JSON document source.

    The pattern's ``?variables`` become mediator variables of the same
    name; its ``{parameters}`` are required parameters, filled with the
    current binding before evaluation (like ``{var}`` placeholders in SQL
    and full-text sub-queries).  Bindings on plain output variables are
    *pushed down* to the source's path indexes instead of being
    post-filtered.
    """

    pattern: TreePattern
    limit: Optional[int] = None

    @classmethod
    def from_text(cls, pattern_text: str, limit: int | None = None) -> "JSONQuery":
        """Build from the textual tree-pattern syntax."""
        return cls(pattern=parse_pattern(pattern_text), limit=limit)

    def output_variables(self) -> set[str]:
        return self.pattern.variables()

    def required_parameters(self) -> set[str]:
        return self.pattern.parameters()

    def compatible_models(self) -> set[str]:
        return {"json"}

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.pattern.to_text()


# ---------------------------------------------------------------------------
# Source wrappers
# ---------------------------------------------------------------------------

#: Process-wide allocator of per-wrapper cache identities (never reused,
#: unlike ``id()``), so two wrappers registered under the same URI — e.g.
#: the glue graphs of two instances sharing one MediatorCache — can
#: never serve each other's cached rows.
_CACHE_TOKENS = itertools.count()

#: Thread-local dispatch depth guard: ``execute_batch`` implementations
#: delegate to ``self.execute`` (single-binding batches, per-binding
#: fallbacks), and only the *outermost* mediator-facing call may count.
_DISPATCH_LOCAL = threading.local()


def _instrumented_execute(method):
    """Record per-source metrics around a wrapper's ``execute``."""

    @functools.wraps(method)
    def execute(self, query, bindings=None):
        if getattr(_DISPATCH_LOCAL, "active", False):
            return method(self, query, bindings)
        _DISPATCH_LOCAL.active = True
        started = time.perf_counter()
        try:
            rows = method(self, query, bindings)
        except Exception:
            self._record_error()
            raise
        finally:
            _DISPATCH_LOCAL.active = False
        self._record_call(len(rows), time.perf_counter() - started)
        return rows

    return execute


def _instrumented_execute_batch(method):
    """Record per-source metrics around a wrapper's ``execute_batch``."""

    @functools.wraps(method)
    def execute_batch(self, query, bindings_batch):
        if getattr(_DISPATCH_LOCAL, "active", False):
            return method(self, query, bindings_batch)
        _DISPATCH_LOCAL.active = True
        started = time.perf_counter()
        try:
            per_binding = method(self, query, bindings_batch)
        except Exception:
            self._record_error()
            raise
        finally:
            _DISPATCH_LOCAL.active = False
        self._record_call(sum(len(rows) for rows in per_binding),
                          time.perf_counter() - started,
                          batched=True, bindings=len(bindings_batch))
        return per_binding

    return execute_batch


class DataSource:
    """Base class of the mediator's source wrappers."""

    model = "abstract"

    #: When True, the statistics layer uses this wrapper's ``estimate()``
    #: verbatim instead of deriving digest-backed numbers — the escape
    #: hatch for wrappers that carry their own (remote) statistics.
    trust_wrapper_estimate = False

    #: Version this wrapper is pinned at, or ``None`` for a live wrapper.
    #: Pinned wrappers are produced by :meth:`pin` over store snapshots;
    #: their underlying data never changes, so queries running against
    #: them observe one consistent state for their whole plan.
    pinned_at: Optional[int] = None

    def __init__(self, source_uri: str, name: str | None = None,
                 description: str = ""):
        self.uri = source_uri
        self.name = name or source_uri.rsplit("/", 1)[-1]
        self.description = description
        self.cache_token = next(_CACHE_TOKENS)
        self._pin_lock = threading.Lock()
        self._pin_memo: Optional[tuple[int, "DataSource"]] = None
        self._instruments: Optional[tuple] = None

    # -- protocol -----------------------------------------------------------
    def execute(self, query: SourceQuery, bindings: Row | None = None) -> list[Row]:
        """Evaluate ``query`` with the given bindings and return rows."""
        raise NotImplementedError

    def execute_batch(self, query: SourceQuery,
                      bindings_batch: Sequence[Row]) -> list[list[Row]]:
        """Answer a whole batch of bindings in one mediator call.

        Returns one row list per input binding, in order; entry ``i``
        must equal ``self.execute(query, bindings_batch[i])``.  Wrappers
        override this with native IN-list / disjunctive pushdown where
        the source language allows it; this base implementation is the
        per-binding fallback for sources that cannot batch.
        """
        return [self.execute(query, bindings) for bindings in bindings_batch]

    def estimate(self, query: SourceQuery, bound_variables: set[str] | None = None) -> float:
        """Estimated number of rows the sub-query would return."""
        raise NotImplementedError

    def version(self) -> Optional[int]:
        """Monotonic version of the underlying data, or ``None``.

        The mediator's result and plan caches key entries on this value,
        so a wrapper **must** bump it on every mutation of its store.
        ``None`` (the base default) means "unknown": results of this
        source are never cached and plan caching is disabled for the
        whole catalog.
        """
        return None

    def journal(self):
        """The underlying store's :class:`~repro.core.deltas.DeltaJournal`.

        ``None`` (the base default) means the wrapper emits no typed
        deltas: cache repair and standing-query notification degrade to
        plain invalidation / polling for this source.
        """
        return None

    def deltas_since(self, version: int, upto: int | None = None):
        """The unbroken delta chain ``version -> upto`` (None on a gap).

        ``upto`` defaults to the wrapper's current version.  A ``None``
        return (no journal, unknown version, or a transition the journal
        did not see) tells the caller to fall back to invalidation.
        """
        journal = self.journal()
        if journal is None:
            return None
        target = self.version() if upto is None else upto
        if target is None:
            return None
        return journal.since(version, target)

    def add_change_listener(self, listener) -> bool:
        """Subscribe ``listener(record)`` to committed mutation batches.

        Returns False when the wrapper has no journal (no notifications
        will ever fire).  Listeners run on the writer's thread, outside
        the store's write lock, and must never raise.
        """
        journal = self.journal()
        if journal is None:
            return False
        journal.subscribe(listener)
        return True

    def remove_change_listener(self, listener) -> None:
        journal = self.journal()
        if journal is not None:
            journal.unsubscribe(listener)

    def accepts(self, query: SourceQuery) -> bool:
        """True when this source can evaluate ``query``."""
        return self.model in query.compatible_models()

    def pin(self) -> "DataSource":
        """A read-only view of this source pinned at its current version.

        The pinned wrapper answers every query from a store *snapshot*
        taken atomically (under the store's reader-writer lock), so a
        plan running against it can never observe a half-applied update.
        It shares this wrapper's ``cache_token`` — content and version
        are identical at pin time, so cached rows are interchangeable.

        The base implementation returns ``self``: a wrapper without
        snapshot support keeps serving live data (and, like a wrapper
        without a version, simply forgoes the isolation guarantee).
        """
        return self

    def _memoized_pin(self, version: int, build) -> "DataSource":
        """Build-or-reuse the pinned wrapper for ``version``.

        Memoised per version so every query pinning an unchanged source
        shares one wrapper (and one lazily computed saturation, matcher,
        ... inside it).
        """
        with self._pin_lock:
            memo = self._pin_memo
            if memo is not None and memo[0] == version:
                return memo[1]
        pinned = build()
        pinned.cache_token = self.cache_token
        pinned.pinned_at = version
        with self._pin_lock:
            memo = self._pin_memo
            if memo is not None and memo[0] == version:
                return memo[1]
            self._pin_memo = (version, pinned)
        return pinned

    # -- metrics ------------------------------------------------------------
    def _source_instruments(self) -> tuple:
        """This wrapper's instrument handles in the current registry.

        Cached on the registry's *identity* so ``reset_registry()`` (test
        isolation) is picked up by long-lived wrappers on the next call.
        """
        registry = get_registry()
        cached = self._instruments
        if cached is not None and cached[0] is registry:
            return cached
        cached = (
            registry,
            registry.counter("source_calls_total", source=self.uri),
            registry.counter("source_batched_calls_total", source=self.uri),
            registry.counter("source_rows_total", source=self.uri),
            registry.counter("source_bindings_total", source=self.uri),
            registry.histogram("source_call_seconds", source=self.uri),
            registry.counter("source_errors_total", source=self.uri),
        )
        self._instruments = cached
        return cached

    def _record_call(self, rows: int, seconds: float, batched: bool = False,
                     bindings: int = 0) -> None:
        (_, calls, batched_calls, rows_total, bindings_total, latency,
         _) = self._source_instruments()
        calls.inc()
        if batched:
            batched_calls.inc()
            bindings_total.inc(bindings)
        rows_total.inc(rows)
        latency.observe(seconds)

    def _record_error(self) -> None:
        self._source_instruments()[6].inc()

    def size(self) -> int:
        """Number of base items (triples, rows, documents) in the source."""
        raise NotImplementedError

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"{type(self).__name__}(uri={self.uri!r}, size={self.size()})"


class RDFSource(DataSource):
    """Wrapper around an RDF graph source (DBPedia-like, IGN-like, glue)."""

    model = "rdf"

    def __init__(self, source_uri: str, graph: Graph, name: str | None = None,
                 description: str = "", entailment: bool = False):
        super().__init__(source_uri, name or graph.name, description)
        self.graph = graph
        self.entailment = entailment
        self._saturated: Graph | None = None
        self._saturated_schema: RDFSchema | None = None
        self._saturated_state: tuple[int, int] = (-1, -1)
        # Saturation state is read-modify-write; concurrent queries (the
        # mediator service shares one pinned wrapper per version) must
        # not interleave inside it.
        self._saturation_lock = threading.RLock()

    def version(self) -> int:
        return self.graph.version

    def journal(self):
        return self.graph.journal

    def _graph_state(self) -> tuple[int, int]:
        return (self.graph.additions, self.graph.removals)

    def _effective_graph(self) -> Graph:
        """The graph queries run against (G∞ when entailment is on).

        Staleness is detected through the graph's explicit mutation
        counters, never through ``len()`` — a removal, or a removal
        paired with an addition, leaves the sizes equal but must not
        serve the old saturation.  Additions are absorbed incrementally
        (:func:`repro.rdf.entailment.saturate_delta`); any removal falls
        back to a full recomputation.
        """
        if not self.entailment:
            return self.graph
        with self._saturation_lock:
            # The graph's read lock keeps the triple set stable while it
            # is scanned; the state is captured first, so a write landing
            # between capture and lock only makes the stamp conservative
            # (the next query re-checks), never stale.
            state = self._graph_state()
            if self._saturated is not None and state == self._saturated_state:
                return self._saturated
            if self._saturated is not None and state[1] == self._saturated_state[1]:
                # Additions only since the last saturation.  An added triple
                # already in G∞ cannot change the closure, so the explicit
                # triples missing from the saturation are exactly the delta.
                with self.graph.rwlock.read_locked():
                    delta = [t for t in self.graph if t not in self._saturated]
                saturate_delta(self._saturated, delta, schema=self._saturated_schema)
                self._saturated_state = state
                return self._saturated
            with self.graph.rwlock.read_locked():
                self._saturated, _ = saturate(self.graph)
            self._saturated_schema = RDFSchema.from_graph(self._saturated)
            self._saturated_state = state
            return self._saturated

    def effective_graph(self) -> Graph:
        """The graph queries (and estimates) actually run against.

        Public accessor for the statistics layer: G∞ when entailment is
        on, the raw graph otherwise.
        """
        return self._effective_graph()

    def add_triples(self, triples: Iterable) -> int:
        """Add triples to the source graph, maintaining G∞ incrementally.

        Unlike mutating ``self.graph`` directly (which is also supported,
        but forces a set-difference scan at the next query), this knows
        the exact delta and feeds it straight to the incremental
        fixpoint.  Returns the number of triples actually new.
        """
        with self._saturation_lock:
            state = self._graph_state()
            in_sync = (self.entailment and self._saturated is not None
                       and state == self._saturated_state)
            # One write section (inside add_batch) for the whole delta: a
            # concurrent snapshot pins all of it or none of it, and the
            # whole batch is ONE version bump and one journal record.
            fresh = self.graph.add_batch(triples)
            if in_sync:
                if fresh:
                    saturate_delta(self._saturated, fresh, schema=self._saturated_schema)
                # Stamp only *our own* contribution (one batch = one
                # counter tick): a concurrent direct graph.add by another
                # thread then leaves the stamp behind the counters, and
                # the next query absorbs it by set-difference instead of
                # silently missing it.
                self._saturated_state = (state[0] + (1 if fresh else 0), state[1])
            return len(fresh)

    def invalidate(self) -> None:
        """Forget the cached saturation (a full recompute follows)."""
        with self._saturation_lock:
            self._saturated = None
            self._saturated_schema = None
            self._saturated_state = (-1, -1)

    def pin(self) -> "RDFSource":
        """A read-only wrapper over a snapshot of the graph.

        The pinned wrapper owns its saturation — the live one is updated
        *in place* by ``saturate_delta`` and must not leak under running
        queries.  To avoid a full fixpoint per version it is **seeded**:
        from a copy of the live saturation when that is in sync with the
        snapshot (writers going through :meth:`add_triples` keep it so),
        else from the previous pin's saturation plus the delta between
        the two snapshots; only removals force a lazy full recompute.
        Memoisation per version means all of this happens at most once
        per pinned state.
        """
        if self.pinned_at is not None:
            return self
        frozen = self.graph.snapshot()
        with self._pin_lock:
            previous = self._pin_memo[1] if self._pin_memo is not None else None

        def build() -> "RDFSource":
            pinned = RDFSource(self.uri, frozen, name=self.name,
                               description=self.description,
                               entailment=self.entailment)
            if self.entailment:
                self._seed_pinned_saturation(pinned, frozen, previous)
            return pinned

        return self._memoized_pin(frozen.version, build)

    def _seed_pinned_saturation(self, pinned: "RDFSource", frozen: Graph,
                                previous: Optional[DataSource]) -> None:
        """Hand ``pinned`` a saturation without a from-scratch fixpoint.

        Copying a closed graph is O(|G∞|); re-deriving it is the full
        rule fixpoint.  When neither the live nor the previous pinned
        saturation can seed (removals happened, or nothing is computed
        yet), the pinned wrapper simply saturates lazily on first use.
        """
        state = (frozen.additions, frozen.removals)
        seed: Graph | None = None
        delta: list = []
        with self._saturation_lock:
            if self._saturated is not None and self._saturated_state == state:
                with self._saturated.rwlock.read_locked():
                    seed = self._saturated._copy_unlocked()
        if seed is None and isinstance(previous, RDFSource):
            with previous._saturation_lock:
                prev_graph = previous.graph
                prev_state = (prev_graph.additions, prev_graph.removals)
                if (previous._saturated is not None
                        and previous._saturated_state == prev_state
                        and prev_graph.removals == frozen.removals):
                    # Additions only between the two snapshots: the
                    # explicit triples missing from the old closure are
                    # exactly the delta to absorb.
                    with previous._saturated.rwlock.read_locked():
                        seed = previous._saturated._copy_unlocked()
            if seed is not None:
                delta = [t for t in frozen if t not in seed]
        if seed is None:
            return
        schema = RDFSchema.from_graph(seed)
        if delta:
            saturate_delta(seed, delta, schema=schema)
        pinned._saturated = seed
        pinned._saturated_schema = schema
        pinned._saturated_state = state

    @_instrumented_execute
    def execute(self, query: SourceQuery, bindings: Row | None = None) -> list[Row]:
        if not isinstance(query, RDFQuery):
            raise MixedQueryError(f"RDF source {self.uri} cannot evaluate {type(query).__name__}")
        bindings = bindings or {}
        graph = self._effective_graph()
        bound = [(variable, _binding_term_variants(bindings[variable.name]))
                 for variable in query.bgp.variables()
                 if variable.name in bindings]
        # Numeric bindings are probed under every spelling the mediator's
        # ``==`` accepts (5 vs 5.0), like the digest sieve does; a term
        # matches exactly one spelling, so the union has no duplicates.
        combos = itertools.product(*(terms for _, terms in bound)) if bound else [()]
        rows: list[Row] = []
        for combo in combos:
            initial: dict[Variable, Term] = {
                variable: term for (variable, _), term in zip(bound, combo)}
            for result in evaluate_bgp(query.bgp, graph, initial_binding=initial):
                rows.append({v.name: _to_python(t) for v, t in result.items()})
        return rows

    @_instrumented_execute_batch
    def execute_batch(self, query: SourceQuery,
                      bindings_batch: Sequence[Row]) -> list[list[Row]]:
        """Batched BGP evaluation: one graph pass serves every binding.

        The BGP is evaluated once *without* bindings and its solutions
        bucketed (at the RDF-term level, so URI/literal distinctions are
        preserved) by the variables the batch binds; each binding is then
        answered from its bucket instead of re-evaluating the BGP.
        """
        if not isinstance(query, RDFQuery):
            raise MixedQueryError(f"RDF source {self.uri} cannot evaluate {type(query).__name__}")
        batch = [dict(b or {}) for b in bindings_batch]
        if len(batch) <= 1:
            return [self.execute(query, b) for b in batch]
        graph = self._effective_graph()
        var_by_name = {v.name: v for v in query.bgp.variables()}
        projected = {v.name for v in query.bgp.output_variables()}
        groups: dict[frozenset, list[int]] = {}
        for index, bindings in enumerate(batch):
            bound = frozenset(name for name in bindings if name in var_by_name)
            groups.setdefault(bound, []).append(index)
        results: list[list[Row]] = [[] for _ in batch]
        solutions: list | None = None
        for bound, indices in groups.items():
            if not bound:
                rows = self.execute(query, {})
                for index in indices:
                    results[index] = [dict(r) for r in rows]
                continue
            if not bound <= projected:
                # A binding on a projected-out body variable cannot be
                # bucketed from the (projected) solutions: evaluate those
                # bindings directly.
                for index in indices:
                    results[index] = self.execute(query, batch[index])
                continue
            if len(indices) == 1 and solutions is None:
                # A lone binding shape: a direct bound evaluation is
                # cheaper than materialising every BGP solution.
                results[indices[0]] = self.execute(query, batch[indices[0]])
                continue
            if solutions is None:
                solutions = evaluate_bgp(query.bgp, graph)
            order = sorted(bound)
            variables = [var_by_name[name] for name in order]
            buckets: dict[tuple, list] = defaultdict(list)
            for solution in solutions:
                buckets[tuple(solution.get(v) for v in variables)].append(solution)
            for index in indices:
                # Probe every numeric spelling, as in per-binding mode; a
                # solution's terms live in exactly one bucket, so the
                # concatenation has no duplicates.
                matched: list = []
                for key in itertools.product(
                        *(_binding_term_variants(batch[index][name]) for name in order)):
                    matched.extend(buckets.get(key, ()))
                results[index] = [{v.name: _to_python(t) for v, t in solution.items()}
                                  for solution in matched]
        return results

    def estimate(self, query: SourceQuery, bound_variables: set[str] | None = None) -> float:
        if not isinstance(query, RDFQuery):
            return float("inf")
        graph = self._effective_graph()
        bound_variables = bound_variables or set()
        estimate = float(len(graph))
        for p in query.bgp.patterns:
            estimate = min(estimate, float(graph.count(p)) or 1.0)
        for variable in query.output_variables() & bound_variables:
            estimate = max(1.0, estimate / 10.0)
        return estimate

    def size(self) -> int:
        return len(self.graph)


class RelationalSource(DataSource):
    """Wrapper around a relational database source (INSEE-like)."""

    model = "relational"

    def __init__(self, source_uri: str, database: Database, name: str | None = None,
                 description: str = ""):
        super().__init__(source_uri, name or database.name, description)
        self.database = database

    def version(self) -> int:
        return self.database.version

    def journal(self):
        return self.database.journal

    def pin(self) -> "RelationalSource":
        """A read-only wrapper over a consistent snapshot of the database."""
        if self.pinned_at is not None:
            return self
        frozen = self.database.snapshot()
        return self._memoized_pin(
            frozen.version,
            lambda: RelationalSource(self.uri, frozen, name=self.name,
                                     description=self.description))

    @_instrumented_execute
    def execute(self, query: SourceQuery, bindings: Row | None = None) -> list[Row]:
        if not isinstance(query, SQLQuery):
            raise MixedQueryError(
                f"relational source {self.uri} cannot evaluate {type(query).__name__}"
            )
        bindings = bindings or {}
        sql = _fill_placeholders(query.sql, bindings, quote=_sql_literal)
        result = self.database.execute(sql)
        rows = [dict(zip(result.columns, row)) for row in result.rows]
        # Post-filter on bindings over output columns the SQL did not consume.
        filters = self._post_filters(query, bindings)
        if filters:
            rows = [r for r in rows if all(r.get(k) == v for k, v in filters)]
        return rows

    @_instrumented_execute_batch
    def execute_batch(self, query: SourceQuery,
                      bindings_batch: Sequence[Row]) -> list[list[Row]]:
        """Batched SQL evaluation with native IN-list pushdown.

        Three strategies, by decreasing preference:

        * no placeholders — run the statement once and partition its rows
          per binding with the usual post-filters;
        * every ``{var}`` placeholder occurs exactly once as ``col = {var}``
          and ``col`` is echoed in the SELECT list — rewrite each equality
          to ``col IN (v1, ..., vk)``, run once, and attribute rows to
          bindings through the echoed column;
        * otherwise — run one statement per *distinct* filled text (still
          a single mediator call).
        """
        if not isinstance(query, SQLQuery):
            raise MixedQueryError(
                f"relational source {self.uri} cannot evaluate {type(query).__name__}"
            )
        batch = [dict(b or {}) for b in bindings_batch]
        if len(batch) <= 1:
            return [self.execute(query, b) for b in batch]
        required = query.required_parameters()
        if not required:
            rows = self._run(query.sql)
            return _partition_exact(rows, [self._post_filters(query, b) for b in batch])

        eq_columns = _equality_placeholder_columns(query.sql)
        echoes = {var: _select_item_output(query.sql, ident)
                  for var, ident in eq_columns.items()}
        rewritable = (set(eq_columns) == required
                      and all(echoes.get(var) for var in required)
                      and not _SQL_BATCH_UNSAFE_RE.search(query.sql)
                      and all(var in b and b[var] is not None and _scalar(b[var])
                              for b in batch for var in required))
        if rewritable:
            sql = query.sql
            for var, ident in eq_columns.items():
                literals = sorted({_sql_literal(b[var]) for b in batch})
                clause = f"{ident} IN ({', '.join(literals)})"
                pattern = re.compile(re.escape(ident) + r"\s*=\s*\{" + re.escape(var) + r"\}")
                sql = pattern.sub(lambda _match: clause, sql, count=1)
            rows = self._run(sql)
            specs = []
            for b in batch:
                spec = self._post_filters(query, b)
                spec.extend((echoes[var], b[var]) for var in required)
                specs.append(spec)
            return _partition_exact(rows, specs)

        # Fallback: one execution per distinct filled statement.
        by_sql: dict[str, list[int]] = {}
        for index, b in enumerate(batch):
            filled = _fill_placeholders(query.sql, b, quote=_sql_literal)
            by_sql.setdefault(filled, []).append(index)
        results: list[list[Row]] = [[] for _ in batch]
        for filled, indices in by_sql.items():
            rows = self._run(filled)
            parts = _partition_exact(rows, [self._post_filters(query, batch[i])
                                            for i in indices])
            for index, part in zip(indices, parts):
                results[index] = part
        return results

    def _run(self, sql: str) -> list[Row]:
        result = self.database.execute(sql)
        return [dict(zip(result.columns, row)) for row in result.rows]

    @staticmethod
    def _post_filters(query: SQLQuery, bindings: Row) -> list[tuple[str, object]]:
        outputs = query.output_variables()
        required = query.required_parameters()
        return [(k, v) for k, v in bindings.items()
                if k in outputs and k not in required]

    def estimate(self, query: SourceQuery, bound_variables: set[str] | None = None) -> float:
        if not isinstance(query, SQLQuery):
            return float("inf")
        bound_variables = bound_variables or set()
        table_names = _referenced_tables(query.sql)
        estimate = 1.0
        for table_name in table_names:
            if self.database.has_table(table_name):
                estimate *= max(1, len(self.database.table(table_name)))
        if " where " in query.sql.lower():
            estimate = max(1.0, estimate / 10.0)
        for _ in query.output_variables() & bound_variables:
            estimate = max(1.0, estimate / 10.0)
        for _ in query.required_parameters():
            estimate = max(1.0, estimate / 10.0)
        return estimate

    def size(self) -> int:
        return sum(len(t) for t in self.database.tables())


class FullTextSource(DataSource):
    """Wrapper around a Solr-like full-text store (tweets, Facebook posts)."""

    model = "fulltext"

    def __init__(self, source_uri: str, store: FullTextStore, name: str | None = None,
                 description: str = ""):
        super().__init__(source_uri, name or store.name, description)
        self.store = store

    def version(self) -> int:
        return self.store.version

    def journal(self):
        return self.store.journal

    def pin(self) -> "FullTextSource":
        """A read-only wrapper over a snapshot of the full-text store."""
        if self.pinned_at is not None:
            return self
        frozen = self.store.snapshot()
        return self._memoized_pin(
            frozen.version,
            lambda: FullTextSource(self.uri, frozen, name=self.name,
                                   description=self.description))

    @_instrumented_execute
    def execute(self, query: SourceQuery, bindings: Row | None = None) -> list[Row]:
        if not isinstance(query, FullTextQuery):
            raise MixedQueryError(
                f"full-text source {self.uri} cannot evaluate {type(query).__name__}"
            )
        bindings = bindings or {}
        text = _fill_placeholders(query.query_template, bindings, quote=_fulltext_literal)
        result = self.store.search(text, limit=query.limit, sort_by=query.sort_by)
        rows = self._hit_rows(result, query.fields())
        # Post-filter on bindings over output variables (exact, lowercase-insensitive
        # for strings, mirroring keyword-field behaviour).
        filters = self._post_filters(query, bindings)
        if filters:
            rows = [r for r in rows if all(_loose_equal(r.get(k), v) for k, v in filters)]
        return rows

    @_instrumented_execute_batch
    def execute_batch(self, query: SourceQuery,
                      bindings_batch: Sequence[Row]) -> list[list[Row]]:
        """Batched full-text evaluation with native disjunctive pushdown.

        Without placeholders the (identical) search runs once and its
        hits are partitioned per binding.  When every placeholder occurs
        exactly once as a ``path:{var}`` clause over an echoed *keyword*
        field, the filled clauses of the whole batch are OR-ed into one
        disjunctive query — a single index round trip — and hits are
        attributed back through the echoed field.  Anything else falls
        back to one search per distinct filled query text.
        """
        if not isinstance(query, FullTextQuery):
            raise MixedQueryError(
                f"full-text source {self.uri} cannot evaluate {type(query).__name__}"
            )
        batch = [dict(b or {}) for b in bindings_batch]
        if len(batch) <= 1:
            return [self.execute(query, b) for b in batch]
        fields = query.fields()
        required = query.required_parameters()
        if not required:
            result = self.store.search(query.query_template, limit=query.limit,
                                       sort_by=query.sort_by)
            rows = self._hit_rows(result, fields)
            return _partition_loose(rows, [self._post_filters(query, b) for b in batch])

        clause_fields = _clause_placeholder_fields(query.query_template)
        echoes = {var: _echo_variable(fields, path)
                  for var, path in clause_fields.items()}
        disjunctive = (query.limit is None
                       # The OR of the filled clauses repeats the template's
                       # constant text terms once per branch, which inflates
                       # BM25 — only the row *sets* survive that, not scores.
                       and "_score" not in fields.values()
                       and set(clause_fields) == required
                       and all(echoes.get(var) for var in required)
                       and all(self._is_keyword_field(path)
                               for path in clause_fields.values())
                       and all(var in b and _disjunctable_value(b[var])
                               for b in batch for var in required))
        if disjunctive:
            texts: list[str] = []
            seen: set[str] = set()
            for b in batch:
                filled = _fill_placeholders(query.query_template, b,
                                            quote=_fulltext_literal)
                if filled not in seen:
                    seen.add(filled)
                    texts.append(filled)
            combined = " OR ".join(f"({text})" for text in texts) if len(texts) > 1 \
                else texts[0]
            result = self.store.search(combined, limit=None, sort_by=query.sort_by)
            rows = self._hit_rows(result, fields)
            specs = []
            for b in batch:
                spec = self._post_filters(query, b)
                spec.extend((echoes[var], b[var]) for var in required)
                specs.append(spec)
            return _partition_loose(rows, specs)

        # Fallback: one search per distinct filled query text.
        by_text: dict[str, list[int]] = {}
        for index, b in enumerate(batch):
            filled = _fill_placeholders(query.query_template, b, quote=_fulltext_literal)
            by_text.setdefault(filled, []).append(index)
        results: list[list[Row]] = [[] for _ in batch]
        for filled, indices in by_text.items():
            result = self.store.search(filled, limit=query.limit, sort_by=query.sort_by)
            rows = self._hit_rows(result, fields)
            parts = _partition_loose(rows, [self._post_filters(query, batch[i])
                                            for i in indices])
            for index, part in zip(indices, parts):
                results[index] = part
        return results

    @staticmethod
    def _hit_rows(result, fields: dict[str, str]) -> list[Row]:
        rows: list[Row] = []
        for hit in result.hits:
            row: Row = {}
            for variable, path in fields.items():
                if path == "_score":
                    row[variable] = hit.score
                else:
                    row[variable] = _scalarize(hit.get(path))
            rows.append(row)
        return rows

    @staticmethod
    def _post_filters(query: FullTextQuery, bindings: Row) -> list[tuple[str, object]]:
        outputs = query.output_variables()
        required = query.required_parameters()
        return [(k, v) for k, v in bindings.items()
                if k in outputs and k not in required]

    def _is_keyword_field(self, path: str) -> bool:
        config = self.store.field_config(path)
        return config is not None and config.field_type == "keyword"

    def estimate(self, query: SourceQuery, bound_variables: set[str] | None = None) -> float:
        if not isinstance(query, FullTextQuery):
            return float("inf")
        bound_variables = bound_variables or set()
        if query.limit is not None:
            base = float(query.limit)
        else:
            base = float(len(self.store))
        template = query.query_template
        constants = sum(1 for part in template.split()
                        if ":" in part and "{" not in part and part != "*:*")
        for _ in range(constants):
            base = max(1.0, base / 20.0)
        for _ in query.required_parameters():
            base = max(1.0, base / 20.0)
        for _ in query.output_variables() & bound_variables:
            base = max(1.0, base / 10.0)
        return base

    def size(self) -> int:
        return len(self.store)


class JSONSource(DataSource):
    """Wrapper around a JSON document store queried with tree patterns."""

    model = "json"

    def __init__(self, source_uri: str, store: JSONDocumentStore,
                 name: str | None = None, description: str = ""):
        super().__init__(source_uri, name or store.name, description)
        self.store = store
        self.matcher = TreePatternMatcher(store)

    @property
    def cost_kind(self) -> str:
        """The cost-model kind: structural range joins when accelerated."""
        return "json_accel" if getattr(self.matcher, "accel", False) else self.model

    def version(self) -> int:
        return self.store.version

    def journal(self):
        return self.store.journal

    def pin(self) -> "JSONSource":
        """A read-only wrapper over a snapshot of the document store."""
        if self.pinned_at is not None:
            return self
        frozen = self.store.snapshot()
        return self._memoized_pin(
            frozen.version,
            lambda: JSONSource(self.uri, frozen, name=self.name,
                               description=self.description))

    @_instrumented_execute
    def execute(self, query: SourceQuery, bindings: Row | None = None) -> list[Row]:
        if not isinstance(query, JSONQuery):
            raise MixedQueryError(
                f"JSON source {self.uri} cannot evaluate {type(query).__name__}"
            )
        parameters, pushdown = self._split_bindings(query, bindings or {})
        # Results travel as one columnar BindingBatch (the accelerated
        # matcher emits pattern variables as columns); dict rows only
        # materialise at this interface boundary.
        batch = self.matcher.match_columns(query.pattern, parameters=parameters,
                                           pushdown=pushdown, limit=query.limit)
        return list(batch.dicts())

    @staticmethod
    def _split_bindings(query: JSONQuery, bindings: Row) -> tuple[Row, Row]:
        """Split bindings into pattern parameters and index pushdowns.

        Bindings on plain output variables become index-backed equality
        pushdowns (matching rows are aligned to the incoming value, so
        the mediator's exact-equality joins accept them).
        """
        parameters: Row = {}
        for name in query.required_parameters():
            if name not in bindings:
                raise MixedQueryError(
                    f"sub-query parameter {{{name}}} is not bound; required parameters "
                    "must be produced by an earlier sub-query or a constant"
                )
            parameters[name] = bindings[name]
        pushdown = {variable: value for variable, value in bindings.items()
                    if variable in query.output_variables()
                    and variable not in parameters}
        return parameters, pushdown

    @_instrumented_execute_batch
    def execute_batch(self, query: SourceQuery,
                      bindings_batch: Sequence[Row]) -> list[list[Row]]:
        """Batched tree-pattern evaluation.

        The candidate set of the pattern's constant predicates is
        computed once (:meth:`TreePatternMatcher.match_batch`); each
        binding only adds its own per-path index lookups on top.
        """
        if not isinstance(query, JSONQuery):
            raise MixedQueryError(
                f"JSON source {self.uri} cannot evaluate {type(query).__name__}"
            )
        batch = [dict(b or {}) for b in bindings_batch]
        if len(batch) <= 1:
            return [self.execute(query, b) for b in batch]
        calls = [self._split_bindings(query, bindings) for bindings in batch]
        return self.matcher.match_batch(query.pattern, calls, limit=query.limit)

    def estimate(self, query: SourceQuery, bound_variables: set[str] | None = None) -> float:
        if not isinstance(query, JSONQuery):
            return float("inf")
        bound_variables = bound_variables or set()
        guide = self.store.dataguide()
        estimate = float(len(self.store))
        for leaf in query.pattern.leaves:
            index = self.store.index_for(leaf.path)
            if index is None:
                # Interior (non-leaf) path: only presence statistics exist.
                present = len(self.store.doc_ids_with_path(leaf.path))
                if present == 0:
                    # Never observed anywhere: nothing can match.
                    return 0.0
                estimate = min(estimate, float(present))
                continue
            # Structural selectivity from the dataguide (path coverage),
            # refined by value-level index statistics below.
            leaf_estimate = guide.coverage(leaf.path) * guide.document_count
            leaf_estimate = min(leaf_estimate, float(index.document_count))
            for predicate in leaf.predicates:
                if isinstance(predicate.value, JSONParameter):
                    leaf_estimate = min(leaf_estimate, index.average_postings())
                elif predicate.op == "=":
                    leaf_estimate = min(leaf_estimate,
                                        float(len(index.lookup_eq(predicate.value))))
                elif predicate.op != "!=":
                    leaf_estimate = min(leaf_estimate,
                                        float(len(index.lookup_cmp(predicate.op,
                                                                   predicate.value))))
            if leaf.variable is not None and leaf.variable in bound_variables:
                leaf_estimate = min(leaf_estimate, index.average_postings())
            estimate = min(estimate, leaf_estimate)
        if any(leaf.constant_equality() is not None for leaf in query.pattern.leaves):
            # The per-path indexes can answer the conjunction of constant
            # predicates exactly (candidate-set intersection), which beats
            # the independent per-leaf minima above.
            estimate = min(estimate, float(len(self.matcher.candidates(query.pattern))))
        if (self.matcher.accel
                and all(not leaf.predicates for leaf in query.pattern.leaves)
                and not (query.pattern.variables() & bound_variables)):
            # Purely structural pattern: the accelerator encoding answers
            # the per-axis cardinalities exactly (documents *and* fan-out).
            rows = accel_structural_row_estimate(self.store.encoding_view(),
                                                 query.pattern)
            if rows is not None:
                estimate = rows
        if query.limit is not None:
            estimate = min(estimate, float(query.limit))
        return estimate

    def size(self) -> int:
        return len(self.store)


# ---------------------------------------------------------------------------
# Value conversions
# ---------------------------------------------------------------------------

def _to_rdf_term(value: object) -> Term:
    if isinstance(value, (URI, Literal)):
        return value
    if isinstance(value, str) and value.startswith(("http://", "https://", "urn:")):
        return uri(value)
    return literal(value)


def _binding_term_variants(value: object) -> list[Term]:
    """RDF terms a mediator value may match under the sources' loose ``==``.

    The other wrappers compare ``5 == 5.0`` equal while RDF literals are
    typed — probe both spellings (cf. the digest sieve's probe variants)
    so a bind join through an RDF atom never misses a numeric match.
    A CURIE-shaped string is probed both as the literal it converts to
    and as the URI it round-trips from (``URI.value`` of a non-HTTP
    identifier reads back as a plain string).
    """
    terms: list[Term] = []
    values: list[object] = [value]
    if isinstance(value, bool):
        pass
    elif isinstance(value, float) and value.is_integer():
        values.append(int(value))
    elif isinstance(value, int):
        values.append(float(value))
    for variant in values:
        terms.append(_to_rdf_term(variant))
    if (isinstance(value, str) and _CURIE_RE.fullmatch(value)
            and not value.startswith(("http://", "https://", "urn:"))):
        candidate = URI(value)
        if candidate not in terms:
            terms.append(candidate)
    return terms


def _to_python(term: object) -> object:
    if isinstance(term, URI):
        return term.value
    if isinstance(term, Literal):
        return term.to_python()
    return term


def _scalarize(value: Any) -> object:
    if isinstance(value, list):
        if len(value) == 1:
            return value[0]
        return tuple(value)
    return value


def _loose_equal(left: object, right: object) -> bool:
    if left == right:
        return True
    if isinstance(left, str) and isinstance(right, str):
        return left.lower() == right.lower()
    if isinstance(left, tuple):
        return any(_loose_equal(item, right) for item in left)
    return False


def _fill_placeholders(template: str, bindings: Row, quote) -> str:
    def replace(match: re.Match) -> str:
        name = match.group(1)
        if name not in bindings:
            raise MixedQueryError(
                f"sub-query parameter {{{name}}} is not bound; required parameters "
                "must be produced by an earlier sub-query or a constant"
            )
        return quote(bindings[name])

    return _PLACEHOLDER_RE.sub(replace, template)


def _sql_literal(value: object) -> str:
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, (int, float)):
        return str(value)
    escaped = str(value).replace("'", "''")
    return f"'{escaped}'"


def _fulltext_literal(value: object) -> str:
    text = str(value)
    if any(ch.isspace() for ch in text):
        return f'"{text}"'
    return text


def _infer_sql_outputs(sql: str) -> list[str]:
    """Best-effort extraction of output column names from a SELECT."""
    match = re.search(r"select\s+(distinct\s+)?(.*?)\s+from\s", sql, re.IGNORECASE | re.DOTALL)
    if not match:
        return []
    outputs = []
    for item in _split_top_level(match.group(2)):
        item = item.strip()
        alias_match = re.search(r"\s+as\s+([A-Za-z_][\w]*)\s*$", item, re.IGNORECASE)
        if alias_match:
            outputs.append(alias_match.group(1))
            continue
        if item == "*":
            continue
        last = item.split(".")[-1].strip()
        if all(ch in string.ascii_letters + string.digits + "_" for ch in last):
            outputs.append(last)
    return outputs


def _split_top_level(text: str) -> list[str]:
    parts, depth, current = [], 0, []
    for ch in text:
        if ch == "(":
            depth += 1
        elif ch == ")":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if current:
        parts.append("".join(current))
    return parts


def _referenced_tables(sql: str) -> list[str]:
    return re.findall(r"\b(?:from|join)\s+([A-Za-z_][\w]*)", sql, re.IGNORECASE)


# ---------------------------------------------------------------------------
# Batch execution helpers
# ---------------------------------------------------------------------------

_IDENT_RE = r"[A-Za-z_][\w]*(?:\.[A-Za-z_][\w]*)?"

_DISJUNCTABLE_RE = re.compile(r"[\w.\-@#]+\Z")

#: Constructs whose result over an IN-list differs from the union of the
#: per-binding results (a shared LIMIT, cross-binding groups/aggregates).
_SQL_BATCH_UNSAFE_RE = re.compile(
    r"\blimit\b|\bgroup\s+by\b|\bhaving\b|\b(?:count|sum|avg|min|max)\s*\(",
    re.IGNORECASE,
)


def _scalar(value: object) -> bool:
    """True for values whose dict-key semantics match ``==`` filtering."""
    return value is None or isinstance(value, (str, int, float, bool))


_BOOLEAN_CONTEXT_RE = re.compile(r"\b(?:or|not)\b", re.IGNORECASE)


def _equality_placeholder_columns(sql: str) -> dict[str, str]:
    """Placeholders usable for IN-list rewriting: var -> compared column.

    A placeholder qualifies when its *only* occurrence in the statement
    is of the form ``col = {var}`` (``col`` possibly table-qualified)
    sitting in a purely conjunctive context: any ``OR``/``NOT`` in the
    statement disables the rewrite, since an equality under them is not
    a necessary condition on the result rows.
    """
    if _BOOLEAN_CONTEXT_RE.search(sql):
        return {}
    mapping: dict[str, str] = {}
    for var in set(_PLACEHOLDER_RE.findall(sql)):
        occurrences = re.findall(r"\{" + re.escape(var) + r"\}", sql)
        equalities = re.findall(r"(" + _IDENT_RE + r")\s*=\s*\{" + re.escape(var) + r"\}",
                                sql)
        if len(occurrences) == 1 and len(equalities) == 1:
            mapping[var] = equalities[0]
    return mapping


def _plain_select_items(sql: str) -> list[tuple[str, str]]:
    """``(column expression, output name)`` for *plain* SELECT-list items.

    Only bare columns (``col`` / ``t.col``, optionally aliased) qualify —
    expressions could transform the value, which would break both row
    attribution in batched execution and digest-sieve position mapping.
    """
    match = re.search(r"select\s+(distinct\s+)?(.*?)\s+from\s", sql,
                      re.IGNORECASE | re.DOTALL)
    if not match:
        return []
    items: list[tuple[str, str]] = []
    for item in _split_top_level(match.group(2)):
        item = item.strip()
        alias_match = re.fullmatch(r"(" + _IDENT_RE + r")\s+as\s+([A-Za-z_][\w]*)",
                                   item, re.IGNORECASE)
        if alias_match:
            items.append((alias_match.group(1).strip(), alias_match.group(2)))
        elif re.fullmatch(_IDENT_RE, item):
            items.append((item, item.split(".")[-1]))
    return items


def _select_item_output(sql: str, ident: str) -> str | None:
    """Output column name echoing ``ident``, if the SELECT list has one."""
    target = ident.strip().lower()
    for expression, output in _plain_select_items(sql):
        if expression.lower() == target:
            return output
    return None


def _clause_placeholder_fields(template: str) -> dict[str, str]:
    """Placeholders usable for disjunctive rewriting: var -> field path.

    A placeholder qualifies when its only occurrence in the full-text
    template is a ``path:{var}`` clause in a purely conjunctive query
    (any ``OR``/``NOT`` operator disables the rewrite: under them the
    clause is not a necessary condition on the hits).
    """
    if _BOOLEAN_CONTEXT_RE.search(template):
        return {}
    mapping: dict[str, str] = {}
    for var in set(_PLACEHOLDER_RE.findall(template)):
        occurrences = re.findall(r"\{" + re.escape(var) + r"\}", template)
        clauses = re.findall(r"([\w.]+):\{" + re.escape(var) + r"\}", template)
        if len(occurrences) == 1 and len(clauses) == 1:
            mapping[var] = clauses[0]
    return mapping


def _echo_variable(fields: dict[str, str], path: str) -> str | None:
    """The output variable bound to document ``path``, if any."""
    for variable, field_path in fields.items():
        if field_path == path:
            return variable
    return None


def _disjunctable_value(value: object) -> bool:
    """True when a binding value can be inlined into an OR-ed query text."""
    if isinstance(value, bool) or not isinstance(value, str):
        return False
    if value.upper() in ("AND", "OR", "NOT", "TO"):
        return False
    return bool(_DISJUNCTABLE_RE.fullmatch(value))


def _partition_exact(rows: list[Row],
                     specs: list[list[tuple[str, object]]]) -> list[list[Row]]:
    """Distribute ``rows`` to one result list per ``(column, value)`` spec.

    Matching uses plain ``==`` (the relational post-filter semantics);
    a hash index per distinct column tuple avoids rescanning the rows
    for every binding.
    """
    results: list[list[Row]] = []
    indexes: dict[tuple[str, ...], dict | None] = {}
    for spec in specs:
        if not spec:
            results.append([dict(r) for r in rows])
            continue
        columns = tuple(c for c, _ in spec)
        if columns not in indexes:
            index: dict | None = {}
            for r in rows:
                key = tuple(r.get(c) for c in columns)
                if not all(_scalar(v) for v in key):
                    index = None
                    break
                index.setdefault(key, []).append(r)
            indexes[columns] = index
        index = indexes[columns]
        wanted = tuple(v for _, v in spec)
        if index is not None and all(_scalar(v) for v in wanted):
            matched = index.get(wanted, ())
        else:
            matched = [r for r in rows if all(r.get(c) == v for c, v in spec)]
        results.append([dict(r) for r in matched])
    return results


def _partition_loose(rows: list[Row],
                     specs: list[list[tuple[str, object]]]) -> list[list[Row]]:
    """Distribute ``rows`` per spec under :func:`_loose_equal` semantics.

    Candidate rows come from a hash index over the first filter column
    (string values indexed lowercased, multi-valued tuples fanned out);
    every candidate is re-verified with ``_loose_equal``, so the result
    is exact.
    """
    results: list[list[Row]] = []
    indexes: dict[str, tuple[dict, list[int]]] = {}
    for spec in specs:
        if not spec:
            results.append([dict(r) for r in rows])
            continue
        first_column = spec[0][0]
        if first_column not in indexes:
            buckets: dict = {}
            linear: list[int] = []
            for i, r in enumerate(rows):
                value = r.get(first_column)
                keys = _loose_keys(value)
                if keys is None:
                    linear.append(i)
                    continue
                for key in keys:
                    buckets.setdefault(key, []).append(i)
            indexes[first_column] = (buckets, linear)
        buckets, linear = indexes[first_column]
        wanted = spec[0][1]
        lookup = _loose_keys(wanted)
        if lookup is None:
            candidate_ids = range(len(rows))
        else:
            seen: set[int] = set()
            candidate_ids = []
            for key in lookup:
                for i in buckets.get(key, ()):
                    if i not in seen:
                        seen.add(i)
                        candidate_ids.append(i)
            candidate_ids.extend(i for i in linear if i not in seen)
            candidate_ids.sort()
        matched = [rows[i] for i in candidate_ids
                   if all(_loose_equal(rows[i].get(c), v) for c, v in spec)]
        results.append([dict(r) for r in matched])
    return results


def _loose_keys(value: object) -> list | None:
    """Hash keys under which a value is found by ``_loose_equal``.

    Returns ``None`` when the value cannot be indexed (unhashable) and
    must be matched linearly.
    """
    keys: list = []
    try:
        hash(value)
    except TypeError:
        return None
    keys.append(value)
    if isinstance(value, str):
        keys.append(value.lower())
    elif isinstance(value, tuple):
        for item in value:
            item_keys = _loose_keys(item)
            if item_keys is None:
                return None
            keys.extend(item_keys)
    return keys
