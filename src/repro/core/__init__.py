"""Mediator core: mixed instances, CMQs, planning and execution.

This is the paper's primary contribution — the lightweight integration
layer evaluating Conjunctive Mixed Queries across heterogeneous sources
glued by a custom RDF graph.
"""

from repro.cache.mediator import MediatorCache
from repro.core.cmq import (
    AtomTemplate,
    AtomTemplateRegistry,
    CMQBuilder,
    ConjunctiveMixedQuery,
    GLUE_SOURCE,
    SourceAtom,
    VariableArg,
    parse_cmq,
    rename_atom,
)
from repro.core.executor import MixedQueryExecutor
from repro.core.instance import MixedInstance
from repro.core.planner import PlannerOptions, PlanStep, QueryPlan, QueryPlanner
from repro.core.results import ExecutionTrace, MixedResult, StepObservation, SubQueryCall
from repro.stats import CostModel, StatisticsCatalog
from repro.core.sources import (
    DataSource,
    FullTextQuery,
    FullTextSource,
    JSONQuery,
    JSONSource,
    RDFQuery,
    RDFSource,
    RelationalSource,
    Row,
    SourceQuery,
    SQLQuery,
)

__all__ = [
    "MediatorCache",
    "AtomTemplate",
    "AtomTemplateRegistry",
    "CMQBuilder",
    "ConjunctiveMixedQuery",
    "GLUE_SOURCE",
    "SourceAtom",
    "VariableArg",
    "parse_cmq",
    "rename_atom",
    "MixedQueryExecutor",
    "MixedInstance",
    "PlannerOptions",
    "PlanStep",
    "QueryPlan",
    "QueryPlanner",
    "ExecutionTrace",
    "MixedResult",
    "StepObservation",
    "SubQueryCall",
    "CostModel",
    "StatisticsCatalog",
    "DataSource",
    "FullTextQuery",
    "FullTextSource",
    "JSONQuery",
    "JSONSource",
    "RDFQuery",
    "RDFSource",
    "RelationalSource",
    "Row",
    "SourceQuery",
    "SQLQuery",
]
