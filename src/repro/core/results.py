"""Result sets returned by mixed-query evaluation."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from repro.errors import MixedQueryError


@dataclass
class MixedResult:
    """The answer of a CMQ: output variables plus binding rows.

    Rows are dictionaries keyed by the query's head variables.  The result
    also carries the evaluation trace (sub-query order, per-source calls,
    intermediate sizes) so demos and benchmarks can display what happened.
    """

    variables: list[str]
    rows: list[dict[str, object]] = field(default_factory=list)
    trace: "ExecutionTrace | None" = None

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[dict[str, object]]:
        return iter(self.rows)

    def __bool__(self) -> bool:
        return bool(self.rows)

    def column(self, variable: str) -> list[object]:
        """Return one output variable as a list of values."""
        if variable not in self.variables:
            raise MixedQueryError(f"result has no variable {variable!r}")
        return [row.get(variable) for row in self.rows]

    def distinct(self) -> "MixedResult":
        """Return a copy without duplicate rows (order preserving)."""
        seen: set[tuple] = set()
        rows = []
        for row in self.rows:
            key = tuple((v, _hashable(row.get(v))) for v in self.variables)
            if key not in seen:
                seen.add(key)
                rows.append(row)
        return MixedResult(variables=list(self.variables), rows=rows, trace=self.trace)

    def sorted_by(self, variable: str, descending: bool = False) -> "MixedResult":
        """Return a copy sorted by one output variable."""
        rows = sorted(self.rows, key=lambda r: _sort_key(r.get(variable)), reverse=descending)
        return MixedResult(variables=list(self.variables), rows=rows, trace=self.trace)

    def to_table(self, max_rows: int | None = 20) -> str:
        """Render the result as a fixed-width text table (for demos)."""
        shown = self.rows if max_rows is None else self.rows[:max_rows]
        widths = {v: len(v) for v in self.variables}
        rendered = []
        for row in shown:
            cells = {v: _cell(row.get(v)) for v in self.variables}
            for v, cell in cells.items():
                widths[v] = max(widths[v], len(cell))
            rendered.append(cells)
        header = " | ".join(v.ljust(widths[v]) for v in self.variables)
        separator = "-+-".join("-" * widths[v] for v in self.variables)
        lines = [header, separator]
        for cells in rendered:
            lines.append(" | ".join(cells[v].ljust(widths[v]) for v in self.variables))
        if max_rows is not None and len(self.rows) > max_rows:
            lines.append(f"... ({len(self.rows) - max_rows} more rows)")
        return "\n".join(lines)


@dataclass
class SubQueryCall:
    """One sub-query dispatch recorded during evaluation.

    For batched bind joins ``bindings_in`` counts the distinct bindings
    answered by the call and ``batched`` is True; per-binding calls keep
    the historical meaning (number of bound variables shipped).

    With the result cache enabled a dispatch may have been answered
    partly or entirely from cached entries without touching the source;
    the trace-level ``cache_hits`` / ``cache_misses`` counters tell how
    much source work the execution really did.
    """

    atom: str
    source_uri: str
    bindings_in: int
    rows_out: int
    seconds: float
    batched: bool = False
    #: Identity of the dispatched atom object (disambiguates atoms that
    #: share a display name, e.g. a self-join on one relation).
    atom_key: int = 0
    #: Why this call served degraded rows instead of fresh ones:
    #: ``"stale_cache"`` (previous cached results, possibly outdated) or
    #: ``"partial"`` (the source was down and nothing cached — the call
    #: contributed no rows).  ``None`` for a healthy call.
    degraded: str | None = None


@dataclass
class StepObservation:
    """Estimated vs. observed cardinality of one executed plan step.

    ``estimate`` is the planner's prediction — rows per input binding
    for bind steps, total rows for materialize steps; ``actual_rows``
    and ``bindings`` are what the source calls really did.  ``q_error``
    is the symmetric ratio the adaptive executor compares against
    ``PlannerOptions.replan_threshold``.
    """

    atom: str
    mode: str
    estimate: float
    actual_rows: int
    bindings: int = 0
    cost: float = 0.0
    #: True when this observation triggered a mid-flight replan.
    replanned_after: bool = False
    #: Identity of the observed atom object (matches SubQueryCall.atom_key,
    #: so EXPLAIN ANALYZE can attribute calls to self-joined atoms).
    atom_key: int = 0

    def actual_per_binding(self) -> float:
        """Observed rows normalised like the estimate (per binding for binds)."""
        if self.mode == "bind" and self.bindings:
            return self.actual_rows / self.bindings
        return float(self.actual_rows)

    def q_error(self) -> float:
        """max(est/actual, actual/est), with a floor of 1 on both sides."""
        estimate = max(1.0, self.estimate)
        actual = max(1.0, self.actual_per_binding())
        if estimate != estimate or estimate == float("inf"):
            return float("inf")
        return max(estimate / actual, actual / estimate)


@dataclass
class ExecutionTrace:
    """What the mediator did while answering a CMQ."""

    atom_order: list[str] = field(default_factory=list)
    stages: list[list[str]] = field(default_factory=list)
    calls: list[SubQueryCall] = field(default_factory=list)
    intermediate_sizes: list[int] = field(default_factory=list)
    total_seconds: float = 0.0
    plan_text: str = ""
    #: Bindings the digest sieve proved matchless (never shipped).
    sieved_bindings: int = 0
    #: Sub-query probes answered from the cross-query result cache.
    cache_hits: int = 0
    #: Sub-query probes that had to go to a source (and were then cached).
    cache_misses: int = 0
    #: True when the plan was served from the plan cache.
    plan_cached: bool = False
    #: Sub-query probes answered by another in-flight query's evaluation
    #: (MQO single-flight: this execution waited instead of re-calling).
    shared_subqueries: int = 0
    #: Miss bindings evaluated by riding another in-flight query's
    #: batched source call (MQO probe fusion) instead of a call of ours.
    fused_probes: int = 0
    #: Per-step estimated vs. actual cardinalities (execution order).
    steps: list[StepObservation] = field(default_factory=list)
    #: True when the executor re-planned the remaining steps mid-flight.
    replanned: bool = False
    #: Number of mid-flight replans.
    replans: int = 0
    #: The :class:`repro.obs.spans.SpanTracer` of this execution (None
    #: when tracing was disabled); ``spans.render()`` draws the tree.
    spans: "object | None" = None
    #: True when at least one source call served degraded (stale or
    #: partial) rows because its source was down past its retry budget.
    degraded: bool = False
    #: ``(atom, source_uri, reason)`` per degraded call.
    degraded_atoms: list[tuple[str, str, str]] = field(default_factory=list)

    def calls_to(self, source_uri: str) -> int:
        """Number of sub-query calls shipped to ``source_uri``."""
        return sum(1 for call in self.calls if call.source_uri == source_uri)

    def batched_calls(self) -> int:
        """Number of source calls that carried a binding batch."""
        return sum(1 for call in self.calls if call.batched)

    def total_rows_fetched(self) -> int:
        """Total rows returned by every source call."""
        return sum(call.rows_out for call in self.calls)

    def summary(self) -> str:
        """One-paragraph human-readable description of the evaluation."""
        lines = [
            f"evaluated {len(self.atom_order)} sub-queries in {len(self.stages)} stage(s)",
            f"order: {' -> '.join(self.atom_order)}",
            f"source calls: {len(self.calls)}, rows fetched: {self.total_rows_fetched()}",
            f"total time: {self.total_seconds * 1000:.1f} ms",
        ]
        if self.sieved_bindings:
            lines.insert(3, f"digest sieve dropped {self.sieved_bindings} binding(s)")
        if self.cache_hits or self.cache_misses:
            lines.insert(3, f"result cache: {self.cache_hits} hit(s), "
                            f"{self.cache_misses} miss(es)")
        if self.shared_subqueries or self.fused_probes:
            lines.insert(3, f"mqo: {self.shared_subqueries} shared "
                            f"sub-query(ies), {self.fused_probes} fused probe(s)")
        if self.plan_cached:
            lines.insert(1, "plan served from the plan cache")
        if self.degraded:
            detail = ", ".join(f"{atom}@{source} ({reason})"
                               for atom, source, reason in self.degraded_atoms)
            lines.insert(1, f"DEGRADED result: {detail}")
        if self.replanned:
            lines.insert(1, f"re-planned the remaining steps mid-flight "
                            f"{self.replans} time(s)")
        if self.steps:
            lines.append("per-step cost / est / actual rows:")
        for observation in self.steps:
            marker = "  -> replanned tail" if observation.replanned_after else ""
            lines.append(
                f"  {observation.atom:<20} [{observation.mode}] "
                f"cost {observation.cost:.1f}  est {observation.estimate:.0f}  "
                f"actual {observation.actual_rows}{marker}")
        return "\n".join(lines)


def _hashable(value: object) -> object:
    if isinstance(value, (list, set)):
        return tuple(value)
    if isinstance(value, dict):
        return tuple(sorted(value.items()))
    return value


def _sort_key(value: object) -> tuple:
    if value is None:
        return (2, "")
    if isinstance(value, (int, float)) and not isinstance(value, bool):
        return (0, value)
    return (1, str(value))


def _cell(value: object) -> str:
    text = "" if value is None else str(value)
    return text if len(text) <= 40 else text[:37] + "..."
