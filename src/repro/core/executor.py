"""Evaluation of Conjunctive Mixed Queries over a mixed instance.

The executor walks a :class:`~repro.core.planner.QueryPlan` stage by
stage:

* ``materialize`` steps of the same stage are shipped to their sources in
  parallel (thread pool) and hash-joined with the current intermediate
  result;
* ``bind`` steps become *batched* bind joins: distinct bindings of the
  current intermediate result are collected into planner-sized batches,
  sieved against the source digests (when a catalog is available), and
  shipped in one source call per batch — the wrapper answers the whole
  batch natively (IN-lists, disjunctive queries, shared candidate sets)
  where its query language allows.  This is how bindings reach dependent
  sources — including *dynamically discovered* sources whose URI comes
  from a variable binding.  ``PlannerOptions(batch_bind_joins=False)``
  restores the historical one-call-per-binding behaviour.

The remaining processing (joins, projection, deduplication) happens inside
the iterator engine of :mod:`repro.engine`.

With ``PlannerOptions(adaptive=True)`` (the default for cost-based
plans) execution is **adaptive**: the intermediate result materialises
between stages, each step's observed cardinality is compared with the
planner's estimate, and when the q-error exceeds the replan threshold
the executor records feedback into the statistics layer, invalidates
the stale plan-cache entry and re-plans the remaining steps from the
real intermediate cardinality.
"""

from __future__ import annotations

import logging
import threading
import time

from repro.cache.lru import CacheStats
from repro.cache.results import CachedSource, MQOStats
from repro.core.cmq import ConjunctiveMixedQuery, SourceAtom
from repro.core.planner import PlannerOptions, PlanStep, QueryPlan, QueryPlanner
from repro.core.results import ExecutionTrace, MixedResult, StepObservation, SubQueryCall
from repro.core.sources import DataSource, Row
from repro.engine.batch import DEFAULT_BATCH_SIZE
from repro.engine.iterators import (
    BatchBindJoin,
    BindJoin,
    CallbackScan,
    Distinct,
    HashJoin,
    MaterializedScan,
    Operator,
    Project,
)
from repro.engine.parallel import ParallelStats, run_parallel, run_tasks
from repro.errors import (
    MixedQueryError,
    QueryTimeoutError,
    RemoteError,
    ReproError,
    SourceDispatchError,
    UnknownSourceError,
)
from repro.obs.metrics import get_registry
from repro.obs.spans import SpanTracer, attach, current_span, detach, span as _span

logger = logging.getLogger("repro.core.executor")


class MixedQueryExecutor:
    """Evaluates CMQs against a catalog of wrapped data sources.

    ``digests`` is an optional :class:`repro.digest.graph.DigestCatalog`;
    when given, batched bind joins sieve their bindings through the
    target source's value-set summaries before shipping them.

    ``cache`` is an optional :class:`repro.cache.MediatorCache` (shared
    by every executor of an instance): sub-query results are then served
    from the cross-query result cache before any source dispatch —
    including per-binding probes inside batched bind joins, so a batch
    ships only cache misses — and plans are reused through the plan
    cache.  ``PlannerOptions(result_cache=False, plan_cache=False)``
    opts out per executor.
    """

    def __init__(self, sources: dict[str, DataSource], glue: DataSource,
                 options: PlannerOptions | None = None, max_workers: int = 4,
                 digests=None, cache=None, statistics=None,
                 cancel_check=None, dispatch_pool=None, task_pool=None,
                 metrics=None, deadline=None, mqo=None):
        self._sources = dict(sources)
        self._glue = glue
        self.options = options or PlannerOptions()
        self.max_workers = max_workers
        # Metrics sink; resolved lazily so tests that reset the global
        # registry see their fresh registry even on long-lived executors.
        self._metrics = metrics
        #: Optional callable invoked between stages; it raises (e.g.
        #: QueryCancelledError / QueryTimeoutError) to abort execution
        #: cooperatively — the mediator service wires it per ticket.
        self.cancel_check = cancel_check
        #: Optional callable returning the seconds left before this
        #: execution's deadline (None = unbounded).  Unlike the purely
        #: cooperative ``cancel_check``, the remaining budget bounds the
        #: *wait* on every dispatch pool, so a single hung source call
        #: surfaces QueryTimeoutError mid-stage instead of stalling the
        #: ticket indefinitely.
        self.deadline = deadline
        # Service-owned shared pools (None = the process-wide ones).
        self._dispatch_pool = dispatch_pool
        self._task_pool = task_pool
        self.planner = QueryPlanner(self._sources, glue, self.options,
                                    plan_cache=cache.plans if cache is not None else None,
                                    statistics=statistics)
        self._sieve = None
        if digests is not None:
            from repro.digest.sieve import DigestSieve

            self._sieve = DigestSieve(digests)
        # Dispatch goes through caching proxies when a mediator cache is
        # configured; the planner (and the digest sieve) keep seeing the
        # raw sources.  ``_cache_stats`` collects this executor's own
        # hit/miss counts for the trace (the instance-wide counters are
        # shared with other executors).
        self._result_cache = None
        self._cache_stats = None
        #: This executor's share of cross-query MQO work (``mqo`` is the
        #: service's fusion coordinator, duck-typed — the core layer
        #: never imports :mod:`repro.service`).
        self._mqo_stats = None
        self._dispatch: dict[str, DataSource] = self._sources
        self._dispatch_glue: DataSource = glue
        if cache is not None and self.options.result_cache:
            self._result_cache = cache.results
            self._cache_stats = CacheStats()
            self._mqo_stats = MQOStats() if mqo is not None else None
            stats_lock = threading.Lock()
            repair = getattr(cache, "repair", None)
            self._dispatch = {uri: CachedSource(source, cache.results,
                                                stats=self._cache_stats,
                                                stats_lock=stats_lock,
                                                mqo=mqo,
                                                mqo_stats=self._mqo_stats,
                                                repair=repair)
                              for uri, source in self._sources.items()}
            self._dispatch_glue = CachedSource(glue, cache.results,
                                               stats=self._cache_stats,
                                               stats_lock=stats_lock,
                                               mqo=mqo,
                                               mqo_stats=self._mqo_stats,
                                               repair=repair)

    # ------------------------------------------------------------------
    def execute(self, query: ConjunctiveMixedQuery, plan: QueryPlan | None = None,
                distinct: bool = True, limit: int | None = None) -> MixedResult:
        """Evaluate ``query`` and return its :class:`MixedResult`.

        A pre-built ``plan`` may be supplied (the ablation benchmarks use
        this to compare planner options on identical queries).

        With ``PlannerOptions(tracing=True)`` (the default) the whole
        evaluation is wrapped in an ``execute`` span — nested under the
        service's per-query root when one is active, otherwise the root
        of a fresh :class:`~repro.obs.spans.SpanTracer` — and the tracer
        lands on ``result.trace.spans``.
        """
        options = (plan.options if plan is not None and plan.options is not None
                   else self.options)
        if not options.tracing:
            result = self._execute(query, plan, distinct, limit)
            self._record_metrics(result.trace)
            return result
        parent = current_span()
        if parent is not None:
            root = parent.tracer.start("execute", parent=parent, query=query.name)
        else:
            root = SpanTracer(f"execute:{query.name}").start(
                "execute", query=query.name)
        token = attach(root)
        try:
            result = self._execute(query, plan, distinct, limit)
        finally:
            detach(token)
        root.end(rows=len(result.rows), calls=len(result.trace.calls))
        result.trace.spans = root.tracer
        self._record_metrics(result.trace)
        return result

    def _execute(self, query: ConjunctiveMixedQuery, plan: QueryPlan | None,
                 distinct: bool, limit: int | None) -> MixedResult:
        start = time.perf_counter()
        cache_stats = (self._cache_stats.snapshot()
                       if self._cache_stats is not None else None)
        mqo_stats = (self._mqo_stats.snapshot()
                     if self._mqo_stats is not None else None)
        plan = plan or self.planner.plan(query)
        trace = ExecutionTrace(atom_order=plan.atom_order(), plan_text=plan.explain(),
                               stages=[[plan.steps[i].atom.name for i in stage]
                                       for stage in plan.stages],
                               plan_cached=plan.cached)
        options = plan.options or self.options
        adaptive = (options.adaptive and options.cost_based
                    and options.selectivity_ordering)

        current: Operator | None = None
        batch_joins: list[BatchBindJoin] = []
        executed: list[PlanStep] = []
        executed_stages: list[list[str]] = []
        replanned_after: set[int] = set()
        pending = [[plan.steps[i] for i in stage] for stage in plan.stages]
        max_replans = len(plan.steps)
        while pending:
            if self.cancel_check is not None:
                self.cancel_check()
            steps = pending.pop(0)
            if len(steps) == 1 and steps[0].mode == "bind" and current is not None:
                current = self._bind_step(current, steps[0], trace, batch_joins)
            else:
                current = self._materialize_stage(current, steps, trace)
            executed.extend(steps)
            executed_stages.append([step.atom.name for step in steps])
            if not (adaptive and pending):
                continue
            # Materialise the intermediate result so the stage's source
            # calls have happened and actual cardinalities are known.
            intermediate = current.rows()
            current = MaterializedScan(intermediate, name="intermediate")
            trace.intermediate_sizes.append(len(intermediate))
            worst: tuple[float, PlanStep, StepObservation] | None = None
            for step in steps:
                observation = self._observe(step, trace)
                if observation is None:
                    continue
                error = observation.q_error()
                if worst is None or error > worst[0]:
                    worst = (error, step, observation)
            if (worst is None or worst[0] <= options.replan_threshold
                    or trace.replans >= max_replans):
                continue
            # The estimate was off: invalidate the stale cached plan
            # (computed under the *current* statistics revision, so drop
            # it before feedback bumps the revision), record what was
            # observed, and re-plan the remaining steps from the real
            # intermediate cardinality.
            self.planner.forget(query, options)
            self._record_feedback(steps, trace)
            logger.warning(
                "re-planning %s after step %s: estimated %.0f row(s), "
                "observed %d (q-error %.1f > threshold %.1f)",
                query.name, worst[1].atom.name, worst[2].estimate,
                worst[2].actual_rows, worst[0], options.replan_threshold)
            replanned_after.add(id(worst[1]))
            bound: set[str] = set()
            for step in executed:
                bound |= step.atom.output_variables()
                if step.atom.source_variable is not None:
                    bound.add(step.atom.source_variable)
            tail = self.planner.plan_tail(query, [s.atom for s in executed], bound,
                                          float(len(intermediate)), options)
            pending = [[tail.steps[i] for i in stage] for stage in tail.stages]
            trace.replanned = True
            trace.replans += 1
            trace.plan_text += (
                f"\nre-planned after {worst[1].atom.name} "
                f"(est. {worst[2].estimate:.0f}, actual {worst[2].actual_rows}):\n"
                + tail.explain())

        if current is None:
            raise MixedQueryError(f"query {query.name!r} produced an empty plan")
        if self.cancel_check is not None:
            self.cancel_check()

        output = list(query.output_variables())
        operator: Operator = Project(current, output)
        if distinct:
            operator = Distinct(operator)
        rows = operator.rows()
        if limit is not None:
            rows = rows[:limit]
        trace.total_seconds = time.perf_counter() - start
        trace.intermediate_sizes.append(len(rows))
        trace.sieved_bindings = sum(join.sieved_out for join in batch_joins)
        if trace.replanned:
            # The executed schedule diverged from the planned one.
            trace.atom_order = [step.atom.name for step in executed]
            trace.stages = executed_stages
        for step in executed:
            observation = self._observe(step, trace)
            if observation is not None:
                observation.replanned_after = id(step) in replanned_after
                trace.steps.append(observation)
        if cache_stats is not None:
            # Dispatch-level probes from this executor's own proxies plus
            # the bind joins' pre-dispatch probe hits.
            now = self._cache_stats
            trace.cache_hits = (now.hits - cache_stats.hits
                                + sum(join.cache_hits for join in batch_joins))
            trace.cache_misses = now.misses - cache_stats.misses
        if mqo_stats is not None:
            current_mqo = self._mqo_stats
            trace.shared_subqueries = (current_mqo.shared_subqueries
                                       - mqo_stats.shared_subqueries)
            trace.fused_probes = current_mqo.fused_probes - mqo_stats.fused_probes
        return MixedResult(variables=output, rows=rows, trace=trace)

    # ------------------------------------------------------------------
    # Estimate-vs-actual bookkeeping (adaptive re-planning)
    # ------------------------------------------------------------------
    @staticmethod
    def _observe(step: PlanStep, trace: ExecutionTrace,
                 source_uri: str | None = None) -> StepObservation | None:
        """What the trace knows about one step's calls so far.

        Calls are matched by atom *identity*, not display name — two
        atoms of a self-join share a name but must not pool their rows.
        """
        calls = [c for c in trace.calls
                 if c.atom_key == id(step.atom)
                 and (source_uri is None or c.source_uri == source_uri)]
        if not calls:
            return None
        actual = sum(c.rows_out for c in calls)
        bindings = sum(c.bindings_in for c in calls if c.batched)
        if not bindings and step.mode == "bind":
            bindings = len(calls)
        return StepObservation(atom=step.atom.name, mode=step.mode,
                               estimate=step.estimate, actual_rows=actual,
                               bindings=bindings, cost=step.cost,
                               atom_key=id(step.atom))

    def _record_feedback(self, steps: list[PlanStep], trace: ExecutionTrace) -> None:
        """Feed observed cardinalities of a stage back into the statistics.

        Recorded per source: a dynamic atom's candidates each get their
        own observed rows (the planner *sums* candidate estimates, so
        recording the aggregate against every candidate would inflate
        the next estimate N-fold).
        """
        statistics = self.planner.statistics
        for step in steps:
            bound_formals = self.planner._bound_formals(
                step.atom, set(step.bound_variables))
            for source in step.sources:
                observation = self._observe(step, trace, source_uri=source.uri)
                if observation is None:
                    continue
                statistics.record(source, step.atom.query, bound_formals,
                                  observation.actual_per_binding())

    def _record_metrics(self, trace: ExecutionTrace) -> None:
        """Fold one execution's trace into the metrics registry."""
        registry = self._metrics if self._metrics is not None else get_registry()
        registry.counter("executor_queries_total").inc()
        registry.histogram("executor_query_seconds").observe(trace.total_seconds)
        if trace.replans:
            registry.counter("executor_replans_total").inc(trace.replans)
        if trace.sieved_bindings:
            registry.counter("sieve_sieved_bindings_total").inc(trace.sieved_bindings)
        if trace.cache_hits:
            registry.counter("result_cache_probe_hits_total").inc(trace.cache_hits)
        if trace.cache_misses:
            registry.counter("result_cache_probe_misses_total").inc(trace.cache_misses)
        shipped = sum(call.bindings_in for call in trace.calls if call.batched)
        if shipped:
            registry.counter("sieve_shipped_bindings_total").inc(shipped)

    # ------------------------------------------------------------------
    # Stage evaluation
    # ------------------------------------------------------------------
    def _remaining(self) -> float | None:
        """Seconds left before the execution deadline (None = unbounded).

        Raises :class:`~repro.errors.QueryTimeoutError` directly when the
        budget is already exhausted, so stages stop dispatching the
        moment the deadline passes.
        """
        if self.deadline is None:
            return None
        remaining = self.deadline()
        if remaining is None:
            return None
        if remaining <= 0:
            raise QueryTimeoutError("query deadline exceeded mid-stage")
        return remaining

    def _materialize_stage(self, current: Operator | None, steps: list[PlanStep],
                           trace: ExecutionTrace) -> Operator:
        scans = [CallbackScan(self._fetch_callable(step, trace), name=step.atom.name)
                 for step in steps]
        workers = self.max_workers if self.options.parallel_stages else 1
        stats = ParallelStats()
        with _span("stage:materialize",
                   atoms=[step.atom.name for step in steps]) as sp:
            outputs = run_parallel(scans, max_workers=workers, stats=stats,
                                   pool=self._dispatch_pool,
                                   timeout=self._remaining())
            if sp is not None:
                sp.set(rows=sum(len(rows) for rows in outputs))
        operator = current
        for step, rows in zip(steps, outputs):
            scan = MaterializedScan(rows, name=step.atom.name)
            operator = scan if operator is None else HashJoin(operator, scan)
        assert operator is not None
        return operator

    def _bind_step(self, current: Operator, step: PlanStep, trace: ExecutionTrace,
                   batch_joins: list[BatchBindJoin]) -> Operator:
        atom = step.atom
        relevant = sorted(atom.variables()
                          | ({atom.source_variable} if atom.source_variable else set()))

        def call_key(row: Row) -> tuple:
            return tuple((v, _hashable(row.get(v))) for v in relevant if v in row)

        if not self.options.batch_bind_joins:
            def fetch(row: Row):
                with _span(f"bind:{atom.name}", bindings=1):
                    return self._execute_atom(step, atom, row, trace)

            return BindJoin(current, fetch, name=f"bind:{atom.name}", call_key=call_key)

        def binding_of(row: Row) -> Row:
            return {v: row[v] for v in relevant if v in row}

        join_cell: list[BatchBindJoin] = []

        def fetch_batch(bindings: list[Row]) -> list[list[Row]]:
            with _span(f"bind:{atom.name}", bindings=len(bindings)) as sp:
                before = (self._mqo_stats.snapshot()
                          if self._mqo_stats is not None else None)
                per_binding = self._execute_atom_batch(step, atom, bindings, trace)
                if before is not None and join_cell:
                    # Attribute this batch's cross-query sharing to the
                    # join (stages run one bind step at a time, so the
                    # delta belongs to exactly this operator).
                    join_cell[0].shared_results += (
                        self._mqo_stats.shared_subqueries - before.shared_subqueries)
                    join_cell[0].fused_probes += (
                        self._mqo_stats.fused_probes - before.fused_probes)
                if sp is not None:
                    sp.set(rows=sum(len(rows) for rows in per_binding))
                return per_binding

        sieve = None
        if self._sieve is not None and self.options.digest_sieve and step.use_sieve:
            sieve = self._sieve.sieve_for(atom, step.sources)
        join = BatchBindJoin(current, fetch_batch, call_key=call_key,
                             binding_of=binding_of,
                             batch_size=step.batch_size or DEFAULT_BATCH_SIZE,
                             sieve=sieve, probe=self._cache_probe(step, atom),
                             name=f"bind:{atom.name}")
        join_cell.append(join)
        batch_joins.append(join)
        return join

    def _cache_probe(self, step: PlanStep, atom: SourceAtom):
        """Per-binding result-cache probe for a static bind step.

        A hit answers the binding without it ever entering a batch;
        misses ship as usual (and are cached at dispatch by the source
        proxy).  Dynamic atoms resolve their target per binding and rely
        on the proxy alone.
        """
        if self._result_cache is None or step.dynamic:
            return None
        if atom.is_glue():
            target = self._dispatch_glue
        elif atom.source is not None:
            target = self._dispatch.get(atom.source)
        else:
            target = None
        if not isinstance(target, CachedSource):
            return None

        def probe(binding: Row) -> list[Row] | None:
            rows = target.peek(atom.query, atom.formal_bindings(binding))
            if rows is None:
                return None
            return atom.translate_rows(rows)

        return probe

    def _fetch_callable(self, step: PlanStep, trace: ExecutionTrace):
        def fetch():
            return self._execute_atom(step, step.atom, {}, trace)

        return fetch

    # ------------------------------------------------------------------
    # Atom execution (static, dynamic and free-variable sources)
    # ------------------------------------------------------------------
    def _execute_atom(self, step: PlanStep, atom: SourceAtom, bindings: Row,
                      trace: ExecutionTrace) -> list[Row]:
        sources = self._resolve_runtime_sources(step, atom, bindings)

        def call(source: DataSource):
            with _span("call", atom=atom.name, source=source.uri) as sp:
                started = time.perf_counter()
                degraded = None
                try:
                    fetched = atom.execute_on(source, bindings)
                except Exception as exc:
                    fetched, degraded = self._handle_dispatch_error(
                        exc, atom, source, [bindings])
                    fetched = fetched[0]
                    if sp is not None:
                        sp.set(degraded=degraded)
                if sp is not None:
                    sp.set(rows=len(fetched))
            return source, fetched, time.perf_counter() - started, degraded

        # A free source variable fans out to every accepting source; those
        # calls are independent, so dispatch them like a parallel stage.
        workers = self.max_workers if self.options.parallel_stages else 1
        outcomes = run_tasks([lambda s=source: call(s) for source in sources],
                             max_workers=workers, pool=self._task_pool,
                             timeout=self._remaining())
        rows: list[Row] = []
        for source, fetched, elapsed, degraded in outcomes:
            if atom.source_variable is not None:
                for row in fetched:
                    row.setdefault(atom.source_variable, source.uri)
            trace.calls.append(SubQueryCall(
                atom=atom.name, source_uri=source.uri,
                bindings_in=len(bindings), rows_out=len(fetched), seconds=elapsed,
                atom_key=id(atom), degraded=degraded,
            ))
            if degraded is not None:
                trace.degraded = True
                trace.degraded_atoms.append((atom.name, source.uri, degraded))
            rows.extend(fetched)
        return rows

    def _execute_atom_batch(self, step: PlanStep, atom: SourceAtom,
                            bindings_list: list[Row],
                            trace: ExecutionTrace) -> list[list[Row]]:
        """Ship one batch of distinct bindings; one call per target source.

        Static atoms hit their single source once; dynamic atoms group
        the batch by the source URI each binding resolves to; a free
        source variable fans the whole batch out to every accepting
        source (results concatenated per binding, as in per-binding
        mode).
        """
        results: list[list[Row]] = [[] for _ in bindings_list]
        by_source: dict[str, tuple[DataSource, list[int]]] = {}
        for index, bindings in enumerate(bindings_list):
            for source in self._resolve_runtime_sources(step, atom, bindings):
                entry = by_source.get(source.uri)
                if entry is None:
                    entry = (source, [])
                    by_source[source.uri] = entry
                entry[1].append(index)

        def call(source: DataSource, indices: list[int]):
            batch = [bindings_list[i] for i in indices]
            with _span("call", atom=atom.name, source=source.uri,
                       bindings=len(batch), batched=True) as sp:
                started = time.perf_counter()
                degraded = None
                try:
                    per_binding = atom.execute_batch_on(source, batch)
                except Exception as exc:
                    per_binding, degraded = self._handle_dispatch_error(
                        exc, atom, source, batch)
                    if sp is not None:
                        sp.set(degraded=degraded)
                if sp is not None:
                    sp.set(rows=sum(len(rows) for rows in per_binding))
            return (source, indices, per_binding,
                    time.perf_counter() - started, degraded)

        workers = self.max_workers if self.options.parallel_stages else 1
        outcomes = run_tasks(
            [lambda s=source, idx=indices: call(s, idx)
             for source, indices in by_source.values()],
            max_workers=workers, pool=self._task_pool,
            timeout=self._remaining())
        for source, indices, per_binding, elapsed, degraded in outcomes:
            if len(per_binding) != len(indices):
                raise MixedQueryError(
                    f"source {source.uri!r} answered {len(per_binding)} bindings "
                    f"of a {len(indices)}-binding batch for atom {atom.name!r}"
                )
            total = 0
            for index, rows in zip(indices, per_binding):
                if atom.source_variable is not None:
                    for row in rows:
                        row.setdefault(atom.source_variable, source.uri)
                results[index].extend(rows)
                total += len(rows)
            trace.calls.append(SubQueryCall(
                atom=atom.name, source_uri=source.uri,
                bindings_in=len(indices), rows_out=total, seconds=elapsed,
                batched=True, atom_key=id(atom), degraded=degraded,
            ))
            if degraded is not None:
                trace.degraded = True
                trace.degraded_atoms.append((atom.name, source.uri, degraded))
        return results

    def _handle_dispatch_error(self, exc: Exception, atom: SourceAtom,
                               source: DataSource,
                               batch: list[Row]) -> tuple[list[list[Row]], str]:
        """Degrade or re-raise one failed dispatch.

        A typed :class:`~repro.errors.RemoteError` (the source is down
        past its retry budget) degrades gracefully when the options allow
        it: each binding is answered from the latest *stale* cached rows
        if any exist, else with no rows — and the call is flagged so the
        trace / EXPLAIN ANALYZE report the query as degraded rather than
        silently incomplete.  Any other repro error propagates unchanged;
        an unexpected (non-repro) exception is wrapped so the failed
        ticket carries the source URI and atom that caused it.
        """
        if isinstance(exc, RemoteError):
            if not getattr(self.options, "graceful_degradation", True):
                raise exc
            per_binding: list[list[Row]] = []
            stale_hits = 0
            peek_stale = getattr(source, "peek_stale", None)
            for bindings in batch:
                rows = None
                if peek_stale is not None:
                    stale = peek_stale(atom.query, atom.formal_bindings(bindings))
                    if stale is not None:
                        rows = atom.translate_rows(stale)
                if rows is None:
                    per_binding.append([])
                else:
                    stale_hits += 1
                    per_binding.append(rows)
            reason = "stale_cache" if stale_hits == len(batch) else "partial"
            logger.warning(
                "degrading atom %s on %s after %s: %s (%d/%d binding(s) "
                "served from stale cache)", atom.name, source.uri,
                type(exc).__name__, exc, stale_hits, len(batch))
            registry = (self._metrics if self._metrics is not None
                        else get_registry())
            registry.counter("executor_degraded_calls_total",
                             source=source.uri, reason=reason).inc()
            return per_binding, reason
        if isinstance(exc, ReproError):
            raise exc
        raise SourceDispatchError(
            f"source {source.uri!r} raised {type(exc).__name__} while "
            f"evaluating atom {atom.name!r}: {exc}",
            source_uri=source.uri, atom=atom.name) from exc

    def _resolve_runtime_sources(self, step: PlanStep, atom: SourceAtom,
                                 bindings: Row) -> list[DataSource]:
        if atom.is_glue():
            return [self._dispatch_glue]
        if atom.source is not None:
            return [self._source(atom.source)]
        # Dynamic source: a bound source variable identifies one source;
        # a free source variable fans out to every accepting source.
        if atom.source_variable and atom.source_variable in bindings:
            uri = bindings[atom.source_variable]
            return [self._source(str(uri))]
        candidates = [s for s in self._dispatch.values() if s.accepts(atom.query)]
        if not candidates:
            raise UnknownSourceError(
                f"no registered source accepts the sub-query of atom {atom.name!r}"
            )
        return candidates

    def _source(self, uri: str) -> DataSource:
        source = self._dispatch.get(uri)
        if source is None:
            raise UnknownSourceError(f"no source registered under URI {uri!r}")
        return source


def _hashable(value: object) -> object:
    if isinstance(value, (list, set)):
        return tuple(value)
    if isinstance(value, dict):
        return tuple(sorted(value.items()))
    return value
