"""Evaluation of Conjunctive Mixed Queries over a mixed instance.

The executor walks a :class:`~repro.core.planner.QueryPlan` stage by
stage:

* ``materialize`` steps of the same stage are shipped to their sources in
  parallel (thread pool) and hash-joined with the current intermediate
  result;
* ``bind`` steps become bind joins: the sub-query is re-evaluated per
  (deduplicated) binding of the current intermediate result, which is how
  bindings reach dependent sources — including *dynamically discovered*
  sources whose URI comes from a variable binding.

The remaining processing (joins, projection, deduplication) happens inside
the iterator engine of :mod:`repro.engine`.
"""

from __future__ import annotations

import time
from typing import Optional

from repro.core.cmq import ConjunctiveMixedQuery, SourceAtom
from repro.core.planner import PlannerOptions, PlanStep, QueryPlan, QueryPlanner
from repro.core.results import ExecutionTrace, MixedResult, SubQueryCall
from repro.core.sources import DataSource, Row
from repro.engine.iterators import (
    BindJoin,
    CallbackScan,
    Distinct,
    HashJoin,
    MaterializedScan,
    Operator,
    Project,
)
from repro.engine.parallel import ParallelStats, run_parallel, run_tasks
from repro.errors import MixedQueryError, UnknownSourceError


class MixedQueryExecutor:
    """Evaluates CMQs against a catalog of wrapped data sources."""

    def __init__(self, sources: dict[str, DataSource], glue: DataSource,
                 options: PlannerOptions | None = None, max_workers: int = 4):
        self._sources = dict(sources)
        self._glue = glue
        self.options = options or PlannerOptions()
        self.max_workers = max_workers
        self.planner = QueryPlanner(self._sources, glue, self.options)

    # ------------------------------------------------------------------
    def execute(self, query: ConjunctiveMixedQuery, plan: QueryPlan | None = None,
                distinct: bool = True, limit: int | None = None) -> MixedResult:
        """Evaluate ``query`` and return its :class:`MixedResult`.

        A pre-built ``plan`` may be supplied (the ablation benchmarks use
        this to compare planner options on identical queries).
        """
        start = time.perf_counter()
        plan = plan or self.planner.plan(query)
        trace = ExecutionTrace(atom_order=plan.atom_order(), plan_text=plan.explain(),
                               stages=[[plan.steps[i].atom.name for i in stage]
                                       for stage in plan.stages])

        current: Operator | None = None
        for stage in plan.stages:
            steps = [plan.steps[i] for i in stage]
            if len(steps) == 1 and steps[0].mode == "bind" and current is not None:
                current = self._bind_step(current, steps[0], trace)
            else:
                current = self._materialize_stage(current, steps, trace)

        if current is None:
            raise MixedQueryError(f"query {query.name!r} produced an empty plan")

        output = list(query.output_variables())
        operator: Operator = Project(current, output)
        if distinct:
            operator = Distinct(operator)
        rows = operator.rows()
        if limit is not None:
            rows = rows[:limit]
        trace.total_seconds = time.perf_counter() - start
        trace.intermediate_sizes.append(len(rows))
        return MixedResult(variables=output, rows=rows, trace=trace)

    # ------------------------------------------------------------------
    # Stage evaluation
    # ------------------------------------------------------------------
    def _materialize_stage(self, current: Operator | None, steps: list[PlanStep],
                           trace: ExecutionTrace) -> Operator:
        scans = [CallbackScan(self._fetch_callable(step, trace), name=step.atom.name)
                 for step in steps]
        workers = self.max_workers if self.options.parallel_stages else 1
        stats = ParallelStats()
        outputs = run_parallel(scans, max_workers=workers, stats=stats)
        operator = current
        for step, rows in zip(steps, outputs):
            scan = MaterializedScan(rows, name=step.atom.name)
            operator = scan if operator is None else HashJoin(operator, scan)
        assert operator is not None
        return operator

    def _bind_step(self, current: Operator, step: PlanStep, trace: ExecutionTrace) -> Operator:
        atom = step.atom

        def fetch(row: Row):
            return self._execute_atom(step, atom, row, trace)

        relevant = sorted(atom.variables() | ({atom.source_variable} if atom.source_variable else set()))

        def call_key(row: Row) -> tuple:
            return tuple((v, _hashable(row.get(v))) for v in relevant if v in row)

        return BindJoin(current, fetch, name=f"bind:{atom.name}", call_key=call_key)

    def _fetch_callable(self, step: PlanStep, trace: ExecutionTrace):
        def fetch():
            return self._execute_atom(step, step.atom, {}, trace)

        return fetch

    # ------------------------------------------------------------------
    # Atom execution (static, dynamic and free-variable sources)
    # ------------------------------------------------------------------
    def _execute_atom(self, step: PlanStep, atom: SourceAtom, bindings: Row,
                      trace: ExecutionTrace) -> list[Row]:
        sources = self._resolve_runtime_sources(step, atom, bindings)

        def call(source: DataSource) -> tuple[DataSource, list[Row], float]:
            started = time.perf_counter()
            fetched = atom.execute_on(source, bindings)
            return source, fetched, time.perf_counter() - started

        # A free source variable fans out to every accepting source; those
        # calls are independent, so dispatch them like a parallel stage.
        workers = self.max_workers if self.options.parallel_stages else 1
        outcomes = run_tasks([lambda s=source: call(s) for source in sources],
                             max_workers=workers)
        rows: list[Row] = []
        for source, fetched, elapsed in outcomes:
            if atom.source_variable is not None:
                for row in fetched:
                    row.setdefault(atom.source_variable, source.uri)
            trace.calls.append(SubQueryCall(
                atom=atom.name, source_uri=source.uri,
                bindings_in=len(bindings), rows_out=len(fetched), seconds=elapsed,
            ))
            rows.extend(fetched)
        return rows

    def _resolve_runtime_sources(self, step: PlanStep, atom: SourceAtom,
                                 bindings: Row) -> list[DataSource]:
        if atom.is_glue():
            return [self._glue]
        if atom.source is not None:
            return [self._source(atom.source)]
        # Dynamic source: a bound source variable identifies one source;
        # a free source variable fans out to every accepting source.
        if atom.source_variable and atom.source_variable in bindings:
            uri = bindings[atom.source_variable]
            return [self._source(str(uri))]
        candidates = [s for s in self._sources.values() if s.accepts(atom.query)]
        if not candidates:
            raise UnknownSourceError(
                f"no registered source accepts the sub-query of atom {atom.name!r}"
            )
        return candidates

    def _source(self, uri: str) -> DataSource:
        source = self._sources.get(uri)
        if source is None:
            raise UnknownSourceError(f"no source registered under URI {uri!r}")
        return source


def _hashable(value: object) -> object:
    if isinstance(value, (list, set)):
        return tuple(value)
    if isinstance(value, dict):
        return tuple(sorted(value.items()))
    return value
