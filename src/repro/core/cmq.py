"""Conjunctive Mixed Queries (CMQ).

A CMQ (paper, Definition in §2.2) has the form::

    q(x̄) :- qG(x̄0), q1(x̄1)[d1], ..., qn(x̄n)[dn]

where ``qG`` is a BGP over the custom RDF graph of the mixed instance and
each ``qi`` is a sub-query in the language of a data source ``di``; each
``di`` is either a source URI or a *variable* bound at run time (dynamic
source discovery).

This module provides:

* :class:`SourceAtom` / :class:`ConjunctiveMixedQuery` — the query objects;
* :class:`CMQBuilder` — a fluent programmatic construction API;
* :class:`AtomTemplateRegistry` and :func:`parse_cmq` — the textual syntax
  used in the paper (``qSIA(t, id) :- qG(id), tweetContains(t, id,
  "SIA2016")[dSolr]``), where atom names refer to registered sub-query
  templates.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field, replace
from typing import Iterable, Optional, Sequence

from repro.core.sources import (
    DataSource,
    FullTextQuery,
    JSONQuery,
    RDFQuery,
    Row,
    SourceQuery,
    SQLQuery,
)
from repro.errors import MixedQueryError, ParseError

#: Sentinel source URI designating the mixed instance's custom RDF graph.
GLUE_SOURCE = "#glue"


@dataclass(frozen=True)
class SourceAtom:
    """One conjunct of a CMQ: a sub-query aimed at a data source.

    Parameters
    ----------
    name:
        Display name of the atom (e.g. ``tweetContains``).
    query:
        The per-model sub-query (its variables are the atom's *formal*
        variables).
    source:
        Source URI, :data:`GLUE_SOURCE` for the custom graph, or ``None``
        when ``source_variable`` is used instead.
    source_variable:
        Name of the CMQ variable whose binding identifies the source at
        run time (dynamic source discovery).
    renames:
        Mapping from formal variable names to CMQ variable names.
    constants:
        Formal variables fixed to constants (e.g. the hashtag "SIA2016").
    """

    name: str
    query: SourceQuery
    source: Optional[str] = None
    source_variable: Optional[str] = None
    renames: dict[str, str] = field(default_factory=dict)
    constants: dict[str, object] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.source is not None and self.source_variable is not None:
            raise MixedQueryError(
                f"atom {self.name!r} cannot have both a source URI and a source variable"
            )
        if self.source is None and self.source_variable is None:
            raise MixedQueryError(
                f"atom {self.name!r} needs a source URI, a source variable, or GLUE_SOURCE"
            )

    # -- variable bookkeeping ------------------------------------------------
    def output_variables(self) -> set[str]:
        """CMQ variables this atom can bind."""
        out = set()
        for formal in self.query.output_variables():
            if formal in self.constants:
                continue
            out.add(self.renames.get(formal, formal))
        return out

    def required_parameters(self) -> set[str]:
        """CMQ variables that must be bound before this atom can run."""
        required = set()
        for formal in self.query.required_parameters():
            if formal in self.constants:
                continue
            required.add(self.renames.get(formal, formal))
        if self.source_variable is not None:
            required.add(self.source_variable)
        return required

    def variables(self) -> set[str]:
        """Every CMQ variable mentioned by the atom."""
        return self.output_variables() | self.required_parameters()

    # -- execution helpers ---------------------------------------------------
    def formal_bindings(self, bindings: Row) -> Row:
        """Translate CMQ-level ``bindings`` into the sub-query's formal names."""
        formal: Row = dict(self.constants)
        reverse = {actual: formal_name for formal_name, actual in self.renames.items()}
        for formal_name in (self.query.output_variables() | self.query.required_parameters()):
            if formal_name in formal:
                continue
            actual = self.renames.get(formal_name, formal_name)
            if actual in bindings:
                formal[formal_name] = bindings[actual]
        for actual, value in bindings.items():
            formal_name = reverse.get(actual)
            if formal_name is not None and formal_name not in formal:
                formal[formal_name] = value
        return formal

    def translate_row(self, row: Row) -> Row:
        """Translate a source row (formal names) back to CMQ variable names."""
        out: Row = {}
        for formal_name, value in row.items():
            if formal_name in self.constants:
                continue
            out[self.renames.get(formal_name, formal_name)] = value
        return out

    def translate_rows(self, rows: Iterable[Row]) -> list[Row]:
        """Translate source rows to CMQ names, dropping constant violations."""
        return [self.translate_row(row) for row in rows
                if _respects_constants(row, self.constants)]

    def execute_on(self, source: DataSource, bindings: Row | None = None) -> list[Row]:
        """Run the atom's sub-query on ``source`` under ``bindings``."""
        bindings = bindings or {}
        formal = self.formal_bindings(bindings)
        return self.translate_rows(source.execute(self.query, formal))

    def execute_batch_on(self, source: DataSource,
                         bindings_batch: Sequence[Row]) -> list[list[Row]]:
        """Run the atom's sub-query on ``source`` for a whole binding batch.

        One mediator-level call: the wrapper batches natively when it can
        (IN-lists, disjunctive queries, shared candidate sets).  Returns
        one translated row list per input binding, in order.
        """
        formal_batch = [self.formal_bindings(bindings or {}) for bindings in bindings_batch]
        fetched = source.execute_batch(self.query, formal_batch)
        return [self.translate_rows(rows) for rows in fetched]

    def is_glue(self) -> bool:
        """True when the atom targets the instance's custom RDF graph."""
        return self.source == GLUE_SOURCE

    def describe(self) -> str:
        """Textual form used in plans and traces."""
        target = self.source if self.source is not None else f"?{self.source_variable}"
        variables = ", ".join(sorted(self.output_variables()))
        return f"{self.name}({variables})[{target}]"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.describe()


@dataclass
class ConjunctiveMixedQuery:
    """A full CMQ: head variables plus a conjunction of source atoms."""

    name: str
    head: tuple[str, ...]
    atoms: list[SourceAtom]

    def __post_init__(self) -> None:
        if not self.atoms:
            raise MixedQueryError(f"CMQ {self.name!r} needs at least one atom")
        body_vars = self.variables()
        missing = [v for v in self.head if v not in body_vars]
        if missing:
            raise MixedQueryError(
                f"head variable(s) {missing} of {self.name!r} do not occur in the body"
            )

    def variables(self) -> set[str]:
        """Every variable appearing in the body."""
        out: set[str] = set()
        for atom in self.atoms:
            out.update(atom.variables())
        return out

    def output_variables(self) -> tuple[str, ...]:
        """Head variables, or all body variables if the head is empty."""
        if self.head:
            return self.head
        return tuple(sorted(self.variables()))

    def glue_atoms(self) -> list[SourceAtom]:
        """Atoms evaluated on the custom RDF graph (the ``qG`` part)."""
        return [a for a in self.atoms if a.is_glue()]

    def source_atoms(self) -> list[SourceAtom]:
        """Atoms shipped to external data sources."""
        return [a for a in self.atoms if not a.is_glue()]

    def uses_dynamic_sources(self) -> bool:
        """True when at least one atom discovers its source at run time."""
        return any(a.source_variable is not None for a in self.atoms)

    def __str__(self) -> str:  # pragma: no cover - trivial
        head = ", ".join(self.output_variables())
        body = ", ".join(a.describe() for a in self.atoms)
        return f"{self.name}({head}) :- {body}"


# ---------------------------------------------------------------------------
# Programmatic builder
# ---------------------------------------------------------------------------

class CMQBuilder:
    """Fluent construction of CMQs.

    Example
    -------
    >>> cmq = (CMQBuilder("qSIA", head=["t", "id"])
    ...        .graph("SELECT ?id WHERE { ?x ttn:position ttn:headOfState . "
    ...               "?x ttn:twitterAccount ?id }")
    ...        .fulltext("tweetContains", source="solr://tweets",
    ...                  query="entities.hashtags:sia2016",
    ...                  fields={"t": "text", "id": "user.screen_name"})
    ...        .build())
    """

    def __init__(self, name: str, head: Sequence[str] = ()):
        self._name = name
        self._head = tuple(head)
        self._atoms: list[SourceAtom] = []

    def graph(self, sparql_text: str, name: str = "qG",
              renames: dict[str, str] | None = None) -> "CMQBuilder":
        """Add a BGP over the instance's custom RDF graph."""
        query = RDFQuery.from_text(sparql_text, name=name)
        self._atoms.append(SourceAtom(name=name, query=query, source=GLUE_SOURCE,
                                      renames=renames or {}))
        return self

    def rdf(self, name: str, sparql_text: str, source: str | None = None,
            source_variable: str | None = None,
            renames: dict[str, str] | None = None) -> "CMQBuilder":
        """Add a BGP shipped to an external RDF source."""
        query = RDFQuery.from_text(sparql_text, name=name)
        self._atoms.append(SourceAtom(name=name, query=query, source=source,
                                      source_variable=source_variable,
                                      renames=renames or {}))
        return self

    def sql(self, name: str, sql: str, source: str | None = None,
            source_variable: str | None = None, renames: dict[str, str] | None = None,
            constants: dict[str, object] | None = None) -> "CMQBuilder":
        """Add a SQL sub-query shipped to a relational source."""
        query = SQLQuery(sql=sql)
        self._atoms.append(SourceAtom(name=name, query=query, source=source,
                                      source_variable=source_variable,
                                      renames=renames or {}, constants=constants or {}))
        return self

    def fulltext(self, name: str, query: str, fields: dict[str, str],
                 source: str | None = None, source_variable: str | None = None,
                 limit: int | None = None, sort_by: str | None = None,
                 renames: dict[str, str] | None = None,
                 constants: dict[str, object] | None = None) -> "CMQBuilder":
        """Add a full-text sub-query shipped to a Solr-like source."""
        ft_query = FullTextQuery.create(query, fields, limit=limit, sort_by=sort_by)
        self._atoms.append(SourceAtom(name=name, query=ft_query, source=source,
                                      source_variable=source_variable,
                                      renames=renames or {}, constants=constants or {}))
        return self

    def json(self, name: str, pattern: str, source: str | None = None,
             source_variable: str | None = None, limit: int | None = None,
             renames: dict[str, str] | None = None,
             constants: dict[str, object] | None = None) -> "CMQBuilder":
        """Add a tree-pattern sub-query shipped to a JSON document source."""
        query = JSONQuery.from_text(pattern, limit=limit)
        self._atoms.append(SourceAtom(name=name, query=query, source=source,
                                      source_variable=source_variable,
                                      renames=renames or {}, constants=constants or {}))
        return self

    def atom(self, atom: SourceAtom) -> "CMQBuilder":
        """Add an already-built atom."""
        self._atoms.append(atom)
        return self

    def build(self) -> ConjunctiveMixedQuery:
        """Finalise and validate the CMQ."""
        return ConjunctiveMixedQuery(name=self._name, head=self._head, atoms=list(self._atoms))


# ---------------------------------------------------------------------------
# Textual CMQ syntax with atom templates
# ---------------------------------------------------------------------------

@dataclass(frozen=True)
class AtomTemplate:
    """A named, reusable sub-query with positional formal parameters.

    ``parameters`` lists formal variable names in the order expected by the
    textual syntax; ``query`` is the sub-query whose variables use the
    formal names; ``default_source`` is used when the atom text does not
    carry a ``[source]`` annotation.
    """

    name: str
    parameters: tuple[str, ...]
    query: SourceQuery
    default_source: Optional[str] = None

    def instantiate(self, arguments: Sequence[object], source: str | None = None,
                    source_variable: str | None = None) -> SourceAtom:
        """Bind positional ``arguments`` (variables or constants) to the template."""
        if len(arguments) != len(self.parameters):
            raise MixedQueryError(
                f"atom {self.name!r} expects {len(self.parameters)} arguments, "
                f"got {len(arguments)}"
            )
        renames: dict[str, str] = {}
        constants: dict[str, object] = {}
        for formal, argument in zip(self.parameters, arguments):
            if isinstance(argument, VariableArg):
                if argument.name != formal:
                    renames[formal] = argument.name
            else:
                constants[formal] = argument
        if source is None and source_variable is None:
            source = self.default_source
        return SourceAtom(name=self.name, query=self.query, source=source,
                          source_variable=source_variable, renames=renames,
                          constants=constants)


@dataclass(frozen=True)
class VariableArg:
    """A variable argument in the textual CMQ syntax."""

    name: str


class AtomTemplateRegistry:
    """Registry of atom templates available to the textual CMQ syntax."""

    def __init__(self) -> None:
        self._templates: dict[str, AtomTemplate] = {}

    def register(self, template: AtomTemplate) -> AtomTemplate:
        """Register a template (replacing an existing one with the same name)."""
        self._templates[template.name] = template
        return template

    def register_graph_bgp(self, name: str, sparql_text: str,
                           parameters: Sequence[str]) -> AtomTemplate:
        """Register a BGP template over the custom graph."""
        query = RDFQuery.from_text(sparql_text, name=name)
        return self.register(AtomTemplate(name=name, parameters=tuple(parameters),
                                          query=query, default_source=GLUE_SOURCE))

    def register_rdf(self, name: str, sparql_text: str, parameters: Sequence[str],
                     default_source: str | None = None) -> AtomTemplate:
        """Register a BGP template over an external RDF source."""
        query = RDFQuery.from_text(sparql_text, name=name)
        return self.register(AtomTemplate(name=name, parameters=tuple(parameters),
                                          query=query, default_source=default_source))

    def register_sql(self, name: str, sql: str, parameters: Sequence[str],
                     default_source: str | None = None) -> AtomTemplate:
        """Register a SQL template."""
        return self.register(AtomTemplate(name=name, parameters=tuple(parameters),
                                          query=SQLQuery(sql=sql),
                                          default_source=default_source))

    def register_fulltext(self, name: str, query: str, fields: dict[str, str],
                          parameters: Sequence[str], default_source: str | None = None,
                          limit: int | None = None, sort_by: str | None = None) -> AtomTemplate:
        """Register a full-text template."""
        ft_query = FullTextQuery.create(query, fields, limit=limit, sort_by=sort_by)
        return self.register(AtomTemplate(name=name, parameters=tuple(parameters),
                                          query=ft_query, default_source=default_source))

    def register_json(self, name: str, pattern: str, parameters: Sequence[str],
                      default_source: str | None = None,
                      limit: int | None = None) -> AtomTemplate:
        """Register a tree-pattern template over a JSON document source."""
        query = JSONQuery.from_text(pattern, limit=limit)
        return self.register(AtomTemplate(name=name, parameters=tuple(parameters),
                                          query=query, default_source=default_source))

    def get(self, name: str) -> AtomTemplate:
        """Return a template by name."""
        if name not in self._templates:
            raise MixedQueryError(f"no atom template named {name!r} is registered")
        return self._templates[name]

    def __contains__(self, name: str) -> bool:
        return name in self._templates

    def names(self) -> list[str]:
        """Registered template names, sorted."""
        return sorted(self._templates)


_ATOM_RE = re.compile(
    r"\s*(?P<name>[A-Za-z_][\w]*)\s*\((?P<args>[^)]*)\)\s*(?:\[\s*(?P<source>[^\]]+)\s*\])?\s*"
)


def parse_cmq(text: str, registry: AtomTemplateRegistry) -> ConjunctiveMixedQuery:
    """Parse the paper's textual CMQ syntax.

    Example::

        qSIA(t, id) :- qG(id), tweetContains(t, id, "SIA2016")[dSolr]

    Atom names must be registered in ``registry``; a ``[d]`` annotation is
    a source URI if quoted or containing ``://`` / ``#``, a source variable
    otherwise.
    """
    if ":-" not in text:
        raise ParseError("a CMQ needs a ':-' separating head and body")
    head_text, body_text = text.split(":-", 1)
    head_match = _ATOM_RE.fullmatch(head_text)
    if not head_match:
        raise ParseError(f"malformed CMQ head: {head_text.strip()!r}")
    name = head_match.group("name")
    head = tuple(a.name for a in _parse_arguments(head_match.group("args"))
                 if isinstance(a, VariableArg))

    atoms: list[SourceAtom] = []
    for atom_text in _split_atoms(body_text):
        match = _ATOM_RE.fullmatch(atom_text)
        if not match:
            raise ParseError(f"malformed CMQ atom: {atom_text.strip()!r}")
        template = registry.get(match.group("name"))
        arguments = _parse_arguments(match.group("args"))
        source_text = match.group("source")
        source_uri, source_variable = _parse_source(source_text)
        atoms.append(template.instantiate(arguments, source=source_uri,
                                          source_variable=source_variable))
    return ConjunctiveMixedQuery(name=name, head=head, atoms=atoms)


def _split_atoms(body_text: str) -> list[str]:
    parts, depth, current = [], 0, []
    for ch in body_text:
        if ch in "([":
            depth += 1
        elif ch in ")]":
            depth -= 1
        if ch == "," and depth == 0:
            parts.append("".join(current))
            current = []
        else:
            current.append(ch)
    if "".join(current).strip():
        parts.append("".join(current))
    return [p for p in parts if p.strip()]


def _parse_arguments(args_text: str) -> list[object]:
    arguments: list[object] = []
    for raw in _split_atoms(args_text):
        token = raw.strip()
        if not token:
            continue
        if token.startswith('"') and token.endswith('"'):
            arguments.append(token[1:-1])
        elif re.fullmatch(r"[+-]?\d+", token):
            arguments.append(int(token))
        elif re.fullmatch(r"[+-]?\d+\.\d+", token):
            arguments.append(float(token))
        elif re.fullmatch(r"[A-Za-z_][\w]*", token):
            arguments.append(VariableArg(token))
        else:
            raise ParseError(f"cannot interpret CMQ argument {token!r}")
    return arguments


def _parse_source(source_text: str | None) -> tuple[str | None, str | None]:
    if source_text is None:
        return None, None
    token = source_text.strip()
    if token.startswith('"') and token.endswith('"'):
        return token[1:-1], None
    if "://" in token or token.startswith("#"):
        return token, None
    return None, token


def rename_atom(atom: SourceAtom, renames: dict[str, str]) -> SourceAtom:
    """Return a copy of ``atom`` with additional output-variable renames.

    Existing renames are composed with the new ones (``renames`` maps
    current CMQ variable names to new names).
    """
    composed = dict(atom.renames)
    for formal in atom.query.output_variables() | atom.query.required_parameters():
        current = atom.renames.get(formal, formal)
        if current in renames:
            composed[formal] = renames[current]
    return replace(atom, renames=composed)


def _respects_constants(row: Row, constants: dict[str, object]) -> bool:
    for formal, expected in constants.items():
        if formal in row:
            value = row[formal]
            if value != expected and not (
                isinstance(value, str) and isinstance(expected, str)
                and value.lower() == expected.lower()
            ):
                return False
    return True
