"""Typed mutation deltas emitted by the stores alongside version bumps.

Every store owns a :class:`DeltaJournal`; each committed mutation batch
appends one :class:`DeltaRecord` spanning ``pre_version -> post_version``
with the *kind* of the change and (for inserts) the inserted items.  The
incremental cache repair engine (:mod:`repro.cache.repair`) replays the
records between a cached entry's version and the store's current version
to append the delta's contribution to cached sub-query results instead
of re-executing them.

The journal is deliberately conservative: :meth:`DeltaJournal.since`
returns the records only when they form an **unbroken chain** of version
transitions from ``version`` to ``upto``.  Any bump the journal did not
see (a code path that forgot to record, a trimmed history, a concurrent
rebuild) breaks the chain and the method returns ``None`` — the caller
falls back to plain invalidation.  Wrong answers are impossible; the
journal can only ever *miss* repair opportunities.

Snapshots share their parent's journal object (records are immutable and
appends are lock-protected), so pinned read-only wrappers can replay the
same history up to their own pinned version.
"""

from __future__ import annotations

import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Callable, Iterable, Optional, Sequence

#: Record kinds.  Only ``insert`` is repairable; everything else makes
#: the repair engine fall back to invalidation for the affected span.
INSERT = "insert"
REMOVE = "remove"
UPSERT = "upsert"
RESET = "reset"


@dataclass(frozen=True)
class DeltaRecord:
    """One committed mutation batch: ``pre_version -> post_version``.

    ``items`` carries the inserted rows/triples/documents for ``insert``
    records (whatever the store's ``add`` accepts); other kinds may leave
    it empty.  ``scope`` narrows the change to a sub-container (the table
    name for relational stores), letting queries over *other* containers
    re-stamp without any delta evaluation.
    """

    pre_version: int
    post_version: int
    kind: str
    items: tuple = ()
    scope: Optional[str] = None


class DeltaJournal:
    """A bounded, thread-safe log of a store's version transitions."""

    def __init__(self, capacity: int = 512):
        self._entries: deque[DeltaRecord] = deque(maxlen=capacity)
        self._lock = threading.Lock()
        self._listeners: list[Callable[[DeltaRecord], None]] = []

    def record(self, pre_version: int, post_version: int, kind: str,
               items: Iterable = (), scope: str | None = None) -> DeltaRecord:
        """Append one record (call under the store's write lock)."""
        entry = DeltaRecord(pre_version, post_version, kind,
                            tuple(items), scope)
        with self._lock:
            self._entries.append(entry)
        return entry

    def since(self, version: int, upto: int) -> Optional[list[DeltaRecord]]:
        """The unbroken chain of records from ``version`` to ``upto``.

        Returns the records oldest-first, ``[]`` when the versions are
        equal, and ``None`` when the chain has a gap (an unrecorded bump
        or trimmed history) — the caller must then fall back to
        invalidation.
        """
        if version == upto:
            return []
        if version > upto:
            return None
        with self._lock:
            entries = list(self._entries)
        chain: list[DeltaRecord] = []
        expected = upto
        for entry in reversed(entries):
            if entry.post_version > expected:
                continue
            if entry.post_version != expected:
                return None
            chain.append(entry)
            expected = entry.pre_version
            if expected <= version:
                break
        if expected != version:
            return None
        chain.reverse()
        return chain

    # ------------------------------------------------------------------
    # Change listeners (standing queries)
    # ------------------------------------------------------------------
    def subscribe(self, listener: Callable[[DeltaRecord], None]) -> None:
        """Register a callback fired after each committed batch."""
        with self._lock:
            self._listeners.append(listener)

    def unsubscribe(self, listener: Callable[[DeltaRecord], None]) -> None:
        with self._lock:
            try:
                self._listeners.remove(listener)
            except ValueError:
                pass

    def notify(self, entry: DeltaRecord) -> None:
        """Fire the listeners (call *outside* the store's write lock)."""
        with self._lock:
            listeners = list(self._listeners)
        for listener in listeners:
            try:
                listener(entry)
            except Exception:  # noqa: BLE001 - listeners never break writes
                pass

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)


def insert_only(records: Sequence[DeltaRecord]) -> bool:
    """True when every record in the chain is an insert batch."""
    return all(record.kind == INSERT for record in records)
