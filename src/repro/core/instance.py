"""The mixed instance ``I = (G, D)`` and its query entry points.

A :class:`MixedInstance` holds the custom (application-dependent) RDF
graph ``G`` — the "glue" bridging the sources — and a registry of
heterogeneous data sources ``D`` keyed by URI.  It is the main public
object of the library: register sources, then evaluate CMQs, keyword
queries, or build digests from it.
"""

from __future__ import annotations

import threading
from typing import Iterable, Optional, Sequence, Union

from repro.cache.mediator import MediatorCache
from repro.core.cmq import (
    AtomTemplateRegistry,
    CMQBuilder,
    ConjunctiveMixedQuery,
    GLUE_SOURCE,
    parse_cmq,
)
from repro.core.executor import MixedQueryExecutor
from repro.core.planner import PlannerOptions, QueryPlan, QueryPlanner
from repro.core.results import MixedResult
from repro.core.sources import (
    DataSource,
    FullTextSource,
    JSONSource,
    RDFSource,
    RelationalSource,
    SourceQuery,
)
from repro.errors import UnknownSourceError
from repro.fulltext.store import FullTextStore
from repro.json.store import JSONDocumentStore
from repro.rdf.graph import Graph
from repro.rdf.schema import RDFSchema
from repro.relational.database import Database
from repro.stats.catalog import StatisticsCatalog


class MixedInstance:
    """A mixed data instance: custom RDF graph + heterogeneous sources."""

    def __init__(self, graph: Graph | None = None, name: str = "instance",
                 schema: RDFSchema | None = None, entailment: bool = True,
                 cache: Union[MediatorCache, bool] = True):
        self.name = name
        self.graph = graph if graph is not None else Graph(name=f"{name}-glue")
        self.schema = schema
        self._sources: dict[str, DataSource] = {}
        self._templates = AtomTemplateRegistry()
        self._glue_source = RDFSource(GLUE_SOURCE, self.graph, name="glue",
                                      description="custom application RDF graph",
                                      entailment=entailment)
        # Cross-query caches (sub-query results + plans), shared by every
        # executor built from this instance.  ``cache=False`` disables
        # them; a MediatorCache may be passed to share or size them.
        if isinstance(cache, MediatorCache):
            self.cache: Optional[MediatorCache] = cache
        else:
            self.cache = MediatorCache() if cache else None
        # Digest-backed statistics (estimates + run-time feedback),
        # shared by every planner and executor of this instance.
        self._statistics: Optional[StatisticsCatalog] = None
        self._statistics_lock = threading.Lock()

    # ------------------------------------------------------------------
    # Source registry
    # ------------------------------------------------------------------
    def register(self, source: DataSource) -> DataSource:
        """Register a wrapped data source under its URI."""
        self._sources[source.uri] = source
        return source

    def register_rdf(self, uri: str, graph: Graph, description: str = "",
                     entailment: bool = False) -> RDFSource:
        """Register an RDF data source (DBPedia-like, IGN-like, ...)."""
        return self.register(RDFSource(uri, graph, description=description,
                                       entailment=entailment))

    def register_relational(self, uri: str, database: Database,
                            description: str = "") -> RelationalSource:
        """Register a relational data source (INSEE-like, elections, ...)."""
        return self.register(RelationalSource(uri, database, description=description))

    def register_fulltext(self, uri: str, store: FullTextStore,
                          description: str = "") -> FullTextSource:
        """Register a Solr-like full-text source (tweets, Facebook posts)."""
        return self.register(FullTextSource(uri, store, description=description))

    def register_json(self, uri: str, store: JSONDocumentStore,
                      description: str = "") -> JSONSource:
        """Register a JSON document source queried with tree patterns."""
        return self.register(JSONSource(uri, store, description=description))

    def register_remote(self, transport, uri: str | None = None,
                        description: str = "", options=None, **kwargs):
        """Register a source served over the network (or a fault harness).

        ``transport`` is a :class:`repro.remote.Transport` already
        pointed at a :class:`repro.remote.SourceServer` (use
        ``TCPTransport(host, port)`` for a real server,
        ``LocalTransport(handler)`` for in-process loopback, or wrap
        either in a ``FaultyTransport`` for chaos testing).  The wrapper
        announces the served source's model/uri via the protocol
        handshake when not given explicitly.
        """
        from repro.remote import RemoteSource

        return self.register(RemoteSource(transport, uri=uri,
                                          description=description,
                                          options=options, **kwargs))

    def source(self, uri: str) -> DataSource:
        """Return the source registered under ``uri`` (the glue graph included)."""
        if uri == GLUE_SOURCE:
            return self._glue_source
        source = self._sources.get(uri)
        if source is None:
            raise UnknownSourceError(f"no source registered under URI {uri!r}")
        return source

    def sources(self) -> list[DataSource]:
        """Every registered external source, in URI order."""
        return [self._sources[uri] for uri in sorted(self._sources)]

    def source_uris(self) -> list[str]:
        """URIs of the registered external sources."""
        return sorted(self._sources)

    def has_source(self, uri: str) -> bool:
        """True when a source is registered under ``uri``."""
        return uri in self._sources or uri == GLUE_SOURCE

    def accepting_sources(self, query: SourceQuery) -> list[DataSource]:
        """Sources able to evaluate ``query`` (used for free source variables)."""
        return [s for s in self.sources() if s.accepts(query)]

    @property
    def glue_source(self) -> RDFSource:
        """The wrapper over the instance's custom RDF graph."""
        return self._glue_source

    @property
    def templates(self) -> AtomTemplateRegistry:
        """The atom-template registry backing the textual CMQ syntax."""
        return self._templates

    # ------------------------------------------------------------------
    # Glue graph helpers
    # ------------------------------------------------------------------
    def add_glue_triples(self, triples: Iterable) -> int:
        """Add triples to the custom graph.

        The glue saturation G∞ is maintained *incrementally*: only the
        consequences of the new triples are derived, the unchanged part
        of the closure is untouched.  The graph's version bump makes the
        result cache drop exactly the glue entries.
        """
        return self._glue_source.add_triples(triples)

    # ------------------------------------------------------------------
    # Query entry points
    # ------------------------------------------------------------------
    def executor(self, options: PlannerOptions | None = None,
                 max_workers: int = 4, digests=None) -> MixedQueryExecutor:
        """Build an executor over the current source catalog.

        ``digests`` may be a catalog from :meth:`build_digests`; batched
        bind joins then sieve bindings against the source value sets.
        """
        return MixedQueryExecutor(self._sources, self._glue_source,
                                  options=options, max_workers=max_workers,
                                  digests=digests, cache=self.cache,
                                  statistics=self.statistics())

    def planner(self, options: PlannerOptions | None = None) -> QueryPlanner:
        """Build a planner over the current source catalog."""
        return QueryPlanner(self._sources, self._glue_source, options,
                            plan_cache=self.cache.plans if self.cache else None,
                            statistics=self.statistics())

    def plan(self, query: ConjunctiveMixedQuery,
             options: PlannerOptions | None = None) -> QueryPlan:
        """Plan ``query`` without executing it."""
        return self.planner(options).plan(query)

    def execute(self, query: ConjunctiveMixedQuery | str,
                options: PlannerOptions | None = None, distinct: bool = True,
                limit: int | None = None, max_workers: int = 4,
                digests=None) -> MixedResult:
        """Evaluate a CMQ (object or textual syntax) and return its result."""
        if isinstance(query, str):
            query = self.parse(query)
        executor = self.executor(options=options, max_workers=max_workers,
                                 digests=digests)
        return executor.execute(query, distinct=distinct, limit=limit)

    def explain_analyze(self, query: ConjunctiveMixedQuery | str,
                        options: PlannerOptions | None = None,
                        distinct: bool = True, limit: int | None = None,
                        max_workers: int = 4, digests=None):
        """Evaluate a CMQ and return its EXPLAIN ANALYZE report.

        The report (:class:`repro.obs.explain.ExplainReport`) merges the
        planner's per-step costs and cardinality estimates with the
        observed calls, rows and span timings; ``print(report)`` renders
        the plan-vs-reality table.
        """
        from repro.obs.explain import explain_analyze

        result = self.execute(query, options=options, distinct=distinct,
                              limit=limit, max_workers=max_workers,
                              digests=digests)
        report = explain_analyze(result)
        if not isinstance(query, str):
            report.query = query.name
        return report

    def parse(self, text: str) -> ConjunctiveMixedQuery:
        """Parse the textual CMQ syntax against the registered templates."""
        return parse_cmq(text, self._templates)

    def builder(self, name: str, head: Sequence[str] = ()) -> CMQBuilder:
        """Start building a CMQ programmatically."""
        return CMQBuilder(name, head=head)

    # ------------------------------------------------------------------
    # Digests and keyword querying (lazy imports to avoid cycles)
    # ------------------------------------------------------------------
    def build_digests(self, bloom_bits_per_value: int = 16,
                      histogram_buckets: int = 16):
        """Build the digest of every source plus the glue graph.

        Returns a :class:`repro.digest.catalog.DigestCatalog`.
        """
        from repro.digest.builder import build_catalog

        return build_catalog(self, bloom_bits_per_value=bloom_bits_per_value,
                             histogram_buckets=histogram_buckets)

    def keyword_query(self, keywords: Sequence[str], max_queries: int = 3,
                      catalog=None, limit: int | None = None):
        """Answer a keyword query: generate candidate CMQs and evaluate the best.

        Returns a :class:`repro.digest.keyword.KeywordSearchOutcome`.
        """
        from repro.digest.keyword import KeywordQueryEngine

        engine = KeywordQueryEngine(self, catalog=catalog)
        return engine.search(keywords, max_queries=max_queries, limit=limit)

    def statistics(self) -> StatisticsCatalog:
        """The statistics layer: digest-backed estimates + feedback.

        Shared by every planner and executor built from this instance,
        so run-time cardinality feedback recorded by one execution
        improves (and, via the revision stamp, invalidates cached plans
        for) every later one.
        """
        if self._statistics is None:
            with self._statistics_lock:
                if self._statistics is None:
                    self._statistics = StatisticsCatalog()
        return self._statistics

    # ------------------------------------------------------------------
    # Snapshot pinning (concurrent serving)
    # ------------------------------------------------------------------
    def pin(self):
        """Pin every source (glue included) at its current version.

        Returns a :class:`repro.service.snapshots.PinnedCatalog`: a
        consistent ``(source, version)`` vector of read-only wrappers
        over store snapshots.  Executors built from it (see
        :meth:`PinnedCatalog.executor`) observe exactly that state for
        their whole plan, no matter how the live stores keep mutating —
        this is what the mediator service pins per query.
        """
        from repro.service.snapshots import pin_instance

        return pin_instance(self)

    def size_summary(self) -> dict[str, object]:
        """Coarse size statistics about the instance (per source)."""
        return {
            "glue_triples": len(self.graph),
            "sources": {uri: source.size() for uri, source in sorted(self._sources.items())},
        }

    # ------------------------------------------------------------------
    # Cache management
    # ------------------------------------------------------------------
    def clear_caches(self) -> None:
        """Drop every cached sub-query result and plan."""
        if self.cache is not None:
            self.cache.clear()

    def cache_statistics(self) -> dict[str, dict[str, object]]:
        """Hit/miss counters of the result and plan caches."""
        return self.cache.statistics() if self.cache is not None else {}

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"MixedInstance(name={self.name!r}, glue_triples={len(self.graph)}, "
                f"sources={len(self._sources)})")
