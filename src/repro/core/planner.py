"""Planning the evaluation of a Conjunctive Mixed Query.

The paper (§2.3) orders sub-queries so that:

(i)   bindings for data sources must be obtained before the source can be
      queried (dependency constraints, including dynamically discovered
      sources),
(ii)  parallelism is exploited when possible (independent sub-queries are
      grouped into a common dispatch stage),
(iii) the most selective sub-queries are executed first, in classical
      mediator style.

On top of the classical greedy pass (kept as the
``PlannerOptions(cost_based=False)`` baseline), the planner searches
join orders and materialize-vs-bind mode assignments **cost-based**:
cardinalities come from the digest-backed statistics layer
(:mod:`repro.stats`), each candidate step is priced by the per-source
cost model (call setup + row transfer + binding push, with sieve and
batching discounts), and the enumerator runs dynamic programming over
atom subsets (greedy fallback above :data:`DP_ATOM_LIMIT` atoms).

The planner produces a :class:`QueryPlan`: an ordered list of
:class:`PlanStep` objects, each carrying the atom, its resolved source(s),
its estimated cardinality, its modelled cost and its execution mode —
``materialize`` (fetch the whole sub-query result) or ``bind`` (dependent
evaluation, shipping the current bindings to the source, i.e. a bind
join).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from repro.cache.plans import PlanCache, plan_cache_key
from repro.core.cmq import ConjunctiveMixedQuery, SourceAtom
from repro.core.sources import DataSource
from repro.errors import PlanningError
from repro.obs.spans import span as _span
from repro.stats.catalog import StatisticsCatalog
from repro.stats.cost import CostModel, MAX_BIND_BATCH, MIN_BIND_BATCH


@dataclass
class PlannerOptions:
    """Knobs controlling plan shape (used by the ablation benchmarks)."""

    #: Use bind joins for atoms sharing variables with earlier atoms.
    use_bind_joins: bool = True
    #: Order ready atoms by estimated selectivity (False = syntactic order).
    selectivity_ordering: bool = True
    #: Group independent materialize steps into parallel dispatch stages.
    parallel_stages: bool = True
    #: Ship bind-join bindings in batches (one source call per batch of
    #: distinct bindings) instead of one call per binding.
    batch_bind_joins: bool = True
    #: Bindings per batch; 0 lets the planner pick a size per step from
    #: the atom's cardinality estimate.
    bind_batch_size: int = 0
    #: Probe bindings against the source digests before shipping a batch
    #: (only effective when the executor is given a digest catalog).
    digest_sieve: bool = True
    #: Consult the instance's sub-query result cache before dispatching
    #: (only effective when the executor is given a mediator cache).
    result_cache: bool = True
    #: Reuse plans cached under the canonical CMQ signature + catalog
    #: version (only effective when the planner is given a plan cache).
    plan_cache: bool = True
    #: Search join orders and materialize-vs-bind modes with the
    #: digest-backed cost model (False = classical greedy pass over the
    #: wrappers' ad-hoc estimates).  Requires ``selectivity_ordering``.
    cost_based: bool = True
    #: Re-plan the remaining steps mid-flight when a step's observed
    #: cardinality is off by more than ``replan_threshold`` (needs
    #: ``cost_based``; feedback is recorded into the statistics layer).
    adaptive: bool = True
    #: Estimate-vs-actual q-error (max of the two ratios) triggering a
    #: mid-flight replan of the remaining steps.
    replan_threshold: float = 4.0
    #: Collect a structured span tree for every execution (planning,
    #: stages, source calls); the tree lands on ``ExecutionTrace.spans``.
    #: Disabling skips all span allocation — the observability off
    #: switch benchmarked by ``bench_observability_overhead``.
    tracing: bool = True
    #: When a source fails with a typed RemoteError past its retry
    #: budget, answer its bindings from stale cached rows (or with no
    #: rows) and flag ``trace.degraded`` instead of failing the whole
    #: CMQ.  False restores fail-fast semantics.
    graceful_degradation: bool = True


#: Atom count above which the DP enumerator falls back to greedy search.
DP_ATOM_LIMIT = 10


def auto_batch_size(estimate: float, cost_model: CostModel | None = None,
                    models: Sequence[str] = ()) -> int:
    """Pick a bind-join batch size from the step's cardinality estimate.

    Delegates to the cost model, which decreases the size monotonically
    with the estimated per-binding transfer cost: selective sub-queries
    batch maximally (the round-trip saving dominates), expensive or
    unbounded ones get the minimum so results start streaming (and
    populating the bind-join cache) early.  ``models`` carries the
    target sources' cost kinds — network-far kinds (e.g. ``"remote"``)
    decay more slowly, preferring fewer bigger batches per round trip.
    """
    from repro.stats.cost import DEFAULT_COST_MODEL

    return (cost_model or DEFAULT_COST_MODEL).batch_size(estimate, models)


@dataclass
class PlanStep:
    """One planned sub-query evaluation."""

    atom: SourceAtom
    mode: str  # "materialize" | "bind"
    sources: list[DataSource] = field(default_factory=list)
    dynamic: bool = False
    #: Estimated rows fetched by this step (per input binding for bind
    #: steps, total for materialize steps).
    estimate: float = float("inf")
    #: Bindings per source call for bind steps (0 = executor default).
    batch_size: int = 0
    #: Allow the digest sieve on this step's batches.
    use_sieve: bool = True
    #: Modelled cost of the step (cost-model units; 0 when not costed).
    cost: float = 0.0
    #: Estimated rows of the intermediate result *after* this step.
    result_estimate: float = float("inf")
    #: CMQ variables already bound when this step runs (for feedback).
    bound_variables: frozenset = frozenset()

    def describe(self) -> str:
        """One-line description used in EXPLAIN output."""
        if self.dynamic:
            # Dynamic steps resolve their target at run time: show the
            # source *variable* rather than the candidate URIs (or the old
            # bare "?dynamic" placeholder).
            targets = f"?{self.atom.source_variable or 'dynamic'}"
        else:
            targets = ",".join(s.uri for s in self.sources) if self.sources else "?dynamic"
        return (f"{self.mode:<11} {self.atom.describe():<50} -> {targets} "
                f"(cost {self.cost:.1f}, est. {self.estimate:.0f})")


@dataclass
class QueryPlan:
    """The full plan: ordered steps plus parallel dispatch stages."""

    query: ConjunctiveMixedQuery
    steps: list[PlanStep]
    stages: list[list[int]]
    options: PlannerOptions
    #: True when this plan was served from the plan cache.
    cached: bool = False
    #: Total modelled cost of the plan (sum of the step costs).
    total_cost: float = 0.0

    def explain(self) -> str:
        """Render the plan as indented text."""
        suffix = " (cached plan)" if self.cached else ""
        lines = [f"plan for {self.query.name}: "
                 f"total cost {self.total_cost:.1f}{suffix}"]
        for stage_number, stage in enumerate(self.stages):
            parallel = " (parallel)" if len(stage) > 1 else ""
            lines.append(f"  stage {stage_number}{parallel}:")
            for index in stage:
                lines.append(f"    {self.steps[index].describe()}")
        return "\n".join(lines)

    def atom_order(self) -> list[str]:
        """Atom names in execution order."""
        return [step.atom.name for step in self.steps]


class QueryPlanner:
    """Builds :class:`QueryPlan` objects for a given source catalog."""

    def __init__(self, sources: dict[str, DataSource], glue: DataSource,
                 options: PlannerOptions | None = None,
                 plan_cache: PlanCache | None = None,
                 statistics: StatisticsCatalog | None = None):
        self._sources = sources
        self._glue = glue
        self.options = options or PlannerOptions()
        self._plan_cache = plan_cache
        self._statistics = statistics

    @property
    def statistics(self) -> StatisticsCatalog:
        """The statistics layer backing cost-based estimates."""
        if self._statistics is None:
            self._statistics = StatisticsCatalog()
        return self._statistics

    # ------------------------------------------------------------------
    def plan(self, query: ConjunctiveMixedQuery,
             options: PlannerOptions | None = None) -> QueryPlan:
        """Produce an evaluation plan for ``query``.

        Structurally identical CMQs (equal up to variable renaming) over
        an unchanged catalog are served from the plan cache when one is
        configured; any source mutation, registration change or
        statistics feedback makes the key miss, so stale cardinality
        estimates are never reused.
        """
        options = options or self.options
        with _span("plan", query=query.name) as sp:
            cache_key = self._cache_key(query, options)
            if cache_key is not None:
                hit = self._plan_cache.get(cache_key)
                if hit is not None:
                    if sp is not None:
                        sp.set(cached=True)
                    return self._rebind(hit, query, options)
            plan = self._build_plan(query, options)
            if cache_key is not None:
                # Remember which body atom each step executes so a hit can be
                # rebound to a renaming-equivalent query's own atoms.
                indices = [next(i for i, atom in enumerate(query.atoms)
                                if atom is step.atom) for step in plan.steps]
                self._plan_cache.put(cache_key, (plan, indices))
            if sp is not None:
                sp.set(cached=False, steps=len(plan.steps),
                       cost=round(plan.total_cost, 2))
            return plan

    def plan_tail(self, query: ConjunctiveMixedQuery,
                  done: Sequence[SourceAtom], bound: set[str], cardinality: float,
                  options: PlannerOptions | None = None) -> QueryPlan:
        """Re-plan the atoms of ``query`` not yet executed.

        ``done`` are the already-executed atoms (by identity), ``bound``
        the variables their results bind, ``cardinality`` the *observed*
        size of the current intermediate result.  Used by the adaptive
        executor after statistics feedback; tail plans are never cached.
        """
        options = options or self.options
        with _span("replan", query=query.name,
                   executed=len(done), cardinality=cardinality):
            done_ids = {id(atom) for atom in done}
            planned = {i for i, atom in enumerate(query.atoms)
                       if id(atom) in done_ids}
            return self._build_plan(query, options, planned=planned,
                                    bound=set(bound),
                                    initial_card=max(0.0, cardinality))

    def forget(self, query: ConjunctiveMixedQuery,
               options: PlannerOptions | None = None) -> bool:
        """Drop the cached plan of ``query`` under the current statistics."""
        cache_key = self._cache_key(query, options or self.options)
        if cache_key is None:
            return False
        return self._plan_cache.drop(cache_key)

    def _cache_key(self, query: ConjunctiveMixedQuery,
                   options: PlannerOptions) -> Optional[tuple]:
        if self._plan_cache is None or not options.plan_cache:
            return None
        revision = self._statistics.revision if self._statistics is not None else 0
        return plan_cache_key(query, self._sources, self._glue, options,
                              stats_revision=revision)

    @staticmethod
    def _rebind(hit: tuple, query: ConjunctiveMixedQuery,
                options: PlannerOptions) -> QueryPlan:
        """Re-anchor a cached plan on the requesting query's atoms.

        The cache key guarantees the queries are equal up to variable
        renaming, so step order, modes, sources and estimates carry over
        verbatim — only the atom objects (which hold the renaming) are
        substituted.
        """
        plan, indices = hit
        steps = []
        bound: set[str] = set()
        for step, index in zip(plan.steps, indices):
            atom = query.atoms[index]
            # bound_variables must carry the *requesting* query's names
            # (the renaming differs), or feedback recorded from this plan
            # would key on the cached query's variables.
            steps.append(replace(step, atom=atom, bound_variables=frozenset(bound)))
            bound.update(atom.output_variables())
            if atom.source_variable is not None:
                bound.add(atom.source_variable)
        return QueryPlan(query=query, steps=steps,
                         stages=[list(stage) for stage in plan.stages],
                         options=options, cached=True, total_cost=plan.total_cost)

    # ------------------------------------------------------------------
    # Plan construction
    # ------------------------------------------------------------------
    def _build_plan(self, query: ConjunctiveMixedQuery, options: PlannerOptions,
                    planned: set[int] | None = None, bound: set[str] | None = None,
                    initial_card: float = 1.0) -> QueryPlan:
        planned = set(planned or ())
        bound = set(bound or ())
        if options.cost_based and options.selectivity_ordering:
            steps = self._cost_based_steps(query, options, planned, bound, initial_card)
        else:
            steps = self._greedy_steps(query, options, planned, bound, initial_card)
        stages = self._group_stages(steps, options)
        total = sum(step.cost for step in steps)
        return QueryPlan(query=query, steps=steps, stages=stages, options=options,
                         total_cost=total)

    def _produced_by(self, atoms: list[SourceAtom]) -> dict[str, set[int]]:
        produced_by: dict[str, set[int]] = {}
        for index, atom in enumerate(atoms):
            for variable in atom.output_variables():
                produced_by.setdefault(variable, set()).add(index)
        return produced_by

    def _greedy_steps(self, query: ConjunctiveMixedQuery, options: PlannerOptions,
                      planned: set[int], bound: set[str],
                      initial_card: float) -> list[PlanStep]:
        """The classical greedy pass over the wrappers' own estimates."""
        atoms = list(query.atoms)
        produced_by = self._produced_by(atoms)
        steps: list[PlanStep] = []
        cardinality = initial_card
        first = not planned

        while len(planned) < len(atoms):
            ready = [i for i in range(len(atoms)) if i not in planned
                     and self._is_ready(atoms[i], i, bound, produced_by)]
            if not ready:
                unresolved = [atoms[i].describe() for i in range(len(atoms)) if i not in planned]
                raise PlanningError(
                    "cannot order sub-queries: unresolved dependencies in "
                    + "; ".join(unresolved)
                )
            index = self._choose(ready, atoms, bound, options)
            atom = atoms[index]
            step, cardinality = self._make_step(atom, bound, first, cardinality, options)
            steps.append(step)
            planned.add(index)
            first = False
            bound.update(atom.output_variables())
            if atom.source_variable is not None and atom.source_variable not in bound:
                # A free source variable gets bound to the chosen source URI.
                bound.add(atom.source_variable)
        return steps

    def _cost_based_steps(self, query: ConjunctiveMixedQuery, options: PlannerOptions,
                          planned: set[int], bound: set[str],
                          initial_card: float) -> list[PlanStep]:
        """Cost-based enumeration: DP over atom subsets, greedy above the cap."""
        atoms = list(query.atoms)
        produced_by = self._produced_by(atoms)
        memo: dict[tuple, float] = {}

        def estimate(index: int, bound_now: frozenset) -> float:
            key = (index, bound_now & frozenset(atoms[index].variables()))
            if key not in memo:
                memo[key] = self._stat_estimate(atoms[index], set(key[1]))
            return memo[key]

        if len(atoms) - len(planned) > DP_ATOM_LIMIT:
            return self._greedy_cost_steps(atoms, produced_by, options,
                                           planned, bound, initial_card, estimate)

        start_key = frozenset(planned)
        # State: subset of planned atom indices -> (cost, card, steps, bound).
        by_size: dict[int, dict[frozenset, tuple]] = defaultdict(dict)
        by_size[len(start_key)][start_key] = (0.0, initial_card, (), frozenset(bound))

        for size in range(len(start_key), len(atoms)):
            if not by_size[size]:
                break
            for key, (cost, card, steps, bound_now) in by_size[size].items():
                bound_set = set(bound_now)
                ready = [i for i in range(len(atoms)) if i not in key
                         and self._is_ready(atoms[i], i, bound_set, produced_by)]
                if not ready:
                    unresolved = [atoms[i].describe()
                                  for i in range(len(atoms)) if i not in key]
                    raise PlanningError(
                        "cannot order sub-queries: unresolved dependencies in "
                        + "; ".join(unresolved)
                    )
                # Deterministic tie-break: equal-cost plans fall back to the
                # greedy preference (connected, then selective, then body order).
                ready.sort(key=lambda i: (
                    0 if (not bound_set or atoms[i].variables() & bound_set) else 1,
                    estimate(i, bound_now), i))
                for i in ready:
                    step, new_card = self._cost_step(
                        atoms[i], bound_set, not key, card, options, estimate, i,
                        bound_now)
                    new_bound = bound_now | frozenset(atoms[i].output_variables())
                    if atoms[i].source_variable is not None:
                        new_bound |= {atoms[i].source_variable}
                    next_key = key | {i}
                    current = by_size[size + 1].get(next_key)
                    candidate = (cost + step.cost, new_card, steps + (step,), new_bound)
                    # States are created in greedy-preference order, so a
                    # later candidate must be clearly (>1%) cheaper to
                    # displace one — near-ties keep the selective-first
                    # order the paper's greedy pass would pick.
                    if current is None or candidate[0] < current[0] * 0.99 - 1e-12:
                        by_size[size + 1][next_key] = candidate
        final = by_size[len(atoms)].get(frozenset(range(len(atoms))))
        assert final is not None
        return list(final[2])

    def _greedy_cost_steps(self, atoms, produced_by, options, planned, bound,
                           cardinality, estimate) -> list[PlanStep]:
        """Myopic cost-based ordering for queries too large for the DP."""
        planned = set(planned)
        bound = set(bound)
        steps: list[PlanStep] = []
        first = not planned
        while len(planned) < len(atoms):
            ready = [i for i in range(len(atoms)) if i not in planned
                     and self._is_ready(atoms[i], i, bound, produced_by)]
            if not ready:
                unresolved = [atoms[i].describe() for i in range(len(atoms))
                              if i not in planned]
                raise PlanningError(
                    "cannot order sub-queries: unresolved dependencies in "
                    + "; ".join(unresolved)
                )
            bound_now = frozenset(bound)
            candidates = []
            for i in ready:
                step, new_card = self._cost_step(atoms[i], bound, first, cardinality,
                                                 options, estimate, i, bound_now)
                connected = 0 if (not bound or atoms[i].variables() & bound) else 1
                candidates.append((step.cost, connected, estimate(i, bound_now), i,
                                   step, new_card))
            candidates.sort(key=lambda c: c[:4])
            _, _, _, index, step, cardinality = candidates[0]
            steps.append(step)
            planned.add(index)
            first = False
            bound.update(atoms[index].output_variables())
            if atoms[index].source_variable is not None:
                bound.add(atoms[index].source_variable)
        return steps

    def _cost_step(self, atom: SourceAtom, bound: set[str], first: bool,
                   cardinality: float, options: PlannerOptions, estimate, index: int,
                   bound_now: frozenset) -> tuple[PlanStep, float]:
        """Price one candidate step and return it with the resulting card."""
        sources, dynamic = self._resolve_sources(atom)
        models = [getattr(source, "cost_kind", source.model)
                  for source in sources]
        cost_model = self.statistics.cost_model
        est_bound = estimate(index, bound_now)
        est_full = estimate(index, frozenset())
        shares = bool(atom.variables() & bound)
        has_required = bool(atom.required_parameters())

        def joined_card(per_binding: float) -> float:
            """Join size under the containment assumption (System-R style).

            ``est_full / per_binding`` recovers the atom's distinct count
            on the join keys; once the intermediate result carries more
            distinct probe values than that, the join cannot exceed the
            atom's own size (|R||S| / max(dR, dS) with dR ~ |R|).  Atoms
            with required parameters are genuinely parameterised — each
            binding expands by ``per_binding`` — so no cap applies.
            """
            if (has_required or not shares or per_binding <= 0
                    or est_full <= 0 or est_full == float("inf")):
                return cardinality * per_binding
            distinct = est_full / per_binding
            return est_full * cardinality / max(cardinality, distinct)

        def bind_step() -> tuple[float, float, float, int]:
            batch = options.bind_batch_size or auto_batch_size(est_bound, cost_model,
                                                               models)
            # Priced as batched regardless of the batching ablation flag:
            # ``batch_bind_joins=False`` must keep the same plan shape and
            # only change dispatch (one call per binding), or the ablation
            # benchmarks would compare different plans.
            cost = cost_model.bind_cost(models, cardinality, est_bound, batch,
                                        batched=True, sieved=options.digest_sieve)
            return (cost, est_bound, joined_card(est_bound),
                    batch if options.batch_bind_joins else 0)

        def materialize_step() -> tuple[float, float, float, int]:
            cost = cost_model.materialize_cost(models, est_full)
            if shares:
                return cost, est_full, joined_card(est_bound), 0
            return cost, est_full, cardinality * est_full, 0

        if first:
            mode, (cost, est, new_card, batch) = "materialize", materialize_step()
        elif has_required or dynamic:
            mode, (cost, est, new_card, batch) = "bind", bind_step()
        elif options.use_bind_joins and shares:
            bind_priced = bind_step()
            mat_priced = materialize_step()
            if mat_priced[0] < cost_model.mode_switch_margin * bind_priced[0]:
                mode, (cost, est, new_card, batch) = "materialize", mat_priced
            else:
                mode, (cost, est, new_card, batch) = "bind", bind_priced
        else:
            mode, (cost, est, new_card, batch) = "materialize", materialize_step()

        step = PlanStep(atom=atom, mode=mode, sources=sources, dynamic=dynamic,
                        estimate=est, batch_size=batch,
                        use_sieve=options.digest_sieve, cost=cost,
                        result_estimate=new_card,
                        bound_variables=frozenset(bound))
        return step, new_card

    # ------------------------------------------------------------------
    def _is_ready(self, atom: SourceAtom, index: int, bound: set[str],
                  produced_by: dict[str, set[int]]) -> bool:
        for variable in atom.required_parameters():
            if variable in bound:
                continue
            producers = produced_by.get(variable, set()) - {index}
            if variable == atom.source_variable and not producers:
                # Free source variable: the atom runs on every accepting
                # source, no dependency (paper: "evaluated on every data
                # source of the mixed instance that accepts it").
                continue
            if producers:
                return False
            raise PlanningError(
                f"variable {variable!r} required by {atom.name!r} is never produced "
                "by any other sub-query"
            )
        return True

    def _choose(self, ready: list[int], atoms: list[SourceAtom], bound: set[str],
                options: PlannerOptions) -> int:
        if not options.selectivity_ordering:
            return min(ready)

        def score(index: int) -> tuple[int, float, int]:
            atom = atoms[index]
            connected = 0 if (not bound or atom.variables() & bound) else 1
            estimate = self._estimate(atom, bound)
            return (connected, estimate, index)

        return min(ready, key=score)

    def _make_step(self, atom: SourceAtom, bound: set[str], first: bool,
                   cardinality: float,
                   options: PlannerOptions) -> tuple[PlanStep, float]:
        sources, dynamic = self._resolve_sources(atom)
        estimate = self._estimate(atom, bound)
        shares = bool(atom.variables() & bound)
        has_required = bool(atom.required_parameters())
        if first:
            mode = "materialize"
        elif has_required or dynamic:
            mode = "bind"
        elif options.use_bind_joins and shares:
            mode = "bind"
        else:
            mode = "materialize"
        cost_model = self.statistics.cost_model
        models = [getattr(source, "cost_kind", source.model)
                  for source in sources]
        batch_size = 0
        if mode == "bind" and options.batch_bind_joins:
            batch_size = options.bind_batch_size or auto_batch_size(
                estimate, cost_model, models)
        if mode == "bind":
            cost = cost_model.bind_cost(models, cardinality, estimate,
                                        batch_size or 1,
                                        batched=options.batch_bind_joins,
                                        sieved=options.digest_sieve)
            new_card = cardinality * estimate
        else:
            cost = cost_model.materialize_cost(models, estimate)
            new_card = cardinality * estimate if not shares else cardinality * max(
                1.0, estimate / 10.0)
        step = PlanStep(atom=atom, mode=mode, sources=sources, dynamic=dynamic,
                        estimate=estimate, batch_size=batch_size,
                        use_sieve=options.digest_sieve, cost=cost,
                        result_estimate=new_card,
                        bound_variables=frozenset(bound))
        return step, new_card

    def _resolve_sources(self, atom: SourceAtom) -> tuple[list[DataSource], bool]:
        if atom.is_glue():
            return [self._glue], False
        if atom.source is not None:
            source = self._sources.get(atom.source)
            if source is None:
                raise PlanningError(f"atom {atom.name!r} targets unknown source {atom.source!r}")
            if not source.accepts(atom.query):
                raise PlanningError(
                    f"source {atom.source!r} ({source.model}) cannot evaluate the "
                    f"{type(atom.query).__name__} of atom {atom.name!r}"
                )
            return [source], False
        # Dynamic source: resolved at run time; candidates are every
        # accepting source (used for estimation and free-variable dispatch).
        candidates = [s for s in self._sources.values() if s.accepts(atom.query)]
        return candidates, True

    def _bound_formals(self, atom: SourceAtom, bound: set[str]) -> set[str]:
        bound_formals = {formal for formal in atom.query.output_variables()
                         if atom.renames.get(formal, formal) in bound}
        bound_formals.update(atom.constants)
        return bound_formals

    def _estimate(self, atom: SourceAtom, bound: set[str]) -> float:
        """Legacy estimate through the wrappers' own ``estimate()``."""
        sources, dynamic = self._resolve_sources(atom)
        if not sources:
            return float("inf")
        bound_formals = self._bound_formals(atom, bound)
        estimates = [source.estimate(atom.query, bound_formals) for source in sources]
        return sum(estimates) if dynamic else min(estimates)

    def _stat_estimate(self, atom: SourceAtom, bound: set[str]) -> float:
        """Digest-backed estimate through the statistics layer."""
        sources, dynamic = self._resolve_sources(atom)
        if not sources:
            return float("inf")
        bound_formals = self._bound_formals(atom, bound)
        estimates = [self.statistics.estimate(source, atom.query, bound_formals,
                                              atom.constants)
                     for source in sources]
        return sum(estimates) if dynamic else min(estimates)

    def _group_stages(self, steps: list[PlanStep], options: PlannerOptions) -> list[list[int]]:
        stages: list[list[int]] = []
        current: list[int] = []
        for index, step in enumerate(steps):
            if step.mode == "materialize" and options.parallel_stages:
                current.append(index)
                continue
            if current:
                stages.append(current)
                current = []
            stages.append([index])
        if current:
            stages.append(current)
        return stages
