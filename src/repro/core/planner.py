"""Planning the evaluation of a Conjunctive Mixed Query.

The paper (§2.3) orders sub-queries so that:

(i)   bindings for data sources must be obtained before the source can be
      queried (dependency constraints, including dynamically discovered
      sources),
(ii)  parallelism is exploited when possible (independent sub-queries are
      grouped into a common dispatch stage),
(iii) the most selective sub-queries are executed first, in classical
      mediator style.

The planner produces a :class:`QueryPlan`: an ordered list of
:class:`PlanStep` objects, each carrying the atom, its resolved source(s),
its estimated cardinality and its execution mode — ``materialize`` (fetch
the whole sub-query result) or ``bind`` (dependent evaluation, shipping
the current bindings to the source, i.e. a bind join).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Sequence

from repro.cache.plans import PlanCache, plan_cache_key
from repro.core.cmq import ConjunctiveMixedQuery, SourceAtom
from repro.core.sources import DataSource
from repro.errors import PlanningError


@dataclass
class PlannerOptions:
    """Knobs controlling plan shape (used by the ablation benchmarks)."""

    #: Use bind joins for atoms sharing variables with earlier atoms.
    use_bind_joins: bool = True
    #: Order ready atoms by estimated selectivity (False = syntactic order).
    selectivity_ordering: bool = True
    #: Group independent materialize steps into parallel dispatch stages.
    parallel_stages: bool = True
    #: Ship bind-join bindings in batches (one source call per batch of
    #: distinct bindings) instead of one call per binding.
    batch_bind_joins: bool = True
    #: Bindings per batch; 0 lets the planner pick a size per step from
    #: the atom's cardinality estimate.
    bind_batch_size: int = 0
    #: Probe bindings against the source digests before shipping a batch
    #: (only effective when the executor is given a digest catalog).
    digest_sieve: bool = True
    #: Consult the instance's sub-query result cache before dispatching
    #: (only effective when the executor is given a mediator cache).
    result_cache: bool = True
    #: Reuse plans cached under the canonical CMQ signature + catalog
    #: version (only effective when the planner is given a plan cache).
    plan_cache: bool = True


#: Bounds of the planner-chosen bind-join batch size.
MIN_BIND_BATCH = 16
MAX_BIND_BATCH = 1024


def auto_batch_size(estimate: float) -> int:
    """Pick a bind-join batch size from the atom's cardinality estimate.

    Selective sub-queries (small estimated output) batch aggressively —
    each shipped binding is cheap to answer, so the round-trip saving
    dominates.  Expensive sub-queries get smaller batches so results
    start streaming (and populating the bind-join cache) earlier.
    """
    if estimate == float("inf"):
        return 256
    return min(MAX_BIND_BATCH, max(MIN_BIND_BATCH, 4096 // max(1, int(estimate))))


@dataclass
class PlanStep:
    """One planned sub-query evaluation."""

    atom: SourceAtom
    mode: str  # "materialize" | "bind"
    sources: list[DataSource] = field(default_factory=list)
    dynamic: bool = False
    estimate: float = float("inf")
    #: Bindings per source call for bind steps (0 = executor default).
    batch_size: int = 0
    #: Allow the digest sieve on this step's batches.
    use_sieve: bool = True

    def describe(self) -> str:
        """One-line description used in EXPLAIN output."""
        if self.dynamic:
            # Dynamic steps resolve their target at run time: show the
            # source *variable* rather than the candidate URIs (or the old
            # bare "?dynamic" placeholder).
            targets = f"?{self.atom.source_variable or 'dynamic'}"
        else:
            targets = ",".join(s.uri for s in self.sources) if self.sources else "?dynamic"
        return (f"{self.mode:<11} {self.atom.describe():<50} -> {targets} "
                f"(est. {self.estimate:.0f})")


@dataclass
class QueryPlan:
    """The full plan: ordered steps plus parallel dispatch stages."""

    query: ConjunctiveMixedQuery
    steps: list[PlanStep]
    stages: list[list[int]]
    options: PlannerOptions
    #: True when this plan was served from the plan cache.
    cached: bool = False

    def explain(self) -> str:
        """Render the plan as indented text."""
        suffix = " (cached plan)" if self.cached else ""
        lines = [f"plan for {self.query.name}:{suffix}"]
        for stage_number, stage in enumerate(self.stages):
            parallel = " (parallel)" if len(stage) > 1 else ""
            lines.append(f"  stage {stage_number}{parallel}:")
            for index in stage:
                lines.append(f"    {self.steps[index].describe()}")
        return "\n".join(lines)

    def atom_order(self) -> list[str]:
        """Atom names in execution order."""
        return [step.atom.name for step in self.steps]


class QueryPlanner:
    """Builds :class:`QueryPlan` objects for a given source catalog."""

    def __init__(self, sources: dict[str, DataSource], glue: DataSource,
                 options: PlannerOptions | None = None,
                 plan_cache: PlanCache | None = None):
        self._sources = sources
        self._glue = glue
        self.options = options or PlannerOptions()
        self._plan_cache = plan_cache

    # ------------------------------------------------------------------
    def plan(self, query: ConjunctiveMixedQuery,
             options: PlannerOptions | None = None) -> QueryPlan:
        """Produce an evaluation plan for ``query``.

        Structurally identical CMQs (equal up to variable renaming) over
        an unchanged catalog are served from the plan cache when one is
        configured; any source mutation or registration change makes the
        key miss, so stale cardinality estimates are never reused.
        """
        options = options or self.options
        cache_key = None
        if self._plan_cache is not None and options.plan_cache:
            cache_key = plan_cache_key(query, self._sources, self._glue, options)
            if cache_key is not None:
                hit = self._plan_cache.get(cache_key)
                if hit is not None:
                    return self._rebind(hit, query, options)
        plan = self._build_plan(query, options)
        if cache_key is not None:
            # Remember which body atom each step executes so a hit can be
            # rebound to a renaming-equivalent query's own atoms.
            indices = [next(i for i, atom in enumerate(query.atoms)
                            if atom is step.atom) for step in plan.steps]
            self._plan_cache.put(cache_key, (plan, indices))
        return plan

    @staticmethod
    def _rebind(hit: tuple, query: ConjunctiveMixedQuery,
                options: PlannerOptions) -> QueryPlan:
        """Re-anchor a cached plan on the requesting query's atoms.

        The cache key guarantees the queries are equal up to variable
        renaming, so step order, modes, sources and estimates carry over
        verbatim — only the atom objects (which hold the renaming) are
        substituted.
        """
        plan, indices = hit
        steps = [replace(step, atom=query.atoms[index])
                 for step, index in zip(plan.steps, indices)]
        return QueryPlan(query=query, steps=steps,
                         stages=[list(stage) for stage in plan.stages],
                         options=options, cached=True)

    def _build_plan(self, query: ConjunctiveMixedQuery,
                    options: PlannerOptions) -> QueryPlan:
        atoms = list(query.atoms)
        produced_by: dict[str, set[int]] = {}
        for index, atom in enumerate(atoms):
            for variable in atom.output_variables():
                produced_by.setdefault(variable, set()).add(index)

        steps: list[PlanStep] = []
        planned: set[int] = set()
        bound: set[str] = set()

        while len(planned) < len(atoms):
            ready = [i for i in range(len(atoms)) if i not in planned
                     and self._is_ready(atoms[i], i, bound, produced_by)]
            if not ready:
                unresolved = [atoms[i].describe() for i in range(len(atoms)) if i not in planned]
                raise PlanningError(
                    "cannot order sub-queries: unresolved dependencies in "
                    + "; ".join(unresolved)
                )
            index = self._choose(ready, atoms, bound, options)
            atom = atoms[index]
            step = self._make_step(atom, bound, planned, options)
            steps.append(step)
            planned.add(index)
            bound.update(atom.output_variables())
            if atom.source_variable is not None and atom.source_variable not in bound:
                # A free source variable gets bound to the chosen source URI.
                bound.add(atom.source_variable)

        stages = self._group_stages(steps, options)
        return QueryPlan(query=query, steps=steps, stages=stages, options=options)

    # ------------------------------------------------------------------
    def _is_ready(self, atom: SourceAtom, index: int, bound: set[str],
                  produced_by: dict[str, set[int]]) -> bool:
        for variable in atom.required_parameters():
            if variable in bound:
                continue
            producers = produced_by.get(variable, set()) - {index}
            if variable == atom.source_variable and not producers:
                # Free source variable: the atom runs on every accepting
                # source, no dependency (paper: "evaluated on every data
                # source of the mixed instance that accepts it").
                continue
            if producers:
                return False
            raise PlanningError(
                f"variable {variable!r} required by {atom.name!r} is never produced "
                "by any other sub-query"
            )
        return True

    def _choose(self, ready: list[int], atoms: list[SourceAtom], bound: set[str],
                options: PlannerOptions) -> int:
        if not options.selectivity_ordering:
            return min(ready)

        def score(index: int) -> tuple[int, float, int]:
            atom = atoms[index]
            connected = 0 if (not bound or atom.variables() & bound) else 1
            estimate = self._estimate(atom, bound)
            return (connected, estimate, index)

        return min(ready, key=score)

    def _make_step(self, atom: SourceAtom, bound: set[str], planned: set[int],
                   options: PlannerOptions) -> PlanStep:
        sources, dynamic = self._resolve_sources(atom)
        estimate = self._estimate(atom, bound)
        shares = bool(atom.variables() & bound)
        has_required = bool(atom.required_parameters())
        if not planned:
            mode = "materialize"
        elif has_required or dynamic:
            mode = "bind"
        elif options.use_bind_joins and shares:
            mode = "bind"
        else:
            mode = "materialize"
        batch_size = 0
        if mode == "bind" and options.batch_bind_joins:
            batch_size = options.bind_batch_size or auto_batch_size(estimate)
        return PlanStep(atom=atom, mode=mode, sources=sources, dynamic=dynamic,
                        estimate=estimate, batch_size=batch_size,
                        use_sieve=options.digest_sieve)

    def _resolve_sources(self, atom: SourceAtom) -> tuple[list[DataSource], bool]:
        if atom.is_glue():
            return [self._glue], False
        if atom.source is not None:
            source = self._sources.get(atom.source)
            if source is None:
                raise PlanningError(f"atom {atom.name!r} targets unknown source {atom.source!r}")
            if not source.accepts(atom.query):
                raise PlanningError(
                    f"source {atom.source!r} ({source.model}) cannot evaluate the "
                    f"{type(atom.query).__name__} of atom {atom.name!r}"
                )
            return [source], False
        # Dynamic source: resolved at run time; candidates are every
        # accepting source (used for estimation and free-variable dispatch).
        candidates = [s for s in self._sources.values() if s.accepts(atom.query)]
        return candidates, True

    def _estimate(self, atom: SourceAtom, bound: set[str]) -> float:
        sources, dynamic = self._resolve_sources(atom)
        if not sources:
            return float("inf")
        bound_formals = {formal for formal in atom.query.output_variables()
                         if atom.renames.get(formal, formal) in bound}
        bound_formals.update(atom.constants)
        estimates = [source.estimate(atom.query, bound_formals) for source in sources]
        return sum(estimates) if dynamic else min(estimates)

    def _group_stages(self, steps: list[PlanStep], options: PlannerOptions) -> list[list[int]]:
        stages: list[list[int]] = []
        current: list[int] = []
        for index, step in enumerate(steps):
            if step.mode == "materialize" and options.parallel_stages:
                current.append(index)
                continue
            if current:
                stages.append(current)
                current = []
            stages.append([index])
        if current:
            stages.append(current)
        return stages
