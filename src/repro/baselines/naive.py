"""Naive-mediator baseline configurations.

The ablation benchmark (E8/E11) compares the TATOOINE evaluation strategy
of §2.3 against degraded strategies obtained by switching the planner's
knobs off.  These helpers name the configurations so benchmarks and tests
read declaratively.
"""

from __future__ import annotations

from repro.core.planner import PlannerOptions


def tatooine_options() -> PlannerOptions:
    """The full strategy of the paper: bind joins, selectivity ordering, parallelism."""
    return PlannerOptions(use_bind_joins=True, selectivity_ordering=True,
                          parallel_stages=True)


def naive_options() -> PlannerOptions:
    """Materialise every sub-query fully, keep syntactic order, no parallelism.

    Bind joins are still used where semantically required (a sub-query with
    an unbound parameter or a dynamically discovered source cannot be
    materialised independently).
    """
    return PlannerOptions(use_bind_joins=False, selectivity_ordering=False,
                          parallel_stages=False)


def no_bind_join_options() -> PlannerOptions:
    """Selectivity ordering and parallelism, but no binding push-down."""
    return PlannerOptions(use_bind_joins=False, selectivity_ordering=True,
                          parallel_stages=True)


def no_ordering_options() -> PlannerOptions:
    """Bind joins but syntactic sub-query order (no selectivity ordering)."""
    return PlannerOptions(use_bind_joins=True, selectivity_ordering=False,
                          parallel_stages=True)


def sequential_options() -> PlannerOptions:
    """The full strategy minus parallel dispatch of independent sub-queries."""
    return PlannerOptions(use_bind_joins=True, selectivity_ordering=True,
                          parallel_stages=False)


#: Name -> options mapping used by the ablation benchmarks.
STRATEGIES = {
    "tatooine": tatooine_options(),
    "naive": naive_options(),
    "no-bind-join": no_bind_join_options(),
    "no-ordering": no_ordering_options(),
    "sequential": sequential_options(),
}
