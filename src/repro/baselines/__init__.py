"""Baselines used by the ablation and comparison benchmarks.

* :mod:`repro.baselines.warehouse` — export every source into one RDF graph
  (the "standard data warehouse" the paper argues journalists cannot
  afford to maintain) and query it with BGPs;
* :mod:`repro.baselines.naive` — degraded mediator strategies (no bind
  joins, no selectivity ordering, no parallelism).
"""

from repro.baselines.naive import (
    STRATEGIES,
    naive_options,
    no_bind_join_options,
    no_ordering_options,
    sequential_options,
    tatooine_options,
)
from repro.baselines.warehouse import RDFWarehouse, WarehouseStats

__all__ = [
    "STRATEGIES",
    "naive_options",
    "no_bind_join_options",
    "no_ordering_options",
    "sequential_options",
    "tatooine_options",
    "RDFWarehouse",
    "WarehouseStats",
]
