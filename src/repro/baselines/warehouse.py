"""Warehouse baseline: export every source into one RDF graph and query it.

The paper positions TATOOINE against "previous integration systems
exporting all data sources as semistructured graphs" (TSIMMIS-style) and
against the data-warehouse approach journalists do not have time to build
("filling a standard data warehouse comprising all types of information").
This baseline implements that alternative: every source is materialised as
RDF in a single graph, and mixed queries are translated to BGPs over that
graph.  The ablation benchmark (E8) compares it against the mediator,
measuring both the export (refresh) cost and the per-query cost.
"""

from __future__ import annotations

import re
import time
from dataclasses import dataclass, field

from repro.core.cmq import ConjunctiveMixedQuery, SourceAtom
from repro.core.instance import MixedInstance
from repro.core.results import MixedResult
from repro.core.sources import (
    FullTextQuery,
    FullTextSource,
    JSONQuery,
    JSONSource,
    RDFQuery,
    RDFSource,
    RelationalSource,
    SQLQuery,
)
from repro.errors import MixedQueryError
from repro.fulltext.document import Document
from repro.fulltext.query import BooleanQuery, MatchAllQuery, PhraseQuery, Query, TermQuery, parse_query
from repro.json.pattern import Parameter as JSONParameter
from repro.rdf.bgp import BGPQuery, evaluate_bgp
from repro.rdf.graph import Graph
from repro.rdf.terms import Literal, Term, Triple, TriplePattern, URI, Variable, literal


@dataclass
class WarehouseStats:
    """Cost accounting of the warehouse baseline."""

    export_seconds: float = 0.0
    exported_triples: int = 0
    triples_per_source: dict[str, int] = field(default_factory=dict)


class RDFWarehouse:
    """A single-graph materialisation of a whole mixed instance."""

    def __init__(self, instance: MixedInstance):
        self.instance = instance
        self.graph = Graph(name="warehouse")
        self.stats = WarehouseStats()

    # ------------------------------------------------------------------
    # Export
    # ------------------------------------------------------------------
    def export(self) -> WarehouseStats:
        """Materialise the glue graph and every registered source as RDF."""
        start = time.perf_counter()
        before_total = len(self.graph)
        self.graph.add_all(self.instance.graph)
        self.stats.triples_per_source["#glue"] = len(self.graph) - before_total
        for source in self.instance.sources():
            before = len(self.graph)
            if isinstance(source, RDFSource):
                self.graph.add_all(source.graph)
            elif isinstance(source, RelationalSource):
                self._export_relational(source)
            elif isinstance(source, FullTextSource):
                self._export_fulltext(source)
            elif isinstance(source, JSONSource):
                self._export_json(source)
            else:  # pragma: no cover - defensive
                raise MixedQueryError(f"cannot export source model {source.model!r}")
            self.stats.triples_per_source[source.uri] = len(self.graph) - before
        self.stats.export_seconds = time.perf_counter() - start
        self.stats.exported_triples = len(self.graph)
        return self.stats

    def _export_relational(self, source: RelationalSource) -> None:
        for table in source.database.tables():
            for row_id, record in enumerate(table.scan()):
                subject = URI(f"{source.uri}/{table.name}/{row_id}")
                for column, value in record.items():
                    if value is None:
                        continue
                    predicate = self.column_predicate(source.uri, table.name, column)
                    self.graph.add(Triple(subject, predicate, literal(value)))

    def _export_fulltext(self, source: FullTextSource) -> None:
        store = source.store
        for doc in store.documents():
            subject = URI(f"{source.uri}/doc/{doc.doc_id}")
            for path, value in doc.flat_fields():
                if value is None:
                    continue
                predicate = self.field_predicate(source.uri, path)
                config = store.field_config(path)
                if config is not None and config.field_type == "text":
                    # Analysed field: export the raw text plus one triple per
                    # stem so term queries become equality patterns.
                    self.graph.add(Triple(subject, predicate, literal(value)))
                    term_predicate = self.term_predicate(source.uri, path)
                    for stem in store.analyzer.stems(str(value)):
                        self.graph.add(Triple(subject, term_predicate, literal(stem)))
                else:
                    self.graph.add(Triple(subject, predicate, literal(_normalize_keyword(value))))

    def _export_json(self, source: JSONSource) -> None:
        store = source.store
        for doc_id, fields in store.items():
            subject = URI(f"{source.uri}/doc/{doc_id}")
            for path, value in Document(doc_id=doc_id, fields=fields).flat_fields():
                if value is None:
                    continue
                predicate = self.field_predicate(source.uri, path)
                # Tree-pattern equality is keyword-style (case-insensitive),
                # so export the normalised form equality patterns match.
                self.graph.add(Triple(subject, predicate, literal(_normalize_keyword(value))))

    # ------------------------------------------------------------------
    # Vocabulary of the exported graph
    # ------------------------------------------------------------------
    @staticmethod
    def column_predicate(source_uri: str, table: str, column: str) -> URI:
        return URI(f"{source_uri}#{table}.{column}")

    @staticmethod
    def field_predicate(source_uri: str, path: str) -> URI:
        return URI(f"{source_uri}#{path}")

    @staticmethod
    def term_predicate(source_uri: str, path: str) -> URI:
        return URI(f"{source_uri}#{path}.term")

    # ------------------------------------------------------------------
    # Query answering
    # ------------------------------------------------------------------
    def execute(self, query: ConjunctiveMixedQuery, distinct: bool = True) -> MixedResult:
        """Translate ``query`` to one BGP over the warehouse and evaluate it."""
        patterns: list[TriplePattern] = []
        for index, atom in enumerate(query.atoms):
            patterns.extend(self._translate_atom(atom, index))
        head = tuple(Variable(v) for v in query.output_variables())
        bgp = BGPQuery(head=head, patterns=tuple(patterns), name=query.name)
        bindings = evaluate_bgp(bgp, self.graph)
        rows = [{v.name: _to_python(t) for v, t in row.items()} for row in bindings]
        result = MixedResult(variables=list(query.output_variables()), rows=rows)
        return result.distinct() if distinct else result

    # -- per-atom translation -------------------------------------------------
    def _translate_atom(self, atom: SourceAtom, index: int) -> list[TriplePattern]:
        if atom.is_glue() or isinstance(atom.query, RDFQuery):
            return self._translate_rdf(atom)
        if isinstance(atom.query, FullTextQuery):
            return self._translate_fulltext(atom, index)
        if isinstance(atom.query, SQLQuery):
            return self._translate_sql(atom, index)
        if isinstance(atom.query, JSONQuery):
            return self._translate_json(atom, index)
        raise MixedQueryError(
            f"warehouse baseline cannot translate atom {atom.name!r}"
        )

    def _translate_rdf(self, atom: SourceAtom) -> list[TriplePattern]:
        assert isinstance(atom.query, RDFQuery)
        patterns = []
        for pattern in atom.query.bgp.patterns:
            patterns.append(TriplePattern(
                self._rename_term(pattern.subject, atom),
                self._rename_term(pattern.predicate, atom),
                self._rename_term(pattern.obj, atom),
            ))
        return patterns

    def _translate_fulltext(self, atom: SourceAtom, index: int) -> list[TriplePattern]:
        assert isinstance(atom.query, FullTextQuery)
        if atom.source is None:
            raise MixedQueryError(
                "warehouse baseline needs a fixed source URI for full-text atoms"
            )
        source_uri = atom.source
        store = self.instance.source(source_uri).store  # type: ignore[attr-defined]
        doc_var = Variable(f"doc{index}")
        patterns: list[TriplePattern] = []

        query_text = atom.query.query_template
        for formal, value in atom.constants.items():
            query_text = query_text.replace("{" + formal + "}", str(value))
        parsed = parse_query(query_text)
        patterns.extend(self._fulltext_condition_patterns(parsed, doc_var, source_uri, store))

        for formal, path in atom.query.fields().items():
            if formal in atom.constants:
                continue
            actual = atom.renames.get(formal, formal)
            predicate = self.field_predicate(source_uri, path)
            patterns.append(TriplePattern(doc_var, predicate, Variable(actual)))
        return patterns

    def _fulltext_condition_patterns(self, parsed: Query, doc_var: Variable,
                                     source_uri: str, store) -> list[TriplePattern]:
        patterns: list[TriplePattern] = []
        if isinstance(parsed, MatchAllQuery):
            return patterns
        if isinstance(parsed, TermQuery):
            field_name = parsed.field or store.default_field
            config = store.field_config(field_name)
            if config is not None and config.field_type == "text":
                predicate = self.term_predicate(source_uri, field_name)
                for stem in store.analyzer.stems(parsed.term):
                    patterns.append(TriplePattern(doc_var, predicate, literal(stem)))
            else:
                predicate = self.field_predicate(source_uri, field_name)
                patterns.append(TriplePattern(doc_var, predicate,
                                              literal(_normalize_keyword(parsed.term))))
            return patterns
        if isinstance(parsed, PhraseQuery):
            field_name = parsed.field or store.default_field
            predicate = self.term_predicate(source_uri, field_name)
            for term in parsed.terms:
                for stem in store.analyzer.stems(term):
                    patterns.append(TriplePattern(doc_var, predicate, literal(stem)))
            return patterns
        if isinstance(parsed, BooleanQuery) and parsed.operator == "AND":
            for operand in parsed.operands:
                patterns.extend(self._fulltext_condition_patterns(operand, doc_var,
                                                                  source_uri, store))
            return patterns
        raise MixedQueryError(
            "warehouse baseline only translates conjunctive full-text queries"
        )

    _SQL_RE = re.compile(
        r"^\s*select\s+(?P<items>.+?)\s+from\s+(?P<table>[A-Za-z_][\w]*)"
        r"(?:\s+where\s+(?P<where>.+))?\s*$",
        re.IGNORECASE | re.DOTALL,
    )

    def _translate_sql(self, atom: SourceAtom, index: int) -> list[TriplePattern]:
        assert isinstance(atom.query, SQLQuery)
        if atom.source is None:
            raise MixedQueryError(
                "warehouse baseline needs a fixed source URI for SQL atoms"
            )
        match = self._SQL_RE.match(atom.query.sql)
        if not match:
            raise MixedQueryError(
                f"warehouse baseline cannot translate the SQL of atom {atom.name!r}"
            )
        table = match.group("table")
        row_var = Variable(f"row{index}")
        patterns: list[TriplePattern] = []
        for item in match.group("items").split(","):
            parts = re.split(r"\s+as\s+", item.strip(), flags=re.IGNORECASE)
            column = parts[0].strip().split(".")[-1]
            alias = parts[1].strip() if len(parts) > 1 else column
            if alias in atom.constants:
                obj: Term | Variable = literal(atom.constants[alias])
            else:
                obj = Variable(atom.renames.get(alias, alias))
            patterns.append(TriplePattern(row_var, self.column_predicate(atom.source, table, column), obj))
        where = match.group("where")
        if where:
            for condition in re.split(r"\s+and\s+", where, flags=re.IGNORECASE):
                eq = re.match(r"\s*([A-Za-z_][\w.]*)\s*=\s*(.+)\s*", condition)
                if not eq:
                    raise MixedQueryError(
                        f"warehouse baseline only translates equality WHERE clauses "
                        f"(atom {atom.name!r})"
                    )
                column = eq.group(1).split(".")[-1]
                raw_value = eq.group(2).strip()
                if raw_value.startswith("{") and raw_value.endswith("}"):
                    obj = Variable(atom.renames.get(raw_value[1:-1], raw_value[1:-1]))
                elif raw_value.startswith("'") and raw_value.endswith("'"):
                    obj = literal(raw_value[1:-1])
                else:
                    obj = literal(_parse_number(raw_value))
                patterns.append(TriplePattern(row_var, self.column_predicate(atom.source, table, column), obj))
        return patterns

    def _translate_json(self, atom: SourceAtom, index: int) -> list[TriplePattern]:
        assert isinstance(atom.query, JSONQuery)
        if atom.source is None:
            raise MixedQueryError(
                "warehouse baseline needs a fixed source URI for JSON atoms"
            )
        doc_var = Variable(f"jdoc{index}")
        patterns: list[TriplePattern] = []
        for leaf in atom.query.pattern.leaves:
            predicate = self.field_predicate(atom.source, leaf.path)
            for condition in leaf.predicates:
                if condition.op != "=":
                    raise MixedQueryError(
                        "warehouse baseline only translates equality tree-pattern "
                        f"predicates (atom {atom.name!r})"
                    )
                value = condition.value
                if isinstance(value, JSONParameter):
                    if value.name in atom.constants:
                        obj: Term | Variable = literal(
                            _normalize_keyword(atom.constants[value.name]))
                    else:
                        obj = Variable(atom.renames.get(value.name, value.name))
                else:
                    obj = literal(_normalize_keyword(value))
                patterns.append(TriplePattern(doc_var, predicate, obj))
            if leaf.variable is not None:
                if leaf.variable in atom.constants:
                    obj = literal(_normalize_keyword(atom.constants[leaf.variable]))
                else:
                    obj = Variable(atom.renames.get(leaf.variable, leaf.variable))
                patterns.append(TriplePattern(doc_var, predicate, obj))
            if leaf.is_existence():
                patterns.append(TriplePattern(doc_var, predicate,
                                              Variable(f"jx{index}_{len(patterns)}")))
        return patterns

    def _rename_term(self, term, atom: SourceAtom):
        if isinstance(term, Variable):
            if term.name in atom.constants:
                return literal(atom.constants[term.name])
            return Variable(atom.renames.get(term.name, term.name))
        return term


def _normalize_keyword(value: object) -> object:
    if isinstance(value, str):
        return value.lower()
    return value


def _to_python(term: object) -> object:
    if isinstance(term, URI):
        return term.value
    if isinstance(term, Literal):
        return term.to_python()
    return term


def _parse_number(text: str) -> object:
    try:
        return int(text)
    except ValueError:
        try:
            return float(text)
        except ValueError:
            return text
