"""A small N-Triples / Turtle-subset parser and serializer.

Journalists' hand-curated glue data (party classifications, elected
representatives scraped into tabular files) is "easily exported into RDF"
(paper, §1).  This module provides the textual round-trip: parsing
N-Triples and a pragmatic Turtle subset (``@prefix``, qualified names,
``;`` and ``,`` abbreviations, ``a`` for ``rdf:type``), and serialising a
graph back to N-Triples.
"""

from __future__ import annotations

import re
from typing import Iterable, Iterator

from repro.errors import ParseError
from repro.rdf.graph import Graph
from repro.rdf.terms import (
    DEFAULT_PREFIXES,
    RDF_TYPE,
    BlankNode,
    Literal,
    Term,
    Triple,
    URI,
    XSD_NS,
)

_TOKEN_RE = re.compile(
    r"""
      (?P<uri><[^>]*>)
    | (?P<literal>"(?:[^"\\]|\\.)*"(?:@[A-Za-z-]+|\^\^<[^>]*>|\^\^[A-Za-z_][\w.-]*:[A-Za-z_][\w.-]*)?)
    | (?P<bnode>_:[A-Za-z_][\w-]*)
    | (?P<prefix_decl>@prefix)
    | (?P<qname>[A-Za-z_][\w.-]*?:[A-Za-z_][\w.-]*)
    | (?P<prefix_name>[A-Za-z_][\w.-]*:)
    | (?P<a>\ba\b)
    | (?P<number>[+-]?\d+(?:\.\d+)?)
    | (?P<punct>[;,.])
    """,
    re.VERBOSE,
)


def parse_ntriples(text: str, graph_name: str = "parsed") -> Graph:
    """Parse N-Triples / Turtle-subset ``text`` into a new :class:`Graph`."""
    graph = Graph(name=graph_name)
    graph.add_all(iter_triples(text))
    return graph


def iter_triples(text: str) -> Iterator[Triple]:
    """Yield the triples of a N-Triples / Turtle-subset document."""
    prefixes = dict(DEFAULT_PREFIXES)
    statements = _split_statements(text)
    for line_no, statement in statements:
        tokens = _tokenize(statement, line_no)
        if not tokens:
            continue
        if tokens[0][0] == "prefix_decl":
            _handle_prefix(tokens, prefixes, line_no)
            continue
        yield from _parse_statement(tokens, prefixes, line_no)


def serialize_ntriples(graph: Graph | Iterable[Triple]) -> str:
    """Serialise ``graph`` as sorted N-Triples text."""
    lines = sorted(_serialize_triple(t) for t in graph)
    return "\n".join(lines) + ("\n" if lines else "")


# ---------------------------------------------------------------------------
# Internal helpers
# ---------------------------------------------------------------------------

def _split_statements(text: str) -> list[tuple[int, str]]:
    """Split the document into ``.``-terminated statements, tracking lines."""
    statements: list[tuple[int, str]] = []
    current: list[str] = []
    start_line = 1
    in_string = False
    in_uri = False
    in_comment = False
    escaped = False
    line = 1
    for index, ch in enumerate(text):
        if ch == "\n":
            line += 1
            in_comment = False
        if in_comment:
            continue
        if in_string:
            current.append(ch)
            if escaped:
                escaped = False
            elif ch == "\\":
                escaped = True
            elif ch == '"':
                in_string = False
            continue
        if in_uri:
            current.append(ch)
            if ch == ">":
                in_uri = False
            continue
        if ch == '"':
            in_string = True
            current.append(ch)
            continue
        if ch == "<":
            in_uri = True
            current.append(ch)
            continue
        if ch == "#":
            # Comment until end of line (URIs with fragments are handled above).
            in_comment = True
            continue
        if ch == ".":
            following = text[index + 1] if index + 1 < len(text) else " "
            if following.isspace() or following == "#":
                statement = "".join(current).strip()
                if statement:
                    statements.append((start_line, statement))
                current = []
                start_line = line
                continue
        current.append(ch)
    tail = "".join(current).strip()
    if tail:
        statements.append((start_line, tail))
    return statements


def _tokenize(statement: str, line_no: int) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    position = 0
    while position < len(statement):
        if statement[position].isspace():
            position += 1
            continue
        match = _TOKEN_RE.match(statement, position)
        if not match:
            raise ParseError(
                f"cannot tokenise {statement[position:position + 20]!r}", position=line_no
            )
        kind = match.lastgroup or ""
        tokens.append((kind, match.group()))
        position = match.end()
    return tokens


def _handle_prefix(tokens: list[tuple[str, str]], prefixes: dict[str, str], line_no: int) -> None:
    if len(tokens) != 3 or tokens[2][0] != "uri" or tokens[1][0] not in ("prefix_name", "qname"):
        raise ParseError("malformed @prefix declaration", position=line_no)
    declared = tokens[1][1]
    if not declared.endswith(":"):
        declared += ":"
    prefix = declared.split(":", 1)[0]
    prefixes[prefix] = tokens[2][1][1:-1]


def _parse_statement(tokens: list[tuple[str, str]], prefixes: dict[str, str],
                     line_no: int) -> Iterator[Triple]:
    """Parse one Turtle statement (with ``;`` and ``,`` abbreviations)."""
    index = 0

    def next_term() -> Term:
        nonlocal index
        if index >= len(tokens):
            raise ParseError("unexpected end of statement", position=line_no)
        kind, text = tokens[index]
        index += 1
        return _token_to_term(kind, text, prefixes, line_no)

    subject = next_term()
    while index < len(tokens):
        predicate = next_term()
        if not isinstance(predicate, URI):
            raise ParseError(f"predicate must be a URI, got {predicate}", position=line_no)
        while True:
            obj = next_term()
            yield Triple(subject, predicate, obj)
            if index < len(tokens) and tokens[index] == ("punct", ","):
                index += 1
                continue
            break
        if index < len(tokens) and tokens[index] == ("punct", ";"):
            index += 1
            if index >= len(tokens):
                break
            continue
        break
    if index < len(tokens):
        raise ParseError(
            f"unexpected trailing tokens: {tokens[index:]}", position=line_no
        )


def _token_to_term(kind: str, text: str, prefixes: dict[str, str], line_no: int) -> Term:
    if kind == "uri":
        return URI(text[1:-1])
    if kind == "bnode":
        return BlankNode(text[2:])
    if kind == "a":
        return RDF_TYPE
    if kind == "qname":
        prefix, local = text.split(":", 1)
        if prefix not in prefixes:
            raise ParseError(f"unknown prefix {prefix!r}", position=line_no)
        return URI(prefixes[prefix] + local)
    if kind == "number":
        datatype = XSD_NS + ("integer" if re.match(r"^[+-]?\d+$", text) else "decimal")
        return Literal(text, datatype=datatype)
    if kind == "literal":
        return _parse_literal(text, prefixes, line_no)
    raise ParseError(f"unexpected token {text!r}", position=line_no)


def _parse_literal(text: str, prefixes: dict[str, str], line_no: int) -> Literal:
    match = re.match(
        r'^"(?P<value>(?:[^"\\]|\\.)*)"'
        r'(?:@(?P<lang>[A-Za-z-]+)|\^\^<(?P<dtype>[^>]*)>|\^\^(?P<dtq>[A-Za-z_][\w.-]*:[A-Za-z_][\w.-]*))?$',
        text,
    )
    if not match:
        raise ParseError(f"malformed literal {text!r}", position=line_no)
    value = _unescape(match.group("value"))
    datatype = match.group("dtype")
    if match.group("dtq"):
        prefix, local = match.group("dtq").split(":", 1)
        if prefix not in prefixes:
            raise ParseError(f"unknown prefix {prefix!r}", position=line_no)
        datatype = prefixes[prefix] + local
    return Literal(value, datatype=datatype, language=match.group("lang"))


def _unescape(value: str) -> str:
    return (
        value.replace("\\\\", "\x00")
        .replace('\\"', '"')
        .replace("\\n", "\n")
        .replace("\\t", "\t")
        .replace("\x00", "\\")
    )


def _escape(value: str) -> str:
    return (
        value.replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
        .replace("\t", "\\t")
    )


def _serialize_term(term: Term) -> str:
    if isinstance(term, URI):
        return f"<{term.value}>"
    if isinstance(term, BlankNode):
        return f"_:{term.label}"
    if isinstance(term, Literal):
        base = f'"{_escape(term.value)}"'
        if term.language:
            return f"{base}@{term.language}"
        if term.datatype:
            return f"{base}^^<{term.datatype}>"
        return base
    raise ParseError(f"cannot serialise {term!r}")


def _serialize_triple(t: Triple) -> str:
    return f"{_serialize_term(t.subject)} {_serialize_term(t.predicate)} {_serialize_term(t.obj)} ."
