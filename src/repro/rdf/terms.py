"""RDF terms: URIs, literals, blank nodes, variables and triples.

The paper's mixed instance glues heterogeneous sources with an RDF graph,
so the RDF substrate is the foundation of everything else.  Terms are
small immutable value objects; triples are 3-tuples of terms; triple
*patterns* additionally allow :class:`Variable` in any position.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import Union

from repro.errors import RDFError

#: Well known namespaces, used throughout the library and the datasets.
RDF_NS = "http://www.w3.org/1999/02/22-rdf-syntax-ns#"
RDFS_NS = "http://www.w3.org/2000/01/rdf-schema#"
XSD_NS = "http://www.w3.org/2001/XMLSchema#"
FOAF_NS = "http://xmlns.com/foaf/0.1/"
TATOOINE_NS = "http://tatooine.inria.fr/ns#"

_QNAME_RE = re.compile(r"^([A-Za-z_][\w.-]*)?:([A-Za-z_][\w.-]*)$")

#: Prefix table used by :func:`expand_qname` and the Turtle parser.
DEFAULT_PREFIXES = {
    "rdf": RDF_NS,
    "rdfs": RDFS_NS,
    "xsd": XSD_NS,
    "foaf": FOAF_NS,
    "ttn": TATOOINE_NS,
}


@dataclass(frozen=True, order=True)
class URI:
    """A Uniform Resource Identifier, RDF's global identifier.

    URIs are the main join keys of the mixed instance: the paper relies on
    URI reuse (and on literal reuse) across sources to establish bridges.
    """

    value: str

    def __post_init__(self) -> None:
        if not self.value:
            raise RDFError("URI value must be a non-empty string")

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"<{self.value}>"

    @property
    def local_name(self) -> str:
        """Return the fragment/last path segment, useful for display."""
        for separator in ("#", "/", ":"):
            if separator in self.value:
                candidate = self.value.rsplit(separator, 1)[1]
                if candidate:
                    return candidate
        return self.value


@dataclass(frozen=True, order=True)
class Literal:
    """An RDF literal: a constant value with optional datatype or language."""

    value: str
    datatype: str | None = None
    language: str | None = None

    def __post_init__(self) -> None:
        if self.datatype is not None and self.language is not None:
            raise RDFError("a literal cannot have both a datatype and a language")
        object.__setattr__(self, "value", str(self.value))

    def __str__(self) -> str:  # pragma: no cover - trivial
        if self.language:
            return f'"{self.value}"@{self.language}'
        if self.datatype:
            return f'"{self.value}"^^<{self.datatype}>'
        return f'"{self.value}"'

    def to_python(self) -> object:
        """Best-effort conversion to a native Python value."""
        if self.datatype in (XSD_NS + "integer", XSD_NS + "int", XSD_NS + "long"):
            return int(self.value)
        if self.datatype in (XSD_NS + "decimal", XSD_NS + "double", XSD_NS + "float"):
            return float(self.value)
        if self.datatype == XSD_NS + "boolean":
            return self.value.lower() in ("true", "1")
        return self.value


@dataclass(frozen=True, order=True)
class BlankNode:
    """An existential (unnamed) RDF node, identified only within a graph."""

    label: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"_:{self.label}"


@dataclass(frozen=True, order=True)
class Variable:
    """A query variable, allowed in triple patterns and CMQ heads."""

    name: str

    def __post_init__(self) -> None:
        if not self.name or not re.match(r"^[A-Za-z_][\w]*$", self.name):
            raise RDFError(f"invalid variable name: {self.name!r}")

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"?{self.name}"


#: A term that may appear in RDF *data*.
Term = Union[URI, Literal, BlankNode]
#: A term that may appear in a triple *pattern*.
PatternTerm = Union[URI, Literal, BlankNode, Variable]


@dataclass(frozen=True, order=True)
class Triple:
    """A data triple ``subject property object``."""

    subject: Term
    predicate: Term
    obj: Term

    def __post_init__(self) -> None:
        for position, term in (("subject", self.subject),
                               ("predicate", self.predicate),
                               ("object", self.obj)):
            if isinstance(term, Variable):
                raise RDFError(f"data triple cannot contain a variable in {position}")
        if isinstance(self.predicate, (Literal, BlankNode)):
            raise RDFError("triple predicate must be a URI")

    def __iter__(self):
        return iter((self.subject, self.predicate, self.obj))

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.subject} {self.predicate} {self.obj} ."


@dataclass(frozen=True, order=True)
class TriplePattern:
    """A triple whose subject, predicate and object may be variables."""

    subject: PatternTerm
    predicate: PatternTerm
    obj: PatternTerm

    def __iter__(self):
        return iter((self.subject, self.predicate, self.obj))

    def variables(self) -> set[Variable]:
        """Return every variable appearing in the pattern."""
        return {t for t in self if isinstance(t, Variable)}

    def is_ground(self) -> bool:
        """True when the pattern contains no variable (it is a triple)."""
        return not self.variables()

    def to_triple(self) -> Triple:
        """Convert a ground pattern into a data triple."""
        if not self.is_ground():
            raise RDFError(f"pattern {self} is not ground")
        return Triple(self.subject, self.predicate, self.obj)

    def bind(self, bindings: dict[Variable, Term]) -> "TriplePattern":
        """Substitute variables according to ``bindings`` (missing ones stay)."""
        def subst(term: PatternTerm) -> PatternTerm:
            if isinstance(term, Variable):
                return bindings.get(term, term)
            return term

        return TriplePattern(subst(self.subject), subst(self.predicate), subst(self.obj))

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.subject} {self.predicate} {self.obj}"


# ---------------------------------------------------------------------------
# Convenience constructors
# ---------------------------------------------------------------------------

#: rdf:type, the single most used property of the glue graph.
RDF_TYPE = URI(RDF_NS + "type")
RDFS_SUBCLASS = URI(RDFS_NS + "subClassOf")
RDFS_SUBPROPERTY = URI(RDFS_NS + "subPropertyOf")
RDFS_DOMAIN = URI(RDFS_NS + "domain")
RDFS_RANGE = URI(RDFS_NS + "range")
RDFS_LABEL = URI(RDFS_NS + "label")

#: The four RDFS schema properties the paper's entailment rules build on.
SCHEMA_PROPERTIES = frozenset(
    {RDFS_SUBCLASS, RDFS_SUBPROPERTY, RDFS_DOMAIN, RDFS_RANGE}
)


def expand_qname(qname: str, prefixes: dict[str, str] | None = None) -> URI:
    """Expand a ``prefix:local`` qualified name into a full :class:`URI`.

    ``prefixes`` defaults to :data:`DEFAULT_PREFIXES`; an unknown prefix
    raises :class:`RDFError`.
    """
    prefixes = dict(DEFAULT_PREFIXES, **(prefixes or {}))
    match = _QNAME_RE.match(qname)
    if not match:
        raise RDFError(f"not a qualified name: {qname!r}")
    prefix, local = match.group(1) or "", match.group(2)
    if prefix not in prefixes:
        raise RDFError(f"unknown prefix {prefix!r} in {qname!r}")
    return URI(prefixes[prefix] + local)


def uri(value: str) -> URI:
    """Build a URI from a full IRI string or a known ``prefix:local`` name."""
    if _QNAME_RE.match(value) and not value.startswith(("http:", "https:", "urn:")):
        try:
            return expand_qname(value)
        except RDFError:
            pass
    return URI(value)


def literal(value: object, datatype: str | None = None,
            language: str | None = None) -> Literal:
    """Build a literal, inferring an XSD datatype from Python numbers/bools."""
    if datatype is None and language is None:
        if isinstance(value, bool):
            datatype = XSD_NS + "boolean"
            value = "true" if value else "false"
        elif isinstance(value, int):
            datatype = XSD_NS + "integer"
        elif isinstance(value, float):
            datatype = XSD_NS + "double"
    return Literal(str(value), datatype=datatype, language=language)


def var(name: str) -> Variable:
    """Build a variable; accepts a leading ``?`` for convenience."""
    return Variable(name.lstrip("?"))


def triple(subject: object, predicate: object, obj: object) -> Triple:
    """Build a data triple, coercing strings to URIs and scalars to literals."""
    return Triple(_coerce_node(subject), _coerce_node(predicate), _coerce_node(obj, literal_ok=True))


def pattern(subject: object, predicate: object, obj: object) -> TriplePattern:
    """Build a triple pattern, coercing ``?x`` strings to variables."""
    return TriplePattern(
        _coerce_pattern_term(subject),
        _coerce_pattern_term(predicate),
        _coerce_pattern_term(obj, literal_ok=True),
    )


def _coerce_node(value: object, literal_ok: bool = False) -> Term:
    if isinstance(value, (URI, Literal, BlankNode)):
        return value
    if isinstance(value, Variable):
        raise RDFError("variables are not allowed in data triples")
    if isinstance(value, str):
        if value.startswith("_:"):
            return BlankNode(value[2:])
        if value.startswith('"') and value.endswith('"') and len(value) >= 2:
            return Literal(value[1:-1])
        if literal_ok and not _looks_like_uri(value):
            return Literal(value)
        return uri(value)
    if isinstance(value, (int, float, bool)):
        if not literal_ok:
            raise RDFError(f"cannot use {value!r} outside the object position")
        return literal(value)
    raise RDFError(f"cannot interpret {value!r} as an RDF term")


def _coerce_pattern_term(value: object, literal_ok: bool = False) -> PatternTerm:
    if isinstance(value, Variable):
        return value
    if isinstance(value, str) and value.startswith("?"):
        return var(value)
    return _coerce_node(value, literal_ok=literal_ok)


def _looks_like_uri(value: str) -> bool:
    if value.startswith(("http://", "https://", "urn:")):
        return True
    return bool(_QNAME_RE.match(value)) and value.split(":", 1)[0] in DEFAULT_PREFIXES
