"""RDF substrate: terms, triple store, RDFS entailment, BGP/SPARQL queries.

This package implements the RDF machinery the paper's mixed instance is
built around: the custom "glue" graph, independent RDF data sources
(DBPedia-like, IGN-like), RDFS saturation and the conjunctive SPARQL
fragment (BGPs) used by mixed queries.
"""

from repro.rdf.bgp import BGPQuery, EvaluationTrace, answer_bgp, evaluate_ask, evaluate_bgp
from repro.rdf.entailment import SaturationStats, implicit_triples, saturate, saturate_delta
from repro.rdf.graph import Graph
from repro.rdf.ntriples import iter_triples, parse_ntriples, serialize_ntriples
from repro.rdf.schema import RDFSchema
from repro.rdf.sparql import ParsedSelect, parse_bgp, parse_sparql
from repro.rdf.summary import RDFSummary, SummaryEdge, SummaryNode
from repro.rdf.terms import (
    DEFAULT_PREFIXES,
    FOAF_NS,
    RDF_NS,
    RDF_TYPE,
    RDFS_DOMAIN,
    RDFS_LABEL,
    RDFS_NS,
    RDFS_RANGE,
    RDFS_SUBCLASS,
    RDFS_SUBPROPERTY,
    TATOOINE_NS,
    XSD_NS,
    BlankNode,
    Literal,
    Term,
    Triple,
    TriplePattern,
    URI,
    Variable,
    expand_qname,
    literal,
    pattern,
    triple,
    uri,
    var,
)

__all__ = [
    "BGPQuery",
    "EvaluationTrace",
    "answer_bgp",
    "evaluate_ask",
    "evaluate_bgp",
    "SaturationStats",
    "implicit_triples",
    "saturate",
    "saturate_delta",
    "Graph",
    "iter_triples",
    "parse_ntriples",
    "serialize_ntriples",
    "RDFSchema",
    "ParsedSelect",
    "parse_bgp",
    "parse_sparql",
    "RDFSummary",
    "SummaryEdge",
    "SummaryNode",
    "DEFAULT_PREFIXES",
    "FOAF_NS",
    "RDF_NS",
    "RDF_TYPE",
    "RDFS_DOMAIN",
    "RDFS_LABEL",
    "RDFS_NS",
    "RDFS_RANGE",
    "RDFS_SUBCLASS",
    "RDFS_SUBPROPERTY",
    "TATOOINE_NS",
    "XSD_NS",
    "BlankNode",
    "Literal",
    "Term",
    "Triple",
    "TriplePattern",
    "URI",
    "Variable",
    "expand_qname",
    "literal",
    "pattern",
    "triple",
    "uri",
    "var",
]
