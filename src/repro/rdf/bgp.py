"""Basic Graph Pattern (BGP) queries — the conjunctive SPARQL subset.

A BGP is ``q(x̄) :- t1, ..., tn`` where each ``ti`` is a triple pattern.
Evaluation returns every embedding of the body into the graph, projected
on the head variables; the *answer* is the evaluation against the
saturated graph G∞ (see :mod:`repro.rdf.entailment`).

The evaluator orders patterns greedily by estimated selectivity (bound
positions first, then smallest match count), which mirrors the
"most selective sub-queries first" strategy of the paper's mediator.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence

from repro.errors import RDFError
from repro.rdf.entailment import saturate
from repro.rdf.graph import Graph
from repro.rdf.schema import RDFSchema
from repro.rdf.terms import (
    PatternTerm,
    Term,
    Triple,
    TriplePattern,
    Variable,
    pattern as make_pattern,
    var,
)

#: A solution mapping from variables to terms.
Binding = dict[Variable, Term]


@dataclass(frozen=True)
class BGPQuery:
    """A conjunctive query over a single RDF graph.

    Parameters
    ----------
    head:
        The projected (output) variables; empty means "project everything".
    patterns:
        The triple patterns of the body.
    name:
        Optional query name (used when the BGP is embedded in a CMQ).
    """

    head: tuple[Variable, ...]
    patterns: tuple[TriplePattern, ...]
    name: str = "q"

    def __post_init__(self) -> None:
        if not self.patterns:
            raise RDFError("a BGP query needs at least one triple pattern")
        body_vars = self.variables()
        for v in self.head:
            if v not in body_vars:
                raise RDFError(f"head variable {v} does not occur in the body")

    @classmethod
    def create(cls, head: Sequence[object], patterns: Iterable[Sequence[object]],
               name: str = "q") -> "BGPQuery":
        """Convenience constructor coercing plain strings/tuples."""
        head_vars = tuple(var(h) if isinstance(h, str) else h for h in head)
        body = tuple(
            p if isinstance(p, TriplePattern) else make_pattern(*p) for p in patterns
        )
        return cls(head=head_vars, patterns=body, name=name)

    def variables(self) -> set[Variable]:
        """Return every variable of the body."""
        out: set[Variable] = set()
        for p in self.patterns:
            out.update(p.variables())
        return out

    def output_variables(self) -> tuple[Variable, ...]:
        """Head variables, or all body variables (sorted) if the head is empty."""
        if self.head:
            return self.head
        return tuple(sorted(self.variables(), key=lambda v: v.name))

    def bind(self, bindings: Binding) -> "BGPQuery":
        """Return a copy of the query with ``bindings`` substituted in the body."""
        new_patterns = tuple(p.bind(bindings) for p in self.patterns)
        new_head = tuple(v for v in self.head if v not in bindings)
        if not new_head and self.head:
            # Fully bound head: keep a dummy projection over remaining vars.
            remaining = set()
            for p in new_patterns:
                remaining.update(p.variables())
            new_head = tuple(sorted(remaining, key=lambda v: v.name))
            if not new_head:
                # Boolean query: keep the original head semantics by
                # projecting nothing; evaluation yields empty bindings.
                return BGPQuery(head=(), patterns=new_patterns, name=self.name)
        return BGPQuery(head=new_head, patterns=new_patterns, name=self.name)

    def __str__(self) -> str:  # pragma: no cover - trivial
        head = ", ".join(str(v) for v in self.output_variables())
        body = ", ".join(str(p) for p in self.patterns)
        return f"{self.name}({head}) :- {body}"


@dataclass
class EvaluationTrace:
    """Optional statistics collected during BGP evaluation."""

    pattern_order: list[TriplePattern] = field(default_factory=list)
    intermediate_sizes: list[int] = field(default_factory=list)
    matched_triples: int = 0


def evaluate_bgp(query: BGPQuery, graph: Graph, initial_binding: Binding | None = None,
                 trace: EvaluationTrace | None = None) -> list[Binding]:
    """Evaluate ``query`` on ``graph`` (no entailment) and return projected bindings.

    ``initial_binding`` pre-binds variables (used by the mediator's bind
    joins); the returned bindings contain only the query's output
    variables.
    """
    order = _order_patterns(query.patterns, graph, initial_binding or {})
    if trace is not None:
        trace.pattern_order = list(order)

    solutions: list[Binding] = [dict(initial_binding or {})]
    for p in order:
        next_solutions: list[Binding] = []
        for solution in solutions:
            bound = p.bind(solution)
            for t in graph.match(bound):
                if trace is not None:
                    trace.matched_triples += 1
                extended = _extend(solution, bound, t)
                if extended is not None:
                    next_solutions.append(extended)
        solutions = next_solutions
        if trace is not None:
            trace.intermediate_sizes.append(len(solutions))
        if not solutions:
            break

    output = query.output_variables()
    projected: list[Binding] = []
    seen: set[tuple] = set()
    for solution in solutions:
        row = {v: solution[v] for v in output if v in solution}
        key = tuple(row.get(v) for v in output)
        if key not in seen:
            seen.add(key)
            projected.append(row)
    return projected


def answer_bgp(query: BGPQuery, graph: Graph, schema: RDFSchema | None = None) -> list[Binding]:
    """Return the *answer* of ``query``: its evaluation against G∞."""
    saturated, _ = saturate(graph, schema)
    return evaluate_bgp(query, saturated)


def evaluate_ask(patterns: Iterable[TriplePattern], graph: Graph) -> bool:
    """Boolean (ASK) evaluation: does at least one embedding exist?"""
    patterns = tuple(patterns)
    query = BGPQuery(head=(), patterns=patterns)
    return bool(evaluate_bgp(query, graph))


def _order_patterns(patterns: Sequence[TriplePattern], graph: Graph,
                    initial: Binding) -> list[TriplePattern]:
    """Greedy selectivity ordering of the body patterns.

    At each step pick the pattern with the lowest estimated cardinality
    given the variables already bound, preferring patterns connected to
    the current set of bound variables (to avoid Cartesian products).
    """
    remaining = list(patterns)
    bound_vars: set[Variable] = set(initial)
    ordered: list[TriplePattern] = []
    while remaining:
        def score(p: TriplePattern) -> tuple[int, int]:
            connected = 0 if (not ordered or p.variables() & bound_vars or not p.variables()) else 1
            # Estimate cardinality treating bound variables as constants.
            estimate_pattern = TriplePattern(
                *(Variable("__any__") if isinstance(term, Variable) and term not in bound_vars
                  else (term if not isinstance(term, Variable) else _BOUND_MARKER)
                  for term in p)
            )
            return connected, _estimate(estimate_pattern, graph)

        best = min(remaining, key=score)
        remaining.remove(best)
        ordered.append(best)
        bound_vars.update(best.variables())
    return ordered


#: Marker used during ordering for variables already bound: we do not know
#: their value yet, but they behave like constants, so estimate them as a
#: single bound position by reusing a fresh variable and dividing.
_BOUND_MARKER = Variable("__bound__")


def _estimate(p: TriplePattern, graph: Graph) -> int:
    """Cardinality estimate for ordering purposes."""
    concrete = TriplePattern(
        *(Variable(f"v{i}") if isinstance(term, Variable) else term
          for i, term in enumerate(p))
    )
    count = graph.count(concrete)
    bound_positions = sum(1 for term in p if term is _BOUND_MARKER)
    # Each already-bound variable behaves like an equality selection.
    for _ in range(bound_positions):
        count = max(1, count // 10)
    return count


def _extend(solution: Binding, bound_pattern: TriplePattern, t: Triple) -> Binding | None:
    """Extend ``solution`` with the bindings induced by matching ``t``."""
    extended = dict(solution)
    for term, value in zip(bound_pattern, t):
        if isinstance(term, Variable):
            existing = extended.get(term)
            if existing is not None and existing != value:
                return None
            extended[term] = value
    return extended
