"""Query-oriented RDF graph summaries (digest support).

The paper builds digests from "RDF summaries [3]" (Cebirić, Goasdoué,
Manolescu, PVLDB 2015).  We implement a property-based structural summary:
resources are grouped into equivalence classes by their set of outgoing
properties (their *property clique*), and the summary graph records one
node per class plus, per property, the edges between classes.  Each
summary node keeps the set of atomic values observed at that position so
the keyword search can look keywords up.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Iterable

from repro.rdf.graph import Graph
from repro.rdf.terms import RDF_TYPE, Literal, Term, URI


@dataclass
class SummaryNode:
    """One equivalence class of resources in the summary."""

    node_id: str
    properties: frozenset[Term]
    classes: set[Term] = field(default_factory=set)
    member_count: int = 0
    sample_members: list[Term] = field(default_factory=list)

    def describe(self) -> str:
        """Human-readable description used in digests and debugging."""
        labels = sorted(_short(c) for c in self.classes) or sorted(
            _short(p) for p in self.properties
        )
        return f"{self.node_id}[{', '.join(labels[:4])}]"


@dataclass
class SummaryEdge:
    """An edge of the summary graph: ``source --property--> target``."""

    source: str
    prop: Term
    target: str
    triple_count: int = 0


class RDFSummary:
    """Structural summary of an RDF graph.

    Attributes
    ----------
    nodes:
        Mapping node id -> :class:`SummaryNode`.
    edges:
        List of :class:`SummaryEdge`.
    values:
        Mapping ``(node_id, property)`` -> set of literal/URI values
        observed in the object position (the digest's value sets).
    """

    def __init__(self, graph_name: str = "graph"):
        self.graph_name = graph_name
        self.nodes: dict[str, SummaryNode] = {}
        self.edges: list[SummaryEdge] = []
        self.values: dict[tuple[str, Term], set[Term]] = defaultdict(set)
        self._node_of_resource: dict[Term, str] = {}

    # ------------------------------------------------------------------
    @classmethod
    def build(cls, graph: Graph, max_samples: int = 5) -> "RDFSummary":
        """Build the summary of ``graph``."""
        summary = cls(graph_name=graph.name)
        outgoing: dict[Term, set[Term]] = defaultdict(set)
        classes: dict[Term, set[Term]] = defaultdict(set)
        for t in graph:
            outgoing[t.subject].add(t.predicate)
            if t.predicate == RDF_TYPE:
                classes[t.subject].add(t.obj)

        # Group resources by their outgoing property set.
        by_signature: dict[frozenset[Term], list[Term]] = defaultdict(list)
        for resource, props in outgoing.items():
            by_signature[frozenset(props)].append(resource)

        for index, (signature, members) in enumerate(
            sorted(by_signature.items(), key=lambda kv: -len(kv[1]))
        ):
            node_id = f"{graph.name}#n{index}"
            node = SummaryNode(
                node_id=node_id,
                properties=signature,
                member_count=len(members),
                sample_members=members[:max_samples],
            )
            for member in members:
                node.classes.update(classes.get(member, ()))
                summary._node_of_resource[member] = node_id
            summary.nodes[node_id] = node

        edge_counts: dict[tuple[str, Term, str], int] = defaultdict(int)
        for t in graph:
            source_id = summary._node_of_resource.get(t.subject)
            if source_id is None:
                continue
            target_id = summary._node_of_resource.get(t.obj)
            summary.values[(source_id, t.predicate)].add(t.obj)
            if target_id is not None:
                edge_counts[(source_id, t.predicate, target_id)] += 1
        summary.edges = [
            SummaryEdge(source=s, prop=p, target=o, triple_count=count)
            for (s, p, o), count in sorted(edge_counts.items(), key=lambda kv: str(kv[0]))
        ]
        return summary

    # ------------------------------------------------------------------
    def node_of(self, resource: Term) -> SummaryNode | None:
        """Return the summary node a resource was assigned to."""
        node_id = self._node_of_resource.get(resource)
        return self.nodes.get(node_id) if node_id else None

    def properties(self) -> set[Term]:
        """Every property observed in the summarised graph."""
        out: set[Term] = set()
        for node in self.nodes.values():
            out.update(node.properties)
        return out

    def value_positions(self) -> Iterable[tuple[str, Term, set[Term]]]:
        """Yield ``(node_id, property, values)`` for every value set."""
        for (node_id, prop), values in self.values.items():
            yield node_id, prop, values

    def literal_values(self, prop: Term) -> set[str]:
        """Return the string forms of literal values of ``prop`` anywhere."""
        out: set[str] = set()
        for (_, p), values in self.values.items():
            if p == prop:
                out.update(v.value for v in values if isinstance(v, Literal))
        return out

    def compression_ratio(self, graph: Graph) -> float:
        """Summary nodes per graph resource — lower is more compact."""
        resources = len({t.subject for t in graph})
        if resources == 0:
            return 0.0
        return len(self.nodes) / resources

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"RDFSummary(graph={self.graph_name!r}, nodes={len(self.nodes)}, "
            f"edges={len(self.edges)})"
        )


def _short(term: Term) -> str:
    if isinstance(term, URI):
        return term.local_name
    return str(term)
