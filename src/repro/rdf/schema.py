"""RDF Schema (RDFS) extraction and reasoning helpers.

The paper relies on the four central RDFS properties — ``rdfs:subClassOf``,
``rdfs:subPropertyOf``, ``rdfs:domain`` and ``rdfs:range`` — to derive the
implicit triples of a graph.  :class:`RDFSchema` extracts those statements
from a graph and exposes the transitive closures the entailment engine and
the digest builder need.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Iterable

from repro.rdf.graph import Graph
from repro.rdf.terms import (
    RDFS_DOMAIN,
    RDFS_RANGE,
    RDFS_SUBCLASS,
    RDFS_SUBPROPERTY,
    Term,
    Triple,
    URI,
)


class RDFSchema:
    """The schema-level statements of an RDF graph.

    The schema is represented by four dictionaries:

    ``subclasses``
        direct ``rdfs:subClassOf`` edges, child -> set of parents,
    ``subproperties``
        direct ``rdfs:subPropertyOf`` edges, child -> set of parents,
    ``domains`` / ``ranges``
        property -> set of classes typing its subjects / objects.
    """

    def __init__(self) -> None:
        self.subclasses: dict[Term, set[Term]] = defaultdict(set)
        self.subproperties: dict[Term, set[Term]] = defaultdict(set)
        self.domains: dict[Term, set[Term]] = defaultdict(set)
        self.ranges: dict[Term, set[Term]] = defaultdict(set)

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    @classmethod
    def from_graph(cls, graph: Graph) -> "RDFSchema":
        """Extract schema statements from ``graph``."""
        return cls.from_triples(graph)

    @classmethod
    def from_triples(cls, triples: Iterable[Triple]) -> "RDFSchema":
        """Extract schema statements from an iterable of triples."""
        schema = cls()
        for t in triples:
            schema.observe(t)
        return schema

    def observe(self, t: Triple) -> bool:
        """Record ``t`` if it is a schema triple; return True if it was."""
        if t.predicate == RDFS_SUBCLASS:
            self.subclasses[t.subject].add(t.obj)
        elif t.predicate == RDFS_SUBPROPERTY:
            self.subproperties[t.subject].add(t.obj)
        elif t.predicate == RDFS_DOMAIN:
            self.domains[t.subject].add(t.obj)
        elif t.predicate == RDFS_RANGE:
            self.ranges[t.subject].add(t.obj)
        else:
            return False
        return True

    def add_subclass(self, child: URI, parent: URI) -> None:
        """Declare ``child rdfs:subClassOf parent``."""
        self.subclasses[child].add(parent)

    def add_subproperty(self, child: URI, parent: URI) -> None:
        """Declare ``child rdfs:subPropertyOf parent``."""
        self.subproperties[child].add(parent)

    def add_domain(self, prop: URI, rdf_class: URI) -> None:
        """Declare ``prop rdfs:domain rdf_class``."""
        self.domains[prop].add(rdf_class)

    def add_range(self, prop: URI, rdf_class: URI) -> None:
        """Declare ``prop rdfs:range rdf_class``."""
        self.ranges[prop].add(rdf_class)

    # ------------------------------------------------------------------
    # Closures
    # ------------------------------------------------------------------
    def superclasses(self, rdf_class: Term, include_self: bool = False) -> set[Term]:
        """Return every (transitive) superclass of ``rdf_class``."""
        return _transitive(self.subclasses, rdf_class, include_self)

    def superproperties(self, prop: Term, include_self: bool = False) -> set[Term]:
        """Return every (transitive) superproperty of ``prop``."""
        return _transitive(self.subproperties, prop, include_self)

    def subclasses_of(self, rdf_class: Term, include_self: bool = True) -> set[Term]:
        """Return every (transitive) subclass of ``rdf_class``."""
        return _transitive(_invert(self.subclasses), rdf_class, include_self)

    def subproperties_of(self, prop: Term, include_self: bool = True) -> set[Term]:
        """Return every (transitive) subproperty of ``prop``."""
        return _transitive(_invert(self.subproperties), prop, include_self)

    def classes(self) -> set[Term]:
        """Return every class mentioned by the schema."""
        out: set[Term] = set()
        for child, parents in self.subclasses.items():
            out.add(child)
            out.update(parents)
        for classes in self.domains.values():
            out.update(classes)
        for classes in self.ranges.values():
            out.update(classes)
        return out

    def properties(self) -> set[Term]:
        """Return every property mentioned by the schema."""
        out: set[Term] = set()
        for child, parents in self.subproperties.items():
            out.add(child)
            out.update(parents)
        out.update(self.domains.keys())
        out.update(self.ranges.keys())
        return out

    def is_empty(self) -> bool:
        """True when no schema statement has been recorded."""
        return not (self.subclasses or self.subproperties or self.domains or self.ranges)

    def triples(self) -> list[Triple]:
        """Serialise the schema back into RDF triples."""
        out: list[Triple] = []
        for child, parents in self.subclasses.items():
            out.extend(Triple(child, RDFS_SUBCLASS, parent) for parent in parents)
        for child, parents in self.subproperties.items():
            out.extend(Triple(child, RDFS_SUBPROPERTY, parent) for parent in parents)
        for prop, classes in self.domains.items():
            out.extend(Triple(prop, RDFS_DOMAIN, c) for c in classes)
        for prop, classes in self.ranges.items():
            out.extend(Triple(prop, RDFS_RANGE, c) for c in classes)
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (
            f"RDFSchema(classes={len(self.classes())}, "
            f"properties={len(self.properties())})"
        )


def _transitive(edges: dict[Term, set[Term]], start: Term, include_self: bool) -> set[Term]:
    """Breadth-first transitive closure of ``edges`` from ``start``."""
    seen: set[Term] = set()
    frontier = list(edges.get(start, ()))
    while frontier:
        node = frontier.pop()
        if node in seen:
            continue
        seen.add(node)
        frontier.extend(edges.get(node, ()))
    if include_self:
        seen.add(start)
    return seen


def _invert(edges: dict[Term, set[Term]]) -> dict[Term, set[Term]]:
    inverted: dict[Term, set[Term]] = defaultdict(set)
    for child, parents in edges.items():
        for parent in parents:
            inverted[parent].add(child)
    return inverted
