"""RDFS entailment: computing the saturation G∞ of an RDF graph.

The paper answers BGP queries against the *saturation* of the custom graph
(all explicit plus derivable implicit triples).  We implement the standard
RDFS entailment rules the paper cites:

==========  ================================================================
rule        derivation
==========  ================================================================
rdfs2       ``p rdfs:domain c`` and ``s p o``        ⇒ ``s rdf:type c``
rdfs3       ``p rdfs:range c`` and ``s p o``         ⇒ ``o rdf:type c``
rdfs5       ``p rdfs:subPropertyOf q`` and ``q rdfs:subPropertyOf r``
            ⇒ ``p rdfs:subPropertyOf r``
rdfs7       ``p rdfs:subPropertyOf q`` and ``s p o`` ⇒ ``s q o``
rdfs9       ``c rdfs:subClassOf d`` and ``s rdf:type c`` ⇒ ``s rdf:type d``
rdfs11      ``c rdfs:subClassOf d`` and ``d rdfs:subClassOf e``
            ⇒ ``c rdfs:subClassOf e``
==========  ================================================================

Saturation is computed by a semi-naive fixpoint: only the triples derived
at the previous round are re-examined at the next one, so the cost is
proportional to the number of derived triples rather than to the square of
the graph size.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.rdf.graph import Graph
from repro.rdf.schema import RDFSchema
from repro.rdf.terms import (
    RDF_TYPE,
    RDFS_DOMAIN,
    RDFS_RANGE,
    RDFS_SUBCLASS,
    RDFS_SUBPROPERTY,
    Literal,
    Term,
    Triple,
    TriplePattern,
    Variable,
)


@dataclass
class SaturationStats:
    """Bookkeeping returned together with a saturated graph."""

    explicit_triples: int = 0
    implicit_triples: int = 0
    rounds: int = 0
    rule_applications: dict[str, int] = field(default_factory=dict)

    @property
    def total_triples(self) -> int:
        return self.explicit_triples + self.implicit_triples

    def record(self, rule: str, count: int = 1) -> None:
        """Increment the application counter of ``rule``."""
        if count:
            self.rule_applications[rule] = self.rule_applications.get(rule, 0) + count


def saturate(graph: Graph, schema: RDFSchema | None = None) -> tuple[Graph, SaturationStats]:
    """Return ``(G∞, stats)`` for ``graph``.

    ``schema`` may be provided when the schema triples live outside the
    data graph (e.g. a shared ontology); it is merged with the schema
    statements found in ``graph`` itself.
    """
    stats = SaturationStats(explicit_triples=len(graph))
    saturated = graph.copy(name=f"{graph.name}∞")

    merged_schema = RDFSchema.from_graph(graph)
    if schema is not None:
        _merge_schema(merged_schema, schema)
        saturated.add_all(schema.triples())

    # rdfs5 / rdfs11: close the schema hierarchies first, they are small.
    _close_hierarchy(saturated, merged_schema.subclasses, RDFS_SUBCLASS, "rdfs11", stats)
    _close_hierarchy(saturated, merged_schema.subproperties, RDFS_SUBPROPERTY, "rdfs5", stats)
    # Re-extract so that the closures below see the transitive edges.
    merged_schema = RDFSchema.from_graph(saturated)

    frontier: list[Triple] = list(saturated)
    rounds = 0
    while frontier:
        rounds += 1
        derived: list[Triple] = []
        for t in frontier:
            derived.extend(_apply_instance_rules(t, merged_schema, stats))
        frontier = [t for t in derived if saturated.add(t)]
    stats.rounds = rounds
    stats.implicit_triples = len(saturated) - stats.explicit_triples
    return saturated, stats


def saturate_delta(saturated: Graph, new_triples: Iterable[Triple],
                   schema: RDFSchema | None = None) -> SaturationStats:
    """Bring a saturation up to date after adding ``new_triples``.

    ``saturated`` must be a graph closed under the RDFS rules (the
    output of :func:`saturate`, or of earlier :func:`saturate_delta`
    calls); it is mutated **in place** so that afterwards it equals
    ``saturate(G ∪ Δ)`` — without copying or re-deriving anything from
    the unchanged part of the graph.  The semi-naive fixpoint starts
    from the *delta frontier* only: triples of ``Δ`` already present in
    G∞ cannot change the closure and are skipped outright.

    Schema statements in the delta are handled incrementally too: a new
    ``rdfs:subPropertyOf`` / ``rdfs:subClassOf`` / ``rdfs:domain`` /
    ``rdfs:range`` edge re-examines exactly the existing triples it
    activates (found through the graph's permutation indexes), not the
    whole graph.  Removals are **not** supported — callers must fall
    back to a full :func:`saturate` after deleting triples.

    ``schema`` may be the schema extracted from ``saturated`` (it is
    updated in place with statements discovered in the delta, so the
    same object can be threaded through successive deltas); when
    omitted it is re-extracted from the graph.
    """
    if schema is None:
        schema = RDFSchema.from_graph(saturated)
    stats = SaturationStats()
    frontier: list[Triple] = []
    for t in new_triples:
        if saturated.add(t):
            schema.observe(t)
            frontier.append(t)
    stats.explicit_triples = len(saturated)
    rounds = 0
    while frontier:
        rounds += 1
        derived: list[Triple] = []
        for t in frontier:
            derived.extend(_apply_instance_rules(t, schema, stats))
            derived.extend(_apply_schema_activations(t, saturated, stats))
        frontier = []
        for t in derived:
            if saturated.add(t):
                schema.observe(t)
                frontier.append(t)
    stats.rounds = rounds
    stats.implicit_triples = len(saturated) - stats.explicit_triples
    return stats


def implicit_triples(graph: Graph, schema: RDFSchema | None = None) -> set[Triple]:
    """Return only the implicit triples of ``graph`` (G∞ minus G)."""
    saturated, _ = saturate(graph, schema)
    return {t for t in saturated if t not in graph}


def _apply_instance_rules(t: Triple, schema: RDFSchema, stats: SaturationStats) -> Iterable[Triple]:
    """Yield the triples directly derivable from ``t`` under ``schema``."""
    out: list[Triple] = []
    # rdfs7: propagate along super-properties.
    superproperties = schema.superproperties(t.predicate)
    for parent in superproperties:
        out.append(Triple(t.subject, parent, t.obj))
    stats.record("rdfs7", len(superproperties))

    # rdfs2 / rdfs3: typing from domain and range, for the predicate and
    # every super-property (the closure above will re-derive types anyway,
    # doing it here shortens the fixpoint).
    predicates = {t.predicate} | superproperties
    domain_types: set[Term] = set()
    range_types: set[Term] = set()
    for predicate in predicates:
        domain_types.update(schema.domains.get(predicate, ()))
        range_types.update(schema.ranges.get(predicate, ()))
    for rdf_class in domain_types:
        out.append(Triple(t.subject, RDF_TYPE, rdf_class))
    stats.record("rdfs2", len(domain_types))
    if not isinstance(t.obj, Literal):
        for rdf_class in range_types:
            out.append(Triple(t.obj, RDF_TYPE, rdf_class))
        stats.record("rdfs3", len(range_types))

    # rdfs9: propagate rdf:type along the subclass hierarchy.
    if t.predicate == RDF_TYPE:
        superclasses = schema.superclasses(t.obj)
        for parent in superclasses:
            out.append(Triple(t.subject, RDF_TYPE, parent))
        stats.record("rdfs9", len(superclasses))
    return out


#: Fresh pattern variables for the delta activations (never user-visible).
_DELTA_S = Variable("__delta_s__")
_DELTA_O = Variable("__delta_o__")


def _apply_schema_activations(t: Triple, graph: Graph,
                              stats: SaturationStats) -> list[Triple]:
    """Derivations a *new schema triple* ``t`` activates over ``graph``.

    The full fixpoint pairs every schema edge with every instance triple
    up front; when an edge arrives incrementally, only its own joins are
    missing — both transitivity directions against the existing
    hierarchy, and the rule body over the triples it governs.
    """
    out: list[Triple] = []
    if t.predicate == RDFS_SUBPROPERTY:
        child, parent = t.subject, t.obj
        grandparents = graph.objects(subject=parent, predicate=RDFS_SUBPROPERTY)
        out.extend(Triple(child, RDFS_SUBPROPERTY, gp) for gp in grandparents)
        grandchildren = graph.subjects(predicate=RDFS_SUBPROPERTY, obj=child)
        out.extend(Triple(gc, RDFS_SUBPROPERTY, parent) for gc in grandchildren)
        stats.record("rdfs5", len(grandparents) + len(grandchildren))
        uses = list(graph.match(TriplePattern(_DELTA_S, child, _DELTA_O)))
        out.extend(Triple(u.subject, parent, u.obj) for u in uses)
        stats.record("rdfs7", len(uses))
    elif t.predicate == RDFS_SUBCLASS:
        child, parent = t.subject, t.obj
        grandparents = graph.objects(subject=parent, predicate=RDFS_SUBCLASS)
        out.extend(Triple(child, RDFS_SUBCLASS, gp) for gp in grandparents)
        grandchildren = graph.subjects(predicate=RDFS_SUBCLASS, obj=child)
        out.extend(Triple(gc, RDFS_SUBCLASS, parent) for gc in grandchildren)
        stats.record("rdfs11", len(grandparents) + len(grandchildren))
        instances = graph.subjects(predicate=RDF_TYPE, obj=child)
        out.extend(Triple(i, RDF_TYPE, parent) for i in instances)
        stats.record("rdfs9", len(instances))
    elif t.predicate == RDFS_DOMAIN:
        uses = list(graph.match(TriplePattern(_DELTA_S, t.subject, _DELTA_O)))
        out.extend(Triple(u.subject, RDF_TYPE, t.obj) for u in uses)
        stats.record("rdfs2", len(uses))
    elif t.predicate == RDFS_RANGE:
        typed = [u for u in graph.match(TriplePattern(_DELTA_S, t.subject, _DELTA_O))
                 if not isinstance(u.obj, Literal)]
        out.extend(Triple(u.obj, RDF_TYPE, t.obj) for u in typed)
        stats.record("rdfs3", len(typed))
    return out


def _close_hierarchy(graph: Graph, edges: dict[Term, set[Term]], predicate, rule: str,
                     stats: SaturationStats) -> None:
    """Add the transitive closure of ``edges`` to ``graph`` as ``predicate`` triples."""
    schema = RDFSchema()
    target = schema.subclasses if predicate == RDFS_SUBCLASS else schema.subproperties
    for child, parents in edges.items():
        target[child].update(parents)
    for child in list(edges):
        closure = (schema.superclasses(child) if predicate == RDFS_SUBCLASS
                   else schema.superproperties(child))
        added = sum(1 for parent in closure if graph.add(Triple(child, predicate, parent)))
        stats.record(rule, added)


def _merge_schema(target: RDFSchema, extra: RDFSchema) -> None:
    for child, parents in extra.subclasses.items():
        target.subclasses[child].update(parents)
    for child, parents in extra.subproperties.items():
        target.subproperties[child].update(parents)
    for prop, classes in extra.domains.items():
        target.domains[prop].update(classes)
    for prop, classes in extra.ranges.items():
        target.ranges[prop].update(classes)
