"""A SPARQL-subset parser producing :class:`~repro.rdf.bgp.BGPQuery` objects.

The paper's RDF sources "can be readily queried through SPARQL endpoints";
within TATOOINE the relevant fragment is the conjunctive one (BGPs).  The
grammar supported here:

.. code-block:: text

    query     := prologue? SELECT (DISTINCT)? vars WHERE '{' triples '}' modifiers?
    prologue  := (PREFIX name ':' '<' iri '>')*
    vars      := '*' | var+
    triples   := triple ('.' triple)* '.'?
    triple    := term term term
    modifiers := (LIMIT int)?

Terms may be ``<iri>``, ``prefix:local``, ``?var``, quoted literals or
numbers.  ``a`` abbreviates ``rdf:type``.
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import ParseError
from repro.rdf.bgp import BGPQuery
from repro.rdf.terms import (
    DEFAULT_PREFIXES,
    RDF_TYPE,
    Literal,
    PatternTerm,
    TriplePattern,
    URI,
    Variable,
    XSD_NS,
)

_SPARQL_TOKEN_RE = re.compile(
    r"""
      (?P<keyword>\b(?:PREFIX|SELECT|DISTINCT|WHERE|LIMIT)\b)
    | (?P<var>\?[A-Za-z_][\w]*)
    | (?P<uri><[^>]*>)
    | (?P<literal>"(?:[^"\\]|\\.)*"(?:@[A-Za-z-]+|\^\^<[^>]*>)?)
    | (?P<number>[+-]?\d+(?:\.\d+)?)
    | (?P<a>\ba\b)
    | (?P<qname>[A-Za-z_][\w.-]*:[A-Za-z_][\w.-]*|[A-Za-z_][\w.-]*:)
    | (?P<star>\*)
    | (?P<punct>[{}.;,])
    """,
    re.VERBOSE | re.IGNORECASE,
)


@dataclass(frozen=True)
class ParsedSelect:
    """Result of parsing a SELECT query: the BGP plus SELECT-level options."""

    query: BGPQuery
    distinct: bool = False
    limit: int | None = None


def parse_sparql(text: str, name: str = "q") -> ParsedSelect:
    """Parse a SELECT query in the supported subset."""
    tokens = _tokenize(text)
    parser = _Parser(tokens, name=name)
    return parser.parse_select()


def parse_bgp(text: str, name: str = "q") -> BGPQuery:
    """Parse a SELECT query and return only its BGP."""
    return parse_sparql(text, name=name).query


class _Parser:
    def __init__(self, tokens: list[tuple[str, str]], name: str):
        self._tokens = tokens
        self._index = 0
        self._name = name
        self._prefixes = dict(DEFAULT_PREFIXES)

    # -- token stream helpers -------------------------------------------------
    def _peek(self) -> tuple[str, str] | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> tuple[str, str]:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of query", position=self._index)
        self._index += 1
        return token

    def _expect_keyword(self, keyword: str) -> None:
        kind, text = self._next()
        if kind != "keyword" or text.upper() != keyword:
            raise ParseError(f"expected {keyword}, got {text!r}", position=self._index)

    def _expect_punct(self, punct: str) -> None:
        kind, text = self._next()
        if kind != "punct" or text != punct:
            raise ParseError(f"expected {punct!r}, got {text!r}", position=self._index)

    # -- grammar ----------------------------------------------------------------
    def parse_select(self) -> ParsedSelect:
        self._parse_prologue()
        self._expect_keyword("SELECT")
        distinct = False
        token = self._peek()
        if token and token[0] == "keyword" and token[1].upper() == "DISTINCT":
            self._next()
            distinct = True
        head = self._parse_projection()
        self._expect_keyword("WHERE")
        patterns = self._parse_group()
        limit = self._parse_modifiers()
        if head == "*":
            query = BGPQuery(head=(), patterns=tuple(patterns), name=self._name)
        else:
            query = BGPQuery(head=tuple(head), patterns=tuple(patterns), name=self._name)
        return ParsedSelect(query=query, distinct=distinct, limit=limit)

    def _parse_prologue(self) -> None:
        while True:
            token = self._peek()
            if not token or token[0] != "keyword" or token[1].upper() != "PREFIX":
                return
            self._next()
            kind, prefix_text = self._next()
            if kind != "qname" or not prefix_text.endswith(":"):
                raise ParseError(f"malformed PREFIX name {prefix_text!r}", position=self._index)
            kind, iri = self._next()
            if kind != "uri":
                raise ParseError("PREFIX requires an <iri>", position=self._index)
            self._prefixes[prefix_text[:-1]] = iri[1:-1]

    def _parse_projection(self) -> list[Variable] | str:
        token = self._peek()
        if token and token[0] == "star":
            self._next()
            return "*"
        head: list[Variable] = []
        while True:
            token = self._peek()
            if not token or token[0] != "var":
                break
            self._next()
            head.append(Variable(token[1][1:]))
        if not head:
            raise ParseError("SELECT needs at least one variable or *", position=self._index)
        return head

    def _parse_group(self) -> list[TriplePattern]:
        self._expect_punct("{")
        patterns: list[TriplePattern] = []
        while True:
            token = self._peek()
            if token is None:
                raise ParseError("unterminated group pattern", position=self._index)
            if token == ("punct", "}"):
                self._next()
                break
            subject = self._parse_term()
            predicate = self._parse_term()
            obj = self._parse_term()
            patterns.append(TriplePattern(subject, predicate, obj))
            token = self._peek()
            if token == ("punct", "."):
                self._next()
        if not patterns:
            raise ParseError("empty group pattern", position=self._index)
        return patterns

    def _parse_modifiers(self) -> int | None:
        token = self._peek()
        if token and token[0] == "keyword" and token[1].upper() == "LIMIT":
            self._next()
            kind, value = self._next()
            if kind != "number":
                raise ParseError("LIMIT requires an integer", position=self._index)
            return int(float(value))
        return None

    def _parse_term(self) -> PatternTerm:
        kind, text = self._next()
        if kind == "var":
            return Variable(text[1:])
        if kind == "uri":
            return URI(text[1:-1])
        if kind == "a":
            return RDF_TYPE
        if kind == "qname":
            prefix, _, local = text.partition(":")
            if prefix not in self._prefixes:
                raise ParseError(f"unknown prefix {prefix!r}", position=self._index)
            return URI(self._prefixes[prefix] + local)
        if kind == "number":
            datatype = XSD_NS + ("integer" if re.match(r"^[+-]?\d+$", text) else "decimal")
            return Literal(text, datatype=datatype)
        if kind == "literal":
            return _parse_literal_token(text)
        raise ParseError(f"unexpected token {text!r} in triple pattern", position=self._index)


def _parse_literal_token(text: str) -> Literal:
    match = re.match(
        r'^"(?P<value>(?:[^"\\]|\\.)*)"(?:@(?P<lang>[A-Za-z-]+)|\^\^<(?P<dtype>[^>]*)>)?$', text
    )
    if not match:
        raise ParseError(f"malformed literal {text!r}")
    value = match.group("value").replace('\\"', '"')
    return Literal(value, datatype=match.group("dtype"), language=match.group("lang"))


def _tokenize(text: str) -> list[tuple[str, str]]:
    tokens: list[tuple[str, str]] = []
    position = 0
    while position < len(text):
        if text[position].isspace():
            position += 1
            continue
        if text[position] == "#":
            end = text.find("\n", position)
            position = len(text) if end == -1 else end
            continue
        match = _SPARQL_TOKEN_RE.match(text, position)
        if not match:
            raise ParseError(f"cannot tokenise {text[position:position + 20]!r}", position=position)
        kind = match.lastgroup or ""
        tokens.append((kind, match.group()))
        position = match.end()
    return tokens
