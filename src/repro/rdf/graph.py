"""In-memory RDF triple store with SPO/POS/OSP indexes.

The glue graph of a mixed instance, as well as every RDF data source
(DBPedia-like, IGN-like), is stored in a :class:`Graph`.  The store keeps
three permutation indexes so that any triple pattern with at least one
constant is answered by dictionary lookups rather than a full scan.
"""

from __future__ import annotations

import threading
from collections import defaultdict
from typing import Iterable, Iterator

from repro.core.deltas import DeltaJournal, INSERT, REMOVE, RESET
from repro.errors import RDFError
from repro.locks import RWLock
from repro.rdf.terms import (
    RDF_TYPE,
    BlankNode,
    Literal,
    PatternTerm,
    Term,
    Triple,
    TriplePattern,
    URI,
    Variable,
    triple as make_triple,
)


class Graph:
    """A set of RDF triples with pattern-matching access paths.

    Parameters
    ----------
    name:
        Optional human-readable name (used by digests and the catalog).
    triples:
        Optional initial triples.
    """

    def __init__(self, name: str = "graph", triples: Iterable[Triple] | None = None):
        self.name = name
        self._triples: set[Triple] = set()
        self._spo: dict[Term, dict[Term, set[Term]]] = defaultdict(lambda: defaultdict(set))
        self._pos: dict[Term, dict[Term, set[Term]]] = defaultdict(lambda: defaultdict(set))
        self._osp: dict[Term, dict[Term, set[Term]]] = defaultdict(lambda: defaultdict(set))
        self._additions = 0
        self._removals = 0
        #: Typed mutation log: one record per committed batch, shared
        #: with snapshots so pinned wrappers can replay the same history.
        self._journal = DeltaJournal()
        self._rwlock = RWLock()
        #: (version, frozen copy) — the copy-on-write snapshot memo; the
        #: mutex keeps concurrent readers from each copying on a miss.
        self._snapshot_state: tuple[int, "Graph"] | None = None
        self._snapshot_lock = threading.Lock()
        if triples:
            self.add_all(triples)

    # ------------------------------------------------------------------
    # Mutation
    # ------------------------------------------------------------------
    def add(self, subject: object, predicate: object = None, obj: object = None) -> bool:
        """Add a triple; returns True if it was not already present.

        Accepts either a single :class:`Triple` or three coercible terms.
        """
        if isinstance(subject, Triple) and predicate is None and obj is None:
            t = subject
        else:
            t = make_triple(subject, predicate, obj)
        with self._rwlock.write_locked():
            if not self._add_unlocked(t):
                return False
            pre = self._additions + self._removals
            self._additions += 1
            entry = self._journal.record(pre, pre + 1, INSERT, (t,))
        self._journal.notify(entry)
        return True

    def _add_unlocked(self, t: Triple) -> bool:
        if t in self._triples:
            return False
        self._triples.add(t)
        s, p, o = t.subject, t.predicate, t.obj
        self._spo[s][p].add(o)
        self._pos[p][o].add(s)
        self._osp[o][s].add(p)
        return True

    def add_all(self, triples: Iterable[Triple]) -> int:
        """Add every triple of ``triples``; return how many were new.

        The write lock is held across the whole batch, so a concurrent
        snapshot sees all of it or none of it.  One effective batch is
        one version bump — a thousand-triple ingest invalidates derived
        state once, not a thousand times.
        """
        return len(self.add_batch(triples))

    def add_batch(self, triples: Iterable[Triple]) -> list[Triple]:
        """Like :meth:`add_all`, but returns the triples actually new
        (callers maintaining derived state — saturation — need the exact
        delta, not just its size)."""
        with self._rwlock.write_locked():
            fresh = [t for t in triples if self._add_unlocked(t)]
            if not fresh:
                return []
            pre = self._additions + self._removals
            self._additions += 1
            entry = self._journal.record(pre, pre + 1, INSERT, fresh)
        self._journal.notify(entry)
        return fresh

    def remove(self, t: Triple) -> bool:
        """Remove a triple; returns True if it was present.

        Emptied index buckets are pruned so that add/remove churn does
        not grow the permutation indexes without bound.
        """
        with self._rwlock.write_locked():
            if not self._remove_unlocked(t):
                return False
            pre = self._additions + self._removals
            self._removals += 1
            entry = self._journal.record(pre, pre + 1, REMOVE, (t,))
        self._journal.notify(entry)
        return True

    def _remove_unlocked(self, t: Triple) -> bool:
        if t not in self._triples:
            return False
        self._triples.discard(t)
        s, p, o = t.subject, t.predicate, t.obj
        _discard_pruning(self._spo, s, p, o)
        _discard_pruning(self._pos, p, o, s)
        _discard_pruning(self._osp, o, s, p)
        return True

    def remove_all(self, triples: Iterable[Triple]) -> int:
        """Remove every triple of ``triples``; return how many were present.

        Like :meth:`add_all`, atomic with respect to snapshots and a
        single version bump per effective batch.
        """
        with self._rwlock.write_locked():
            gone = [t for t in triples if self._remove_unlocked(t)]
            if not gone:
                return 0
            pre = self._additions + self._removals
            self._removals += 1
            entry = self._journal.record(pre, pre + 1, REMOVE, gone)
        self._journal.notify(entry)
        return len(gone)

    def clear(self) -> None:
        """Remove every triple."""
        entry = None
        with self._rwlock.write_locked():
            if self._triples:
                pre = self._additions + self._removals
                self._removals += 1
                entry = self._journal.record(pre, pre + 1, RESET)
            self._triples.clear()
            self._spo.clear()
            self._pos.clear()
            self._osp.clear()
        if entry is not None:
            self._journal.notify(entry)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def rwlock(self) -> RWLock:
        """The store's reader-writer lock.

        Mutators take the write side internally; long consistent reads
        (snapshotting, saturation deltas) take the read side.
        """
        return self._rwlock

    @property
    def version(self) -> int:
        """Monotonic mutation counter (bumped by every effective change).

        Consumers (cached saturations, the mediator's result cache) key
        derived state on this value: equality of versions guarantees the
        graph is byte-for-byte unchanged — unlike ``len()``, which cannot
        see a removal paired with an addition.
        """
        return self._additions + self._removals

    @property
    def journal(self) -> DeltaJournal:
        """The store's typed mutation log (shared with snapshots)."""
        return self._journal

    def deltas_since(self, version: int, upto: int | None = None):
        """The unbroken delta chain ``version -> upto`` (None on a gap)."""
        target = self.version if upto is None else upto
        return self._journal.since(version, target)

    @property
    def additions(self) -> int:
        """Number of effective triple additions since construction."""
        return self._additions

    @property
    def removals(self) -> int:
        """Number of effective removal events since construction."""
        return self._removals

    def __len__(self) -> int:
        return len(self._triples)

    def __iter__(self) -> Iterator[Triple]:
        return iter(self._triples)

    def __contains__(self, t: Triple) -> bool:
        return t in self._triples

    def copy(self, name: str | None = None) -> "Graph":
        """Return an independent copy of the graph."""
        return Graph(name or self.name, self._triples)

    # ------------------------------------------------------------------
    # Snapshot isolation
    # ------------------------------------------------------------------
    def snapshot(self) -> "Graph":
        """A frozen, consistent copy of the graph at its current version.

        Copy-on-write, amortised: the copy is taken lazily at the first
        snapshot after a mutation and memoised per version, so any number
        of concurrent queries pinning the same version share one frozen
        graph, and an unchanged graph is never re-copied.  The returned
        graph preserves the mutation counters (``version`` equals the
        source's at snapshot time) and must never be mutated.
        """
        with self._rwlock.read_locked():
            version = self._additions + self._removals
            state = self._snapshot_state
            if state is not None and state[0] == version:
                return state[1]
            with self._snapshot_lock:
                state = self._snapshot_state
                if state is not None and state[0] == version:
                    return state[1]
                frozen = self._copy_unlocked()
                self._snapshot_state = (version, frozen)
                return frozen

    def _copy_unlocked(self) -> "Graph":
        """Fast structural copy (indexes copied directly, counters kept).

        The caller must hold at least the read lock.
        """
        frozen = Graph.__new__(Graph)
        frozen.name = self.name
        frozen._triples = set(self._triples)
        frozen._spo = _copy_index(self._spo)
        frozen._pos = _copy_index(self._pos)
        frozen._osp = _copy_index(self._osp)
        frozen._additions = self._additions
        frozen._removals = self._removals
        # Shared on purpose: records are immutable and appends locked,
        # so a pinned snapshot replays the same history up to its own
        # version via ``deltas_since``.
        frozen._journal = self._journal
        frozen._rwlock = RWLock()
        frozen._snapshot_lock = threading.Lock()
        # A snapshot of a snapshot is itself.
        frozen._snapshot_state = (frozen._additions + frozen._removals, frozen)
        return frozen

    def subjects(self, predicate: Term | None = None, obj: Term | None = None) -> set[Term]:
        """Return the distinct subjects matching optional predicate/object.

        Answered directly from the permutation indexes — no
        :class:`Triple` objects are materialised.
        """
        if predicate is None and obj is None:
            return set(self._spo)
        if predicate is not None and obj is not None:
            return set(self._pos.get(predicate, {}).get(obj, ()))
        if predicate is not None:
            out: set[Term] = set()
            for subjects in self._pos.get(predicate, {}).values():
                out |= subjects
            return out
        return set(self._osp.get(obj, {}))

    def predicates(self) -> set[Term]:
        """Return every distinct predicate in the graph."""
        return set(self._pos.keys())

    def objects(self, subject: Term | None = None, predicate: Term | None = None) -> set[Term]:
        """Return the distinct objects matching optional subject/predicate.

        Like :meth:`subjects`, answered straight from the indexes.
        """
        if subject is None and predicate is None:
            return set(self._osp)
        if subject is not None and predicate is not None:
            return set(self._spo.get(subject, {}).get(predicate, ()))
        if subject is not None:
            out: set[Term] = set()
            for objects in self._spo.get(subject, {}).values():
                out |= objects
            return out
        return set(self._pos.get(predicate, {}))

    def value(self, subject: Term, predicate: Term) -> Term | None:
        """Return one object of ``subject predicate ?o`` or None."""
        objects = self._spo.get(subject, {}).get(predicate)
        if not objects:
            return None
        return next(iter(objects))

    def resources_of_type(self, rdf_class: URI) -> set[Term]:
        """Return every subject declared of type ``rdf_class`` (no entailment)."""
        return set(self._pos.get(RDF_TYPE, {}).get(rdf_class, set()))

    def predicate_counts(self) -> dict[Term, int]:
        """Return, for every predicate, the number of triples using it."""
        return {
            predicate: sum(len(subjects) for subjects in by_object.values())
            for predicate, by_object in self._pos.items()
        }

    # ------------------------------------------------------------------
    # Pattern matching
    # ------------------------------------------------------------------
    def match(self, pattern: TriplePattern) -> Iterator[Triple]:
        """Yield every triple matching ``pattern``.

        Equal variables in two positions of the pattern constrain the
        matched triple to repeat the same term in those positions.
        """
        s, p, o = pattern.subject, pattern.predicate, pattern.obj
        s_fixed = not isinstance(s, Variable)
        p_fixed = not isinstance(p, Variable)
        o_fixed = not isinstance(o, Variable)

        if s_fixed and p_fixed and o_fixed:
            t = Triple(s, p, o)
            candidates: Iterable[Triple] = [t] if t in self._triples else []
        elif s_fixed and p_fixed:
            candidates = (Triple(s, p, obj) for obj in self._spo.get(s, {}).get(p, ()))
        elif p_fixed and o_fixed:
            candidates = (Triple(subj, p, o) for subj in self._pos.get(p, {}).get(o, ()))
        elif s_fixed and o_fixed:
            candidates = (Triple(s, pred, o) for pred in self._osp.get(o, {}).get(s, ()))
        elif s_fixed:
            candidates = (
                Triple(s, pred, obj)
                for pred, objs in self._spo.get(s, {}).items()
                for obj in objs
            )
        elif p_fixed:
            candidates = (
                Triple(subj, p, obj)
                for obj, subjs in self._pos.get(p, {}).items()
                for subj in subjs
            )
        elif o_fixed:
            candidates = (
                Triple(subj, pred, o)
                for subj, preds in self._osp.get(o, {}).items()
                for pred in preds
            )
        else:
            candidates = iter(self._triples)

        repeated = _repeated_variable_positions(pattern)
        if not repeated:
            yield from candidates
            return
        for candidate in candidates:
            values = (candidate.subject, candidate.predicate, candidate.obj)
            if all(values[i] == values[j] for i, j in repeated):
                yield candidate

    def count(self, pattern: TriplePattern) -> int:
        """Return the number of triples matching ``pattern``.

        Fast paths avoid materialising matches for the common shapes used
        by the planner's selectivity estimation.
        """
        s, p, o = pattern.subject, pattern.predicate, pattern.obj
        if _repeated_variable_positions(pattern):
            return sum(1 for _ in self.match(pattern))
        s_fixed = not isinstance(s, Variable)
        p_fixed = not isinstance(p, Variable)
        o_fixed = not isinstance(o, Variable)
        if not (s_fixed or p_fixed or o_fixed):
            return len(self._triples)
        if s_fixed and p_fixed and not o_fixed:
            return len(self._spo.get(s, {}).get(p, ()))
        if p_fixed and o_fixed and not s_fixed:
            return len(self._pos.get(p, {}).get(o, ()))
        if p_fixed and not s_fixed and not o_fixed:
            return sum(len(v) for v in self._pos.get(p, {}).values())
        return sum(1 for _ in self.match(pattern))

    # ------------------------------------------------------------------
    # Set operations
    # ------------------------------------------------------------------
    def union(self, other: "Graph", name: str | None = None) -> "Graph":
        """Return a new graph holding the triples of both graphs."""
        result = self.copy(name or f"{self.name}+{other.name}")
        result.add_all(other)
        return result

    def terms(self) -> set[Term]:
        """Return every term (subject, predicate or object) in the graph."""
        out: set[Term] = set()
        for t in self._triples:
            out.update((t.subject, t.predicate, t.obj))
        return out

    def literals(self) -> set[Literal]:
        """Return every literal appearing in the object position."""
        return {t.obj for t in self._triples if isinstance(t.obj, Literal)}

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return f"Graph(name={self.name!r}, triples={len(self)})"


def _copy_index(index: dict[Term, dict[Term, set[Term]]]) -> dict:
    """Deep-copy one SPO/POS/OSP permutation index."""
    out: dict[Term, dict[Term, set[Term]]] = defaultdict(lambda: defaultdict(set))
    for a, inner in index.items():
        target = out[a]
        for b, values in inner.items():
            target[b] = set(values)
    return out


def _discard_pruning(index: dict[Term, dict[Term, set[Term]]],
                     a: Term, b: Term, value: Term) -> None:
    """Discard ``value`` from ``index[a][b]``, pruning emptied buckets."""
    inner = index.get(a)
    if inner is None:
        return
    bucket = inner.get(b)
    if bucket is None:
        return
    bucket.discard(value)
    if not bucket:
        del inner[b]
        if not inner:
            del index[a]


def _repeated_variable_positions(pattern: TriplePattern) -> list[tuple[int, int]]:
    """Return index pairs of positions that hold the same variable."""
    terms: list[PatternTerm] = [pattern.subject, pattern.predicate, pattern.obj]
    pairs = []
    for i in range(3):
        for j in range(i + 1, 3):
            if isinstance(terms[i], Variable) and terms[i] == terms[j]:
                pairs.append((i, j))
    return pairs
