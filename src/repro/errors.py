"""Exception hierarchy shared by every repro subsystem.

Every error raised by the library derives from :class:`ReproError`, so a
caller embedding the mediator can catch a single exception type.  More
specific subclasses exist per subsystem (RDF, relational, full-text,
mediator, digest) so tests and applications can distinguish failure modes.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class of every exception raised by the repro library."""


class ParseError(ReproError):
    """A query or data document could not be parsed.

    Attributes
    ----------
    message:
        Human readable description of the problem.
    position:
        Optional character offset (or line number, depending on the parser)
        where the problem was detected.
    """

    def __init__(self, message: str, position: int | None = None):
        self.message = message
        self.position = position
        if position is not None:
            message = f"{message} (at position {position})"
        super().__init__(message)


class RDFError(ReproError):
    """Error raised by the RDF substrate (graph, entailment, BGP engine)."""


class RelationalError(ReproError):
    """Error raised by the relational substrate (schema, SQL engine)."""


class SQLParseError(ParseError, RelationalError):
    """A SQL statement could not be parsed."""


class SchemaError(RelationalError):
    """A table or column definition is invalid or violated."""


class FullTextError(ReproError):
    """Error raised by the Solr-like full-text substrate."""


class JSONError(ReproError):
    """Error raised by the JSON document substrate (store, tree patterns)."""


class MixedQueryError(ReproError):
    """Error raised while parsing, planning or evaluating a CMQ."""


class SourceDispatchError(MixedQueryError):
    """An unexpected exception escaped a wrapper during dispatch.

    The executor wraps any non-:class:`ReproError` exception raised by a
    wrapper's ``execute`` / ``execute_batch`` in this type, so a failed
    ticket always carries the *source URI* and *atom* that caused it
    (the original exception stays chained as ``__cause__``).
    """

    def __init__(self, message: str, source_uri: str = "", atom: str = ""):
        super().__init__(message)
        self.source_uri = source_uri
        self.atom = atom


class RemoteError(ReproError):
    """Base class of errors raised by the remote-source federation layer."""


class SourceUnavailableError(RemoteError):
    """A remote source could not be reached (refused, reset, outage)."""


class SourceTimeoutError(RemoteError):
    """A remote call did not answer within its per-call timeout."""


class RemoteProtocolError(RemoteError):
    """A remote peer answered with a malformed or wrong-version message."""


class CircuitOpenError(RemoteError):
    """The per-source circuit breaker is open: calls fail fast.

    Raised without touching the network while the breaker's reset window
    has not elapsed; half-open probe traffic is admitted separately.
    """


class PlanningError(MixedQueryError):
    """The planner could not produce a valid evaluation order.

    Typical cause: a sub-query targets a source variable that no other
    sub-query can ever bind.
    """


class UnknownSourceError(MixedQueryError):
    """A CMQ referenced a source URI that is not registered in the instance."""


class ServiceError(ReproError):
    """Error raised by the concurrent mediator serving layer."""


class AdmissionError(ServiceError):
    """The service refused a query: queue depth or in-flight limit hit."""


class QueryCancelledError(ServiceError):
    """A submitted query was cancelled before or during execution."""


class QueryTimeoutError(ServiceError):
    """A submitted query exceeded its deadline."""


class DigestError(ReproError):
    """Error raised while building or searching source digests."""


class KeywordSearchError(DigestError):
    """Keyword search could not produce a candidate mixed query."""


class DatasetError(ReproError):
    """Error raised by the synthetic dataset generators."""
