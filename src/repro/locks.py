"""Reader-writer locking shared by every mutable store.

Each store (RDF :class:`~repro.rdf.graph.Graph`, relational
:class:`~repro.relational.database.Database` and its tables, the
full-text and JSON document stores) owns one :class:`RWLock`: mutators
take the write side, :meth:`snapshot` takes the read side while it
copies a consistent state.  The lock lives in its own dependency-free
module so the store packages can import it without pulling in the
service layer (which would cycle back through ``repro.core``).
"""

from __future__ import annotations

import threading
from contextlib import contextmanager


class RWLock:
    """A reader-writer lock: many readers or one (re-entrant) writer.

    * Any number of threads may hold the read side simultaneously.
    * The write side is exclusive and re-entrant: a thread already
      writing may nest further write (or read) acquisitions — store
      mutators call each other (``add_all`` → ``add``, JSON ``add`` →
      ``remove``), so this is required, not a convenience.
    * Read acquisitions are re-entrant per thread as well: a reader is
      never gated behind a waiting writer it would deadlock with.
    * Waiting writers block *new* readers (writer preference), so a
      stream of snapshots cannot starve updates.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer: int | None = None
        self._writer_depth = 0
        self._writers_waiting = 0
        self._local = threading.local()

    # -- read side -----------------------------------------------------------
    def acquire_read(self) -> None:
        ident = threading.get_ident()
        depth = getattr(self._local, "read_depth", 0)
        with self._cond:
            if self._writer == ident:
                # A writer reading its own store: treat as a nested write.
                self._writer_depth += 1
                return
            if depth == 0:
                while self._writer is not None or self._writers_waiting:
                    self._cond.wait()
            self._readers += 1
        self._local.read_depth = depth + 1

    def release_read(self) -> None:
        ident = threading.get_ident()
        with self._cond:
            if self._writer == ident:
                self._writer_depth -= 1
                if self._writer_depth == 0:
                    self._writer = None
                    self._cond.notify_all()
                return
            self._local.read_depth = getattr(self._local, "read_depth", 1) - 1
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    # -- write side ----------------------------------------------------------
    def acquire_write(self) -> None:
        ident = threading.get_ident()
        with self._cond:
            if self._writer == ident:
                self._writer_depth += 1
                return
            own_reads = getattr(self._local, "read_depth", 0)
            self._writers_waiting += 1
            try:
                # A thread upgrading from its own read locks only waits
                # for *other* readers (its own would never drain).
                while self._writer is not None or self._readers > own_reads:
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = ident
            self._writer_depth = 1

    def release_write(self) -> None:
        with self._cond:
            self._writer_depth -= 1
            if self._writer_depth == 0:
                self._writer = None
                self._cond.notify_all()

    # -- context managers ----------------------------------------------------
    @contextmanager
    def read_locked(self):
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self):
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"RWLock(readers={self._readers}, writer={self._writer}, "
                f"waiting={self._writers_waiting})")
