"""Reader-writer locking shared by every mutable store.

Each store (RDF :class:`~repro.rdf.graph.Graph`, relational
:class:`~repro.relational.database.Database` and its tables, the
full-text and JSON document stores) owns one :class:`RWLock`: mutators
take the write side, :meth:`snapshot` takes the read side while it
copies a consistent state.  The lock lives in a near-dependency-free
module (only the stdlib-backed :mod:`repro.obs.metrics`) so the store
packages can import it without pulling in the service layer (which
would cycle back through ``repro.core``).

Contention is observable: an acquisition that actually had to wait
records its wait time into the ``rwlock_wait_seconds`` histogram of the
process-global metrics registry (labelled by lock side); the uncontended
fast path records nothing and pays nothing.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager

from repro.obs.metrics import get_registry

#: (registry, read-histogram, write-histogram) — cached on the registry's
#: identity so ``reset_registry()`` is picked up on the next wait.
_WAIT_CACHE: tuple | None = None


def _record_wait(side: str, seconds: float) -> None:
    global _WAIT_CACHE
    registry = get_registry()
    cached = _WAIT_CACHE
    if cached is None or cached[0] is not registry:
        cached = (registry,
                  registry.histogram("rwlock_wait_seconds", side="read"),
                  registry.histogram("rwlock_wait_seconds", side="write"))
        _WAIT_CACHE = cached
    (cached[1] if side == "read" else cached[2]).observe(seconds)


class RWLock:
    """A reader-writer lock: many readers or one (re-entrant) writer.

    * Any number of threads may hold the read side simultaneously.
    * The write side is exclusive and re-entrant: a thread already
      writing may nest further write (or read) acquisitions — store
      mutators call each other (``add_all`` → ``add``, JSON ``add`` →
      ``remove``), so this is required, not a convenience.
    * Read acquisitions are re-entrant per thread as well: a reader is
      never gated behind a waiting writer it would deadlock with.
    * Waiting writers block *new* readers (writer preference), so a
      stream of snapshots cannot starve updates.
    """

    def __init__(self) -> None:
        self._cond = threading.Condition()
        self._readers = 0
        self._writer: int | None = None
        self._writer_depth = 0
        self._writers_waiting = 0
        self._local = threading.local()

    # -- read side -----------------------------------------------------------
    def acquire_read(self) -> None:
        ident = threading.get_ident()
        depth = getattr(self._local, "read_depth", 0)
        with self._cond:
            if self._writer == ident:
                # A writer reading its own store: treat as a nested write.
                self._writer_depth += 1
                return
            waited_from = None
            if depth == 0:
                while self._writer is not None or self._writers_waiting:
                    if waited_from is None:
                        waited_from = time.perf_counter()
                    self._cond.wait()
            self._readers += 1
        if waited_from is not None:
            _record_wait("read", time.perf_counter() - waited_from)
        self._local.read_depth = depth + 1

    def release_read(self) -> None:
        ident = threading.get_ident()
        with self._cond:
            if self._writer == ident:
                self._writer_depth -= 1
                if self._writer_depth == 0:
                    self._writer = None
                    self._cond.notify_all()
                return
            self._local.read_depth = getattr(self._local, "read_depth", 1) - 1
            self._readers -= 1
            if self._readers == 0:
                self._cond.notify_all()

    # -- write side ----------------------------------------------------------
    def acquire_write(self) -> None:
        ident = threading.get_ident()
        with self._cond:
            if self._writer == ident:
                self._writer_depth += 1
                return
            own_reads = getattr(self._local, "read_depth", 0)
            self._writers_waiting += 1
            waited_from = None
            try:
                # A thread upgrading from its own read locks only waits
                # for *other* readers (its own would never drain).
                while self._writer is not None or self._readers > own_reads:
                    if waited_from is None:
                        waited_from = time.perf_counter()
                    self._cond.wait()
            finally:
                self._writers_waiting -= 1
            self._writer = ident
            self._writer_depth = 1
        if waited_from is not None:
            _record_wait("write", time.perf_counter() - waited_from)

    def release_write(self) -> None:
        with self._cond:
            self._writer_depth -= 1
            if self._writer_depth == 0:
                self._writer = None
                self._cond.notify_all()

    # -- context managers ----------------------------------------------------
    @contextmanager
    def read_locked(self):
        self.acquire_read()
        try:
            yield self
        finally:
            self.release_read()

    @contextmanager
    def write_locked(self):
        self.acquire_write()
        try:
            yield self
        finally:
            self.release_write()

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"RWLock(readers={self._readers}, writer={self._writer}, "
                f"waiting={self._writers_waiting})")
