"""Bloom filters for digest value sets.

The precision of the value-set representations stored in source digests
"is controlled by parameters dividing up the available space; histograms
and Bloom filters are used" (paper §2.2).  This Bloom filter is a plain
bit-array implementation with double hashing, parameterised by bits per
inserted value so the digest-precision benchmark (E9) can sweep the
space/precision trade-off.
"""

from __future__ import annotations

import hashlib
import math
from typing import Iterable


class BloomFilter:
    """A fixed-size Bloom filter over normalised string values."""

    def __init__(self, expected_items: int, bits_per_value: int = 16):
        if expected_items <= 0:
            expected_items = 1
        if bits_per_value <= 0:
            raise ValueError("bits_per_value must be positive")
        self.bits_per_value = bits_per_value
        self.size = max(8, expected_items * bits_per_value)
        # Optimal number of hash functions for the chosen size.
        self.hash_count = max(1, round(self.size / expected_items * math.log(2)))
        self._bits = bytearray((self.size + 7) // 8)
        self.inserted = 0

    # ------------------------------------------------------------------
    def add(self, value: object) -> None:
        """Insert a value (normalised to a lowercase string)."""
        for position in self._positions(value):
            self._bits[position // 8] |= 1 << (position % 8)
        self.inserted += 1

    def add_all(self, values: Iterable[object]) -> None:
        """Insert every value of ``values``."""
        for value in values:
            self.add(value)

    def might_contain(self, value: object) -> bool:
        """True when the value may have been inserted (no false negatives)."""
        return all(self._bits[p // 8] & (1 << (p % 8)) for p in self._positions(value))

    def __contains__(self, value: object) -> bool:
        return self.might_contain(value)

    # ------------------------------------------------------------------
    def false_positive_rate(self) -> float:
        """Theoretical false-positive probability given the current load."""
        if self.inserted == 0:
            return 0.0
        exponent = -self.hash_count * self.inserted / self.size
        return (1.0 - math.exp(exponent)) ** self.hash_count

    def size_in_bytes(self) -> int:
        """Memory footprint of the bit array."""
        return len(self._bits)

    def fill_ratio(self) -> float:
        """Fraction of bits set to one."""
        set_bits = sum(bin(byte).count("1") for byte in self._bits)
        return set_bits / self.size

    # ------------------------------------------------------------------
    def _positions(self, value: object) -> list[int]:
        normalized = _normalize(value)
        digest = hashlib.sha1(normalized.encode("utf-8")).digest()
        h1 = int.from_bytes(digest[:8], "big")
        h2 = int.from_bytes(digest[8:16], "big") or 1
        return [(h1 + i * h2) % self.size for i in range(self.hash_count)]

    def __repr__(self) -> str:  # pragma: no cover - debugging helper
        return (f"BloomFilter(size={self.size}, hashes={self.hash_count}, "
                f"inserted={self.inserted})")


def _normalize(value: object) -> str:
    return str(value).strip().lower()
